#!/usr/bin/env bash
# Repo CI gate: formatting, lints, then the tier-1 build-and-test pass.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --all -- --check
cargo clippy --workspace --all-targets -- -D warnings
cargo build --release
cargo test -q

# Conformance gate: replay the regression corpus, then fuzz a bounded
# batch of seeded instances (small n so the exhaustive oracle stays fast)
# against the oracle, the metamorphic properties and the service engine.
cargo run --release -p amp-conformance -- --seeds 500 --max-tasks 8 --max-big 4 --max-little 4

# Perf gate: a small deterministic sweep through the perf runner; fails
# if warm-scratch HeRAD performs any steady-state heap allocation.
cargo run --release -p amp-bench --bin perf -- --smoke --out BENCH_sched.json
