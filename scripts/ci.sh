#!/usr/bin/env bash
# Repo CI gate: formatting, lints, then the tier-1 build-and-test pass.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --all -- --check
cargo clippy --workspace --all-targets -- -D warnings
cargo build --release
cargo test -q

# Conformance gate: replay the regression corpus, then fuzz a bounded
# batch of seeded instances (small n so the exhaustive oracle stays fast)
# against the oracle, the metamorphic properties, the service engine and
# the fault-injection (chaos) harness — deterministic injection keyed on
# instance content, so any failure replays locally with the same seeds.
cargo run --release -p amp-conformance -- --seeds 500 --max-tasks 8 --max-big 4 --max-little 4

# Chaos gate: a second bounded seed window through the same runner with
# only the service + chaos layers (skipping the oracle keeps it fast),
# plus the service crate's panic-safety and thread-stability suites in
# release mode (10k-request chaos run, pool-recovery and no-new-threads
# assertions).
cargo run --release -p amp-conformance -- --seeds 250 --seed-start 1000 --no-corpus --max-tasks 8 --max-big 4 --max-little 4
cargo test --release -q -p amp-service --test panic_safety --test thread_stability

# Chain-tier gate: the solve-once cache (grow-in-place HeRAD tables,
# keyed on the chain alone) differentially checked against fresh solves
# over a wide seed window — extraction at every covered pool, period
# agreement, and a render/parse round trip per table. Skipping the
# service/chaos layers keeps 1000 seeds cheap.
cargo run --release -p amp-conformance -- --chain-tier-only --seeds 1000 --max-tasks 8 --max-big 4 --max-little 4
cargo test --release -q -p amp-service --test snapshot_roundtrip

# Energy gate: the brute-force energy oracle (every interval, core type
# and replication count scored in exact milliwatts) differentially pins
# the energy DP, the greedy energy strategies and the Pareto front's
# structural invariants over a wide seed window. Narrowing to the energy
# battery keeps 1000 seeds cheap.
cargo run --release -p amp-conformance -- --energy-only --seeds 1000 --max-tasks 8 --max-big 4 --max-little 4

# Energy-sweep smoke gate: paper-shaped chains (20 tasks, Table I pools)
# through the Pareto-front driver at a scale the conformance oracle
# cannot reach. Exits non-zero if any front is empty, unsorted, starts
# off the HeRAD optimum, relaxing the period ever costs energy, or the
# median front build blows the wall-clock tripwire. The report lands in
# BENCH_energy.json.
cargo run --release -p amp-experiments --bin energy_sweep -- --smoke --out BENCH_energy.json

# Perf gate: a small deterministic sweep through the perf runner. The
# binary exits non-zero (failing this script) if any of its built-in
# regression gates trip: warm-scratch HeRAD performing steady-state heap
# allocations, HeRAD's pool-delta sweep_speedup dropping below 1.5, or
# HeRAD's batched median exceeding the cold median.
cargo run --release -p amp-bench --bin perf -- --smoke --out BENCH_sched.json

# Wire hot-path gates, release mode: the zero-steady-state-allocation
# gate (a warm pump cycle — rent pooled buffer, stream-render, corked
# vectored write, recycle — must perform zero heap allocations under the
# counting allocator), the corked-write ordering gate (pipelined
# valid/malformed mix over one socket: no torn frames, engine order
# preserved), and the JoinHandle-reap gate (1000 connection churns must
# not accumulate reader handles).
cargo test --release -q -p amp-net --test wire_alloc --test wire_order --test handle_reap

# Network smoke gate: the seeded load generator boots a 4-shard server on
# loopback and audits the wire end to end. Steady phase: every pipelined
# request answered, zero lost/duplicated/misrouted by id, cache hit rate
# > 90% on the repeated-request pool. Overload phase: a starved queue
# must surface as typed OVERLOADED rejections (never silence or a
# disconnect) with a bounded p99. Pool-sweep phase: 12 pool shapes of
# one chain must pay exactly one cold HeRAD solve (chain-tier counters
# split out per tier in the status frame). Warm-restart phase: a second
# server loads the saved tier snapshot at boot and serves the sweep with
# zero cold solves. Throughput phase: a sustained open-loop run over the
# corked vectored wire must answer at least 140k req/s (2x the
# per-line-syscall wire's checked-in number). Scaling phase: the same
# offered load through 1/8/64/256 connections, audit-clean at every
# point, with p99 at 256 connections within 5x of p99 at 8. The combined
# report lands in BENCH_net.json, the latency-vs-connections curve in
# BENCH_net_scaling.json and the tier snapshot in SNAP_chain_tier.json.
cargo run --release -p amp-net --bin net_loadgen -- --smoke --out BENCH_net.json --scaling-out BENCH_net_scaling.json --snapshot-out SNAP_chain_tier.json

# Reconfiguration gate: the live-migration battery over a wide seed
# window — incremental re-solves over a scripted pool sequence
# (shrink/grow/original) must be bit-identical to fresh solves
# (RECONF_DIVERGE), and the epoch-barrier simulator mirror must account
# for every frame exactly once, in order (RECONF_LOST). Narrowing to the
# reconfig battery keeps 1000 seeds cheap.
cargo run --release -p amp-conformance -- --reconfig-only --seeds 1000 --max-tasks 8 --max-big 4 --max-little 4

# Reconfig-sweep smoke gate: a fixed 8-task chain migrated live
# (wide -> narrow -> wide) on the threaded runtime versus the same pool
# script paid as stop-the-world restarts. Exits non-zero if any live run
# loses a frame, a migration goes unobserved, or the median live
# sink-departure gap is not strictly below the median restart gap. The
# report lands in BENCH_reconfig.json.
cargo run --release -p amp-experiments --bin reconfig_sweep -- --smoke --out BENCH_reconfig.json
