//! Ablation: inter-stage buffer capacity vs achieved throughput under
//! latency jitter. The analytic period P(S) assumes a perfectly smooth
//! pipeline; with noisy task latencies, small adaptor buffers stall
//! *balanced* pipelines (back-pressure), while a single dominant
//! bottleneck hides the jitter of the other stages — two regimes the
//! paper's expected-vs-real throughput gap mixes together.
//!
//! ```sh
//! cargo run --release -p amp-examples --example backpressure
//! ```

use amp_core::sched::{Herad, Scheduler};
use amp_core::{Resources, Task, TaskChain};
use amp_dvbs2::{profiled_chain, Platform};
use amp_sim::{simulate, SimConfig};

fn main() {
    // Regime 1: a perfectly balanced pipeline (every stage weight 100).
    let balanced = TaskChain::new(
        (0..6)
            .map(|i| Task {
                name: format!("t{i}"),
                weight_big: 100,
                weight_little: 250,
                replicable: false,
            })
            .collect(),
    );
    let solution = Herad::new()
        .schedule(&balanced, Resources::new(6, 0))
        .unwrap();
    println!("balanced pipeline: {solution}");
    sweep(&balanced, &solution, 0.3);

    // Regime 2: the DVB-S2 schedule, dominated by one bottleneck stage.
    let chain = profiled_chain(Platform::X7Ti);
    let solution = Herad::new()
        .schedule(&chain, Platform::X7Ti.full_resources())
        .unwrap();
    println!("\nDVB-S2 (X7 Ti, full cores): {solution}");
    sweep(&chain, &solution, 0.3);

    println!(
        "\nBalanced stages lose throughput under jitter until the adaptors\n\
         get enough room; a dominant bottleneck absorbs its neighbours'\n\
         jitter and needs almost no buffering."
    );
}

fn sweep(chain: &TaskChain, solution: &amp_core::Solution, noise: f64) {
    let expected = solution.period(chain).to_f64();
    println!(
        "  analytic period {:.1}; measured period (and loss) by capacity:",
        expected
    );
    for cap in [1u64, 2, 4, 16] {
        let noisy = simulate(
            chain,
            solution,
            &SimConfig {
                frames: 4000,
                queue_capacity: cap,
                noise: Some(noise),
                seed: 99,
                ..SimConfig::default()
            },
        );
        println!(
            "    capacity {:>3}: {:>10.1}  ({:>+5.1}%)",
            cap,
            noisy.steady_period,
            (noisy.steady_period / expected - 1.0) * 100.0
        );
    }
}
