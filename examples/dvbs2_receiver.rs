//! The paper's real-world workload end to end: schedule the 23-task
//! DVB-S2 receiver with HeRAD using the Mac Studio latency profile, then
//! *execute* the schedule with the functional reduced-scale blocks on the
//! threaded runtime (virtual big/little cores) and verify that every frame
//! decodes bit-exactly.
//!
//! ```sh
//! cargo run --release -p amp-examples --example dvbs2_receiver
//! ```

use amp_core::sched::{Herad, Scheduler};
use amp_dvbs2::{profiled_chain, receiver_spec, txrx::LinkContext, Platform};
use amp_runtime::{RunConfig, VirtualMachine};
use std::sync::Arc;

fn main() {
    let platform = Platform::MacStudio;
    let resources = platform.half_resources(); // R = (8B, 2L), Table II top
    let chain = profiled_chain(platform);

    let solution = Herad::new()
        .schedule(&chain, resources)
        .expect("the receiver always schedules");
    let period_us = solution.period(&chain).to_f64() / 10.0;
    println!("platform: {} {resources}", platform.name());
    println!("schedule (HeRAD): {solution}");
    println!(
        "expected period {period_us:.1} µs -> {:.0} frames/s, {:.1} Mb/s\n",
        platform.fps_for_period_units(solution.period(&chain).to_f64()),
        platform.mbps_for_period_units(solution.period(&chain).to_f64()),
    );

    // Execute on the threaded runtime. The functional blocks process real
    // frames (PRBS -> BCH -> LDPC -> QPSK -> RRC -> AWGN and back); each
    // task is padded toward its profiled latency, scaled down 100x so the
    // demo finishes quickly.
    let ctx = Arc::new(LinkContext::reduced());
    let sigma = 0.10; // Es/N0 ~ 17 dB: error-free zone, like the paper
    let spec = receiver_spec(ctx, sigma, 42, Some((&chain, 0.001)));
    let machine = VirtualMachine::new(resources);
    let frames = 48;
    let report = spec
        .run(&chain, &solution, &machine, &RunConfig::with_frames(frames))
        .expect("valid schedule and machine");

    println!("executed {} frames on the threaded runtime", report.frames);
    println!(
        "measured {:.0} frames/s over {:.2} s (1-CPU host: semantics demo, \
         not a parallel speed measurement)",
        report.fps_total, report.elapsed_seconds
    );
    for s in &report.stages {
        println!(
            "  stage {}: {} replica(s) on {:?} cores, utilization {:>5.1}%",
            s.stage,
            s.replicas,
            s.core_type,
            s.utilization * 100.0
        );
    }
}
