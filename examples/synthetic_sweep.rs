//! A miniature of the paper's simulation campaign: generate synthetic
//! chains, schedule them with every strategy, and summarize slowdowns and
//! core usage (one cell of Table I).
//!
//! ```sh
//! cargo run --release -p amp-examples --example synthetic_sweep -- 10 10 0.5 --seed 2024
//! ```
//! (arguments: big cores, little cores, stateless ratio; `--seed SEED`
//! picks the chain-generation seed, default 2024 — the paper-repro value)

use amp_core::sched::{paper_strategies, schedule_many_with, SchedScratch};
use amp_core::Resources;
use amp_workload::SyntheticConfig;

fn main() {
    let mut positional: Vec<String> = Vec::new();
    let mut seed: u64 = 2024;
    let mut raw = std::env::args().skip(1);
    while let Some(arg) = raw.next() {
        if arg == "--seed" {
            let value = raw.next().expect("--seed needs a value");
            seed = value.parse().expect("SEED must be a number");
        } else {
            positional.push(arg);
        }
    }
    let big: u64 = positional
        .first()
        .map_or(10, |v| v.parse().expect("big cores"));
    let little: u64 = positional
        .get(1)
        .map_or(10, |v| v.parse().expect("little cores"));
    let sr: f64 = positional.get(2).map_or(0.5, |v| v.parse().expect("ratio"));
    let resources = Resources::new(big, little);

    let chains = SyntheticConfig::paper(sr).generate_batch(seed, 200);
    println!(
        "{} chains of 20 tasks, SR = {sr}, R = {resources}\n",
        chains.len()
    );

    // Batch each strategy across a small worker pool. The scratches
    // persist across the five strategy batches, so each worker's arenas
    // (including HeRAD's sweep table) stay warm for the whole sweep, and
    // the results are bit-identical to sequential `schedule` calls.
    let workers = std::thread::available_parallelism().map_or(4, usize::from);
    let strategies = paper_strategies();
    let jobs: Vec<_> = chains.iter().map(|c| (c, resources)).collect();
    let mut scratches: Vec<SchedScratch> = (0..workers.max(1).min(jobs.len()))
        .map(|_| SchedScratch::new())
        .collect();
    let batches: Vec<_> = strategies
        .iter()
        .map(|s| schedule_many_with(&**s, &jobs, &mut scratches))
        .collect();
    let best: Vec<f64> = batches[0]
        .iter()
        .zip(&chains)
        .map(|(sol, chain)| {
            sol.as_ref()
                .expect("HeRAD schedules everything")
                .period(chain)
                .to_f64()
        })
        .collect();
    let mut slowdowns = vec![Vec::new(); strategies.len()];
    let mut cores = vec![(0u64, 0u64); strategies.len()];
    for (i, batch) in batches.iter().enumerate() {
        for ((sol, chain), best) in batch.iter().zip(&chains).zip(&best) {
            if let Some(sol) = sol {
                slowdowns[i].push(sol.period(chain).to_f64() / best);
                let u = sol.used_cores();
                cores[i].0 += u.big;
                cores[i].1 += u.little;
            }
        }
    }

    println!(
        "{:<10} {:>7} {:>8} {:>8} {:>9} {:>9}",
        "strategy", "%opt", "avg", "max", "avg bigs", "avg littles"
    );
    for (i, s) in strategies.iter().enumerate() {
        let v = &slowdowns[i];
        let opt = v.iter().filter(|&&x| x <= 1.0 + 1e-9).count() as f64 / v.len() as f64;
        let avg = v.iter().sum::<f64>() / v.len() as f64;
        let max = v.iter().cloned().fold(1.0f64, f64::max);
        println!(
            "{:<10} {:>6.1}% {:>8.3} {:>8.3} {:>9.2} {:>9.2}",
            s.name(),
            opt * 100.0,
            avg,
            max,
            cores[i].0 as f64 / v.len() as f64,
            cores[i].1 as f64 / v.len() as f64,
        );
    }
}
