//! Ablation: how much does using *both* core types matter as the little
//! cores get slower? Sweeps the little-core slowdown factor and compares
//! HeRAD (heterogeneous-aware) against the homogeneous baselines — the
//! quantitative version of the paper's "importance of using both core
//! types" observation.
//!
//! ```sh
//! cargo run --release -p amp-examples --example heterogeneity_ablation
//! ```

use amp_core::sched::{Herad, Otac, Scheduler};
use amp_core::Resources;
use amp_workload::SyntheticConfig;

fn main() {
    let resources = Resources::new(6, 6);
    println!("R = {resources}, 100 chains of 20 tasks, SR = 0.5 per point\n");
    println!(
        "{:>9} {:>14} {:>14} {:>14}",
        "slowdown", "OTAC(B)/HeRAD", "OTAC(L)/HeRAD", "best-single/HeRAD"
    );

    for slow in [1.0f64, 1.5, 2.0, 3.0, 4.0, 5.0] {
        let cfg = SyntheticConfig {
            slowdown_range: (slow, slow),
            ..SyntheticConfig::paper(0.5)
        };
        let chains = cfg.generate_batch(7, 100);
        let mut sum_b = 0.0;
        let mut sum_l = 0.0;
        let mut sum_best = 0.0;
        for chain in &chains {
            let opt = Herad::new()
                .schedule(chain, resources)
                .unwrap()
                .period(chain)
                .to_f64();
            let pb = Otac::big()
                .schedule(chain, resources)
                .unwrap()
                .period(chain)
                .to_f64();
            let pl = Otac::little()
                .schedule(chain, resources)
                .unwrap()
                .period(chain)
                .to_f64();
            sum_b += pb / opt;
            sum_l += pl / opt;
            sum_best += pb.min(pl) / opt;
        }
        let n = chains.len() as f64;
        println!(
            "{:>8}x {:>14.3} {:>14.3} {:>14.3}",
            slow,
            sum_b / n,
            sum_l / n,
            sum_best / n
        );
    }

    println!(
        "\nEven at slowdown 1x (identical cores) the single-type baselines pay\n\
         for ignoring half the machine; as little cores get slower, OTAC(L)\n\
         collapses while HeRAD keeps using them for the light tasks."
    );
}
