//! Quickstart: model a partially-replicable task chain, schedule it on a
//! heterogeneous processor with every strategy, and inspect the schedules.
//!
//! ```sh
//! cargo run --release -p amp-examples --example quickstart
//! ```

use amp_core::sched::{paper_strategies, Herad};
use amp_core::{Resources, Task, TaskChain};

fn main() {
    // An 8-task streaming chain. Weights are microseconds on (big, little)
    // cores; stateful tasks (source, sync, sink) cannot be replicated.
    let chain = TaskChain::new(vec![
        Task {
            name: "source".into(),
            weight_big: 20,
            weight_little: 45,
            replicable: false,
        },
        Task {
            name: "agc".into(),
            weight_big: 40,
            weight_little: 110,
            replicable: false,
        },
        Task {
            name: "filter".into(),
            weight_big: 320,
            weight_little: 900,
            replicable: true,
        },
        Task {
            name: "demod".into(),
            weight_big: 480,
            weight_little: 1400,
            replicable: true,
        },
        Task {
            name: "decode".into(),
            weight_big: 700,
            weight_little: 1600,
            replicable: true,
        },
        Task {
            name: "descramble".into(),
            weight_big: 60,
            weight_little: 150,
            replicable: true,
        },
        Task {
            name: "crc".into(),
            weight_big: 35,
            weight_little: 80,
            replicable: true,
        },
        Task {
            name: "sink".into(),
            weight_big: 15,
            weight_little: 30,
            replicable: false,
        },
    ]);

    // A processor with 4 big and 4 little cores.
    let resources = Resources::new(4, 4);

    println!(
        "chain: {} tasks, {} replicable",
        chain.len(),
        chain.replicable_count()
    );
    println!("resources: {resources}\n");

    for strategy in paper_strategies() {
        match strategy.schedule(&chain, resources) {
            Some(solution) => {
                let used = solution.used_cores();
                println!(
                    "{:<9} period {:>7.1} µs  throughput {:>8.0} frames/s  cores ({}B,{}L)",
                    strategy.name(),
                    solution.period(&chain).to_f64(),
                    solution.throughput(&chain) * 1e6,
                    used.big,
                    used.little,
                );
                println!("          stages: {solution}");
            }
            None => println!("{:<9} found no schedule", strategy.name()),
        }
    }

    // The optimal period is also available without extracting a schedule:
    let p = Herad::new().optimal_period(&chain, resources).unwrap();
    println!("\noptimal period (HeRAD): {p} = {:.1} µs", p.to_f64());
}
