//! Load generator for the `amp-service` scheduling engine.
//!
//! Drives ≥100k synthetic [`ScheduleRequest`]s (paper-shaped chains from
//! `amp-workload`, Table I resource pools) through a running [`Engine`]
//! with a separate collector thread, then verifies the service contract —
//! every accepted request got exactly one response, none lost, none
//! duplicated — and prints throughput, latency quantiles and the cache
//! hit-rate.
//!
//! Usage: `cargo run --release --example service_loadgen -- [REQUESTS] [DISTINCT] [--seed SEED]`
//!
//! * `REQUESTS` — total requests to submit (default 100 000).
//! * `DISTINCT` — distinct scheduling instances to cycle through
//!   (default 256; smaller → hotter cache).
//! * `--seed SEED` — base seed for the generated instances (default
//!   0xA5 = 165, the historical value, so runs stay reproducible).

use std::thread;
use std::time::Instant;

use amp_core::Resources;
use amp_service::{Engine, EngineConfig, Policy, ScheduleRequest, ScheduleResponse};
use amp_workload::{table1_resources, SyntheticConfig, PAPER_STATELESS_RATIOS};
use crossbeam::channel;

fn main() {
    let mut positional: Vec<String> = Vec::new();
    let mut seed: u64 = 0xA5;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--seed" {
            let value = args.next().expect("--seed needs a value");
            seed = value.parse().expect("SEED must be a number");
        } else {
            positional.push(arg);
        }
    }
    let total: u64 = positional
        .first()
        .map_or(100_000, |a| a.parse().expect("REQUESTS must be a number"));
    let distinct: usize = positional
        .get(1)
        .map_or(256, |a| a.parse().expect("DISTINCT must be a number"));

    // A fixed pool of distinct instances: paper-shaped chains across the
    // three stateless ratios, cycled over the Table I resource pools.
    let resources: [Resources; 3] = table1_resources();
    let mut instances: Vec<ScheduleRequest> = Vec::with_capacity(distinct);
    for i in 0..distinct {
        let sr = PAPER_STATELESS_RATIOS[i % PAPER_STATELESS_RATIOS.len()];
        let chain = SyntheticConfig::paper(sr)
            .generate_batch(seed + i as u64, 1)
            .remove(0);
        let res = resources[i % resources.len()];
        let policy = match i % 4 {
            0 => Policy::Strategy("FERTAC".to_string()),
            1 => Policy::Strategy("HeRAD".to_string()),
            _ => Policy::Portfolio,
        };
        let mut req = ScheduleRequest::from_chain(0, &chain, res, policy);
        if i % 8 == 7 {
            // A slice of tight-deadline portfolio requests exercises the
            // truncation path; truncated answers are valid, just uncached.
            req.deadline_us = Some(200);
        }
        instances.push(req);
    }

    let engine = Engine::start(EngineConfig::default());
    let (reply_tx, reply_rx) = channel::unbounded::<ScheduleResponse>();

    // Collector: checks off every response id exactly once.
    let collector = thread::spawn(move || {
        let mut seen = vec![false; total as usize];
        let mut received: u64 = 0;
        let mut errors: u64 = 0;
        for resp in reply_rx.iter() {
            let id = resp.id as usize;
            assert!(id < seen.len(), "response for unknown id {id}");
            assert!(!seen[id], "duplicate response for id {id}");
            seen[id] = true;
            received += 1;
            if resp.result.is_err() {
                errors += 1;
            }
        }
        (received, errors, seen)
    });

    let started = Instant::now();
    let mut overloaded_retries: u64 = 0;
    for id in 0..total {
        let mut req = instances[(id as usize) % distinct].clone();
        req.id = id;
        // Prefer the non-blocking path; on backpressure fall back to the
        // blocking one so no request is lost.
        match engine.try_submit(req, reply_tx.clone()) {
            Ok(()) => {}
            Err(amp_service::ServiceError::Overloaded) => {
                overloaded_retries += 1;
                let mut req = instances[(id as usize) % distinct].clone();
                req.id = id;
                engine
                    .submit(req, reply_tx.clone())
                    .expect("engine accepts blocking submits while running");
            }
            Err(e) => panic!("unexpected submit failure: {e}"),
        }
    }
    drop(reply_tx);

    // Drain everything in flight, then stop the workers.
    let metrics = loop {
        let m = engine.metrics();
        if m.responses >= total {
            break m;
        }
        thread::yield_now();
    };
    let elapsed = started.elapsed();
    let cache = engine.cache_stats();
    let status = engine.status_json();
    engine.shutdown();

    let (received, errors, seen) = collector.join().expect("collector thread");
    let missing = seen.iter().filter(|&&s| !s).count();
    assert_eq!(received, total, "lost {missing} responses");
    assert_eq!(missing, 0);

    println!("service_loadgen: contract held — {received} requests, {received} responses, 0 lost, 0 duplicated");
    println!(
        "  throughput     : {:.0} req/s ({} requests in {:.3} s)",
        total as f64 / elapsed.as_secs_f64(),
        total,
        elapsed.as_secs_f64()
    );
    println!(
        "  latency        : p50 ≤ {:.1} µs, p99 ≤ {:.1} µs",
        metrics.latency_quantile_ns(0.50) as f64 / 1e3,
        metrics.latency_quantile_ns(0.99) as f64 / 1e3
    );
    println!(
        "  cache          : {:.1}% hit rate ({} hits / {} lookups), {} entries, {} evictions",
        cache.hit_rate() * 100.0,
        cache.hits,
        cache.hits + cache.misses,
        cache.entries,
        cache.evictions
    );
    println!(
        "  portfolio      : {} complete, {} deadline-truncated",
        metrics.portfolio_complete, metrics.portfolio_truncated
    );
    println!("  errors         : {errors} (typed responses, not losses)");
    println!("  backpressure   : {overloaded_retries} overloaded retries");
    println!("  status json    : {status}");
}
