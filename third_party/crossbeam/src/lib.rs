//! Offline shim for `crossbeam`: the `channel` and `thread::scope` APIs
//! the workspace uses, implemented over `std::sync`.
//!
//! Semantics the workspace relies on (pinned by the tests below):
//!
//! * channels are MPMC — both [`channel::Sender`] and [`channel::Receiver`]
//!   clone, and every message is delivered to exactly one receiver;
//! * `recv` keeps draining buffered messages after the last sender drops
//!   and only reports disconnect once the queue is empty (the service
//!   engine's drain-then-join shutdown depends on this);
//! * dropping the last receiver fails subsequent sends with the message
//!   handed back;
//! * [`thread::scope`] joins every spawned thread before returning and
//!   surfaces spawned-thread panics as `Err`, not an unwind.

pub mod channel;
pub mod thread;
