//! Scoped threads with crossbeam's API shape, over `std::thread::scope`.
//!
//! Differences from `std` that callers rely on: the closure receives a
//! `&Scope` wrapper, `spawn` takes a zero-argument closure, and a panic in
//! any spawned thread is returned as `Err` from [`scope`] instead of
//! unwinding through the caller.

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Handle for spawning threads tied to the enclosing [`scope`] call.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread; it is joined before [`scope`] returns.
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce() -> T + Send + 'scope,
        T: Send + 'scope,
    {
        self.inner.spawn(f)
    }
}

/// Runs `f` with a [`Scope`], joins every spawned thread, and returns
/// `Err` with the panic payload if the closure or any spawned thread
/// panicked.
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    catch_unwind(AssertUnwindSafe(|| {
        std::thread::scope(|s| {
            let wrapper = Scope { inner: s };
            f(&wrapper)
        })
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn scoped_threads_borrow_and_join() {
        let total = AtomicU64::new(0);
        let data = [1u64, 2, 3, 4];
        let result = scope(|s| {
            for &x in &data {
                let total = &total;
                s.spawn(move || {
                    total.fetch_add(x, Ordering::Relaxed);
                });
            }
            7
        });
        assert_eq!(result.unwrap(), 7);
        assert_eq!(total.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn spawned_panic_is_an_err_not_an_unwind() {
        let result = scope(|s| {
            s.spawn(|| panic!("boom"));
        });
        assert!(result.is_err());
    }
}
