//! MPMC channels with crossbeam's API shape: `bounded` / `unbounded`
//! constructors, cloneable `Sender`/`Receiver`, disconnect tracking via
//! endpoint counts, and deadline-aware receives.

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Error of a blocking send: every receiver is gone. Carries the
/// undelivered message back.
#[derive(Debug, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// Error of a non-blocking send.
#[derive(Debug, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The bounded queue is at capacity; the message is handed back.
    Full(T),
    /// Every receiver is gone; the message is handed back.
    Disconnected(T),
}

/// Error of a blocking receive: the queue is empty and every sender is
/// gone.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecvError;

/// Error of a deadline-bounded receive.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// The deadline passed with no message available.
    Timeout,
    /// The queue is empty and every sender is gone.
    Disconnected,
}

/// Error of a non-blocking receive.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TryRecvError {
    /// The queue is currently empty (senders still connected).
    Empty,
    /// The queue is empty and every sender is gone.
    Disconnected,
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sending on a disconnected channel")
    }
}

struct Inner<T> {
    queue: Mutex<VecDeque<T>>,
    /// `None` = unbounded.
    capacity: Option<usize>,
    senders: AtomicUsize,
    receivers: AtomicUsize,
    not_empty: Condvar,
    not_full: Condvar,
}

impl<T> Inner<T> {
    fn new(capacity: Option<usize>) -> Arc<Self> {
        Arc::new(Inner {
            queue: Mutex::new(VecDeque::new()),
            capacity,
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        })
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
        self.queue
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// The sending half of a channel. Cloneable; the channel disconnects for
/// receivers once every clone drops.
pub struct Sender<T> {
    inner: Arc<Inner<T>>,
}

/// The receiving half of a channel. Cloneable; each message is delivered
/// to exactly one receiver.
pub struct Receiver<T> {
    inner: Arc<Inner<T>>,
}

/// A channel buffering at most `cap` messages; sends beyond that block
/// (`send`) or fail (`try_send`). `cap` must be at least 1 — the shim does
/// not implement crossbeam's zero-capacity rendezvous channels.
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    assert!(cap > 0, "shim channels do not support zero capacity");
    let inner = Inner::new(Some(cap));
    (
        Sender {
            inner: Arc::clone(&inner),
        },
        Receiver { inner },
    )
}

/// A channel with no capacity bound: sends never block.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let inner = Inner::new(None);
    (
        Sender {
            inner: Arc::clone(&inner),
        },
        Receiver { inner },
    )
}

impl<T> Sender<T> {
    /// Blocking send: waits for queue space, fails only when every
    /// receiver is gone.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        let mut queue = self.inner.lock();
        loop {
            if self.inner.receivers.load(Ordering::SeqCst) == 0 {
                return Err(SendError(msg));
            }
            match self.inner.capacity {
                Some(cap) if queue.len() >= cap => {
                    queue = self
                        .inner
                        .not_full
                        .wait(queue)
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                }
                _ => break,
            }
        }
        queue.push_back(msg);
        drop(queue);
        self.inner.not_empty.notify_one();
        Ok(())
    }

    /// Non-blocking send: fails with [`TrySendError::Full`] at capacity.
    pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
        let mut queue = self.inner.lock();
        if self.inner.receivers.load(Ordering::SeqCst) == 0 {
            return Err(TrySendError::Disconnected(msg));
        }
        if let Some(cap) = self.inner.capacity {
            if queue.len() >= cap {
                return Err(TrySendError::Full(msg));
            }
        }
        queue.push_back(msg);
        drop(queue);
        self.inner.not_empty.notify_one();
        Ok(())
    }

    /// Messages currently buffered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// `true` when no message is buffered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.inner.senders.fetch_add(1, Ordering::SeqCst);
        Sender {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        if self.inner.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
            // Last sender gone: wake every blocked receiver so it can
            // observe the disconnect (after draining the queue).
            self.inner.not_empty.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Blocking receive: drains buffered messages even after every sender
    /// dropped; reports [`RecvError`] only once empty *and* disconnected.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut queue = self.inner.lock();
        loop {
            if let Some(msg) = queue.pop_front() {
                drop(queue);
                self.inner.not_full.notify_one();
                return Ok(msg);
            }
            if self.inner.senders.load(Ordering::SeqCst) == 0 {
                return Err(RecvError);
            }
            queue = self
                .inner
                .not_empty
                .wait(queue)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut queue = self.inner.lock();
        if let Some(msg) = queue.pop_front() {
            drop(queue);
            self.inner.not_full.notify_one();
            return Ok(msg);
        }
        if self.inner.senders.load(Ordering::SeqCst) == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// Receive bounded by an absolute deadline.
    pub fn recv_deadline(&self, deadline: Instant) -> Result<T, RecvTimeoutError> {
        let mut queue = self.inner.lock();
        loop {
            if let Some(msg) = queue.pop_front() {
                drop(queue);
                self.inner.not_full.notify_one();
                return Ok(msg);
            }
            if self.inner.senders.load(Ordering::SeqCst) == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, _timeout) = self
                .inner
                .not_empty
                .wait_timeout(queue, deadline - now)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            queue = guard;
        }
    }

    /// Receive bounded by a relative timeout.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        self.recv_deadline(Instant::now() + timeout)
    }

    /// A blocking iterator over received messages; ends on disconnect.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter { receiver: self }
    }

    /// A non-blocking iterator over currently buffered messages.
    pub fn try_iter(&self) -> TryIter<'_, T> {
        TryIter { receiver: self }
    }

    /// Messages currently buffered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// `true` when no message is buffered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.inner.receivers.fetch_add(1, Ordering::SeqCst);
        Receiver {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        if self.inner.receivers.fetch_sub(1, Ordering::SeqCst) == 1 {
            // Last receiver gone: wake every blocked sender so it can fail.
            self.inner.not_full.notify_all();
        }
    }
}

impl<'a, T> IntoIterator for &'a Receiver<T> {
    type Item = T;
    type IntoIter = Iter<'a, T>;
    fn into_iter(self) -> Iter<'a, T> {
        self.iter()
    }
}

impl<T> IntoIterator for Receiver<T> {
    type Item = T;
    type IntoIter = IntoIter<T>;
    fn into_iter(self) -> IntoIter<T> {
        IntoIter { receiver: self }
    }
}

/// Blocking borrowing iterator of [`Receiver::iter`].
pub struct Iter<'a, T> {
    receiver: &'a Receiver<T>,
}

impl<T> Iterator for Iter<'_, T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        self.receiver.recv().ok()
    }
}

/// Non-blocking iterator of [`Receiver::try_iter`].
pub struct TryIter<'a, T> {
    receiver: &'a Receiver<T>,
}

impl<T> Iterator for TryIter<'_, T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        self.receiver.try_recv().ok()
    }
}

/// Blocking owning iterator.
pub struct IntoIter<T> {
    receiver: Receiver<T>,
}

impl<T> Iterator for IntoIter<T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        self.receiver.recv().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn bounded_enforces_capacity_and_drains_after_disconnect() {
        let (tx, rx) = bounded::<u32>(2);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        assert_eq!(tx.try_send(3).unwrap_err(), TrySendError::Full(3));
        drop(tx);
        // Buffered messages survive sender disconnect.
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn mpmc_delivers_each_message_exactly_once() {
        let (tx, rx) = unbounded::<u64>();
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let rx = rx.clone();
                thread::spawn(move || rx.iter().sum::<u64>())
            })
            .collect();
        drop(rx);
        for i in 1..=1000u64 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let total: u64 = consumers.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 1000 * 1001 / 2);
    }

    #[test]
    fn send_fails_once_receivers_are_gone() {
        let (tx, rx) = bounded::<u8>(1);
        drop(rx);
        assert_eq!(tx.send(7), Err(SendError(7)));
        assert_eq!(tx.try_send(8).unwrap_err(), TrySendError::Disconnected(8));
    }

    #[test]
    fn blocked_sender_wakes_when_space_frees() {
        let (tx, rx) = bounded::<u8>(1);
        tx.send(1).unwrap();
        let t = {
            let tx = tx.clone();
            thread::spawn(move || tx.send(2))
        };
        assert_eq!(rx.recv(), Ok(1));
        t.join().unwrap().unwrap();
        assert_eq!(rx.recv(), Ok(2));
    }

    #[test]
    fn recv_deadline_times_out_and_disconnects() {
        let (tx, rx) = bounded::<u8>(1);
        let deadline = Instant::now() + Duration::from_millis(20);
        assert_eq!(rx.recv_deadline(deadline), Err(RecvTimeoutError::Timeout));
        drop(tx);
        assert_eq!(
            rx.recv_deadline(Instant::now() + Duration::from_millis(20)),
            Err(RecvTimeoutError::Disconnected)
        );
    }
}
