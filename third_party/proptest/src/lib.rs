//! Offline shim for `proptest`: the `proptest!` macro, `Strategy` with
//! `prop_map`/`prop_filter`, `any`, `Just`, tuple and range strategies, and
//! `collection::vec`, driven by a seeded sampling engine.
//!
//! Differences from the real crate that test authors must keep in mind:
//!
//! - **No shrinking.** A failing case panics with the sampled values in the
//!   assertion message; it is not minimised. The conformance fuzz runner
//!   carries its own shrinker for this reason.
//! - **Rejection is counted.** `prop_filter` / `prop_assume` rejections
//!   consume attempts from a bounded budget (200 per case) and the test
//!   fails if the budget is exhausted, so over-tight filters fail loudly
//!   instead of looping forever.
//! - Case seeds are a pure function of the test name and attempt number,
//!   so failures replay deterministically; `.proptest-regressions` files
//!   are ignored.

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// The engine's PRNG (SplitMix64). One fresh, deterministically seeded
/// instance is created per sampling attempt.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator whose stream is a pure function of `seed`.
    #[must_use]
    pub fn from_seed(seed: u64) -> Self {
        let mut rng = TestRng { state: seed };
        let _ = rng.next_u64();
        rng
    }

    /// The next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform draw from `[0, bound)`; panics if `bound == 0`.
    pub fn below(&mut self, bound: u128) -> u128 {
        assert!(bound > 0, "empty sampling range");
        (u128::from(self.next_u64())) % bound
    }
}

/// FNV-1a of a string; used to derive per-test seed bases.
#[must_use]
pub fn fnv(s: &str) -> u64 {
    let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
    for byte in s.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// A generator of values. `sample` returns `None` when a filter rejected
/// the draw; the engine retries with a fresh seed.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value, or `None` on filter rejection.
    fn sample(&self, rng: &mut TestRng) -> Option<Self::Value>;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Rejects values failing `pred`; `whence` labels the filter in the
    /// exhausted-budget panic.
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            pred,
        }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> Option<O> {
        self.inner.sample(rng).map(&self.f)
    }
}

/// Strategy returned by [`Strategy::prop_filter`].
#[derive(Clone, Debug)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
        let value = self.inner.sample(rng)?;
        if (self.pred)(&value) {
            Some(value)
        } else {
            let _ = self.whence;
            None
        }
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> Option<T> {
        Some(self.0.clone())
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> Option<Self::Value> {
        (**self).sample(rng)
    }
}

macro_rules! impl_uint_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> Option<$t> {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128) - (self.start as u128);
                Some((self.start as u128 + rng.below(span)) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> Option<$t> {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as u128) - (start as u128) + 1;
                Some((start as u128 + rng.below(span)) as $t)
            }
        }
    )*};
}

impl_uint_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> Option<$t> {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                Some((self.start as i128 + rng.below(span) as i128) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> Option<$t> {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128) as u128 + 1;
                Some((start as i128 + rng.below(span) as i128) as $t)
            }
        }
    )*};
}

impl_int_range_strategy!(i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Option<Self::Value> {
                let ($($name,)+) = self;
                Some(($($name.sample(rng)?,)+))
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

/// Types with a canonical whole-domain strategy, used by [`any`].
pub trait Arbitrary: Sized {
    /// One uniform draw from the type's domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy returned by [`any`].
#[derive(Clone, Copy, Debug, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> Option<T> {
        Some(T::arbitrary(rng))
    }
}

/// The canonical whole-domain strategy for `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Inclusive length bounds for [`vec`], convertible from usize ranges
    /// and a fixed usize.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec length range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty vec length range");
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Strategy returned by [`vec`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Option<Vec<S::Value>> {
            let span = (self.size.max - self.size.min) as u128 + 1;
            let len = self.size.min + rng.below(span) as usize;
            let mut out = Vec::with_capacity(len);
            for _ in 0..len {
                out.push(self.element.sample(rng)?);
            }
            Some(out)
        }
    }

    /// Generates `Vec`s of `element` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Per-test configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of accepted samples each test must execute.
    pub cases: u32,
    /// Extra attempts allowed beyond `cases` before filter/assume
    /// rejections fail the test.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    /// A config running `cases` accepted samples per test.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}

/// Formats a sampled value for rejection/failure diagnostics.
pub fn describe<T: fmt::Debug>(value: &T) -> String {
    format!("{value:?}")
}

/// Error half of a test-case body's `Result`. Bodies may `return Ok(())`
/// to end a case early; `prop_assume!` returns `Err(Reject)` to discard
/// the sample without failing the test.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TestCaseError {
    /// The case was discarded by `prop_assume!`.
    Reject,
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// Supports the subset the workspace uses: an optional leading
/// `#![proptest_config(expr)]`, then one or more
/// `fn name(pat in strategy, ...) { body }` items carrying arbitrary
/// attributes (including `#[test]` and doc comments).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        #[allow(clippy::redundant_closure_call)]
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let seed_base = $crate::fnv(stringify!($name));
            let mut done: u32 = 0;
            let mut attempt: u64 = 0;
            while done < config.cases {
                attempt += 1;
                assert!(
                    attempt <= u64::from(config.cases) + u64::from(config.max_global_rejects),
                    "proptest shim: rejection budget exhausted in {} after {} accepted cases",
                    stringify!($name),
                    done
                );
                let mut rng = $crate::TestRng::from_seed(
                    seed_base ^ attempt.wrapping_mul(0x9E37_79B9_7F4A_7C15),
                );
                match ($($crate::Strategy::sample(&($strategy), &mut rng),)+) {
                    ($(Some($pat),)+) => {
                        // The body runs in a closure returning Result so
                        // tests can `return Ok(())` early and prop_assume!
                        // can discard a case via Err(Reject).
                        let outcome: ::core::result::Result<(), $crate::TestCaseError> =
                            (|| {
                                $body
                                ::core::result::Result::Ok(())
                            })();
                        match outcome {
                            Ok(()) => done += 1,
                            Err($crate::TestCaseError::Reject) => {}
                        }
                    }
                    _ => {}
                }
            }
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

/// Asserts a condition inside a proptest case.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a proptest case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a proptest case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Rejects the current case when the condition does not hold; the engine
/// draws a fresh sample (consuming rejection budget).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.

    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just,
        ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        /// Sampled tuples respect their component ranges.
        #[test]
        fn tuples_stay_in_bounds((a, b, flag) in (1u64..=50, 0u8..6, any::<bool>())) {
            prop_assert!((1..=50).contains(&a));
            prop_assert!(b < 6);
            let _ = flag;
        }

        #[test]
        fn map_and_filter_compose(v in prop::collection::vec(1u64..=9, 1..=8)
            .prop_filter("nonempty sum", |v| v.iter().sum::<u64>() > 2)
            .prop_map(|v| (v.iter().sum::<u64>(), v)))
        {
            let (sum, items) = v;
            prop_assert!(sum > 2);
            prop_assert!(!items.is_empty() && items.len() <= 8);
            prop_assert_eq!(sum, items.iter().sum::<u64>());
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        use super::{Strategy, TestRng};
        let strat = (1u64..=1000, 1u64..=1000);
        let a = strat.sample(&mut TestRng::from_seed(99));
        let b = strat.sample(&mut TestRng::from_seed(99));
        assert_eq!(a, b);
    }
}
