//! Offline shim for `serde`: marker traits plus no-op derive macros.
//!
//! The workspace annotates its wire types with
//! `#[derive(Serialize, Deserialize)]` but serializes exclusively through
//! the hand-rolled `amp_core::json` codec, so the traits carry no methods
//! and the derives (see `serde_derive`) expand to nothing.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

/// Marker trait standing in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned {}
