//! Offline shim for `parking_lot`: `Mutex`, `RwLock` and `Condvar` with
//! parking_lot's API (no poisoning, `lock()` returns the guard directly,
//! `Condvar::wait` takes `&mut MutexGuard`), implemented over `std::sync`.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::Duration;

/// A mutex whose `lock` returns the guard directly (no poison result).
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard of [`Mutex::lock`].
///
/// Holds the `std` guard in an `Option` so [`Condvar::wait`] can move it
/// out and back across the underlying wait call; outside that window the
/// slot is always `Some`.
pub struct MutexGuard<'a, T: ?Sized> {
    guard: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// A new unlocked mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning its value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, returning the guard directly.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            guard: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Attempts the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(MutexGuard { guard: Some(guard) }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                guard: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Avoid deadlocking on a held lock (mirrors parking_lot).
        match self.try_lock() {
            Some(guard) => f.debug_tuple("Mutex").field(&&*guard).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard present outside wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("guard present outside wait")
    }
}

/// Condition variable compatible with [`MutexGuard`];
/// `wait(&mut guard)` re-acquires the lock before returning, like
/// parking_lot.
pub struct Condvar {
    inner: std::sync::Condvar,
}

/// Result of [`Condvar::wait_for`]: whether the wait timed out.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// `true` when the wait ended because the timeout elapsed.
    #[must_use]
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

impl Condvar {
    /// A new condition variable.
    #[must_use]
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Atomically releases the guarded lock and waits for a notification,
    /// re-acquiring before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.guard.take().expect("guard present outside wait");
        guard.guard = Some(
            self.inner
                .wait(inner)
                .unwrap_or_else(PoisonError::into_inner),
        );
    }

    /// [`Condvar::wait`] bounded by a timeout.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.guard.take().expect("guard present outside wait");
        let (inner, result) = self
            .inner
            .wait_timeout(inner, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.guard = Some(inner);
        WaitTimeoutResult(result.timed_out())
    }

    /// Wakes one waiting thread.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes every waiting thread.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

/// A reader-writer lock whose `read`/`write` return guards directly.
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// A new unlocked lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires the exclusive write guard.
    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_guard_derefs_and_releases() {
        let m = Mutex::new(5);
        {
            let mut g = m.lock();
            *g += 1;
        }
        assert_eq!(*m.lock(), 6);
    }

    #[test]
    fn condvar_wait_reacquires_the_lock() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let waiter = {
            let pair = Arc::clone(&pair);
            thread::spawn(move || {
                let (lock, cv) = &*pair;
                let mut ready = lock.lock();
                while !*ready {
                    cv.wait(&mut ready);
                }
                *ready
            })
        };
        {
            let (lock, cv) = &*pair;
            *lock.lock() = true;
            cv.notify_all();
        }
        assert!(waiter.join().unwrap());
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_for(&mut g, Duration::from_millis(10));
        assert!(res.timed_out());
    }
}
