//! Offline shim for `rand` 0.8: [`Rng`]/[`SeedableRng`], a [`rngs::StdRng`]
//! built on SplitMix64, and [`seq::SliceRandom::shuffle`].
//!
//! Seeded streams are pure functions of the seed, so seeded workloads are
//! reproducible run-to-run — but they are **not** the real `StdRng`
//! (ChaCha12) streams; never pin generated values against numbers from
//! the real crate.

use std::ops::{Range, RangeInclusive};

/// Core entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Types a range can sample uniformly. Implemented for integer and float
/// `Range` / `RangeInclusive`.
pub trait SampleRange<T> {
    /// Draws one uniform sample; panics on an empty range, like rand.
    fn sample(self, rng: &mut (impl RngCore + ?Sized)) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut (impl RngCore + ?Sized)) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128) - (self.start as u128);
                let offset = (rng.next_u64() as u128) % span;
                (self.start as u128 + offset) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut (impl RngCore + ?Sized)) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u128) - (start as u128) + 1;
                let offset = (rng.next_u64() as u128) % span;
                (start as u128 + offset) as $t
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut (impl RngCore + ?Sized)) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut (impl RngCore + ?Sized)) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_signed_sample_range!(i8, i16, i32, i64, isize);

macro_rules! impl_float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut (impl RngCore + ?Sized)) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut (impl RngCore + ?Sized)) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let unit = (rng.next_u64() >> 11) as $t / ((1u64 << 53) - 1) as $t;
                start + unit * (end - start)
            }
        }
    )*};
}

impl_float_sample_range!(f32, f64);

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Construction of reproducible generators from seed material.
pub trait SeedableRng: Sized {
    /// A generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Named generator types.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard seedable generator: SplitMix64. Fast,
    /// equidistributed over `u64`, and a pure function of the seed.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut rng = StdRng { state: seed };
            // One warm-up step decorrelates small adjacent seeds.
            let _ = rng.next_u64();
            rng
        }
    }

    /// Alias: the shim's small generator is the same SplitMix64.
    pub type SmallRng = StdRng;
}

pub mod seq {
    //! Sequence helpers.

    use super::Rng;

    /// Slice shuffling and choosing, rand-style.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Uniform Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly chosen element, `None` on an empty slice.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_reproducible_and_seed_sensitive() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let va: Vec<u64> = (0..8).map(|_| a.gen_range(0..1_000_000u64)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen_range(0..1_000_000u64)).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.gen_range(0..1_000_000u64)).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3u64..10);
            assert!((3..10).contains(&x));
            let y = rng.gen_range(1u8..=4);
            assert!((1..=4).contains(&y));
            let f = rng.gen_range(0.25f32..0.75);
            assert!((0.25..0.75).contains(&f));
            let g = rng.gen_range(1.0f64..=2.0);
            assert!((1.0..=2.0).contains(&g));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits={hits}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 100-element shuffle should move something");
    }
}
