//! Offline shim for `serde_derive`: the derive macros expand to nothing.
//!
//! The workspace never serializes through serde (the wire format is the
//! hand-rolled `amp_core::json` codec), so deriving `Serialize` /
//! `Deserialize` only needs to parse — no impls are generated.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
