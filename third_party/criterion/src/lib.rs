//! Offline shim for `criterion`: groups, `Bencher::iter`, `BenchmarkId`,
//! `Throughput`, and the `criterion_group!`/`criterion_main!` macros.
//!
//! Measurement is deliberately simple — geometric calibration to a small
//! wall-clock budget, then one timed batch, reported as ns/iter on stdout.
//! There is no statistical analysis, outlier rejection, or HTML report;
//! numbers are indicative, not publishable. The CI perf gate uses its own
//! harness and does not depend on these numbers.

use std::fmt::{self, Display};
use std::hint::black_box as hint_black_box;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimiser identity, re-exported for bench bodies.
pub fn black_box<T>(value: T) -> T {
    hint_black_box(value)
}

/// Expected amount of work per iteration, used to derive a rate line.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Iterations process this many logical elements.
    Elements(u64),
    /// Iterations process this many bytes.
    Bytes(u64),
}

/// A two-part benchmark name: function + parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// An id labelled `function/parameter`.
    pub fn new<S: Into<String>, P: Display>(function: S, parameter: P) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }

    /// An id with only a parameter part.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            function: String::new(),
            parameter: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.function.is_empty() {
            write!(f, "{}", self.parameter)
        } else {
            write!(f, "{}/{}", self.function, self.parameter)
        }
    }
}

/// Runs one benchmark body and records its per-iteration time.
pub struct Bencher {
    budget: Duration,
    ns_per_iter: f64,
}

impl Bencher {
    /// Calibrates an iteration count to the measurement budget, times one
    /// batch, and records the mean ns/iter.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                hint_black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= self.budget || iters >= 1 << 28 {
                self.ns_per_iter = elapsed.as_nanos() as f64 / iters as f64;
                return;
            }
            // Grow fast while cheap, but never overshoot the budget by
            // more than ~4x.
            iters = if elapsed.as_nanos() == 0 {
                iters.saturating_mul(16)
            } else {
                iters.saturating_mul(4)
            };
        }
    }
}

/// A named collection of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    measurement_time: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the nominal sample count. The shim times a single calibrated
    /// batch, so this only scales the measurement budget slightly.
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Sets the wall-clock measurement budget per benchmark.
    pub fn measurement_time(&mut self, time: Duration) -> &mut Self {
        // The real crate spends `time` across many samples; the shim times
        // one batch, so a fraction of the budget gives comparable runtime.
        self.measurement_time = time / 10;
        self
    }

    /// Accepted for API compatibility; the calibration loop is the warm-up.
    pub fn warm_up_time(&mut self, _time: Duration) -> &mut Self {
        self
    }

    /// Sets the per-iteration work estimate used for the rate column.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs `f` as a benchmark named `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        self.criterion
            .run_one(&label, self.measurement_time, self.throughput, &mut f);
        self
    }

    /// Runs `f` with a borrowed input as a benchmark named `id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        self.criterion
            .run_one(&label, self.measurement_time, self.throughput, &mut |b| {
                f(b, input);
            });
        self
    }

    /// Ends the group. (No cross-benchmark analysis in the shim.)
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
pub struct Criterion {
    default_measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_measurement: Duration::from_millis(200),
        }
    }
}

impl Criterion {
    /// Accepted for API compatibility; CLI filters are ignored.
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let measurement_time = self.default_measurement;
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            measurement_time,
            throughput: None,
        }
    }

    /// Runs `f` as a stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let budget = self.default_measurement;
        self.run_one(name, budget, None, &mut f);
        self
    }

    fn run_one(
        &mut self,
        label: &str,
        budget: Duration,
        throughput: Option<Throughput>,
        f: &mut dyn FnMut(&mut Bencher),
    ) {
        let mut bencher = Bencher {
            budget,
            ns_per_iter: 0.0,
        };
        f(&mut bencher);
        let ns = bencher.ns_per_iter;
        let rate = match throughput {
            Some(Throughput::Elements(n)) if ns > 0.0 => {
                format!("  {:>12.0} elem/s", n as f64 / ns * 1e9)
            }
            Some(Throughput::Bytes(n)) if ns > 0.0 => {
                format!("  {:>12.0} B/s", n as f64 / ns * 1e9)
            }
            _ => String::new(),
        };
        println!("bench {label:<56} {ns:>14.1} ns/iter{rate}");
    }
}

/// Bundles benchmark functions into a runner callable by
/// [`criterion_main!`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Under `cargo test --benches` cargo invokes the binary with
            // `--test`; a smoke pass of the groups is the desired behavior
            // there too, so arguments are simply ignored.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_positive_time() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim_selftest");
        group.measurement_time(Duration::from_millis(20));
        let mut observed = 0.0;
        group.bench_function("spin", |b| {
            b.iter(|| (0..100u64).sum::<u64>());
            observed = 1.0;
        });
        group.finish();
        assert!(observed > 0.0);
    }

    #[test]
    fn benchmark_id_formats_both_parts() {
        assert_eq!(BenchmarkId::new("otac", 42).to_string(), "otac/42");
        assert_eq!(BenchmarkId::from_parameter("p").to_string(), "p");
    }
}
