//! Offline shim for `serde_json`.
//!
//! The real crate is unavailable offline; anything that needs actual JSON
//! in this workspace goes through the canonical `amp_core::json` codec.
//! These placeholders only keep legacy call sites compiling — they emit a
//! stub document, not a serialization of their input.

use std::fmt;

/// Error type mirroring `serde_json::Error`.
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde_json shim error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Placeholder for `serde_json::to_string_pretty`: returns a stub document
/// (the shim cannot introspect `value`).
pub fn to_string_pretty<T: ?Sized>(_value: &T) -> Result<String, Error> {
    Ok("{\"serde_json\":\"offline-shim\"}".to_string())
}

/// Placeholder for `serde_json::to_string`, same caveat as
/// [`to_string_pretty`].
pub fn to_string<T: ?Sized>(_value: &T) -> Result<String, Error> {
    to_string_pretty(_value)
}
