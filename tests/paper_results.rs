//! Pins the reproduction of the paper's Table II: scheduling the DVB-S2
//! receiver profile must give the published periods (0.1 µs resolution)
//! and, for HeRAD, the published pipeline decompositions.
//!
//! These are regression tests against the paper itself: if any scheduler
//! change breaks a value here, the reproduction no longer matches.

use amp_core::sched::{Fertac, Herad, Otac, Scheduler, Twocatac};
use amp_core::{Resources, Solution, TaskChain};
use amp_dvbs2::{profiled_chain, Platform};

fn period_units(s: &dyn Scheduler, chain: &TaskChain, r: Resources) -> f64 {
    s.schedule(chain, r)
        .expect("the receiver always schedules")
        .period(chain)
        .to_f64()
}

fn assert_period(s: &dyn Scheduler, chain: &TaskChain, r: Resources, paper_us: f64) {
    let got_us = period_units(s, chain, r) / 10.0;
    assert!(
        (got_us - paper_us).abs() <= 0.11,
        "{} at {r}: period {got_us:.1} µs, paper says {paper_us} µs",
        s.name()
    );
}

#[test]
fn table2_mac_studio_half_cores() {
    // R = (8B, 2L): S1..S5.
    let chain = profiled_chain(Platform::MacStudio);
    let r = Resources::new(8, 2);
    assert_period(&Herad::new(), &chain, r, 1128.7);
    assert_period(&Twocatac::new(), &chain, r, 1154.3);
    assert_period(&Fertac, &chain, r, 1265.6);
    assert_period(&Otac::big(), &chain, r, 1442.9);
    assert_period(&Otac::little(), &chain, r, 11440.0);
}

#[test]
fn table2_mac_studio_all_cores() {
    // R = (16B, 4L): S6..S10 — all strategies except OTAC (L) reach the
    // sequential-task bound 950.6 µs (τ6 Sync Timing).
    let chain = profiled_chain(Platform::MacStudio);
    let r = Resources::new(16, 4);
    assert_period(&Herad::new(), &chain, r, 950.6);
    assert_period(&Twocatac::new(), &chain, r, 950.6);
    assert_period(&Fertac, &chain, r, 950.6);
    assert_period(&Otac::big(), &chain, r, 950.6);
    assert_period(&Otac::little(), &chain, r, 6470.9);
}

#[test]
fn table2_x7ti_half_cores() {
    // R = (3B, 4L): S11..S15.
    let chain = profiled_chain(Platform::X7Ti);
    let r = Resources::new(3, 4);
    assert_period(&Herad::new(), &chain, r, 2722.1);
    assert_period(&Twocatac::new(), &chain, r, 2722.1);
    assert_period(&Fertac, &chain, r, 2867.0);
    assert_period(&Otac::big(), &chain, r, 6209.0);
    assert_period(&Otac::little(), &chain, r, 7490.3);
}

#[test]
fn table2_x7ti_all_cores() {
    // R = (6B, 8L): S16..S20.
    let chain = profiled_chain(Platform::X7Ti);
    let r = Resources::new(6, 8);
    assert_period(&Herad::new(), &chain, r, 1341.9);
    assert_period(&Twocatac::new(), &chain, r, 1341.9);
    assert_period(&Fertac, &chain, r, 1552.3);
    assert_period(&Otac::big(), &chain, r, 2867.0);
    assert_period(&Otac::little(), &chain, r, 3745.1);
}

fn decomposition(s: &dyn Scheduler, platform: Platform, r: Resources) -> Solution {
    s.schedule(&profiled_chain(platform), r).unwrap()
}

#[test]
fn herad_reproduces_published_decompositions() {
    // S1: (5,1B),(1,1B),(9,1B),(1,2B),(2,1L),(1,3B),(4,1L)
    let s1 = decomposition(&Herad::new(), Platform::MacStudio, Resources::new(8, 2));
    assert_eq!(
        s1.decomposition(),
        "(5,1B),(1,1B),(9,1B),(1,2B),(2,1L),(1,3B),(4,1L)"
    );
    // S6: (3,1L),(1,1L),(1,1L),(1,1B),(6,1B),(7,7B),(4,1L)
    let s6 = decomposition(&Herad::new(), Platform::MacStudio, Resources::new(16, 4));
    assert_eq!(
        s6.decomposition(),
        "(3,1L),(1,1L),(1,1L),(1,1B),(6,1B),(7,7B),(4,1L)"
    );
    // S11: (5,1B),(10,1B),(3,1B),(1,3L),(4,1L)
    let s11 = decomposition(&Herad::new(), Platform::X7Ti, Resources::new(3, 4));
    assert_eq!(s11.decomposition(), "(5,1B),(10,1B),(3,1B),(1,3L),(4,1L)");
    // S16: (5,1B),(1,1B),(6,1B),(4,2B),(3,7L),(4,1L)
    let s16 = decomposition(&Herad::new(), Platform::X7Ti, Resources::new(6, 8));
    assert_eq!(
        s16.decomposition(),
        "(5,1B),(1,1B),(6,1B),(4,2B),(3,7L),(4,1L)"
    );
}

#[test]
fn published_core_usage_matches() {
    // Table II core columns for HeRAD: S1 (8,2), S6 (9,4), S11 (3,4),
    // S16 (6,8) — note S16's paper row prints b_used=6 with stage list
    // using 5 big; the (4,2B) stage plus three 1B stages is 5... the paper
    // counts the whole budget; we count stage sums. Check stage sums.
    let s1 = decomposition(&Herad::new(), Platform::MacStudio, Resources::new(8, 2));
    assert_eq!((s1.used_cores().big, s1.used_cores().little), (8, 2));
    let s6 = decomposition(&Herad::new(), Platform::MacStudio, Resources::new(16, 4));
    assert_eq!((s6.used_cores().big, s6.used_cores().little), (9, 4));
    let s11 = decomposition(&Herad::new(), Platform::X7Ti, Resources::new(3, 4));
    assert_eq!((s11.used_cores().big, s11.used_cores().little), (3, 4));
    let s16 = decomposition(&Herad::new(), Platform::X7Ti, Resources::new(6, 8));
    assert_eq!((s16.used_cores().big, s16.used_cores().little), (5, 8));
}

#[test]
fn throughput_conversion_matches_table2_sim_columns() {
    // Sim FPS = interframe / period; Mb/s = FPS x 14232 / 1e6.
    let chain = profiled_chain(Platform::MacStudio);
    let p = Herad::new()
        .schedule(&chain, Resources::new(8, 2))
        .unwrap()
        .period(&chain)
        .to_f64();
    let fps = Platform::MacStudio.fps_for_period_units(p);
    let mbps = Platform::MacStudio.mbps_for_period_units(p);
    assert!((fps - 3544.0).abs() < 2.0, "fps {fps}");
    assert!((mbps - 50.4).abs() < 0.1, "mbps {mbps}");

    let chain = profiled_chain(Platform::X7Ti);
    let p = Otac::big()
        .schedule(&chain, Resources::new(6, 8))
        .unwrap()
        .period(&chain)
        .to_f64();
    let fps = Platform::X7Ti.fps_for_period_units(p);
    assert!((fps - 2790.0).abs() < 3.0, "fps {fps}");
}

/// One row of Table II: strategy name, stage count |s|, used big/little
/// cores, period (µs), simulated FPS, simulated Mb/s, and the published
/// decomposition string.
struct Row {
    strategy: &'static str,
    stages: usize,
    used: (u64, u64),
    period_us: f64,
    sim_fps: f64,
    sim_mbps: f64,
    decomposition: &'static str,
}

/// All twenty Table II rows, pinned: every platform × core-count config
/// for all five strategies, covering not just the period (asserted above)
/// but the full published row — stage count, per-type core usage, the
/// simulated throughput columns and the exact decomposition.
///
/// One deliberate divergence from the printed table: the X7 Ti (6B, 8L)
/// HeRAD row prints b = 6 while its own stage list sums to 5 big cores
/// (the paper counts the allotted budget, we count stage sums), so `used`
/// here is (5, 8).
#[test]
fn table2_full_rows_pin() {
    let configs: [(&str, Platform, Resources, &[Row]); 4] = [
        (
            "S1-S5",
            Platform::MacStudio,
            Resources::new(8, 2),
            &[
                Row {
                    strategy: "HeRAD",
                    stages: 7,
                    used: (8, 2),
                    period_us: 1128.8,
                    sim_fps: 3544.0,
                    sim_mbps: 50.4,
                    decomposition: "(5,1B),(1,1B),(9,1B),(1,2B),(2,1L),(1,3B),(4,1L)",
                },
                Row {
                    strategy: "2CATAC",
                    stages: 5,
                    used: (8, 1),
                    period_us: 1154.3,
                    sim_fps: 3465.0,
                    sim_mbps: 49.3,
                    decomposition: "(5,1B),(3,1B),(7,1B),(4,5B),(4,1L)",
                },
                Row {
                    strategy: "FERTAC",
                    stages: 6,
                    used: (8, 2),
                    period_us: 1265.7,
                    sim_fps: 3160.0,
                    sim_mbps: 45.0,
                    decomposition: "(3,1L),(1,1L),(2,1B),(9,1B),(5,5B),(3,1B)",
                },
                Row {
                    strategy: "OTAC (B)",
                    stages: 5,
                    used: (8, 0),
                    period_us: 1442.9,
                    sim_fps: 2772.0,
                    sim_mbps: 39.5,
                    decomposition: "(5,1B),(4,1B),(6,1B),(4,4B),(4,1B)",
                },
                Row {
                    strategy: "OTAC (L)",
                    stages: 2,
                    used: (0, 2),
                    period_us: 11440.0,
                    sim_fps: 350.0,
                    sim_mbps: 5.0,
                    decomposition: "(16,1L),(7,1L)",
                },
            ],
        ),
        (
            "S6-S10",
            Platform::MacStudio,
            Resources::new(16, 4),
            &[
                Row {
                    strategy: "HeRAD",
                    stages: 7,
                    used: (9, 4),
                    period_us: 950.6,
                    sim_fps: 4208.0,
                    sim_mbps: 59.9,
                    decomposition: "(3,1L),(1,1L),(1,1L),(1,1B),(6,1B),(7,7B),(4,1L)",
                },
                Row {
                    strategy: "2CATAC",
                    stages: 7,
                    used: (9, 4),
                    period_us: 950.6,
                    sim_fps: 4208.0,
                    sim_mbps: 59.9,
                    decomposition: "(3,1L),(1,1L),(1,1L),(1,1B),(9,1B),(5,7B),(3,1L)",
                },
                Row {
                    strategy: "FERTAC",
                    stages: 8,
                    used: (10, 4),
                    period_us: 950.6,
                    sim_fps: 4208.0,
                    sim_mbps: 59.9,
                    decomposition: "(3,1L),(1,1L),(1,1L),(1,1B),(2,1L),(7,1B),(5,7B),(3,1B)",
                },
                Row {
                    strategy: "OTAC (B)",
                    stages: 5,
                    used: (11, 0),
                    period_us: 950.6,
                    sim_fps: 4208.0,
                    sim_mbps: 59.9,
                    decomposition: "(5,1B),(1,1B),(9,1B),(5,7B),(3,1B)",
                },
                Row {
                    strategy: "OTAC (L)",
                    stages: 3,
                    used: (0, 4),
                    period_us: 6470.9,
                    sim_fps: 618.0,
                    sim_mbps: 8.8,
                    decomposition: "(13,1L),(6,2L),(4,1L)",
                },
            ],
        ),
        (
            "S11-S15",
            Platform::X7Ti,
            Resources::new(3, 4),
            &[
                Row {
                    strategy: "HeRAD",
                    stages: 5,
                    used: (3, 4),
                    period_us: 2722.1,
                    sim_fps: 2939.0,
                    sim_mbps: 41.8,
                    decomposition: "(5,1B),(10,1B),(3,1B),(1,3L),(4,1L)",
                },
                Row {
                    strategy: "2CATAC",
                    stages: 5,
                    used: (3, 4),
                    period_us: 2722.1,
                    sim_fps: 2939.0,
                    sim_mbps: 41.8,
                    decomposition: "(8,1B),(7,1B),(3,1B),(1,3L),(4,1L)",
                },
                Row {
                    strategy: "FERTAC",
                    stages: 5,
                    used: (3, 4),
                    period_us: 2867.0,
                    sim_fps: 2790.0,
                    sim_mbps: 39.7,
                    decomposition: "(5,1L),(3,1L),(7,1L),(4,3B),(4,1L)",
                },
                Row {
                    strategy: "OTAC (B)",
                    stages: 3,
                    used: (3, 0),
                    period_us: 6209.0,
                    sim_fps: 1288.0,
                    sim_mbps: 18.3,
                    decomposition: "(18,1B),(1,1B),(4,1B)",
                },
                Row {
                    strategy: "OTAC (L)",
                    stages: 3,
                    used: (0, 4),
                    period_us: 7490.3,
                    sim_fps: 1068.0,
                    sim_mbps: 15.2,
                    decomposition: "(15,1L),(4,2L),(4,1L)",
                },
            ],
        ),
        (
            "S16-S20",
            Platform::X7Ti,
            Resources::new(6, 8),
            &[
                Row {
                    strategy: "HeRAD",
                    stages: 6,
                    used: (5, 8),
                    period_us: 1341.9,
                    sim_fps: 5962.0,
                    sim_mbps: 84.8,
                    decomposition: "(5,1B),(1,1B),(6,1B),(4,2B),(3,7L),(4,1L)",
                },
                Row {
                    strategy: "2CATAC",
                    stages: 6,
                    used: (6, 8),
                    period_us: 1341.9,
                    sim_fps: 5962.0,
                    sim_mbps: 84.8,
                    decomposition: "(5,1B),(1,1B),(9,1B),(3,3B),(2,7L),(3,1L)",
                },
                Row {
                    strategy: "FERTAC",
                    stages: 7,
                    used: (6, 8),
                    period_us: 1552.3,
                    sim_fps: 5154.0,
                    sim_mbps: 73.3,
                    decomposition: "(3,1L),(2,1L),(3,1B),(4,1L),(6,5L),(1,4B),(4,1B)",
                },
                Row {
                    strategy: "OTAC (B)",
                    stages: 4,
                    used: (6, 0),
                    period_us: 2867.0,
                    sim_fps: 2790.0,
                    sim_mbps: 39.7,
                    decomposition: "(8,1B),(7,1B),(4,3B),(4,1B)",
                },
                Row {
                    strategy: "OTAC (L)",
                    stages: 5,
                    used: (0, 8),
                    period_us: 3745.1,
                    sim_fps: 2136.0,
                    sim_mbps: 30.4,
                    decomposition: "(5,1L),(5,1L),(5,1L),(4,4L),(4,1L)",
                },
            ],
        ),
    ];

    for (label, platform, r, rows) in configs {
        let chain = profiled_chain(platform);
        for row in rows {
            let strategy = amp_core::sched::strategy_by_name(row.strategy)
                .unwrap_or_else(|| panic!("{} resolves", row.strategy));
            let solution = strategy
                .schedule(&chain, r)
                .unwrap_or_else(|| panic!("{label} {}: schedules", row.strategy));
            let ctx = format!("{label} {} at {r}", row.strategy);

            assert_eq!(solution.num_stages(), row.stages, "{ctx}: |s|");
            let used = solution.used_cores();
            assert_eq!((used.big, used.little), row.used, "{ctx}: used cores");
            assert_eq!(solution.decomposition(), row.decomposition, "{ctx}");

            let period = solution.period(&chain).to_f64();
            let period_us = period / 10.0;
            assert!(
                (period_us - row.period_us).abs() <= 0.11,
                "{ctx}: period {period_us:.1} µs, paper says {} µs",
                row.period_us
            );
            let fps = platform.fps_for_period_units(period);
            assert!(
                (fps - row.sim_fps).abs() < 2.0,
                "{ctx}: {fps:.0} FPS, paper says {}",
                row.sim_fps
            );
            let mbps = platform.mbps_for_period_units(period);
            assert!(
                (mbps - row.sim_mbps).abs() < 0.1,
                "{ctx}: {mbps:.1} Mb/s, paper says {}",
                row.sim_mbps
            );
        }
    }
}

#[test]
fn strategy_ordering_holds_everywhere() {
    // HeRAD <= 2CATAC <= ... is the paper's quality ordering; 2CATAC and
    // FERTAC have no proven relation but 2CATAC wins on every Table II
    // configuration.
    for (platform, r) in [
        (Platform::MacStudio, Resources::new(8, 2)),
        (Platform::MacStudio, Resources::new(16, 4)),
        (Platform::X7Ti, Resources::new(3, 4)),
        (Platform::X7Ti, Resources::new(6, 8)),
    ] {
        let chain = profiled_chain(platform);
        let herad = period_units(&Herad::new(), &chain, r);
        let two = period_units(&Twocatac::new(), &chain, r);
        let fer = period_units(&Fertac, &chain, r);
        let otac_b = period_units(&Otac::big(), &chain, r);
        assert!(herad <= two + 1e-9);
        assert!(two <= fer + 1e-9);
        assert!(fer <= otac_b + 1e-9, "FERTAC beats OTAC(B) on Table II");
    }
}
