//! Whole-stack integration: profile → schedule → simulate → execute.

use amp_core::sched::{Herad, Scheduler};
use amp_core::{Resources, Task, TaskChain};
use amp_dvbs2::{profiled_chain, receiver_spec, txrx::LinkContext, Platform};
use amp_runtime::{
    profile_chain, PipelineSpec, ProfileConfig, RunConfig, RuntimeTask, VirtualMachine,
    WeightedWork,
};
use amp_sim::{simulate, SimConfig};
use std::sync::Arc;

/// Schedule the paper's receiver, simulate it, and check the measured
/// period matches the analytic one for every strategy and configuration.
#[test]
fn dvbs2_schedules_simulate_to_their_analytic_period() {
    for (platform, r) in [
        (Platform::MacStudio, Resources::new(8, 2)),
        (Platform::X7Ti, Resources::new(6, 8)),
    ] {
        let chain = profiled_chain(platform);
        for strategy in amp_core::sched::paper_strategies() {
            let solution = strategy.schedule(&chain, r).unwrap();
            let expected = solution.period(&chain).to_f64();
            let report = simulate(&chain, &solution, &SimConfig::with_frames(2000));
            let rel = (report.steady_period - expected).abs() / expected;
            assert!(
                rel < 0.01,
                "{} on {:?} {r}: sim {} vs P(S) {expected}",
                strategy.name(),
                platform,
                report.steady_period
            );
        }
    }
}

/// The full measure→schedule→execute workflow on the threaded runtime:
/// profile synthetic work, schedule from the measured chain, run it, and
/// verify every frame is processed exactly once.
#[test]
fn profile_schedule_execute_roundtrip() {
    // A pipeline of spin tasks with known asymmetric costs.
    let spec_tasks: Vec<RuntimeTask<u64>> = vec![
        RuntimeTask::new("ingest", false, WeightedWork::new(150.0, 320.0)),
        RuntimeTask::new("heavy", true, WeightedWork::new(900.0, 2100.0)),
        RuntimeTask::new("emit", false, WeightedWork::new(100.0, 190.0)),
    ];
    // 1. Profile on the virtual cores.
    let measured = profile_chain(
        &spec_tasks,
        |s| s,
        &ProfileConfig {
            frames: 12,
            warmup: 2,
            unit_nanos: 1000,
        },
    );
    assert_eq!(measured.len(), 3);
    for t in measured.tasks() {
        assert!(t.weight_little > t.weight_big, "{t:?}");
    }
    // 2. Schedule from the measurement.
    let resources = Resources::new(2, 2);
    let solution = Herad::new().schedule(&measured, resources).unwrap();
    assert!(solution.validate(&measured).is_ok());
    // 3. Execute.
    let spec = PipelineSpec::new(Arc::new(|s| s), spec_tasks);
    let report = spec
        .run(
            &measured,
            &solution,
            &VirtualMachine::new(resources),
            &RunConfig::with_frames(60),
        )
        .unwrap();
    assert_eq!(report.frames, 60);
}

/// The functional DVB-S2 receiver decodes bit-exactly while running as a
/// scheduled pipeline (replication and adaptors must not corrupt frames).
#[test]
fn scheduled_functional_receiver_is_bit_exact() {
    let platform = Platform::MacStudio;
    let chain = profiled_chain(platform);
    let resources = Resources::new(4, 2);
    let solution = Herad::new().schedule(&chain, resources).unwrap();

    let ctx = Arc::new(LinkContext::reduced());
    // No latency padding: run the functional blocks at full speed.
    let spec = receiver_spec(ctx, 0.05, 7, None);
    let machine = VirtualMachine::new(resources);
    let report = spec
        .run(&chain, &solution, &machine, &RunConfig::with_frames(24))
        .unwrap();
    assert_eq!(report.frames, 24);
}

/// Synthetic chains: scheduling + simulation agree across strategies and
/// resource mixes (sampled grid, deterministic).
#[test]
fn synthetic_grid_simulation_agreement() {
    let chains = amp_workload::SyntheticConfig::paper(0.5).generate_batch(123, 5);
    for chain in &chains {
        for (b, l) in [(4, 4), (8, 2), (2, 8)] {
            let r = Resources::new(b, l);
            let s = Herad::new().schedule(chain, r).unwrap();
            let expected = s.period(chain).to_f64();
            let report = simulate(chain, &s, &SimConfig::with_frames(2000));
            let rel = (report.steady_period - expected).abs() / expected;
            assert!(rel < 0.02, "{r}: {} vs {expected}", report.steady_period);
        }
    }
}

/// A chain the paper's intro motivates: identical tasks, fully replicable
/// — on homogeneous resources, one big replicated stage is optimal
/// (Benoit & Robert); with two core types, HeRAD splits across both.
#[test]
fn fully_replicable_chain_uses_the_whole_machine() {
    let chain = TaskChain::new(
        (0..10)
            .map(|i| Task {
                name: format!("t{i}"),
                weight_big: 100,
                weight_little: 200,
                replicable: true,
            })
            .collect(),
    );
    let r = Resources::new(4, 4);
    let s = Herad::new().schedule(&chain, r).unwrap();
    let used = s.used_cores();
    assert_eq!(used.big, 4);
    assert_eq!(used.little, 4);
    // The continuous bound is 1000 work-units over capacity 6 = 166.7, but
    // tasks are indivisible: the best integral split is 7 tasks on the 4
    // big cores (700/4 = 175) and 3 on the 4 little ones (600/4 = 150).
    let p = s.period(&chain).to_f64();
    assert_eq!(p, 175.0, "period {p}");
    assert!(p >= 1000.0 / 6.0, "never beats the work/capacity bound");
}
