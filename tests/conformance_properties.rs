//! Cross-crate property tests driven by the shared `amp-conformance`
//! generators: the differential, metamorphic and service checks that the
//! `conformance` fuzz runner applies at scale, here wired into `cargo
//! test` through proptest with small bounds.

use amp_conformance::checks::{check_core, check_metamorphic, check_scratch, check_service};
use amp_conformance::gen::{instance_for_seed, instance_strategy, GenConfig};
use amp_conformance::{corpus, shrink};
use amp_core::sched::{optimal_period, paper_strategies, schedule_many, SchedScratch};
use amp_core::{Resources, Solution, TaskChain};
use amp_service::{Engine, EngineConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every scheduler agrees with the exhaustive oracle: optimal period
    /// (and tie-break) for HeRAD, validity + never-below-optimum for the
    /// heuristics, homogeneous-optimality for OTAC.
    #[test]
    fn schedulers_conform_to_the_oracle(inst in instance_strategy(GenConfig::small())) {
        let mismatches = check_core(&inst);
        prop_assert!(mismatches.is_empty(), "{:#?}", mismatches);
    }

    /// Metamorphic properties of the optimal period: weight scaling,
    /// core monotonicity, replicability relaxation.
    #[test]
    fn optimal_period_is_metamorphically_stable(inst in instance_strategy(GenConfig::small())) {
        let mismatches = check_metamorphic(&inst);
        prop_assert!(mismatches.is_empty(), "{:#?}", mismatches);
    }
}

/// The amp-service engine answers bit-identically to direct library
/// calls (one shared engine, seeded instances so the cache check also
/// exercises resubmission).
#[test]
fn service_responses_match_library_calls() {
    let engine = Engine::start(EngineConfig::default());
    let cfg = GenConfig::small();
    for seed in 0..40 {
        let inst = instance_for_seed(seed, &cfg);
        let mismatches = check_service(&engine, &inst);
        assert!(mismatches.is_empty(), "{mismatches:#?}");
    }
    engine.shutdown();
}

/// The checked-in regression corpus replays clean through the library
/// checks, including the scratch/batch hot-path differential.
#[test]
fn regression_corpus_replays_clean() {
    let corpus = corpus::load_dir(&corpus::default_corpus_dir()).expect("corpus loads");
    assert!(corpus.len() >= 8, "corpus lost entries");
    for inst in &corpus {
        let mut mismatches = check_core(inst);
        mismatches.extend(check_metamorphic(inst));
        mismatches.extend(check_scratch(inst));
        assert!(mismatches.is_empty(), "{}: {mismatches:#?}", inst.name);
    }
}

/// 1000 seeded instances per strategy: the scratch-reusing and batched
/// hot paths return bit-identical `Solution`s (stages, assignments,
/// period, used cores all live in the compared struct) to the allocating
/// path, feasibility always agrees with the brute oracle, and HeRAD's
/// period equals the oracle optimum. One scratch per strategy persists
/// across all 1000 instances, so shape changes between seeds are part of
/// what is tested.
#[test]
fn hot_paths_match_allocating_paths_and_oracle_over_1000_seeds() {
    let cfg = GenConfig::small();
    let strategies = paper_strategies();
    let mut scratches: Vec<SchedScratch> = strategies.iter().map(|_| SchedScratch::new()).collect();
    for seed in 0..1000u64 {
        let inst = instance_for_seed(seed, &cfg);
        let chain = inst.chain();
        let resources = inst.resources();
        let oracle = optimal_period(&chain, resources);
        for (strategy, scratch) in strategies.iter().zip(&mut scratches) {
            let name = strategy.name();
            // OTAC only sees one side of the pool; judge its feasibility
            // against the oracle on that homogeneous sub-pool.
            let oracle = match name {
                "OTAC (B)" => optimal_period(&chain, Resources::new(resources.big, 0)),
                "OTAC (L)" => optimal_period(&chain, Resources::new(0, resources.little)),
                _ => oracle,
            };
            let legacy = strategy.schedule(&chain, resources);
            let mut warm = Solution::empty();
            let warm = strategy
                .schedule_into(&chain, resources, scratch, &mut warm)
                .then_some(warm);
            assert_eq!(warm, legacy, "{name}: warm path diverges at seed {seed}");
            let batched = schedule_many(&**strategy, &[(&chain, resources)], 2);
            assert_eq!(
                batched,
                vec![legacy.clone()],
                "{name}: batched path diverges at seed {seed}"
            );
            assert_eq!(
                legacy.is_some(),
                oracle.is_some(),
                "{name}: feasibility disagrees with the oracle at seed {seed}"
            );
            if name == "HeRAD" {
                assert_eq!(
                    legacy.as_ref().map(|s| s.period(&chain)),
                    oracle,
                    "HeRAD misses the oracle optimum at seed {seed}"
                );
            }
        }
    }
}

/// `schedule_many` is worker-count invariant: the same jobs at 1, 2 and 8
/// workers return identical result vectors — same length (no lost or
/// duplicated instances), same order, bit-identical solutions — matching
/// sequential `schedule` calls.
#[test]
fn schedule_many_results_are_worker_count_invariant() {
    let cfg = GenConfig::small();
    let instances: Vec<_> = (0..120u64).map(|s| instance_for_seed(s, &cfg)).collect();
    let chains: Vec<TaskChain> = instances.iter().map(|i| i.chain()).collect();
    let jobs: Vec<(&TaskChain, Resources)> = chains
        .iter()
        .zip(&instances)
        .map(|(c, i)| (c, i.resources()))
        .collect();
    for strategy in paper_strategies() {
        let sequential: Vec<Option<Solution>> =
            jobs.iter().map(|&(c, r)| strategy.schedule(c, r)).collect();
        for workers in [1, 2, 8] {
            let batch = schedule_many(&*strategy, &jobs, workers);
            assert_eq!(
                batch.len(),
                jobs.len(),
                "{}: lost or duplicated jobs at {workers} workers",
                strategy.name()
            );
            assert_eq!(
                batch,
                sequential,
                "{}: results changed at {workers} workers",
                strategy.name()
            );
        }
    }
}

/// The shrinker preserves the failure predicate it is given — shrinking a
/// synthetic "failure" never yields a passing instance.
#[test]
fn shrinker_preserves_failures() {
    let cfg = GenConfig::small();
    for seed in 0..20 {
        let inst = instance_for_seed(seed, &cfg);
        let fails = |i: &amp_conformance::Instance| i.big + i.little >= 1;
        if !fails(&inst) {
            continue;
        }
        let small = shrink(&inst, &fails);
        assert!(fails(&small), "shrunk instance stopped failing: {small}");
        assert!(small.len() <= inst.len());
    }
}
