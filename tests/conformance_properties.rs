//! Cross-crate property tests driven by the shared `amp-conformance`
//! generators: the differential, metamorphic and service checks that the
//! `conformance` fuzz runner applies at scale, here wired into `cargo
//! test` through proptest with small bounds.

use amp_conformance::checks::{check_core, check_metamorphic, check_service};
use amp_conformance::gen::{instance_for_seed, instance_strategy, GenConfig};
use amp_conformance::{corpus, shrink};
use amp_service::{Engine, EngineConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every scheduler agrees with the exhaustive oracle: optimal period
    /// (and tie-break) for HeRAD, validity + never-below-optimum for the
    /// heuristics, homogeneous-optimality for OTAC.
    #[test]
    fn schedulers_conform_to_the_oracle(inst in instance_strategy(GenConfig::small())) {
        let mismatches = check_core(&inst);
        prop_assert!(mismatches.is_empty(), "{:#?}", mismatches);
    }

    /// Metamorphic properties of the optimal period: weight scaling,
    /// core monotonicity, replicability relaxation.
    #[test]
    fn optimal_period_is_metamorphically_stable(inst in instance_strategy(GenConfig::small())) {
        let mismatches = check_metamorphic(&inst);
        prop_assert!(mismatches.is_empty(), "{:#?}", mismatches);
    }
}

/// The amp-service engine answers bit-identically to direct library
/// calls (one shared engine, seeded instances so the cache check also
/// exercises resubmission).
#[test]
fn service_responses_match_library_calls() {
    let engine = Engine::start(EngineConfig::default());
    let cfg = GenConfig::small();
    for seed in 0..40 {
        let inst = instance_for_seed(seed, &cfg);
        let mismatches = check_service(&engine, &inst);
        assert!(mismatches.is_empty(), "{mismatches:#?}");
    }
    engine.shutdown();
}

/// The checked-in regression corpus replays clean through the library
/// checks.
#[test]
fn regression_corpus_replays_clean() {
    let corpus = corpus::load_dir(&corpus::default_corpus_dir()).expect("corpus loads");
    assert!(corpus.len() >= 8, "corpus lost entries");
    for inst in &corpus {
        let mut mismatches = check_core(inst);
        mismatches.extend(check_metamorphic(inst));
        assert!(mismatches.is_empty(), "{}: {mismatches:#?}", inst.name);
    }
}

/// The shrinker preserves the failure predicate it is given — shrinking a
/// synthetic "failure" never yields a passing instance.
#[test]
fn shrinker_preserves_failures() {
    let cfg = GenConfig::small();
    for seed in 0..20 {
        let inst = instance_for_seed(seed, &cfg);
        let fails = |i: &amp_conformance::Instance| i.big + i.little >= 1;
        if !fails(&inst) {
            continue;
        }
        let small = shrink(&inst, &fails);
        assert!(fails(&small), "shrunk instance stopped failing: {small}");
        assert!(small.len() <= inst.len());
    }
}
