//! Property-based cross-validation between the crates: generated
//! workloads, every strategy, simulator agreement, and campaign-level
//! invariants.

use amp_core::sched::{paper_strategies, Herad, Scheduler};
use amp_core::{Resources, Task, TaskChain};
use amp_experiments::{run_campaign, CampaignConfig};
use amp_sim::{simulate, SimConfig};
use proptest::prelude::*;

fn workload() -> impl Strategy<Value = (TaskChain, Resources)> {
    let task =
        (1u64..=100, 1u64..=5, any::<bool>()).prop_map(|(wb, s, rep)| Task::new(wb, wb * s, rep));
    (prop::collection::vec(task, 2..=16), 1u64..=6, 1u64..=6)
        .prop_map(|(t, b, l)| (TaskChain::new(t), Resources::new(b, l)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every strategy's schedule simulates to its own analytic period.
    #[test]
    fn all_strategies_simulate_consistently((chain, res) in workload()) {
        for strategy in paper_strategies() {
            let Some(solution) = strategy.schedule(&chain, res) else { continue };
            prop_assert!(solution.validate(&chain).is_ok(), "{}", strategy.name());
            let expected = solution.period(&chain).to_f64();
            let report = simulate(&chain, &solution, &SimConfig::with_frames(1500));
            let rel = (report.steady_period - expected).abs() / expected;
            prop_assert!(rel < 0.02, "{}: {} vs {}", strategy.name(), report.steady_period, expected);
        }
    }

    /// The simulator's bottleneck-stage report agrees with the analytic
    /// maximum-weight stage.
    #[test]
    fn bottleneck_detection_matches_theory((chain, res) in workload()) {
        let s = Herad::new().schedule(&chain, res).unwrap();
        let report = simulate(&chain, &s, &SimConfig::with_frames(1500));
        let max_weight = s
            .stages()
            .iter()
            .map(|st| st.weight(&chain))
            .max()
            .unwrap();
        let reported = s.stages()[report.bottleneck].weight(&chain);
        // Utilization is measured over a window that includes the pipeline
        // fill, so near-tied stages can swap ranks; the reported bottleneck
        // must still be (nearly) a maximal-weight stage.
        prop_assert!(
            reported.to_f64() >= max_weight.to_f64() * 0.99,
            "reported stage weight {} vs max {}",
            reported,
            max_weight
        );
    }
}

/// Campaign invariants at the full 1000-chain scale (one cell).
#[test]
fn campaign_cell_invariants_at_scale() {
    let config = CampaignConfig::paper(Resources::new(10, 10), 0.5);
    let outcome = run_campaign(&config);
    let summaries: Vec<_> = outcome
        .strategies
        .iter()
        .map(|s| (s.name.clone(), s.summary(), s.core_usage()))
        .collect();

    // HeRAD: 100% optimal by construction.
    assert_eq!(summaries[0].0, "HeRAD");
    assert!((summaries[0].1.optimal_fraction - 1.0).abs() < 1e-12);

    // Paper's quality ordering on averages: HeRAD <= 2CATAC <= FERTAC <=
    // OTAC(B) <= OTAC(L) for R = (10,10).
    let avg: Vec<f64> = summaries.iter().map(|(_, s, _)| s.avg).collect();
    for w in avg.windows(2) {
        assert!(w[0] <= w[1] + 1e-9, "quality ordering violated: {avg:?}");
    }

    // Paper's headline numbers for this cell (Table I, (10,10), SR=0.5):
    // 2CATAC ~89% optimal, FERTAC ~51%, max slowdowns 1.23 / 1.41. Allow
    // generous bands — the RNG differs from the authors'.
    let two = &summaries[1];
    assert!(two.1.optimal_fraction > 0.80, "2CATAC {:?}", two.1);
    assert!(two.1.max < 1.35, "2CATAC {:?}", two.1);
    let fer = &summaries[2];
    assert!(
        (0.35..=0.70).contains(&fer.1.optimal_fraction),
        "FERTAC {:?}",
        fer.1
    );
    assert!(fer.1.max < 1.60, "FERTAC {:?}", fer.1);

    // Core usage: FERTAC uses more little cores than HeRAD on average
    // (greedy little-first), OTACs use one type only.
    let herad_usage = &summaries[0].2;
    assert!(fer.2.little > herad_usage.little);
    assert_eq!(summaries[3].0, "OTAC (B)");
    assert!(summaries[3].2.little == 0.0);
    assert_eq!(summaries[4].0, "OTAC (L)");
    assert!(summaries[4].2.big == 0.0);
}
