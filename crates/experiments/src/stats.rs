//! Small statistics helpers for the evaluation campaigns.

use amp_core::Ratio;

/// Arithmetic mean (0 for an empty slice).
#[must_use]
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Median (0 for an empty slice). Averages the middle pair for even sizes.
#[must_use]
pub fn median(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        (v[n / 2 - 1] + v[n / 2]) / 2.0
    }
}

/// The slowdown ratio `P(other) / P(reference)` as a float (exact rational
/// division evaluated in f64).
#[must_use]
pub fn slowdown_ratio(other: Ratio, reference: Ratio) -> f64 {
    debug_assert!(reference.is_finite() && !reference.is_zero());
    if other.is_infinite() {
        return f64::INFINITY;
    }
    (other.numer() as f64 * reference.denom() as f64)
        / (other.denom() as f64 * reference.numer() as f64)
}

/// The 4-tuple the paper reports per strategy: % of optimal periods and the
/// average / median / maximum slowdown ratios.
#[derive(Clone, Copy, Debug, Default)]
pub struct Summary {
    /// Fraction (0..1) of instances where the slowdown is exactly 1.
    pub optimal_fraction: f64,
    /// Mean slowdown.
    pub avg: f64,
    /// Median slowdown.
    pub med: f64,
    /// Maximum slowdown.
    pub max: f64,
}

impl Summary {
    /// Summarizes a set of slowdown ratios.
    #[must_use]
    pub fn from_slowdowns(slowdowns: &[f64]) -> Summary {
        if slowdowns.is_empty() {
            return Summary::default();
        }
        let optimal = slowdowns.iter().filter(|&&s| s <= 1.0 + 1e-12).count();
        Summary {
            optimal_fraction: optimal as f64 / slowdowns.len() as f64,
            avg: mean(slowdowns),
            med: median(slowdowns),
            max: slowdowns.iter().cloned().fold(f64::MIN, f64::max),
        }
    }

    /// Formats like the paper's Table I cells: `( 99.2%, 1.00, 1.00, 1.14 )`.
    #[must_use]
    pub fn table_cell(&self) -> String {
        format!(
            "({:6.1}%, {:5.2}, {:5.2}, {:6.2})",
            self.optimal_fraction * 100.0,
            self.avg,
            self.med,
            self.max
        )
    }
}

/// Cumulative distribution points `(x, fraction ≤ x)` for plotting the
/// Fig. 1 CDFs; `xs` need not be sorted.
#[must_use]
pub fn cdf_points(xs: &[f64], grid: &[f64]) -> Vec<(f64, f64)> {
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
    grid.iter()
        .map(|&g| {
            let count = sorted.partition_point(|&x| x <= g + 1e-12);
            (g, count as f64 / sorted.len().max(1) as f64)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_median() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median(&[]), 0.0);
    }

    #[test]
    fn slowdowns_are_exact_ratios() {
        let a = Ratio::new(3, 2);
        let b = Ratio::new(1, 2);
        assert!((slowdown_ratio(a, b) - 3.0).abs() < 1e-12);
        assert_eq!(slowdown_ratio(Ratio::INFINITY, b), f64::INFINITY);
    }

    #[test]
    fn summary_matches_hand_computation() {
        let s = Summary::from_slowdowns(&[1.0, 1.0, 1.5, 2.5]);
        assert!((s.optimal_fraction - 0.5).abs() < 1e-12);
        assert!((s.avg - 1.5).abs() < 1e-12);
        assert!((s.med - 1.25).abs() < 1e-12);
        assert!((s.max - 2.5).abs() < 1e-12);
        assert!(s.table_cell().contains("50.0%"));
    }

    #[test]
    fn cdf_is_monotone_and_bounded() {
        let xs = [1.0, 1.1, 1.1, 2.0];
        let grid = [1.0, 1.1, 1.5, 2.0, 3.0];
        let cdf = cdf_points(&xs, &grid);
        assert_eq!(cdf[0].1, 0.25);
        assert_eq!(cdf[1].1, 0.75);
        assert_eq!(cdf[2].1, 0.75);
        assert_eq!(cdf[4].1, 1.0);
        for w in cdf.windows(2) {
            assert!(w[1].1 >= w[0].1);
        }
    }
}
