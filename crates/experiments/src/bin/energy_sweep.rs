//! The energy evaluation the sequel paper adds on top of the base
//! campaign: period×energy Pareto fronts of paper-shaped synthetic
//! chains (20 tasks, weights `[1, 100]`, Table I pools, the three
//! stateless ratios), with how much steady-state power a deployment
//! saves by operating away from the throughput optimum.
//!
//! The run writes a JSON report (default `BENCH_energy.json`) and
//! **exits non-zero** if any built-in gate trips, so CI can use it as a
//! regression tripwire at a scale the conformance oracle cannot reach:
//!
//! * every front must be non-empty, start at HeRAD's optimal period and
//!   trade off strictly (ascending period, descending energy);
//! * relaxing the operating period to twice the optimum must never cost
//!   energy;
//! * the median front build must stay under a generous wall-clock bound
//!   (a catastrophic-regression tripwire, not a benchmark).
//!
//! ```text
//! energy_sweep [--smoke] [--chains N] [--out PATH]
//! ```
//!
//! `--smoke` shrinks the per-cell chain count for CI gating.

use amp_core::sched::{pareto_front, EnergyDp, EnergyScheduler, Herad, Scheduler};
use amp_core::{PowerModel, Ratio, Resources};
use amp_workload::{table1_resources, SyntheticConfig, PAPER_STATELESS_RATIOS};
use std::time::Instant;

const SEED: u64 = 0xE6E; // one RNG stream per cell, offset by cell index
const FRONT_MEDIAN_BOUND_MS: f64 = 5_000.0;

struct CellReport {
    pool: Resources,
    stateless_ratio: f64,
    chains: usize,
    front_len_mean: f64,
    /// Mean % of steady-state power saved by the cheapest operating
    /// point vs operating at the throughput optimum.
    savings_pct_mean: f64,
    /// Mean % saved by merely halving throughput (operating at 2·T*).
    savings_at_2x_pct_mean: f64,
    front_build_ms_median: f64,
    dp_solve_ms_median: f64,
}

fn median(samples: &mut [f64]) -> f64 {
    if samples.is_empty() {
        return f64::NAN;
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaN timings"));
    samples[samples.len() / 2]
}

fn run_cell(
    pool: Resources,
    stateless_ratio: f64,
    chains: usize,
    cell_index: u64,
    failures: &mut Vec<String>,
) -> CellReport {
    let cfg = SyntheticConfig::paper(stateless_ratio);
    let model = PowerModel::typical();
    let power = model.to_milli();
    let mut front_lens = Vec::new();
    let mut savings = Vec::new();
    let mut savings_2x = Vec::new();
    let mut front_ms = Vec::new();
    let mut dp_ms = Vec::new();
    for (i, chain) in cfg
        .generate_batch(SEED + cell_index, chains)
        .iter()
        .enumerate()
    {
        let label = format!(
            "cell ({}B,{}L) sr={stateless_ratio} chain {i}",
            pool.big, pool.little
        );
        let t_opt = Herad::new()
            .schedule(chain, pool)
            .expect("paper pools schedule every synthetic chain")
            .period(chain);
        let t0 = Instant::now();
        let front = pareto_front(chain, pool, &model);
        front_ms.push(t0.elapsed().as_secs_f64() * 1e3);
        if front.is_empty() {
            failures.push(format!("{label}: empty Pareto front"));
            continue;
        }
        if front[0].period != t_opt {
            failures.push(format!(
                "{label}: front starts at {} instead of the optimal period {t_opt}",
                front[0].period
            ));
        }
        for w in front.windows(2) {
            if w[0].period >= w[1].period || w[0].energy_mw <= w[1].energy_mw {
                failures.push(format!("{label}: front is not a strict tradeoff"));
                break;
            }
        }
        let e_opt = front[0].energy_mw.to_f64();
        let e_min = front.last().expect("non-empty").energy_mw.to_f64();
        front_lens.push(front.len() as f64);
        savings.push((e_opt - e_min) / e_opt * 100.0);

        let relaxed = Ratio::new(t_opt.numer() * 2, t_opt.denom());
        let t1 = Instant::now();
        let solved = EnergyDp::new().schedule_energy(chain, pool, &power, relaxed);
        dp_ms.push(t1.elapsed().as_secs_f64() * 1e3);
        match solved {
            Some((_, e_2x)) => {
                if e_2x > front[0].energy_mw {
                    failures.push(format!("{label}: relaxing to 2·T* raised the draw"));
                }
                savings_2x.push((e_opt - e_2x.to_f64()) / e_opt * 100.0);
            }
            None => failures.push(format!("{label}: DP infeasible at 2·T*")),
        }
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    CellReport {
        pool,
        stateless_ratio,
        chains,
        front_len_mean: mean(&front_lens),
        savings_pct_mean: mean(&savings),
        savings_at_2x_pct_mean: mean(&savings_2x),
        front_build_ms_median: median(&mut front_ms),
        dp_solve_ms_median: median(&mut dp_ms),
    }
}

/// Hand-rolled JSON (the workspace pins no JSON crate for binaries):
/// stable key order, two-space indent.
fn render_json(smoke: bool, chains: usize, cells: &[CellReport]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": \"amp-experiments/energy/v1\",\n");
    s.push_str(&format!(
        "  \"config\": {{ \"smoke\": {smoke}, \"chains_per_cell\": {chains}, \"seed\": {SEED}, \"power_model\": \"typical\" }},\n"
    ));
    s.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        s.push_str("    {\n");
        s.push_str(&format!(
            "      \"pool\": {{ \"big\": {}, \"little\": {} }},\n",
            c.pool.big, c.pool.little
        ));
        s.push_str(&format!(
            "      \"stateless_ratio\": {:.1},\n",
            c.stateless_ratio
        ));
        s.push_str(&format!("      \"chains\": {},\n", c.chains));
        s.push_str(&format!(
            "      \"front_len_mean\": {:.2},\n",
            c.front_len_mean
        ));
        s.push_str(&format!(
            "      \"savings_pct_mean\": {:.2},\n",
            c.savings_pct_mean
        ));
        s.push_str(&format!(
            "      \"savings_at_2x_pct_mean\": {:.2},\n",
            c.savings_at_2x_pct_mean
        ));
        s.push_str(&format!(
            "      \"front_build_ms_median\": {:.3},\n",
            c.front_build_ms_median
        ));
        s.push_str(&format!(
            "      \"dp_solve_ms_median\": {:.3}\n",
            c.dp_solve_ms_median
        ));
        s.push_str(if i + 1 == cells.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    s.push_str("  ]\n");
    s.push_str("}\n");
    s
}

fn main() {
    let mut smoke = false;
    let mut chains: Option<usize> = None;
    let mut out_path = String::from("BENCH_energy.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--chains" => {
                chains = Some(args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--chains needs a number");
                    std::process::exit(2);
                }));
            }
            "--out" => {
                out_path = args.next().unwrap_or_else(|| {
                    eprintln!("--out needs a path");
                    std::process::exit(2);
                });
            }
            other => {
                eprintln!(
                    "unknown argument: {other}\nusage: energy_sweep [--smoke] [--chains N] [--out PATH]"
                );
                std::process::exit(2);
            }
        }
    }
    let chains = chains.unwrap_or(if smoke { 4 } else { 25 });

    let mut failures = Vec::new();
    let mut cells = Vec::new();
    let mut cell_index = 0;
    for pool in table1_resources() {
        for sr in PAPER_STATELESS_RATIOS {
            let report = run_cell(pool, sr, chains, cell_index, &mut failures);
            eprintln!(
                "({:>2}B,{:>2}L) sr={:.1}  front {:>5.1} pts  saves {:>5.1}% (at 2xT*: {:>5.1}%)  build {:>8.2} ms",
                report.pool.big,
                report.pool.little,
                report.stateless_ratio,
                report.front_len_mean,
                report.savings_pct_mean,
                report.savings_at_2x_pct_mean,
                report.front_build_ms_median
            );
            cells.push(report);
            cell_index += 1;
        }
    }

    let json = render_json(smoke, chains, &cells);
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    eprintln!("wrote {out_path}");

    let worst_front_ms = cells
        .iter()
        .map(|c| c.front_build_ms_median)
        .fold(0.0f64, f64::max);
    if worst_front_ms > FRONT_MEDIAN_BOUND_MS {
        failures.push(format!(
            "median front build {worst_front_ms:.1} ms exceeds the {FRONT_MEDIAN_BOUND_MS} ms tripwire"
        ));
    }
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
}
