//! Reproduces **Fig. 3**: average strategy execution times (µs) as a
//! function of the number of tasks (20..160), for fixed resources
//! R = (20, 20) (Fig. 3a) and R = (100, 100) (Fig. 3b), per stateless
//! ratio. 2CATAC stops at 60 tasks, as in the paper.
//!
//! Usage: `fig3 [--chains N] [--quick]` — `--quick` drops to 5 chains per
//! point and caps HeRAD on the largest grid so the sweep finishes fast.

use amp_core::Resources;
use amp_experiments::{time_strategies, TimingConfig};
use amp_workload::{fig3_task_counts, PAPER_STATELESS_RATIOS};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let chains = args
        .iter()
        .position(|a| a == "--chains")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse().expect("--chains takes a number"))
        .unwrap_or(if quick { 5 } else { 50 });

    for resources in [Resources::new(20, 20), Resources::new(100, 100)] {
        println!(
            "# Fig 3{}: strategy times, R={resources}, mean of {chains} chains",
            if resources.big == 20 { 'a' } else { 'b' }
        );
        println!("sr,tasks,strategy,mean_us");
        for sr in PAPER_STATELESS_RATIOS {
            for n in fig3_task_counts() {
                let mut config = TimingConfig::paper(n, resources, sr);
                config.chains = chains;
                if quick {
                    config.herad_cell_limit = 160 * 40; // skip HeRAD on the 200-core grid beyond 32 tasks
                }
                for t in time_strategies(&config) {
                    match t.mean_us {
                        Some(us) => println!("{sr},{n},{},{us:.1}", t.name),
                        None => println!("{sr},{n},{},skipped", t.name),
                    }
                }
            }
        }
        println!();
    }
}
