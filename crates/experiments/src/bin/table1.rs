//! Reproduces **Table I**: simulation statistics for all scheduling
//! strategies — per (R, SR) cell, the percentage of optimal periods, the
//! average/median/maximum slowdown ratios vs HeRAD, and the average core
//! usage per type.
//!
//! Usage: `table1 [--chains N] [--json PATH]` (default 1000 chains, as in
//! the paper).

use amp_experiments::{run_campaign, CampaignConfig};
use amp_workload::{table1_resources, PAPER_STATELESS_RATIOS};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let chains = flag_value(&args, "--chains")
        .map(|v| v.parse().expect("--chains takes a number"))
        .unwrap_or(1000);
    let json_path = flag_value(&args, "--json");

    println!("Table I: simulation statistics ({chains} chains of 20 tasks per cell)");
    println!(
        "{:<10} {:<10} {:<6} {:>32} {:>16}",
        "R=(b,l)", "Strategy", "SR", "(%opt, avg, med, max)", "(b_used, l_used)"
    );

    let mut all = Vec::new();
    for resources in table1_resources() {
        for sr in PAPER_STATELESS_RATIOS {
            let mut config = CampaignConfig::paper(resources, sr);
            config.chains = chains;
            let outcome = run_campaign(&config);
            for s in &outcome.strategies {
                let summary = s.summary();
                let usage = s.core_usage();
                println!(
                    "{:<10} {:<10} {:<6.1} {:>32} ({:6.2}, {:6.2})",
                    resources.to_string(),
                    s.name,
                    sr,
                    summary.table_cell(),
                    usage.big,
                    usage.little
                );
            }
            all.push(outcome);
        }
        println!();
    }

    if let Some(path) = json_path {
        let json = serde_json::to_string_pretty(&all).expect("serializable outcome");
        std::fs::write(path, json).expect("writing the JSON report");
        eprintln!("wrote {path}");
    }
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}
