//! Reproduces **Table II** (and **Fig. 5** with `--fig5`): the DVB-S2
//! receiver schedules per platform and core budget — pipeline
//! decomposition, cores used, expected period, and throughput (frames/s
//! and information Mb/s).
//!
//! Columns:
//! * `Sim.` — the analytic expectation `interframe / P(S)` (the paper's
//!   "Sim." column, which it derives from the same period model);
//! * `Real` — the discrete-event simulation of the schedule with
//!   per-task latency noise and bounded adaptors, the stand-in for the
//!   paper's StreamPU-on-hardware measurement (this host has one CPU, so
//!   wall-clock parallel execution cannot be measured; see DESIGN.md).

use amp_core::sched::paper_strategies;
use amp_dvbs2::{profile::WEIGHT_UNIT_US, profiled_chain, table2_configs};
use amp_sim::{simulate, SimConfig};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let fig5 = args.iter().any(|a| a == "--fig5");
    let noise = args
        .iter()
        .position(|a| a == "--noise")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse().expect("--noise takes a fraction"))
        .unwrap_or(0.30);
    let capacity = args
        .iter()
        .position(|a| a == "--capacity")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse().expect("--capacity takes a frame count"))
        .unwrap_or(2);

    println!("Table II: DVB-S2 receiver schedules (K = 14232 info bits/frame)");
    println!(
        "{:<11} {:<8} {:<9} {:>3} {:>3} {:>3} {:>11} {:>9} {:>9} {:>8} {:>8} {:>6} | Decomposition",
        "Platform",
        "R=(b,l)",
        "Strategy",
        "|s|",
        "b",
        "l",
        "Period(us)",
        "SimFPS",
        "RealFPS",
        "SimMb/s",
        "RealMb/s",
        "Ratio"
    );

    let mut fig5_rows: Vec<(String, String, String, f64)> = Vec::new();
    for cfg in table2_configs() {
        let chain = profiled_chain(cfg.platform);
        for strategy in paper_strategies() {
            let Some(solution) = strategy.schedule(&chain, cfg.resources) else {
                println!(
                    "{:<11} {:<8} {:<9} no solution",
                    cfg.platform.name(),
                    cfg.resources.to_string(),
                    strategy.name()
                );
                continue;
            };
            let period_units = solution.period(&chain).to_f64();
            let period_us = period_units * WEIGHT_UNIT_US;
            let sim_fps = cfg.platform.fps_for_period_units(period_units);
            let sim_mbps = cfg.platform.mbps_for_period_units(period_units);

            // "Real": event simulation with latency noise + back-pressure.
            let report = simulate(
                &chain,
                &solution,
                // The paper's "Real" column measures StreamPU on hardware;
                // its 4-19% gap to the expected throughput comes from
                // latency jitter interacting with bounded adaptors. The
                // stand-in: 30% uniform jitter with 2-frame buffers.
                &SimConfig {
                    frames: 3000,
                    queue_capacity: capacity,
                    warmup_fraction: 0.2,
                    noise: Some(noise),
                    seed: 0xD0B5,
                },
            );
            let real_fps = cfg.platform.fps_for_period_units(report.steady_period);
            let real_mbps = cfg.platform.mbps_for_period_units(report.steady_period);
            let used = solution.used_cores();
            let ratio = (sim_mbps - real_mbps) / sim_mbps * 100.0;
            println!(
                "{:<11} {:<8} {:<9} {:>3} {:>3} {:>3} {:>11.1} {:>9.0} {:>9.0} {:>8.1} {:>8.1} {:>+5.0}% | {}",
                cfg.platform.name(),
                cfg.resources.to_string(),
                strategy.name(),
                solution.num_stages(),
                used.big,
                used.little,
                period_us,
                sim_fps,
                real_fps,
                sim_mbps,
                real_mbps,
                ratio,
                solution.decomposition()
            );
            fig5_rows.push((
                cfg.platform.name().to_string(),
                cfg.resources.to_string(),
                strategy.name().to_string(),
                real_mbps,
            ));
        }
        println!();
    }

    if fig5 {
        println!("# Fig 5: achieved information throughput (Mb/s)");
        println!("platform,resources,strategy,mbps");
        for (p, r, s, m) in fig5_rows {
            println!("{p},{r},{s},{m:.1}");
        }
    }
}
