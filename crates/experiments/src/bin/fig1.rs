//! Reproduces **Fig. 1**: cumulative distributions of slowdown ratios
//! (vs HeRAD) per strategy.
//!
//! * default / `--zoom`: Fig. 1a — the slowdown interval [1, 1.5] for all
//!   three resource pairs and all three stateless ratios;
//! * `--full`: Fig. 1b — the full slowdown range for R = (10, 10).
//!
//! Emits one CSV block per (R, SR) panel: `slowdown,<one column per
//! strategy>` with cumulative fractions.

use amp_experiments::{cdf_points, run_campaign, CampaignConfig};
use amp_workload::{table1_resources, PAPER_STATELESS_RATIOS};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let full = args.iter().any(|a| a == "--full");
    let chains = args
        .iter()
        .position(|a| a == "--chains")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse().expect("--chains takes a number"))
        .unwrap_or(1000);

    let resource_sets = if full {
        vec![amp_core::Resources::new(10, 10)]
    } else {
        table1_resources().to_vec()
    };

    for resources in resource_sets {
        for sr in PAPER_STATELESS_RATIOS {
            let mut config = CampaignConfig::paper(resources, sr);
            config.chains = chains;
            let outcome = run_campaign(&config);

            // Build the grid: zoomed [1, 1.5] at 0.01 steps, or the full
            // observed range at 201 points.
            let grid: Vec<f64> = if full {
                let max = outcome
                    .strategies
                    .iter()
                    .flat_map(|s| s.slowdowns.iter().cloned())
                    .filter(|x| x.is_finite())
                    .fold(1.0f64, f64::max);
                (0..=200)
                    .map(|i| 1.0 + (max - 1.0) * i as f64 / 200.0)
                    .collect()
            } else {
                (0..=50).map(|i| 1.0 + 0.01 * i as f64).collect()
            };

            println!(
                "# Fig 1{} panel R={} SR={}",
                if full { "b" } else { "a" },
                resources,
                sr
            );
            let names: Vec<&str> = outcome.strategies.iter().map(|s| s.name.as_str()).collect();
            println!("slowdown,{}", names.join(","));
            let cdfs: Vec<Vec<(f64, f64)>> = outcome
                .strategies
                .iter()
                .map(|s| cdf_points(&s.slowdowns, &grid))
                .collect();
            for (gi, &g) in grid.iter().enumerate() {
                let row: Vec<String> = cdfs.iter().map(|c| format!("{:.4}", c[gi].1)).collect();
                println!("{g:.3},{}", row.join(","));
            }
            println!();
        }
    }
}
