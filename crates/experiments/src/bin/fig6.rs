//! Reproduces **Fig. 6**: the qualitative summary of the strategies —
//! schedule quality (average slowdown vs HeRAD across the Table I
//! campaign), execution-time class, and the average distance between
//! achieved and best-possible throughput in the DVB-S2 experiment.
//!
//! Usage: `fig6 [--chains N]` (default 200 chains per cell for a quick
//! but representative aggregate; use 1000 for the paper's exact shape).

use amp_core::sched::paper_strategies;
use amp_dvbs2::{profiled_chain, table2_configs};
use amp_experiments::{mean, run_campaign, CampaignConfig};
use amp_sim::{simulate, SimConfig};
use amp_workload::{table1_resources, PAPER_STATELESS_RATIOS};
use std::collections::BTreeMap;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let chains = args
        .iter()
        .position(|a| a == "--chains")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse().expect("--chains takes a number"))
        .unwrap_or(200);

    // Schedule quality: mean slowdown across the whole simulation campaign.
    let mut slowdowns: BTreeMap<String, Vec<f64>> = BTreeMap::new();
    for resources in table1_resources() {
        for sr in PAPER_STATELESS_RATIOS {
            let mut config = CampaignConfig::paper(resources, sr);
            config.chains = chains;
            let outcome = run_campaign(&config);
            for s in &outcome.strategies {
                slowdowns
                    .entry(s.name.clone())
                    .or_default()
                    .extend(s.slowdowns.iter().filter(|x| x.is_finite()));
            }
        }
    }

    // Real-world distance to the best theoretical throughput: per Table II
    // config, "measured" (noisy simulation) vs HeRAD's expected period.
    let mut distance: BTreeMap<String, Vec<f64>> = BTreeMap::new();
    for cfg in table2_configs() {
        let chain = profiled_chain(cfg.platform);
        let best_expected = paper_strategies()[0]
            .schedule(&chain, cfg.resources)
            .expect("HeRAD schedules the receiver")
            .period(&chain)
            .to_f64();
        for strategy in paper_strategies() {
            if let Some(solution) = strategy.schedule(&chain, cfg.resources) {
                let report = simulate(
                    &chain,
                    &solution,
                    &SimConfig {
                        frames: 2000,
                        noise: Some(0.08),
                        seed: 0xF166,
                        ..SimConfig::default()
                    },
                );
                // distance = 1 - achieved/best (throughput ratio)
                let d = 1.0 - best_expected / report.steady_period;
                distance
                    .entry(strategy.name().to_string())
                    .or_default()
                    .push(d * 100.0);
            }
        }
    }

    println!("Fig 6: advantages and limitations of the strategies");
    println!(
        "{:<10} {:>18} {:>16} {:>26}",
        "Strategy", "Avg slowdown", "Exec time class", "Avg diff to best thpt (%)"
    );
    let classes: BTreeMap<&str, &str> = BTreeMap::from([
        ("HeRAD", "ms -> s (n^2 DP)"),
        ("2CATAC", "us -> s (exp.)"),
        ("FERTAC", "~10-100 us"),
        ("OTAC (B)", "~10-100 us"),
        ("OTAC (L)", "~10-100 us"),
    ]);
    for strategy in paper_strategies() {
        let name = strategy.name();
        let q = slowdowns.get(name).map(|v| mean(v)).unwrap_or(f64::NAN);
        let d = distance.get(name).map(|v| mean(v)).unwrap_or(f64::NAN);
        println!(
            "{:<10} {:>18.3} {:>16} {:>25.1}%",
            name,
            q,
            classes.get(name).unwrap_or(&"-"),
            d
        );
    }
}
