//! Reproduces **Fig. 4**: average strategy execution times (µs) as a
//! function of the resources R = (20i, 20i), i in 1..8, for fixed numbers
//! of tasks (40 for Fig. 4a's style panel, matching the paper's fixed-task
//! sweep), per stateless ratio.
//!
//! Usage: `fig4 [--chains N] [--tasks N] [--quick]`.

use amp_experiments::{time_strategies, TimingConfig};
use amp_workload::{fig4_resources, PAPER_STATELESS_RATIOS};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let chains = flag(&args, "--chains").unwrap_or(if quick { 5 } else { 50 });
    let tasks = flag(&args, "--tasks").unwrap_or(40);

    println!("# Fig 4: strategy times vs resources, {tasks} tasks, mean of {chains} chains");
    println!("sr,cores_per_type,strategy,mean_us");
    for sr in PAPER_STATELESS_RATIOS {
        for resources in fig4_resources() {
            let mut config = TimingConfig::paper(tasks, resources, sr);
            config.chains = chains;
            if quick && resources.big > 100 {
                config.herad_cell_limit = 0; // skip HeRAD on the largest grids
            }
            for t in time_strategies(&config) {
                match t.mean_us {
                    Some(us) => println!("{sr},{},{},{us:.1}", resources.big, t.name),
                    None => println!("{sr},{},{},skipped", resources.big, t.name),
                }
            }
        }
    }
}

fn flag(args: &[String], name: &str) -> Option<usize> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse().expect("flag takes a number"))
}
