//! Migration-downtime evaluation of the live reconfiguration path: how
//! much sink-visible downtime does an epoch-barrier migration cost,
//! compared to the stop-the-world alternative (drain, tear down, re-solve
//! from scratch, relaunch)?
//!
//! A fixed synthetic chain (8 paced tasks, 90–420 µs big-core weights,
//! ~60 % replicable) runs on a wide pool, migrates live to a shrunken
//! pool and back, and the per-event sink departure gap is compared
//! against the measured gap of a full restart between the same two
//! pools. The deterministic simulator mirrors the same script so the
//! pipeline-only cost (drain + re-fill, no thread work) is reported next
//! to the threaded measurements.
//!
//! The run writes a JSON report (default `BENCH_reconfig.json`) and
//! **exits non-zero** if any gate trips:
//!
//! * every live run must account for every frame (zero lost);
//! * every migration must be observed (two per live run);
//! * the median live migration gap must stay strictly below the median
//!   stop-the-world restart gap.
//!
//! ```text
//! reconfig_sweep [--smoke] [--reps N] [--out PATH]
//! ```

use amp_core::sched::{Herad, Scheduler};
use amp_core::{CoreType, Resources, Solution, Task, TaskChain};
use amp_runtime::{FnWork, PipelineSpec, RunConfig, RuntimeTask, VirtualMachine, WeightedWork};
use amp_sim::{simulate_reconfig, SimConfig};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

// Deliberately small pools: the sweep must stay meaningful on 1-2 vCPU
// CI hosts, where every extra spinning worker adds multi-millisecond
// scheduler queueing noise to the very gaps under measurement.
const POOL_WIDE: Resources = Resources { big: 1, little: 1 };
const POOL_NARROW: Resources = Resources { big: 1, little: 0 };

/// The fixed evaluation chain: weights in microseconds, ~60% replicable.
fn sweep_chain() -> TaskChain {
    TaskChain::new(vec![
        Task::new(120, 260, false),
        Task::new(420, 900, true),
        Task::new(180, 400, true),
        Task::new(90, 200, false),
        Task::new(300, 640, true),
        Task::new(150, 330, true),
        Task::new(240, 520, true),
        Task::new(110, 240, false),
    ])
}

/// Wall clocks of the first and last frame completed by the sink task.
type SinkProbe = Arc<Mutex<(Option<Instant>, Option<Instant>)>>;

fn new_probe() -> SinkProbe {
    Arc::new(Mutex::new((None, None)))
}

/// Pipeline over the chain; the last task records the wall clock of the
/// first and latest frame it completes. Both measurement paths use the
/// same probed spec so the (tiny) per-frame probe cost cancels out.
fn spec_for(chain: &TaskChain, probe: &SinkProbe) -> PipelineSpec<u64> {
    let last = chain.len() - 1;
    let tasks = chain
        .tasks()
        .iter()
        .enumerate()
        .map(|(i, t)| {
            let work = WeightedWork::from_task(t);
            if i == last {
                let probe = probe.clone();
                RuntimeTask::new(
                    &format!("t{i}"),
                    t.replicable,
                    FnWork(move |seq: u64, data: &mut u64, core: CoreType| {
                        amp_runtime::TaskWork::process(&work, seq, data, core);
                        let now = Instant::now();
                        let mut seen = probe.lock().unwrap();
                        seen.0.get_or_insert(now);
                        seen.1 = Some(now);
                    }),
                )
            } else {
                RuntimeTask::new(&format!("t{i}"), t.replicable, work)
            }
        })
        .collect();
    PipelineSpec::new(Arc::new(|seq| seq), tasks)
}

struct LiveRep {
    downtimes_us: Vec<f64>,
    sink_gaps_us: Vec<f64>,
}

/// One live rep: launch wide, migrate to the narrow pool at ~1/3, back to
/// the wide pool at ~2/3, join, and read the measured events.
fn run_live(
    chain: &TaskChain,
    wide_solution: &Solution,
    frames: u64,
    failures: &mut Vec<String>,
) -> Option<LiveRep> {
    let wide = VirtualMachine::new(POOL_WIDE);
    let narrow = VirtualMachine::new(POOL_NARROW);
    let spec = spec_for(chain, &new_probe());
    let live = match spec.launch(chain, wide_solution, &wide, &RunConfig::with_frames(frames)) {
        Ok(live) => live,
        Err(e) => {
            failures.push(format!("live launch failed: {e}"));
            return None;
        }
    };
    for (target, machine, label) in [
        (frames / 3, &narrow, "shrink"),
        (2 * frames / 3, &wide, "grow"),
    ] {
        // Sleep-poll: a busy-wait would steal CPU from the workers on
        // small hosts and skew the live gaps against the live path.
        while live.frames_done() < target {
            std::thread::sleep(Duration::from_micros(500));
        }
        if let Err(e) = live.reconfigure(machine) {
            failures.push(format!("live {label} migration failed: {e}"));
        }
    }
    let report = live.join();
    if report.frames != frames {
        failures.push(format!(
            "live run lost frames: {} of {frames} departed",
            report.frames
        ));
    }
    if report.reconfigs.len() != 2 {
        failures.push(format!(
            "live run recorded {} migration(s), expected 2",
            report.reconfigs.len()
        ));
        return None;
    }
    Some(LiveRep {
        downtimes_us: report.reconfigs.iter().map(|e| e.downtime_us).collect(),
        sink_gaps_us: report.reconfigs.iter().map(|e| e.sink_gap_us).collect(),
    })
}

/// One stop-the-world rep: the same shrink-then-grow script as the live
/// path, but each pool change pays the full restart — drain the old
/// pipeline, join its threads, re-solve the pool from scratch, relaunch
/// and re-fill. The returned gaps use the same definition as
/// [`amp_runtime::ReconfigEvent::sink_gap_us`]: last sink departure of
/// the old pipeline → first sink departure of the new one.
fn run_restart(chain: &TaskChain, frames: u64) -> Vec<f64> {
    let segments = [
        (POOL_WIDE, frames / 3),
        (POOL_NARROW, 2 * frames / 3 - frames / 3),
        (POOL_WIDE, frames - 2 * frames / 3),
    ];
    let mut gaps = Vec::new();
    let mut prev_last: Option<Instant> = None;
    for (pool, seg_frames) in segments {
        // A real restart re-solves after the old pipeline is gone: the
        // solve sits inside the measured gap, as does the launch + fill.
        let solution = Herad::new()
            .schedule(chain, pool)
            .expect("sweep pools schedule the sweep chain");
        let machine = VirtualMachine::new(pool);
        let probe = new_probe();
        let spec = spec_for(chain, &probe);
        let report = spec
            .run(
                chain,
                &solution,
                &machine,
                &RunConfig::with_frames(seg_frames),
            )
            .expect("restart segment");
        assert_eq!(report.frames, seg_frames);
        let (first, last) = *probe.lock().unwrap();
        let first = first.expect("segment produced frames");
        if let Some(prev) = prev_last {
            gaps.push(first.duration_since(prev).as_secs_f64() * 1e6);
        }
        prev_last = Some(last.expect("segment produced frames"));
    }
    gaps
}

fn median(samples: &mut [f64]) -> f64 {
    if samples.is_empty() {
        return f64::NAN;
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaN timings"));
    samples[samples.len() / 2]
}

fn render_list(values: &[f64]) -> String {
    let items: Vec<String> = values.iter().map(|v| format!("{v:.1}")).collect();
    format!("[{}]", items.join(", "))
}

#[allow(clippy::too_many_arguments)]
fn render_json(
    smoke: bool,
    reps: usize,
    frames: u64,
    live_downtime: &[f64],
    live_gap: &[f64],
    live_gap_median: f64,
    restart_gap: &[f64],
    restart_gap_median: f64,
    sim_gaps: &[f64],
    sim_periods: &[f64],
) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": \"amp-experiments/reconfig/v1\",\n");
    s.push_str(&format!(
        "  \"config\": {{ \"smoke\": {smoke}, \"reps\": {reps}, \"frames\": {frames}, \
         \"pool_wide\": {{ \"big\": {}, \"little\": {} }}, \
         \"pool_narrow\": {{ \"big\": {}, \"little\": {} }} }},\n",
        POOL_WIDE.big, POOL_WIDE.little, POOL_NARROW.big, POOL_NARROW.little
    ));
    s.push_str("  \"live\": {\n");
    s.push_str(&format!(
        "    \"downtime_us\": {},\n",
        render_list(live_downtime)
    ));
    s.push_str(&format!(
        "    \"sink_gap_us\": {},\n",
        render_list(live_gap)
    ));
    s.push_str(&format!(
        "    \"sink_gap_us_median\": {live_gap_median:.1}\n"
    ));
    s.push_str("  },\n");
    s.push_str("  \"stop_the_world\": {\n");
    s.push_str(&format!("    \"gap_us\": {},\n", render_list(restart_gap)));
    s.push_str(&format!("    \"gap_us_median\": {restart_gap_median:.1}\n"));
    s.push_str("  },\n");
    s.push_str("  \"sim\": {\n");
    s.push_str(&format!(
        "    \"boundary_gap_units\": {},\n",
        render_list(sim_gaps)
    ));
    s.push_str(&format!(
        "    \"epoch_periods_units\": {}\n",
        render_list(sim_periods)
    ));
    s.push_str("  },\n");
    s.push_str(&format!(
        "  \"gate\": {{ \"live_median_below_restart_median\": {} }}\n",
        live_gap_median < restart_gap_median
    ));
    s.push_str("}\n");
    s
}

fn main() {
    let mut smoke = false;
    let mut reps: Option<usize> = None;
    let mut out_path = String::from("BENCH_reconfig.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--reps" => {
                reps = Some(args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--reps needs a number");
                    std::process::exit(2);
                }));
            }
            "--out" => {
                out_path = args.next().unwrap_or_else(|| {
                    eprintln!("--out needs a path");
                    std::process::exit(2);
                });
            }
            other => {
                eprintln!(
                    "unknown argument: {other}\nusage: reconfig_sweep [--smoke] [--reps N] [--out PATH]"
                );
                std::process::exit(2);
            }
        }
    }
    let reps = reps.unwrap_or(if smoke { 3 } else { 5 });
    let frames: u64 = if smoke { 240 } else { 900 };

    let chain = sweep_chain();
    let wide_solution = Herad::new()
        .schedule(&chain, POOL_WIDE)
        .expect("wide pool schedules the sweep chain");

    let mut failures = Vec::new();
    let mut live_downtime = Vec::new();
    let mut live_gap = Vec::new();
    let mut restart_gap = Vec::new();
    for rep in 0..reps {
        if let Some(live) = run_live(&chain, &wide_solution, frames, &mut failures) {
            eprintln!(
                "rep {rep}: live migration gaps {} µs (controller {} µs)",
                render_list(&live.sink_gaps_us),
                render_list(&live.downtimes_us),
            );
            live_downtime.extend(live.downtimes_us);
            live_gap.extend(live.sink_gaps_us);
        }
        let gaps = run_restart(&chain, frames);
        eprintln!(
            "rep {rep}: stop-the-world restart gaps {} µs",
            render_list(&gaps)
        );
        restart_gap.extend(gaps);
    }
    let live_gap_median = median(&mut live_gap.clone());
    let restart_gap_median = median(&mut restart_gap.clone());

    // Deterministic mirror: same script, same pools, pipeline cost only.
    let narrow_solution = Herad::new()
        .schedule(&chain, POOL_NARROW)
        .expect("narrow pool schedules the sweep chain");
    let sim = simulate_reconfig(
        &chain,
        &wide_solution,
        &[
            (frames / 3, narrow_solution),
            (2 * frames / 3, wide_solution.clone()),
        ],
        &SimConfig::with_frames(frames),
    );
    let sim_gaps: Vec<f64> = sim.boundaries.iter().map(|b| b.sink_gap as f64).collect();
    eprintln!(
        "sim: boundary gaps {} weight-units, epoch periods {}",
        render_list(&sim_gaps),
        render_list(&sim.epoch_periods)
    );

    let json = render_json(
        smoke,
        reps,
        frames,
        &live_downtime,
        &live_gap,
        live_gap_median,
        &restart_gap,
        restart_gap_median,
        &sim_gaps,
        &sim.epoch_periods,
    );
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    eprintln!("wrote {out_path}");
    eprintln!(
        "median live migration gap {live_gap_median:.1} µs vs stop-the-world {restart_gap_median:.1} µs"
    );

    // NaN medians (empty sample sets) must trip the gate too, so the
    // pass condition is the strict comparison itself.
    let gate_passes = live_gap_median < restart_gap_median;
    if !gate_passes {
        failures.push(format!(
            "median live migration gap {live_gap_median:.1} µs is not below the \
             stop-the-world restart gap {restart_gap_median:.1} µs"
        ));
    }
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
}
