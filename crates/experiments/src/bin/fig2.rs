//! Reproduces **Fig. 2**: heatmaps of the core-usage differences between
//! FERTAC and HeRAD for R = (10, 10) and SR = 0.5 — (a) over all results,
//! (b) over the results where FERTAC reaches the optimal period.
//!
//! Each heatmap cell is the percentage of chains with the given
//! (Δ little, Δ big) = (FERTAC − HeRAD) core usage.

use amp_experiments::{run_campaign, CampaignConfig};
use std::collections::BTreeMap;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let chains = args
        .iter()
        .position(|a| a == "--chains")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse().expect("--chains takes a number"))
        .unwrap_or(1000);

    let mut config = CampaignConfig::paper(amp_core::Resources::new(10, 10), 0.5);
    config.chains = chains;
    let outcome = run_campaign(&config);
    let deltas = outcome.fertac_vs_herad_core_deltas();

    print_heatmap("Fig 2a: all results", &deltas, |_| true);
    print_heatmap("Fig 2b: only optimal periods", &deltas, |opt| opt);

    // The headline percentages the paper quotes: at most 1 / 2 extra cores.
    for (label, filter) in [("all", false), ("optimal-period", true)] {
        let subset: Vec<_> = deltas
            .iter()
            .filter(|(_, _, opt)| !filter || *opt)
            .collect();
        let within = |k: i64| {
            subset.iter().filter(|(db, dl, _)| db + dl <= k).count() as f64
                / subset.len().max(1) as f64
                * 100.0
        };
        println!(
            "{label}: at most 1 extra core {:.1}% of the time, at most 2 extra {:.1}%",
            within(1),
            within(2)
        );
    }
}

fn print_heatmap(title: &str, deltas: &[(i64, i64, bool)], keep: impl Fn(bool) -> bool) {
    let mut counts: BTreeMap<(i64, i64), usize> = BTreeMap::new();
    let mut total = 0usize;
    for &(db, dl, opt) in deltas {
        if keep(opt) {
            *counts.entry((db, dl)).or_default() += 1;
            total += 1;
        }
    }
    let (mut min_b, mut max_b, mut min_l, mut max_l) = (0i64, 0i64, 0i64, 0i64);
    for &(db, dl) in counts.keys() {
        min_b = min_b.min(db);
        max_b = max_b.max(db);
        min_l = min_l.min(dl);
        max_l = max_l.max(dl);
    }
    println!("{title} ({total} chains)");
    print!("{:>8}", "Δb \\ Δl");
    for dl in min_l..=max_l {
        print!("{dl:>8}");
    }
    println!();
    for db in min_b..=max_b {
        print!("{db:>8}");
        for dl in min_l..=max_l {
            let pct = *counts.get(&(db, dl)).unwrap_or(&0) as f64 / total.max(1) as f64 * 100.0;
            if pct == 0.0 {
                print!("{:>8}", "-");
            } else {
                print!("{pct:>7.1}%");
            }
        }
        println!();
    }
    println!();
}
