//! Reproduces **Table III**: the DVB-S2 receiver's average task latencies
//! on the two evaluation platforms (embedded from the paper's profile),
//! and — with `--self-check` — a live profile of the functional reduced
//! chain through `amp-runtime`'s profiler, demonstrating the measure →
//! schedule workflow end to end.

use amp_core::CoreType;
use amp_dvbs2::{profile::WEIGHT_UNIT_US, profiled_chain, Platform};

fn main() {
    let args: Vec<String> = std::env::args().collect();

    println!("Table III: DVB-S2 receiver average task latency (µs)");
    println!(
        "{:<4} {:<38} {:<5} {:>9} {:>9} {:>9} {:>9}",
        "Id", "Name", "Rep.", "Mac B", "Mac L", "X7 B", "X7 L"
    );
    let mac = profiled_chain(Platform::MacStudio);
    let x7 = profiled_chain(Platform::X7Ti);
    for i in 0..mac.len() {
        let m = mac.task(i);
        let x = x7.task(i);
        println!(
            "t{:<3} {:<38} {:<5} {:>9.1} {:>9.1} {:>9.1} {:>9.1}",
            i + 1,
            m.name,
            if m.replicable { "yes" } else { "no" },
            m.weight_big as f64 * WEIGHT_UNIT_US,
            m.weight_little as f64 * WEIGHT_UNIT_US,
            x.weight_big as f64 * WEIGHT_UNIT_US,
            x.weight_little as f64 * WEIGHT_UNIT_US,
        );
    }
    println!(
        "{:<4} {:<38} {:<5} {:>9.1} {:>9.1} {:>9.1} {:>9.1}",
        "",
        "Total",
        "",
        mac.total(CoreType::Big) as f64 * WEIGHT_UNIT_US,
        mac.total(CoreType::Little) as f64 * WEIGHT_UNIT_US,
        x7.total(CoreType::Big) as f64 * WEIGHT_UNIT_US,
        x7.total(CoreType::Little) as f64 * WEIGHT_UNIT_US,
    );

    if args.iter().any(|a| a == "--self-check") {
        use amp_dvbs2::{rx::receiver_tasks, txrx::LinkContext};
        use amp_runtime::{profile_chain, ProfileConfig};
        use std::sync::Arc;

        println!();
        println!("Self-check: live profile of the functional reduced chain");
        println!("(padded to the Mac Studio profile at 0.1 µs per weight unit;");
        println!(" measured on this host's virtual cores)");
        let ctx = Arc::new(LinkContext::reduced());
        let tasks = receiver_tasks(&ctx, Some((&mac, WEIGHT_UNIT_US)));
        let measured = profile_chain(
            &tasks,
            |seq| amp_dvbs2::RxFrame {
                seq,
                samples: ctx.tx_through_channel(seq, 0.05, 1),
                ..amp_dvbs2::RxFrame::default()
            },
            &ProfileConfig {
                frames: 8,
                warmup: 2,
                unit_nanos: 1000,
            },
        );
        println!(
            "{:<4} {:<38} {:>12} {:>12}",
            "Id", "Name", "meas. B (µs)", "meas. L (µs)"
        );
        for (i, t) in measured.tasks().iter().enumerate() {
            println!(
                "t{:<3} {:<38} {:>12} {:>12}",
                i + 1,
                t.name,
                t.weight_big,
                t.weight_little
            );
        }
    }
}
