//! Strategy execution-time measurement (Figs. 3 and 4).

use amp_core::sched::{Fertac, Herad, Otac, Scheduler, Twocatac};
use amp_core::Resources;
use amp_workload::SyntheticConfig;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Timing sweep parameters (paper: 50 chains per point).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct TimingConfig {
    /// Chains averaged per point.
    pub chains: usize,
    /// Number of tasks per chain.
    pub num_tasks: usize,
    /// Stateless ratio.
    pub stateless_ratio: f64,
    /// Resource pool.
    pub resources: Resources,
    /// RNG seed.
    pub seed: u64,
    /// Skip 2CATAC beyond this many tasks (the paper stops at 60 because
    /// of its exponential worst case).
    pub twocatac_task_limit: usize,
    /// Skip HeRAD beyond this many tasks x cores (driver-imposed budget;
    /// `usize::MAX` = never skip).
    pub herad_cell_limit: usize,
}

impl TimingConfig {
    /// The paper's measurement shape for a given point.
    #[must_use]
    pub fn paper(num_tasks: usize, resources: Resources, stateless_ratio: f64) -> Self {
        TimingConfig {
            chains: 50,
            num_tasks,
            stateless_ratio,
            resources,
            seed: 0xF16,
            twocatac_task_limit: 60,
            herad_cell_limit: usize::MAX,
        }
    }
}

/// Mean execution time per strategy for one sweep point.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct StrategyTiming {
    /// Strategy name.
    pub name: String,
    /// Mean scheduling time in microseconds (`None` = skipped at this
    /// point).
    pub mean_us: Option<f64>,
}

/// Measures mean scheduling time per strategy at one sweep point.
#[must_use]
pub fn time_strategies(config: &TimingConfig) -> Vec<StrategyTiming> {
    let workload = SyntheticConfig::paper(config.stateless_ratio).with_num_tasks(config.num_tasks);
    let chains = workload.generate_batch(config.seed, config.chains);
    let cells = config.num_tasks * (config.resources.total() as usize);

    let mut out = Vec::new();
    let strategies: Vec<(Box<dyn Scheduler>, bool)> = vec![
        (Box::new(Herad::new()), cells <= config.herad_cell_limit),
        (
            Box::new(Twocatac::new()),
            config.num_tasks <= config.twocatac_task_limit,
        ),
        (Box::new(Fertac), true),
        (Box::new(Otac::big()), true),
        (Box::new(Otac::little()), true),
    ];
    for (strategy, enabled) in &strategies {
        if !enabled {
            out.push(StrategyTiming {
                name: strategy.name().to_string(),
                mean_us: None,
            });
            continue;
        }
        let start = Instant::now();
        for chain in &chains {
            let solution = strategy.schedule(chain, config.resources);
            std::hint::black_box(&solution);
        }
        let mean_us = start.elapsed().as_secs_f64() * 1e6 / chains.len() as f64;
        out.push(StrategyTiming {
            name: strategy.name().to_string(),
            mean_us: Some(mean_us),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_covers_all_strategies() {
        let cfg = TimingConfig {
            chains: 3,
            num_tasks: 10,
            stateless_ratio: 0.5,
            resources: Resources::new(4, 4),
            seed: 1,
            twocatac_task_limit: 60,
            herad_cell_limit: usize::MAX,
        };
        let t = time_strategies(&cfg);
        assert_eq!(t.len(), 5);
        for s in &t {
            assert!(s.mean_us.expect("all enabled") > 0.0, "{}", s.name);
        }
    }

    #[test]
    fn limits_disable_expensive_strategies() {
        let cfg = TimingConfig {
            chains: 2,
            num_tasks: 10,
            stateless_ratio: 0.5,
            resources: Resources::new(2, 2),
            seed: 1,
            twocatac_task_limit: 5,
            herad_cell_limit: 1,
        };
        let t = time_strategies(&cfg);
        assert!(t[0].mean_us.is_none(), "HeRAD should be skipped");
        assert!(t[1].mean_us.is_none(), "2CATAC should be skipped");
        assert!(t[2].mean_us.is_some());
    }
}
