//! The Table I / Fig. 1 / Fig. 2 simulation campaign: schedule batches of
//! synthetic chains with every strategy and collect slowdowns (vs HeRAD)
//! and core usage.

use crate::stats::{slowdown_ratio, Summary};
use amp_core::sched::{paper_strategies, schedule_many_with, SchedScratch};
use amp_core::Resources;
use amp_workload::SyntheticConfig;
use serde::{Deserialize, Serialize};

/// Campaign parameters (defaults mirror the paper: 1000 chains of 20
/// tasks).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct CampaignConfig {
    /// Chains per (resources, SR) combination.
    pub chains: usize,
    /// RNG seed for the workload batch.
    pub seed: u64,
    /// Stateless ratio of the batch.
    pub stateless_ratio: f64,
    /// Resource pool.
    pub resources: Resources,
}

impl CampaignConfig {
    /// The paper's configuration for one (R, SR) cell.
    #[must_use]
    pub fn paper(resources: Resources, stateless_ratio: f64) -> Self {
        CampaignConfig {
            chains: 1000,
            seed: 0x7ab1e1,
            stateless_ratio,
            resources,
        }
    }
}

/// Average core usage of a strategy across a batch.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct CoreUsage {
    /// Mean big cores used.
    pub big: f64,
    /// Mean little cores used.
    pub little: f64,
}

/// Per-strategy campaign outcome.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct StrategyStats {
    /// Strategy display name.
    pub name: String,
    /// Slowdown ratio vs HeRAD per chain (1.0 = optimal).
    pub slowdowns: Vec<f64>,
    /// Core usage per chain `(big, little)`.
    pub cores: Vec<(u64, u64)>,
}

impl StrategyStats {
    /// The paper's 4-tuple for this strategy.
    #[must_use]
    pub fn summary(&self) -> Summary {
        Summary::from_slowdowns(&self.slowdowns)
    }

    /// Mean core usage.
    #[must_use]
    pub fn core_usage(&self) -> CoreUsage {
        if self.cores.is_empty() {
            return CoreUsage::default();
        }
        let n = self.cores.len() as f64;
        CoreUsage {
            big: self.cores.iter().map(|c| c.0 as f64).sum::<f64>() / n,
            little: self.cores.iter().map(|c| c.1 as f64).sum::<f64>() / n,
        }
    }
}

/// Outcome of one (R, SR) sweep: stats per strategy, in
/// [`paper_strategies`] order (HeRAD first).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SweepOutcome {
    /// The configuration that produced this outcome.
    pub config: CampaignConfig,
    /// Stats per strategy.
    pub strategies: Vec<StrategyStats>,
}

impl SweepOutcome {
    /// Paired (HeRAD, FERTAC) core usage differences per chain — the
    /// Fig. 2 heatmap input. Returns `(Δbig, Δlittle, fertac_optimal)`.
    #[must_use]
    pub fn fertac_vs_herad_core_deltas(&self) -> Vec<(i64, i64, bool)> {
        let herad = &self.strategies[0];
        let fertac = self
            .strategies
            .iter()
            .find(|s| s.name == "FERTAC")
            .expect("FERTAC is part of the campaign");
        herad
            .cores
            .iter()
            .zip(&fertac.cores)
            .zip(&fertac.slowdowns)
            .map(|(((hb, hl), (fb, fl)), &s)| {
                (
                    *fb as i64 - *hb as i64,
                    *fl as i64 - *hl as i64,
                    s <= 1.0 + 1e-12,
                )
            })
            .collect()
    }
}

/// Runs the campaign for one (R, SR) cell on the current thread — see
/// [`run_campaign_with_workers`].
#[must_use]
pub fn run_campaign(config: &CampaignConfig) -> SweepOutcome {
    run_campaign_with_workers(config, 1)
}

/// Runs the campaign for one (R, SR) cell: schedules every chain with the
/// five paper strategies and records slowdowns vs HeRAD plus core usage.
///
/// Each strategy's batch goes through [`schedule_many_with`], which fans
/// the chains across `workers` threads; the worker scratches persist
/// across all five strategy batches, so HeRAD's sweep tables (and every
/// strategy's buffers) stay warm from batch to batch. The recorded
/// numbers are bit-identical for every worker count. HeRAD runs first so
/// its periods serve as the slowdown reference for the rest.
///
/// # Panics
/// Panics if HeRAD fails to schedule (impossible with non-empty
/// resources).
#[must_use]
pub fn run_campaign_with_workers(config: &CampaignConfig, workers: usize) -> SweepOutcome {
    let workload = SyntheticConfig::paper(config.stateless_ratio);
    let chains = workload.generate_batch(config.seed, config.chains);
    let strategies = paper_strategies();

    let jobs: Vec<_> = chains.iter().map(|c| (c, config.resources)).collect();
    let mut scratches: Vec<SchedScratch> = (0..workers.max(1).min(jobs.len().max(1)))
        .map(|_| SchedScratch::new())
        .collect();
    let solutions: Vec<_> = strategies
        .iter()
        .map(|s| schedule_many_with(&**s, &jobs, &mut scratches))
        .collect();
    let optimal: Vec<_> = solutions[0]
        .iter()
        .zip(&chains)
        .map(|(s, chain)| {
            s.as_ref()
                .expect("HeRAD always finds a schedule")
                .period(chain)
        })
        .collect();

    let stats = strategies
        .iter()
        .zip(&solutions)
        .map(|(strategy, batch)| {
            let mut st = StrategyStats {
                name: strategy.name().to_string(),
                slowdowns: Vec::with_capacity(chains.len()),
                cores: Vec::with_capacity(chains.len()),
            };
            for ((solution, chain), &opt) in batch.iter().zip(&chains).zip(&optimal) {
                match solution {
                    Some(solution) => {
                        st.slowdowns
                            .push(slowdown_ratio(solution.period(chain), opt));
                        let used = solution.used_cores();
                        st.cores.push((used.big, used.little));
                    }
                    None => {
                        st.slowdowns.push(f64::INFINITY);
                        st.cores.push((0, 0));
                    }
                }
            }
            st
        })
        .collect();
    SweepOutcome {
        config: *config,
        strategies: stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> CampaignConfig {
        CampaignConfig {
            chains: 25,
            seed: 42,
            stateless_ratio: 0.5,
            resources: Resources::new(4, 4),
        }
    }

    #[test]
    fn campaign_produces_consistent_stats() {
        let out = run_campaign(&tiny());
        assert_eq!(out.strategies.len(), 5);
        // HeRAD is its own reference: all slowdowns exactly 1.
        let herad = &out.strategies[0];
        assert_eq!(herad.name, "HeRAD");
        assert!(herad.slowdowns.iter().all(|&s| (s - 1.0).abs() < 1e-12));
        assert!((herad.summary().optimal_fraction - 1.0).abs() < 1e-12);
        // Heuristics are never better than optimal.
        for s in &out.strategies[1..] {
            assert_eq!(s.slowdowns.len(), 25);
            assert!(
                s.slowdowns.iter().all(|&x| x >= 1.0 - 1e-12),
                "{} has sub-optimal slowdown",
                s.name
            );
        }
        // OTAC (B) uses no little cores and vice versa.
        let otac_b = out
            .strategies
            .iter()
            .find(|s| s.name == "OTAC (B)")
            .unwrap();
        assert!(otac_b.cores.iter().all(|&(_, l)| l == 0));
        let otac_l = out
            .strategies
            .iter()
            .find(|s| s.name == "OTAC (L)")
            .unwrap();
        assert!(otac_l.cores.iter().all(|&(b, _)| b == 0));
    }

    #[test]
    fn fertac_deltas_align_with_slowdowns() {
        let out = run_campaign(&tiny());
        let deltas = out.fertac_vs_herad_core_deltas();
        assert_eq!(deltas.len(), 25);
        let fertac = out.strategies.iter().find(|s| s.name == "FERTAC").unwrap();
        for ((_, _, opt), &s) in deltas.iter().zip(&fertac.slowdowns) {
            assert_eq!(*opt, s <= 1.0 + 1e-12);
        }
    }

    #[test]
    fn campaigns_are_reproducible() {
        let a = run_campaign(&tiny());
        let b = run_campaign(&tiny());
        for (x, y) in a.strategies.iter().zip(&b.strategies) {
            assert_eq!(x.slowdowns, y.slowdowns);
            assert_eq!(x.cores, y.cores);
        }
    }

    #[test]
    fn worker_count_does_not_change_the_outcome() {
        let reference = run_campaign(&tiny());
        for workers in [2, 8] {
            let parallel = run_campaign_with_workers(&tiny(), workers);
            for (x, y) in reference.strategies.iter().zip(&parallel.strategies) {
                assert_eq!(x.name, y.name);
                assert_eq!(x.slowdowns, y.slowdowns, "{} at {workers} workers", x.name);
                assert_eq!(x.cores, y.cores, "{} at {workers} workers", x.name);
            }
        }
    }
}
