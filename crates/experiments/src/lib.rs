//! # amp-experiments — regenerating the paper's evaluation
//!
//! One binary per table/figure (see DESIGN.md §4 for the index):
//!
//! | binary   | reproduces |
//! |----------|------------|
//! | `table1` | Table I — simulation statistics (slowdowns, core usage)   |
//! | `fig1`   | Fig. 1 — CDFs of slowdown ratios                          |
//! | `fig2`   | Fig. 2 — FERTAC vs HeRAD core-usage heatmaps              |
//! | `fig3`   | Fig. 3 — strategy times vs number of tasks                |
//! | `fig4`   | Fig. 4 — strategy times vs number of resources            |
//! | `table2` | Table II (+ Fig. 5) — DVB-S2 schedules and throughput     |
//! | `table3` | Table III — the receiver's latency profile                |
//! | `fig6`   | Fig. 6 — qualitative summary of the strategies            |
//!
//! The library half holds the shared campaign machinery so the binaries
//! stay thin and the logic is unit-testable.

pub mod campaign;
pub mod stats;
pub mod timing;

pub use campaign::{
    run_campaign, run_campaign_with_workers, CampaignConfig, CoreUsage, StrategyStats, SweepOutcome,
};
pub use stats::{cdf_points, mean, median, slowdown_ratio, Summary};
pub use timing::{time_strategies, StrategyTiming, TimingConfig};
