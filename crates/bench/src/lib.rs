//! # amp-bench — Criterion benchmarks
//!
//! One benchmark group per paper table/figure (representative points; the
//! full sweeps live in `amp-experiments` binaries):
//!
//! * `fig3/*`, `fig4/*` (`benches/strategy_times.rs`) — scheduling time
//!   per strategy vs task count and resource count;
//! * `table1/*` (`benches/strategy_times.rs`) — scheduling a paper-shaped
//!   synthetic chain on the Table I resource pairs;
//! * `table2/*` (`benches/dvbs2_sched.rs`) — scheduling the DVB-S2
//!   receiver profile on the Table II configurations;
//! * `fig5/*` (`benches/sim_throughput.rs`) — the discrete-event
//!   simulation that produces the achieved-throughput columns;
//! * `table3/*` (`benches/dsp_blocks.rs`) — the functional DVB-S2 blocks
//!   (this crate's own Table III);
//! * `runtime/*` (`benches/runtime_primitives.rs`) — adaptor and spin
//!   primitives of the threaded runtime.

/// Shared workload shapes for the benches.
pub mod fixtures {
    use amp_core::{Resources, TaskChain};
    use amp_workload::SyntheticConfig;

    /// One paper-shaped chain (20 tasks, SR 0.5), deterministic.
    #[must_use]
    pub fn paper_chain() -> TaskChain {
        SyntheticConfig::paper(0.5)
            .generate_batch(0xBE9C4, 1)
            .pop()
            .unwrap()
    }

    /// A chain with `n` tasks (paper weights, SR 0.5), deterministic.
    #[must_use]
    pub fn chain_with(n: usize) -> TaskChain {
        SyntheticConfig::paper(0.5)
            .with_num_tasks(n)
            .generate_batch(0xBE9C4 + n as u64, 1)
            .pop()
            .unwrap()
    }

    /// The Table I resource pairs.
    #[must_use]
    pub fn table1_resources() -> [Resources; 3] {
        amp_workload::table1_resources()
    }
}

#[cfg(test)]
mod tests {
    use super::fixtures;

    #[test]
    fn fixtures_are_deterministic() {
        assert_eq!(
            fixtures::paper_chain().tasks(),
            fixtures::paper_chain().tasks()
        );
        assert_eq!(fixtures::chain_with(40).len(), 40);
    }
}
