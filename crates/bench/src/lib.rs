//! # amp-bench — Criterion benchmarks
//!
//! One benchmark group per paper table/figure (representative points; the
//! full sweeps live in `amp-experiments` binaries):
//!
//! * `fig3/*`, `fig4/*` (`benches/strategy_times.rs`) — scheduling time
//!   per strategy vs task count and resource count;
//! * `table1/*` (`benches/strategy_times.rs`) — scheduling a paper-shaped
//!   synthetic chain on the Table I resource pairs;
//! * `table2/*` (`benches/dvbs2_sched.rs`) — scheduling the DVB-S2
//!   receiver profile on the Table II configurations;
//! * `fig5/*` (`benches/sim_throughput.rs`) — the discrete-event
//!   simulation that produces the achieved-throughput columns;
//! * `table3/*` (`benches/dsp_blocks.rs`) — the functional DVB-S2 blocks
//!   (this crate's own Table III);
//! * `runtime/*` (`benches/runtime_primitives.rs`) — adaptor and spin
//!   primitives of the threaded runtime.

/// A counting global allocator for allocation-regression tests and the
/// `perf` runner.
///
/// The allocator itself only counts; memory management is delegated to
/// [`std::alloc::System`]. Install it in a binary or test crate with
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: amp_bench::alloc_track::TrackingAllocator =
///     amp_bench::alloc_track::TrackingAllocator;
/// ```
///
/// Two counters are kept: a process-wide atomic (what the single-threaded
/// `perf` binary reads) and a per-thread cell (what tests read, so
/// `cargo test`'s parallel threads cannot pollute each other's deltas).
/// The thread-local is const-initialized and accessed through `try_with`,
/// so counting stays safe even for allocations made during thread
/// teardown.
pub mod alloc_track {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::cell::Cell;
    use std::sync::atomic::{AtomicU64, Ordering};

    static GLOBAL_ALLOCS: AtomicU64 = AtomicU64::new(0);

    thread_local! {
        static THREAD_ALLOCS: Cell<u64> = const { Cell::new(0) };
    }

    /// Counts every `alloc`/`realloc`, then delegates to the system
    /// allocator.
    pub struct TrackingAllocator;

    impl TrackingAllocator {
        fn record() {
            GLOBAL_ALLOCS.fetch_add(1, Ordering::Relaxed);
            let _ = THREAD_ALLOCS.try_with(|c| c.set(c.get() + 1));
        }
    }

    unsafe impl GlobalAlloc for TrackingAllocator {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            TrackingAllocator::record();
            System.alloc(layout)
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            System.dealloc(ptr, layout)
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            TrackingAllocator::record();
            System.realloc(ptr, layout, new_size)
        }
    }

    /// Heap allocations (including reallocations) across all threads
    /// since process start. Zero when the tracking allocator is not
    /// installed.
    #[must_use]
    pub fn global_count() -> u64 {
        GLOBAL_ALLOCS.load(Ordering::Relaxed)
    }

    /// Heap allocations made by the calling thread since it started.
    #[must_use]
    pub fn thread_count() -> u64 {
        THREAD_ALLOCS.try_with(Cell::get).unwrap_or(0)
    }

    /// Runs `f` and returns its result together with the number of heap
    /// allocations the *calling thread* performed inside it.
    pub fn count_thread_allocs<T>(f: impl FnOnce() -> T) -> (T, u64) {
        let before = thread_count();
        let result = f();
        (result, thread_count() - before)
    }
}

/// Shared workload shapes for the benches.
pub mod fixtures {
    use amp_core::{Resources, TaskChain};
    use amp_workload::SyntheticConfig;

    /// One paper-shaped chain (20 tasks, SR 0.5), deterministic.
    #[must_use]
    pub fn paper_chain() -> TaskChain {
        SyntheticConfig::paper(0.5)
            .generate_batch(0xBE9C4, 1)
            .pop()
            .unwrap()
    }

    /// A chain with `n` tasks (paper weights, SR 0.5), deterministic.
    #[must_use]
    pub fn chain_with(n: usize) -> TaskChain {
        SyntheticConfig::paper(0.5)
            .with_num_tasks(n)
            .generate_batch(0xBE9C4 + n as u64, 1)
            .pop()
            .unwrap()
    }

    /// The Table I resource pairs.
    #[must_use]
    pub fn table1_resources() -> [Resources; 3] {
        amp_workload::table1_resources()
    }
}

#[cfg(test)]
mod tests {
    use super::fixtures;

    #[test]
    fn fixtures_are_deterministic() {
        assert_eq!(
            fixtures::paper_chain().tasks(),
            fixtures::paper_chain().tasks()
        );
        assert_eq!(fixtures::chain_with(40).len(), 40);
    }
}
