//! `perf` — the reproducible scheduler perf runner.
//!
//! Times five hot paths per strategy over a deterministic, seeded
//! workload (the shared `amp-conformance` generator, filtered to chains
//! long enough to exercise the DP table):
//!
//! * **cold** — the legacy allocating `schedule()` (fresh scratch and
//!   output per solve) at the fixed benchmark pool, repeated per
//!   instance;
//! * **warm** — `schedule_into()` re-solving the *same* instance on one
//!   persistent [`SchedScratch`]: the steady state of service
//!   resubmissions, where HeRAD's replay memo short-circuits the DP;
//! * **cold_sweep / warm_sweep** — the same `(b, ℓ)` *grid sweep* (every
//!   chain at every pool in `SWEEP_STEPS²`, chain-major) solved cold
//!   versus on one persistent scratch. The sweep is the shape behind the
//!   paper's Table II and the campaign heatmaps; the warm path is where
//!   HeRAD's pool-delta warm starts turn sixteen solves per chain into
//!   one incremental table. `sweep_speedup` is the ratio of the two
//!   medians;
//! * **batched** — `schedule_many_with()` over the whole grid with a
//!   fixed worker count and *persistent* per-worker scratches, timed for
//!   `2·reps` rounds after one untimed warm-up round (one wall-clock
//!   sample per round, normalized to ns/solve — the rounds are the
//!   sample population, so median and p99 are distinct order statistics).
//!
//! A separate, untimed pass counts heap allocations through the
//! [`TrackingAllocator`] installed as the global allocator (batched
//! allocations are counted over a quiesced round, after the warm-up).
//! A `ratio_cmp` micro-benchmark times `Ratio::cmp` on integer,
//! equal-denominator and cross-denominator operand mixes — the DP inner
//! loop compares stage weights that are overwhelmingly integers or
//! same-core-count rationals, which is exactly the equal-denominator
//! fast path.
//!
//! The run writes `BENCH_sched.json` and **exits non-zero** if any of
//! the HeRAD gates fail:
//!
//! * the warm steady state performs any heap allocation;
//! * `sweep_speedup < 1.5` (pool-delta warm starts regressed);
//! * the batched median exceeds the cold median (batching must never be
//!   slower than solving cold on one thread).
//!
//! ```text
//! perf [--smoke] [--out PATH]
//! ```
//!
//! `--smoke` shrinks the workload for CI gating; the allocation check is
//! identical in both modes. Timings depend on the machine, but the
//! workload, solve results and allocation counts are bit-reproducible.

use amp_bench::alloc_track::{self, TrackingAllocator};
use amp_conformance::gen::{instance_for_seed, GenConfig};
use amp_core::sched::{schedule_many_with, Fertac, Herad, Otac, SchedScratch, Scheduler, Twocatac};
use amp_core::{Ratio, Resources, Solution, TaskChain};
use amp_service::{ChainTier, TaskSpec};
use std::hint::black_box;
use std::time::Instant;

#[global_allocator]
static ALLOC: TrackingAllocator = TrackingAllocator;

/// Node cap for 2CATAC: large enough that the cap never binds on this
/// workload's feasible probes, small enough to bound the worst case.
const TWOCATAC_NODE_BUDGET: u64 = 1 << 14;

/// Fixed benchmark pool: every cold/warm solve fills the full
/// `n·(B+1)·(L+1)` DP table, so warm-vs-cold isolates the table reuse,
/// not pool luck.
const POOL: Resources = Resources {
    big: 12,
    little: 12,
};

/// Per-axis core counts of the sweep grid: every chain is solved at every
/// `(b, ℓ) ∈ SWEEP_STEPS²`, ascending, chain-major — the Table II /
/// campaign access pattern that pool-delta warm starts accelerate.
const SWEEP_STEPS: [u64; 4] = [3, 6, 9, 12];

/// Only chains with at least this many tasks enter the workload — the
/// hot path the arena optimizes, not the trivial one-stage instances.
const MIN_TASKS: usize = 8;

struct PerfConfig {
    smoke: bool,
    instances: usize,
    reps: usize,
    workers: usize,
    gen: GenConfig,
}

impl PerfConfig {
    fn new(smoke: bool) -> Self {
        PerfConfig {
            smoke,
            instances: if smoke { 8 } else { 48 },
            reps: if smoke { 4 } else { 30 },
            // More workers than cores only adds scheduler noise (the
            // batched path is compute-bound), so clamp to the machine.
            workers: std::thread::available_parallelism()
                .map_or(1, usize::from)
                .min(4),
            gen: GenConfig {
                max_tasks: 24,
                max_weight: 16,
                // The pool is fixed to `POOL`; the generator's own pool
                // bounds only steer its rejection loop.
                max_big: 4,
                max_little: 4,
                allow_empty_pool: false,
            },
        }
    }

    /// Timed batched rounds: each round is one wall-clock sample, so the
    /// batched distribution needs its own population (with `reps` samples
    /// the median and p99 order statistics collapse onto the same index —
    /// the sampling bug this field fixes).
    fn batched_rounds(&self) -> usize {
        self.reps * 2
    }
}

/// Deterministic workload: seeds are scanned in order and chains shorter
/// than `MIN_TASKS` are skipped, so the set is a pure function of the
/// generator config.
fn workload(cfg: &PerfConfig) -> Vec<TaskChain> {
    let mut chains = Vec::with_capacity(cfg.instances);
    let mut seed = 0u64;
    while chains.len() < cfg.instances {
        let inst = instance_for_seed(seed, &cfg.gen);
        seed += 1;
        if inst.len() >= MIN_TASKS {
            chains.push(inst.chain());
        }
    }
    chains
}

/// The sweep job list: chain-major, pools ascending in `(b, ℓ)`.
fn sweep_jobs(chains: &[TaskChain]) -> Vec<(&TaskChain, Resources)> {
    let mut jobs = Vec::with_capacity(chains.len() * SWEEP_STEPS.len() * SWEEP_STEPS.len());
    for chain in chains {
        for &b in &SWEEP_STEPS {
            for &l in &SWEEP_STEPS {
                jobs.push((chain, Resources::new(b, l)));
            }
        }
    }
    jobs
}

#[derive(Clone, Copy)]
struct Dist {
    median_ns: u128,
    p99_ns: u128,
}

fn dist(samples: &mut [u128]) -> Dist {
    assert!(!samples.is_empty());
    samples.sort_unstable();
    Dist {
        median_ns: samples[samples.len() / 2],
        p99_ns: samples[(samples.len() - 1) * 99 / 100],
    }
}

struct StrategyReport {
    name: &'static str,
    cold: Dist,
    warm: Dist,
    cold_sweep: Dist,
    warm_sweep: Dist,
    batched: Dist,
    cold_allocs_per_solve: f64,
    warm_steady_allocs: u64,
    batched_allocs_per_solve: f64,
    warm_speedup: f64,
    sweep_speedup: f64,
}

fn bench_strategy(
    strategy: &dyn Scheduler,
    chains: &[TaskChain],
    grid: &[(&TaskChain, Resources)],
    cfg: &PerfConfig,
) -> StrategyReport {
    let jobs: Vec<(&TaskChain, Resources)> = chains.iter().map(|c| (c, POOL)).collect();
    let n = jobs.len();

    // Cold: fresh scratch + fresh output per solve (the legacy path),
    // `reps` consecutive per-call solves of each instance.
    let mut cold_samples = Vec::with_capacity(cfg.reps * n);
    for &(chain, r) in &jobs {
        for _ in 0..cfg.reps {
            let t = Instant::now();
            let s = strategy.schedule(black_box(chain), r);
            cold_samples.push(t.elapsed().as_nanos());
            assert!(
                black_box(s).is_some(),
                "{}: infeasible solve",
                strategy.name()
            );
        }
    }

    // Warm: the same per-call solves on one persistent scratch and
    // output. Re-solving the same instance back-to-back is the service
    // steady state; one unrecorded solve per instance warms the arena.
    let mut scratch = SchedScratch::new();
    let mut out = Solution::empty();
    let mut warm_samples = Vec::with_capacity(cfg.reps * n);
    for &(chain, r) in &jobs {
        assert!(strategy.schedule_into(chain, r, &mut scratch, &mut out));
        for _ in 0..cfg.reps {
            let t = Instant::now();
            let ok = strategy.schedule_into(black_box(chain), r, &mut scratch, &mut out);
            warm_samples.push(t.elapsed().as_nanos());
            assert!(black_box(ok));
        }
    }

    // Cold sweep: every grid job solved from nothing — the baseline the
    // pool-delta warm starts are measured against.
    let mut cold_sweep_samples = Vec::with_capacity(cfg.reps * grid.len());
    for _ in 0..cfg.reps {
        for &(chain, r) in grid {
            let t = Instant::now();
            let s = strategy.schedule(black_box(chain), r);
            cold_sweep_samples.push(t.elapsed().as_nanos());
            assert!(
                black_box(s).is_some(),
                "{}: infeasible sweep solve",
                strategy.name()
            );
        }
    }

    // Warm sweep: the same grid on one persistent scratch. For HeRAD a
    // chain's sixteen pools collapse into one rebuild plus incremental
    // grows (most pools are covered sub-tables, pure extraction).
    let mut sweep_scratch = SchedScratch::new();
    let mut sweep_samples = Vec::with_capacity(cfg.reps * grid.len());
    for _ in 0..cfg.reps {
        for &(chain, r) in grid {
            let t = Instant::now();
            let ok = strategy.schedule_into(black_box(chain), r, &mut sweep_scratch, &mut out);
            sweep_samples.push(t.elapsed().as_nanos());
            assert!(black_box(ok));
        }
    }

    // Batched: the grid through the chunked batch API on persistent
    // per-worker scratches; one untimed round warms the arenas, then each
    // timed round contributes one wall-clock sample (normalized per
    // solve).
    let mut batch_scratches: Vec<SchedScratch> =
        (0..cfg.workers).map(|_| SchedScratch::new()).collect();
    black_box(schedule_many_with(strategy, grid, &mut batch_scratches));
    let mut batched_samples = Vec::with_capacity(cfg.batched_rounds());
    for _ in 0..cfg.batched_rounds() {
        let t = Instant::now();
        let results = schedule_many_with(strategy, grid, &mut batch_scratches);
        batched_samples.push(t.elapsed().as_nanos() / grid.len() as u128);
        assert_eq!(black_box(results).len(), grid.len());
    }

    // Allocation pass (untimed). Cold and warm run on this thread, so
    // the per-thread counter is exact; the batched pass may spawn workers
    // and is counted through the process-wide counter over a quiesced
    // round (scratches already warm, so the count is results + solutions,
    // not arena growth). The warm pass exercises both memo hits (same
    // instance twice) and misses (instance changes between jobs).
    let (_, cold_allocs) = alloc_track::count_thread_allocs(|| {
        for &(chain, r) in &jobs {
            black_box(strategy.schedule(chain, r));
        }
    });
    // Quiesce the shared scratch first by replaying the exact sequence
    // the counted pass will run, so the count measures the steady state,
    // not one-off warm-up growth. A small residual count can remain for
    // strategies whose LIFO buffer-pool rotation keeps handing
    // small-capacity buffers to large needs (2CATAC's branch swaps do
    // this); that residue is real per-sequence behaviour, reported but
    // only gated for HeRAD (which must be exactly zero).
    for _ in 0..2 {
        for &(chain, r) in &jobs {
            assert!(strategy.schedule_into(chain, r, &mut scratch, &mut out));
            assert!(strategy.schedule_into(chain, r, &mut scratch, &mut out));
        }
    }
    let (_, warm_steady_allocs) = alloc_track::count_thread_allocs(|| {
        for &(chain, r) in &jobs {
            assert!(strategy.schedule_into(chain, r, &mut scratch, &mut out));
            assert!(strategy.schedule_into(chain, r, &mut scratch, &mut out));
        }
    });
    let batched_before = alloc_track::global_count();
    black_box(schedule_many_with(strategy, grid, &mut batch_scratches));
    let batched_allocs = alloc_track::global_count() - batched_before;

    let cold = dist(&mut cold_samples);
    let warm = dist(&mut warm_samples);
    let cold_sweep = dist(&mut cold_sweep_samples);
    let warm_sweep = dist(&mut sweep_samples);
    StrategyReport {
        name: strategy.name(),
        cold,
        warm,
        cold_sweep,
        warm_sweep,
        batched: dist(&mut batched_samples),
        cold_allocs_per_solve: cold_allocs as f64 / n as f64,
        warm_steady_allocs,
        batched_allocs_per_solve: batched_allocs as f64 / grid.len() as f64,
        warm_speedup: cold.median_ns as f64 / warm.median_ns.max(1) as f64,
        sweep_speedup: cold_sweep.median_ns as f64 / warm_sweep.median_ns.max(1) as f64,
    }
}

struct TierReport {
    serve: Dist,
    /// Tier cold solves per fresh-tier sweep round — must be exactly
    /// one per chain (the solve-once contract, as a perf gate).
    cold_solves_per_sweep: u64,
    /// Tier serves (hits + grows) per round; with the cold solves they
    /// account for every grid job.
    tier_serves_per_sweep: u64,
}

/// Times the same `(b, ℓ)` grid through the service's chain tier: a
/// fresh tier per round, so each chain pays one cold solve and every
/// other pool is answered by growing/extracting the one cached table.
/// The per-serve distribution is compared against the cold sweep
/// (per-pool `schedule()` from nothing) in the gate below.
fn bench_chain_tier(
    chains: &[TaskChain],
    grid: &[(&TaskChain, Resources)],
    cfg: &PerfConfig,
) -> TierReport {
    let keys: Vec<Vec<TaskSpec>> = chains
        .iter()
        .map(|c| c.tasks().iter().map(TaskSpec::from).collect())
        .collect();
    let chain_index = |target: &TaskChain| -> usize {
        chains
            .iter()
            .position(|c| std::ptr::eq(c, target))
            .expect("grid chains come from the workload")
    };
    let mut samples = Vec::with_capacity(cfg.reps * grid.len());
    let mut cold_solves = 0u64;
    let mut tier_serves = 0u64;
    let mut out = Solution::empty();
    for _ in 0..cfg.reps {
        let tier = ChainTier::new(chains.len().max(1), None);
        for &(chain, r) in grid {
            let key = &keys[chain_index(chain)];
            let t = Instant::now();
            let (_, feasible) = tier.serve(black_box(key), black_box(chain), r, &mut out);
            samples.push(t.elapsed().as_nanos());
            assert!(black_box(feasible), "tier sweep solve infeasible");
        }
        let stats = tier.stats();
        cold_solves += stats.cold_solves;
        tier_serves += stats.hits + stats.grows;
    }
    TierReport {
        serve: dist(&mut samples),
        cold_solves_per_sweep: cold_solves / cfg.reps as u64,
        tier_serves_per_sweep: tier_serves / cfg.reps as u64,
    }
}

struct RatioCmpReport {
    integer_ns: f64,
    equal_den_ns: f64,
    cross_den_ns: f64,
}

/// Times `Ratio::cmp` per operand mix. Integer and equal-denominator
/// pairs take the new numerator-only shortcut; cross-denominator pairs
/// pay the two u128 multiplies. The DP inner loop is dominated by the
/// first two shapes (integer weights, same-core-count candidates).
fn bench_ratio_cmp() -> RatioCmpReport {
    const PAIRS: usize = 256;
    const ITERS: usize = 4000;
    let build = |f: &dyn Fn(usize) -> (Ratio, Ratio)| -> Vec<(Ratio, Ratio)> {
        (0..PAIRS).map(f).collect()
    };
    let integer = build(&|i| {
        (
            Ratio::new_raw(i as u128 + 1, 1),
            Ratio::new_raw((i as u128 * 7) % 251 + 1, 1),
        )
    });
    let equal_den = build(&|i| {
        (
            Ratio::new_raw(i as u128 + 3, 4),
            Ratio::new_raw((i as u128 * 5) % 239 + 2, 4),
        )
    });
    let cross_den = build(&|i| {
        (
            Ratio::new_raw(i as u128 + 3, 3),
            Ratio::new_raw((i as u128 * 5) % 239 + 2, 5),
        )
    });
    let time = |pairs: &[(Ratio, Ratio)]| -> f64 {
        let t = Instant::now();
        for _ in 0..ITERS {
            for &(a, b) in pairs {
                black_box(black_box(a).cmp(&black_box(b)));
            }
        }
        t.elapsed().as_nanos() as f64 / (ITERS * PAIRS) as f64
    };
    RatioCmpReport {
        integer_ns: time(&integer),
        equal_den_ns: time(&equal_den),
        cross_den_ns: time(&cross_den),
    }
}

/// Hand-rolled JSON (the workspace pins no JSON crate for binaries):
/// stable key order, two-space indent.
fn render_json(
    cfg: &PerfConfig,
    reports: &[StrategyReport],
    ratio: &RatioCmpReport,
    tier: &TierReport,
    tier_speedup: f64,
) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": \"amp-bench/perf/v3\",\n");
    s.push_str("  \"config\": {\n");
    s.push_str(&format!("    \"smoke\": {},\n", cfg.smoke));
    s.push_str(&format!("    \"instances\": {},\n", cfg.instances));
    s.push_str(&format!("    \"reps\": {},\n", cfg.reps));
    s.push_str(&format!(
        "    \"batched_rounds\": {},\n",
        cfg.batched_rounds()
    ));
    s.push_str(&format!("    \"workers\": {},\n", cfg.workers));
    s.push_str(&format!(
        "    \"pool\": {{ \"big\": {}, \"little\": {} }},\n",
        POOL.big, POOL.little
    ));
    s.push_str(&format!(
        "    \"sweep_steps\": [{}],\n",
        SWEEP_STEPS.map(|v| v.to_string()).join(", ")
    ));
    s.push_str(&format!(
        "    \"gen\": {{ \"max_tasks\": {}, \"max_weight\": {}, \"min_tasks\": {} }},\n",
        cfg.gen.max_tasks, cfg.gen.max_weight, MIN_TASKS
    ));
    s.push_str(&format!(
        "    \"twocatac_node_budget\": {}\n",
        TWOCATAC_NODE_BUDGET
    ));
    s.push_str("  },\n");
    s.push_str(&format!(
        "  \"ratio_cmp\": {{ \"integer_ns\": {:.2}, \"equal_den_ns\": {:.2}, \"cross_den_ns\": {:.2} }},\n",
        ratio.integer_ns, ratio.equal_den_ns, ratio.cross_den_ns
    ));
    s.push_str(&format!(
        "  \"chain_tier\": {{ \"median_ns\": {}, \"p99_ns\": {}, \"speedup_vs_cold_sweep\": {:.2}, \
         \"cold_solves_per_sweep\": {}, \"tier_serves_per_sweep\": {} }},\n",
        tier.serve.median_ns,
        tier.serve.p99_ns,
        tier_speedup,
        tier.cold_solves_per_sweep,
        tier.tier_serves_per_sweep
    ));
    s.push_str("  \"strategies\": [\n");
    for (i, r) in reports.iter().enumerate() {
        s.push_str("    {\n");
        s.push_str(&format!("      \"name\": \"{}\",\n", r.name));
        s.push_str(&format!(
            "      \"cold\": {{ \"median_ns\": {}, \"p99_ns\": {}, \"allocs_per_solve\": {:.2} }},\n",
            r.cold.median_ns, r.cold.p99_ns, r.cold_allocs_per_solve
        ));
        s.push_str(&format!(
            "      \"warm\": {{ \"median_ns\": {}, \"p99_ns\": {}, \"steady_state_allocs\": {} }},\n",
            r.warm.median_ns, r.warm.p99_ns, r.warm_steady_allocs
        ));
        s.push_str(&format!(
            "      \"cold_sweep\": {{ \"median_ns\": {}, \"p99_ns\": {} }},\n",
            r.cold_sweep.median_ns, r.cold_sweep.p99_ns
        ));
        s.push_str(&format!(
            "      \"warm_sweep\": {{ \"median_ns\": {}, \"p99_ns\": {} }},\n",
            r.warm_sweep.median_ns, r.warm_sweep.p99_ns
        ));
        s.push_str(&format!(
            "      \"batched\": {{ \"median_ns\": {}, \"p99_ns\": {}, \"allocs_per_solve\": {:.2} }},\n",
            r.batched.median_ns, r.batched.p99_ns, r.batched_allocs_per_solve
        ));
        s.push_str(&format!("      \"warm_speedup\": {:.2},\n", r.warm_speedup));
        s.push_str(&format!(
            "      \"sweep_speedup\": {:.2}\n",
            r.sweep_speedup
        ));
        s.push_str(if i + 1 == reports.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    s.push_str("  ]\n");
    s.push_str("}\n");
    s
}

fn main() {
    let mut smoke = false;
    let mut out_path = String::from("BENCH_sched.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => {
                out_path = args.next().unwrap_or_else(|| {
                    eprintln!("--out needs a path");
                    std::process::exit(2);
                });
            }
            other => {
                eprintln!("unknown argument: {other}\nusage: perf [--smoke] [--out PATH]");
                std::process::exit(2);
            }
        }
    }

    let cfg = PerfConfig::new(smoke);
    let chains = workload(&cfg);
    let grid = sweep_jobs(&chains);
    let strategies: Vec<Box<dyn Scheduler>> = vec![
        Box::new(Herad::new()),
        Box::new(Twocatac::with_node_budget(TWOCATAC_NODE_BUDGET)),
        Box::new(Fertac),
        Box::new(Otac::big()),
        Box::new(Otac::little()),
    ];

    let reports: Vec<StrategyReport> = strategies
        .iter()
        .map(|s| {
            let r = bench_strategy(&**s, &chains, &grid, &cfg);
            eprintln!(
                "{:<10} cold {:>9} ns  warm {:>7} ns  sweep {:>9}/{:>9} ns ({:.2}x)  batched {:>9} ns  warm allocs {}",
                r.name, r.cold.median_ns, r.warm.median_ns, r.warm_sweep.median_ns,
                r.cold_sweep.median_ns, r.sweep_speedup, r.batched.median_ns, r.warm_steady_allocs
            );
            r
        })
        .collect();
    let ratio = bench_ratio_cmp();
    eprintln!(
        "ratio_cmp  integer {:.2} ns  equal_den {:.2} ns  cross_den {:.2} ns",
        ratio.integer_ns, ratio.equal_den_ns, ratio.cross_den_ns
    );
    let tier = bench_chain_tier(&chains, &grid, &cfg);
    let tier_speedup = reports[0].cold_sweep.median_ns as f64 / tier.serve.median_ns.max(1) as f64;
    eprintln!(
        "chain_tier serve {:>7} ns ({:.2}x vs cold sweep)  {} cold solve(s)/sweep, {} tier serve(s)/sweep",
        tier.serve.median_ns, tier_speedup, tier.cold_solves_per_sweep, tier.tier_serves_per_sweep
    );

    let json = render_json(&cfg, &reports, &ratio, &tier, tier_speedup);
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    eprintln!("wrote {out_path}");

    let herad = &reports[0];
    assert_eq!(herad.name, "HeRAD");
    let mut failed = false;
    if herad.warm_steady_allocs != 0 {
        eprintln!(
            "FAIL: warm-scratch HeRAD performed {} heap allocations on the steady state",
            herad.warm_steady_allocs
        );
        failed = true;
    }
    if herad.sweep_speedup < 1.5 {
        eprintln!(
            "FAIL: HeRAD sweep_speedup {:.2} < 1.5 (pool-delta warm starts regressed)",
            herad.sweep_speedup
        );
        failed = true;
    }
    if herad.batched.median_ns > herad.cold.median_ns {
        eprintln!(
            "FAIL: HeRAD batched median {} ns exceeds cold median {} ns",
            herad.batched.median_ns, herad.cold.median_ns
        );
        failed = true;
    }
    if herad.batched.median_ns > herad.cold_sweep.median_ns {
        eprintln!(
            "FAIL: HeRAD batched median {} ns exceeds cold sweep median {} ns",
            herad.batched.median_ns, herad.cold_sweep.median_ns
        );
        failed = true;
    }
    if tier.cold_solves_per_sweep != chains.len() as u64 {
        eprintln!(
            "FAIL: chain tier paid {} cold solves per sweep, expected exactly {} (one per chain)",
            tier.cold_solves_per_sweep,
            chains.len()
        );
        failed = true;
    }
    if tier_speedup < 1.5 {
        eprintln!(
            "FAIL: chain-tier sweep speedup {tier_speedup:.2} < 1.5 (solve-once extraction regressed)"
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    eprintln!(
        "OK: HeRAD warm steady state allocation-free, sweep_speedup {:.2} >= 1.5, batched <= cold, \
         chain tier solve-once at {tier_speedup:.2}x",
        herad.sweep_speedup
    );
}
