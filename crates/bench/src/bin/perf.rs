//! `perf` — the reproducible scheduler perf runner.
//!
//! Times four hot paths per strategy over a deterministic, seeded
//! workload (the shared `amp-conformance` generator, filtered to chains
//! long enough to exercise the DP table):
//!
//! * **cold** — the legacy allocating `schedule()` (fresh scratch and
//!   output per solve), repeated per instance;
//! * **warm** — `schedule_into()` re-solving the *same* instance on one
//!   persistent [`SchedScratch`]: the steady state of service
//!   resubmissions, where HeRAD's replay memo short-circuits the DP;
//! * **warm_sweep** — `schedule_into()` across *distinct* consecutive
//!   instances on one persistent scratch: the sweep steady state, where
//!   only the arena (table + stage-pool reuse) helps;
//! * **batched** — `schedule_many()` over the whole instance set with a
//!   fixed worker count.
//!
//! A separate, untimed pass counts heap allocations through the
//! [`TrackingAllocator`] installed as the global allocator. The run
//! writes `BENCH_sched.json` (median/p99 ns per solve plus allocation
//! counts) and **exits non-zero if the warm HeRAD steady state performs
//! any heap allocation** — the regression the scratch arena exists to
//! prevent.
//!
//! ```text
//! perf [--smoke] [--out PATH]
//! ```
//!
//! `--smoke` shrinks the workload for CI gating; the allocation check is
//! identical in both modes. Timings depend on the machine, but the
//! workload, solve results and allocation counts are bit-reproducible.

use amp_bench::alloc_track::{self, TrackingAllocator};
use amp_conformance::gen::{instance_for_seed, GenConfig};
use amp_core::sched::{schedule_many, Fertac, Herad, Otac, SchedScratch, Scheduler, Twocatac};
use amp_core::{Resources, Solution, TaskChain};
use std::hint::black_box;
use std::time::Instant;

#[global_allocator]
static ALLOC: TrackingAllocator = TrackingAllocator;

/// Node cap for 2CATAC: large enough that the cap never binds on this
/// workload's feasible probes, small enough to bound the worst case.
const TWOCATAC_NODE_BUDGET: u64 = 1 << 14;

/// Fixed benchmark pool: every solve fills the full `n·(B+1)·(L+1)` DP
/// table, so warm-vs-cold isolates the table reuse, not pool luck.
const POOL: Resources = Resources {
    big: 12,
    little: 12,
};

/// Only chains with at least this many tasks enter the workload — the
/// hot path the arena optimizes, not the trivial one-stage instances.
const MIN_TASKS: usize = 8;

struct PerfConfig {
    smoke: bool,
    instances: usize,
    reps: usize,
    workers: usize,
    gen: GenConfig,
}

impl PerfConfig {
    fn new(smoke: bool) -> Self {
        PerfConfig {
            smoke,
            instances: if smoke { 8 } else { 48 },
            reps: if smoke { 4 } else { 30 },
            workers: 4,
            gen: GenConfig {
                max_tasks: 24,
                max_weight: 16,
                // The pool is fixed to `POOL`; the generator's own pool
                // bounds only steer its rejection loop.
                max_big: 4,
                max_little: 4,
                allow_empty_pool: false,
            },
        }
    }
}

/// Deterministic workload: seeds are scanned in order and chains shorter
/// than `MIN_TASKS` are skipped, so the set is a pure function of the
/// generator config.
fn workload(cfg: &PerfConfig) -> Vec<TaskChain> {
    let mut chains = Vec::with_capacity(cfg.instances);
    let mut seed = 0u64;
    while chains.len() < cfg.instances {
        let inst = instance_for_seed(seed, &cfg.gen);
        seed += 1;
        if inst.len() >= MIN_TASKS {
            chains.push(inst.chain());
        }
    }
    chains
}

#[derive(Clone, Copy)]
struct Dist {
    median_ns: u128,
    p99_ns: u128,
}

fn dist(samples: &mut [u128]) -> Dist {
    assert!(!samples.is_empty());
    samples.sort_unstable();
    Dist {
        median_ns: samples[samples.len() / 2],
        p99_ns: samples[(samples.len() - 1) * 99 / 100],
    }
}

struct StrategyReport {
    name: &'static str,
    cold: Dist,
    warm: Dist,
    warm_sweep: Dist,
    batched: Dist,
    cold_allocs_per_solve: f64,
    warm_steady_allocs: u64,
    batched_allocs_per_solve: f64,
    warm_speedup: f64,
    sweep_speedup: f64,
}

fn bench_strategy(
    strategy: &dyn Scheduler,
    chains: &[TaskChain],
    cfg: &PerfConfig,
) -> StrategyReport {
    let jobs: Vec<(&TaskChain, Resources)> = chains.iter().map(|c| (c, POOL)).collect();
    let n = jobs.len();

    // Cold: fresh scratch + fresh output per solve (the legacy path),
    // `reps` consecutive per-call solves of each instance.
    let mut cold_samples = Vec::with_capacity(cfg.reps * n);
    for &(chain, r) in &jobs {
        for _ in 0..cfg.reps {
            let t = Instant::now();
            let s = strategy.schedule(black_box(chain), r);
            cold_samples.push(t.elapsed().as_nanos());
            assert!(
                black_box(s).is_some(),
                "{}: infeasible solve",
                strategy.name()
            );
        }
    }

    // Warm: the same per-call solves on one persistent scratch and
    // output. Re-solving the same instance back-to-back is the service
    // steady state; one unrecorded solve per instance warms the arena.
    let mut scratch = SchedScratch::new();
    let mut out = Solution::empty();
    let mut warm_samples = Vec::with_capacity(cfg.reps * n);
    for &(chain, r) in &jobs {
        assert!(strategy.schedule_into(chain, r, &mut scratch, &mut out));
        for _ in 0..cfg.reps {
            let t = Instant::now();
            let ok = strategy.schedule_into(black_box(chain), r, &mut scratch, &mut out);
            warm_samples.push(t.elapsed().as_nanos());
            assert!(black_box(ok));
        }
    }

    // Warm sweep: distinct consecutive instances on the persistent
    // scratch — the arena is hot, HeRAD's replay memo never hits.
    let mut sweep_samples = Vec::with_capacity(cfg.reps * n);
    for _ in 0..cfg.reps {
        for &(chain, r) in &jobs {
            let t = Instant::now();
            let ok = strategy.schedule_into(black_box(chain), r, &mut scratch, &mut out);
            sweep_samples.push(t.elapsed().as_nanos());
            assert!(black_box(ok));
        }
    }

    // Batched: one sample per repetition, normalized to ns/solve.
    let mut batched_samples = Vec::with_capacity(cfg.reps);
    for _ in 0..cfg.reps {
        let t = Instant::now();
        let results = schedule_many(strategy, &jobs, cfg.workers);
        batched_samples.push(t.elapsed().as_nanos() / n as u128);
        assert_eq!(black_box(results).len(), n);
    }

    // Allocation pass (untimed). Cold and warm run on this thread, so
    // the per-thread counter is exact; the batched pass spawns workers
    // and is counted through the process-wide counter. The warm pass
    // exercises both memo hits (same instance twice) and misses
    // (instance changes between jobs).
    let (_, cold_allocs) = alloc_track::count_thread_allocs(|| {
        for &(chain, r) in &jobs {
            black_box(strategy.schedule(chain, r));
        }
    });
    let (_, warm_steady_allocs) = alloc_track::count_thread_allocs(|| {
        for &(chain, r) in &jobs {
            assert!(strategy.schedule_into(chain, r, &mut scratch, &mut out));
            assert!(strategy.schedule_into(chain, r, &mut scratch, &mut out));
        }
    });
    let batched_before = alloc_track::global_count();
    black_box(schedule_many(strategy, &jobs, cfg.workers));
    let batched_allocs = alloc_track::global_count() - batched_before;

    let cold = dist(&mut cold_samples);
    let warm = dist(&mut warm_samples);
    let warm_sweep = dist(&mut sweep_samples);
    StrategyReport {
        name: strategy.name(),
        cold,
        warm,
        warm_sweep,
        batched: dist(&mut batched_samples),
        cold_allocs_per_solve: cold_allocs as f64 / n as f64,
        warm_steady_allocs,
        batched_allocs_per_solve: batched_allocs as f64 / n as f64,
        warm_speedup: cold.median_ns as f64 / warm.median_ns.max(1) as f64,
        sweep_speedup: cold.median_ns as f64 / warm_sweep.median_ns.max(1) as f64,
    }
}

/// Hand-rolled JSON (the workspace pins no JSON crate for binaries):
/// stable key order, two-space indent.
fn render_json(cfg: &PerfConfig, reports: &[StrategyReport]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": \"amp-bench/perf/v1\",\n");
    s.push_str("  \"config\": {\n");
    s.push_str(&format!("    \"smoke\": {},\n", cfg.smoke));
    s.push_str(&format!("    \"instances\": {},\n", cfg.instances));
    s.push_str(&format!("    \"reps\": {},\n", cfg.reps));
    s.push_str(&format!("    \"workers\": {},\n", cfg.workers));
    s.push_str(&format!(
        "    \"pool\": {{ \"big\": {}, \"little\": {} }},\n",
        POOL.big, POOL.little
    ));
    s.push_str(&format!(
        "    \"gen\": {{ \"max_tasks\": {}, \"max_weight\": {}, \"min_tasks\": {} }},\n",
        cfg.gen.max_tasks, cfg.gen.max_weight, MIN_TASKS
    ));
    s.push_str(&format!(
        "    \"twocatac_node_budget\": {}\n",
        TWOCATAC_NODE_BUDGET
    ));
    s.push_str("  },\n");
    s.push_str("  \"strategies\": [\n");
    for (i, r) in reports.iter().enumerate() {
        s.push_str("    {\n");
        s.push_str(&format!("      \"name\": \"{}\",\n", r.name));
        s.push_str(&format!(
            "      \"cold\": {{ \"median_ns\": {}, \"p99_ns\": {}, \"allocs_per_solve\": {:.2} }},\n",
            r.cold.median_ns, r.cold.p99_ns, r.cold_allocs_per_solve
        ));
        s.push_str(&format!(
            "      \"warm\": {{ \"median_ns\": {}, \"p99_ns\": {}, \"steady_state_allocs\": {} }},\n",
            r.warm.median_ns, r.warm.p99_ns, r.warm_steady_allocs
        ));
        s.push_str(&format!(
            "      \"warm_sweep\": {{ \"median_ns\": {}, \"p99_ns\": {} }},\n",
            r.warm_sweep.median_ns, r.warm_sweep.p99_ns
        ));
        s.push_str(&format!(
            "      \"batched\": {{ \"median_ns\": {}, \"p99_ns\": {}, \"allocs_per_solve\": {:.2} }},\n",
            r.batched.median_ns, r.batched.p99_ns, r.batched_allocs_per_solve
        ));
        s.push_str(&format!("      \"warm_speedup\": {:.2},\n", r.warm_speedup));
        s.push_str(&format!(
            "      \"sweep_speedup\": {:.2}\n",
            r.sweep_speedup
        ));
        s.push_str(if i + 1 == reports.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    s.push_str("  ]\n");
    s.push_str("}\n");
    s
}

fn main() {
    let mut smoke = false;
    let mut out_path = String::from("BENCH_sched.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => {
                out_path = args.next().unwrap_or_else(|| {
                    eprintln!("--out needs a path");
                    std::process::exit(2);
                });
            }
            other => {
                eprintln!("unknown argument: {other}\nusage: perf [--smoke] [--out PATH]");
                std::process::exit(2);
            }
        }
    }

    let cfg = PerfConfig::new(smoke);
    let chains = workload(&cfg);
    let strategies: Vec<Box<dyn Scheduler>> = vec![
        Box::new(Herad::new()),
        Box::new(Twocatac::with_node_budget(TWOCATAC_NODE_BUDGET)),
        Box::new(Fertac),
        Box::new(Otac::big()),
        Box::new(Otac::little()),
    ];

    let reports: Vec<StrategyReport> = strategies
        .iter()
        .map(|s| {
            let r = bench_strategy(&**s, &chains, &cfg);
            eprintln!(
                "{:<10} cold {:>9} ns  warm {:>7} ns  sweep {:>9} ns  batched {:>9} ns  speedup {:.2}x  warm allocs {}",
                r.name, r.cold.median_ns, r.warm.median_ns, r.warm_sweep.median_ns,
                r.batched.median_ns, r.warm_speedup, r.warm_steady_allocs
            );
            r
        })
        .collect();

    let json = render_json(&cfg, &reports);
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    eprintln!("wrote {out_path}");

    let herad = &reports[0];
    assert_eq!(herad.name, "HeRAD");
    if herad.warm_steady_allocs != 0 {
        eprintln!(
            "FAIL: warm-scratch HeRAD performed {} heap allocations on the steady state",
            herad.warm_steady_allocs
        );
        std::process::exit(1);
    }
    eprintln!("OK: warm-scratch HeRAD steady state is allocation-free");
}
