//! Allocation-regression tests for the scheduler hot paths.
//!
//! This test binary installs [`amp_bench::alloc_track::TrackingAllocator`]
//! as the global allocator and counts *per-thread* heap allocations, so
//! the assertions hold even when `cargo test` runs tests on several
//! threads at once. The contract under test: once a [`SchedScratch`] and
//! output [`Solution`] have warmed up on an instance shape, repeated
//! solves of that shape perform **zero** heap allocations.

use amp_bench::alloc_track::{self, TrackingAllocator};
use amp_core::sched::{paper_strategies, PeriodBounds, SchedScratch};
use amp_core::{Resources, Solution, Task, TaskChain};

#[global_allocator]
static ALLOC: TrackingAllocator = TrackingAllocator;

fn chain() -> TaskChain {
    TaskChain::new(vec![
        Task::new(3, 6, false),
        Task::new(2, 4, true),
        Task::new(4, 8, true),
        Task::new(6, 12, true),
        Task::new(5, 9, false),
        Task::new(7, 15, true),
        Task::new(1, 2, true),
        Task::new(2, 5, false),
    ])
}

/// The counting allocator actually counts on this thread.
#[test]
fn tracking_allocator_observes_allocations() {
    let (_v, allocs) = alloc_track::count_thread_allocs(|| vec![1u8, 2, 3]);
    assert!(allocs >= 1, "a fresh Vec must register at least one alloc");
    assert!(alloc_track::global_count() >= alloc_track::thread_count());
}

/// `PeriodBounds::compute` — one call per binary-search solve — performs
/// no heap allocation (the core-type candidate list is a fixed array).
#[test]
fn period_bounds_probe_is_allocation_free() {
    let c = chain();
    for resources in [
        Resources::new(4, 4),
        Resources::new(1, 0),
        Resources::new(0, 3),
    ] {
        let (bounds, allocs) =
            alloc_track::count_thread_allocs(|| PeriodBounds::compute(&c, resources));
        assert!(bounds.is_some());
        assert_eq!(allocs, 0, "PeriodBounds::compute allocated at {resources}");
    }
}

/// Every paper strategy's `schedule_into` is allocation-free once its
/// scratch and output have warmed up on the instance shape.
#[test]
fn warm_schedule_into_is_allocation_free() {
    let c = chain();
    let resources = Resources::new(4, 4);
    for strategy in paper_strategies() {
        let mut scratch = SchedScratch::new();
        let mut out = Solution::empty();
        // Warm-up: the first solves size the DP table and the stage pool.
        for _ in 0..3 {
            assert!(strategy.schedule_into(&c, resources, &mut scratch, &mut out));
        }
        let reference = out.clone();
        let ((), allocs) = alloc_track::count_thread_allocs(|| {
            for _ in 0..10 {
                assert!(strategy.schedule_into(&c, resources, &mut scratch, &mut out));
            }
        });
        assert_eq!(
            allocs,
            0,
            "{}: warm schedule_into allocated on the steady state",
            strategy.name()
        );
        assert_eq!(out, reference, "{}: warm result drifted", strategy.name());
    }
}

/// A shape change re-sizes the scratch once, then the new steady state is
/// allocation-free again.
#[test]
fn shape_change_costs_one_warmup_then_none() {
    let small = TaskChain::new(vec![Task::new(2, 3, true), Task::new(4, 7, false)]);
    let large = chain();
    let resources = Resources::new(4, 4);
    for strategy in paper_strategies() {
        let mut scratch = SchedScratch::new();
        let mut out = Solution::empty();
        for _ in 0..3 {
            assert!(strategy.schedule_into(&small, resources, &mut scratch, &mut out));
        }
        // Growing to the large shape may allocate (table resize)...
        for _ in 0..3 {
            assert!(strategy.schedule_into(&large, resources, &mut scratch, &mut out));
        }
        // ...but afterwards both shapes are warm.
        let ((), allocs) = alloc_track::count_thread_allocs(|| {
            for _ in 0..5 {
                assert!(strategy.schedule_into(&large, resources, &mut scratch, &mut out));
                assert!(strategy.schedule_into(&small, resources, &mut scratch, &mut out));
            }
        });
        assert_eq!(
            allocs,
            0,
            "{}: alternating warm shapes still allocated",
            strategy.name()
        );
    }
}
