//! Table II bench: scheduling the 23-task DVB-S2 receiver profile on the
//! four platform configurations, per strategy.

use amp_core::sched::{Fertac, Herad, Otac, Scheduler, Twocatac};
use amp_dvbs2::{profiled_chain, table2_configs};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

fn table2(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    let strategies: Vec<Box<dyn Scheduler>> = vec![
        Box::new(Herad::new()),
        Box::new(Twocatac::new()),
        Box::new(Fertac),
        Box::new(Otac::big()),
        Box::new(Otac::little()),
    ];
    for cfg in table2_configs() {
        let chain = profiled_chain(cfg.platform);
        for s in &strategies {
            let label = format!("{} {}", cfg.platform.name(), cfg.resources);
            group.bench_with_input(BenchmarkId::new(s.name(), label), &chain, |b, chain| {
                b.iter(|| black_box(s.schedule(chain, cfg.resources)))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, table2);
criterion_main!(benches);
