//! Runtime-substrate benches: the order-preserving adaptor and the
//! calibrated spin primitives underpinning the threaded StreamPU-style
//! runtime.

use amp_runtime::{OrderedRing, SpinCalibration};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use std::sync::Arc;
use std::thread;
use std::time::Duration;

fn adaptor(c: &mut Criterion) {
    let mut group = c.benchmark_group("runtime");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));

    // Single-threaded push/pop cost.
    let frames = 1024u64;
    group.throughput(Throughput::Elements(frames));
    group.bench_function("ring_push_pop_inorder", |b| {
        b.iter(|| {
            let ring = OrderedRing::new(64);
            for chunk in 0..(frames / 64) {
                for seq in chunk * 64..(chunk + 1) * 64 {
                    ring.push(seq, seq);
                }
                for seq in chunk * 64..(chunk + 1) * 64 {
                    black_box(ring.pop(seq));
                }
            }
        })
    });

    // Cross-thread 1 -> 1 handoff.
    group.bench_function("ring_cross_thread", |b| {
        b.iter(|| {
            let ring: Arc<OrderedRing<u64>> = Arc::new(OrderedRing::new(16));
            let r = ring.clone();
            let producer = thread::spawn(move || {
                for seq in 0..frames {
                    r.push(seq, seq);
                }
                r.close(frames);
            });
            let mut acc = 0u64;
            let mut seq = 0;
            while let Some(v) = ring.pop(seq) {
                acc ^= v;
                seq += 1;
            }
            producer.join().unwrap();
            black_box(acc)
        })
    });

    // Spin accuracy/cost at task-sized granularities.
    let cal = SpinCalibration::global();
    for us in [10u64, 100, 1000] {
        group.bench_with_input(BenchmarkId::new("spin", us), &us, |b, &us| {
            b.iter(|| black_box(cal.spin(us as f64, 1)))
        });
    }
    group.finish();
}

criterion_group!(benches, adaptor);
criterion_main!(benches);
