//! Fig. 5 bench: the discrete-event simulation that produces the
//! achieved-throughput columns — simulation cost per frame for the DVB-S2
//! schedules, with and without latency noise.

use amp_core::sched::{Herad, Scheduler};
use amp_dvbs2::{profiled_chain, Platform};
use amp_sim::{simulate, SimConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use std::time::Duration;

fn fig5(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(300));
    let frames = 2000u64;
    group.throughput(Throughput::Elements(frames));
    for platform in [Platform::MacStudio, Platform::X7Ti] {
        let chain = profiled_chain(platform);
        let solution = Herad::new()
            .schedule(&chain, platform.full_resources())
            .unwrap();
        group.bench_with_input(
            BenchmarkId::new("ideal", platform.name()),
            &solution,
            |b, solution| {
                b.iter(|| black_box(simulate(&chain, solution, &SimConfig::with_frames(frames))))
            },
        );
        group.bench_with_input(
            BenchmarkId::new("noisy", platform.name()),
            &solution,
            |b, solution| {
                b.iter(|| {
                    black_box(simulate(
                        &chain,
                        solution,
                        &SimConfig {
                            frames,
                            noise: Some(0.08),
                            seed: 7,
                            ..SimConfig::default()
                        },
                    ))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, fig5);
criterion_main!(benches);
