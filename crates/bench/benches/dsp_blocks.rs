//! Table III bench: per-block latency of the functional (reduced-scale)
//! DVB-S2 implementation — this crate's own profiling table.

use amp_dvbs2::bch::Bch;
use amp_dvbs2::channel::Channel;
use amp_dvbs2::filter::RrcFilter;
use amp_dvbs2::framer::{BlockInterleaver, PlHeader};
use amp_dvbs2::ldpc::Ldpc;
use amp_dvbs2::modem::QpskModem;
use amp_dvbs2::scrambler::{BinaryScrambler, SymbolScrambler};
use amp_dvbs2::txrx::LinkContext;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

fn table3(c: &mut Criterion) {
    let mut group = c.benchmark_group("table3");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));

    let ctx = LinkContext::reduced();
    let bits = ctx.reference_bits(1);
    let bch = Bch::reduced();
    let ldpc = Ldpc::reduced();

    group.bench_function("bch_encode", |b| b.iter(|| black_box(bch.encode(&bits))));
    let bch_cw = bch.encode(&bits);
    group.bench_function("bch_decode_clean", |b| {
        b.iter(|| {
            let mut cw = bch_cw.clone();
            black_box(bch.decode(&mut cw))
        })
    });
    let mut corrupted = bch_cw.clone();
    corrupted[3] ^= 1;
    corrupted[700] ^= 1;
    corrupted[1500] ^= 1;
    group.bench_function("bch_decode_3_errors", |b| {
        b.iter(|| {
            let mut cw = corrupted.clone();
            black_box(bch.decode(&mut cw))
        })
    });

    group.bench_function("ldpc_encode", |b| {
        b.iter(|| black_box(ldpc.encode(&bch_cw)))
    });
    let ldpc_cw = ldpc.encode(&bch_cw);
    let clean_llr: Vec<f32> = ldpc_cw
        .iter()
        .map(|&x| if x == 0 { 6.0 } else { -6.0 })
        .collect();
    group.bench_function("ldpc_decode_clean", |b| {
        b.iter(|| black_box(ldpc.decode(&clean_llr)))
    });
    let mut noisy_llr = clean_llr.clone();
    for (i, l) in noisy_llr.iter_mut().enumerate() {
        if i % 37 == 0 {
            *l = -*l * 0.2; // scattered unreliable flips
        }
    }
    group.bench_function("ldpc_decode_noisy", |b| {
        b.iter(|| black_box(ldpc.decode(&noisy_llr)))
    });

    let interleaved = BlockInterleaver::new(8).interleave(&ldpc_cw);
    let symbols = QpskModem::modulate(&interleaved);
    group.bench_function("qpsk_modulate", |b| {
        b.iter(|| black_box(QpskModem::modulate(&interleaved)))
    });
    group.bench_function("qpsk_demodulate", |b| {
        b.iter(|| black_box(QpskModem::demodulate(&symbols, 0.1)))
    });

    let rrc = RrcFilter::reduced();
    let framed = PlHeader::new(90).insert(&symbols);
    let shaped = rrc.shape(&framed);
    group.bench_function("rrc_shape", |b| b.iter(|| black_box(rrc.shape(&framed))));
    group.bench_function("rrc_matched_filter", |b| {
        b.iter(|| black_box(rrc.filter_block(&shaped)))
    });

    group.bench_function("binary_scrambler", |b| {
        b.iter(|| {
            let mut x = bits.clone();
            BinaryScrambler::apply(&mut x);
            black_box(x)
        })
    });
    let sc = SymbolScrambler::new(1);
    group.bench_function("symbol_scrambler", |b| {
        b.iter(|| {
            let mut s = symbols.clone();
            sc.scramble(&mut s);
            black_box(s)
        })
    });

    group.bench_function("plh_correlate", |b| {
        let plh = PlHeader::new(90);
        b.iter(|| black_box(plh.correlate(&framed[..300])))
    });

    group.bench_function("awgn_channel", |b| {
        b.iter(|| {
            let mut ch = Channel::new(0.1, 0.0, 0.0, 3);
            black_box(ch.transmit(&shaped))
        })
    });

    group.bench_function("full_tx_frame", |b| b.iter(|| black_box(ctx.tx_frame(9))));
    group.finish();
}

criterion_group!(benches, table3);
criterion_main!(benches);
