//! Fig. 3 / Fig. 4 / Table I benches: strategy scheduling time at
//! representative sweep points (the full parameter sweeps are the
//! `fig3`/`fig4` binaries of `amp-experiments`).

use amp_bench::fixtures;
use amp_core::sched::{Fertac, Herad, Otac, Scheduler, Twocatac};
use amp_core::Resources;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

fn strategies() -> Vec<Box<dyn Scheduler>> {
    vec![
        Box::new(Herad::new()),
        Box::new(Twocatac::new()),
        Box::new(Fertac),
        Box::new(Otac::big()),
        Box::new(Otac::little()),
    ]
}

/// Fig. 3 shape: time vs number of tasks at R = (20, 20).
fn fig3(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    let resources = Resources::new(20, 20);
    for n in [20usize, 40, 60] {
        let chain = fixtures::chain_with(n);
        for s in strategies() {
            // 2CATAC beyond 60 tasks is skipped in the paper too.
            if s.name() == "2CATAC" && n > 60 {
                continue;
            }
            group.bench_with_input(BenchmarkId::new(s.name(), n), &chain, |b, chain| {
                b.iter(|| black_box(s.schedule(chain, resources)))
            });
        }
    }
    group.finish();
}

/// Fig. 4 shape: time vs resource count at 40 tasks.
fn fig4(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    let chain = fixtures::chain_with(40);
    for cores in [20u64, 60, 100] {
        let resources = Resources::new(cores, cores);
        for s in strategies() {
            group.bench_with_input(BenchmarkId::new(s.name(), cores), &chain, |b, chain| {
                b.iter(|| black_box(s.schedule(chain, resources)))
            });
        }
    }
    group.finish();
}

/// Table I shape: the paper's 20-task chains on its three resource pairs.
fn table1(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    let chain = fixtures::paper_chain();
    for resources in fixtures::table1_resources() {
        for s in strategies() {
            group.bench_with_input(BenchmarkId::new(s.name(), resources), &chain, |b, chain| {
                b.iter(|| black_box(s.schedule(chain, resources)))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, fig3, fig4, table1);
criterion_main!(benches);
