//! Service-level benches: end-to-end request latency through the
//! `amp-service` engine with a cold versus a warm solution cache.
//!
//! The cold group disables the cache entirely (capacity 0), so every
//! request pays the full portfolio compute; the warm group pre-populates
//! the cache with the exact request set, so every request is a cache hit.
//! The gap between the two is the cache's value on repeated instances.

use amp_core::Resources;
use amp_service::{Engine, EngineConfig, Policy, ScheduleRequest};
use amp_workload::SyntheticConfig;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

/// A small pool of distinct paper-shaped instances.
fn requests() -> Vec<ScheduleRequest> {
    let chains = SyntheticConfig::paper(0.5).generate_batch(7, 16);
    chains
        .iter()
        .map(|chain| {
            ScheduleRequest::from_chain(0, chain, Resources::new(10, 10), Policy::Portfolio)
        })
        .collect()
}

fn engine(cache_capacity: usize) -> Engine {
    Engine::start(EngineConfig {
        workers: 2,
        cache_capacity,
        ..EngineConfig::default()
    })
}

fn service_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("service_throughput");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(300));

    let reqs = requests();

    let cold = engine(0);
    group.bench_function("cold_cache", |b| {
        b.iter(|| {
            for req in &reqs {
                black_box(cold.schedule_blocking(req.clone()));
            }
        })
    });

    let warm = engine(4096);
    for req in &reqs {
        let resp = warm.schedule_blocking(req.clone());
        assert!(resp.result.is_ok(), "warm-up request must be feasible");
    }
    group.bench_function("warm_cache", |b| {
        b.iter(|| {
            for req in &reqs {
                black_box(warm.schedule_blocking(req.clone()));
            }
        })
    });

    group.finish();
    cold.shutdown();
    warm.shutdown();
}

criterion_group!(benches, service_throughput);
criterion_main!(benches);
