//! Live reconfiguration of a running pipeline: pool shrink and pool grow
//! migrations must lose, duplicate and reorder zero frames, and drain
//! accounting must be identical across both stop paths.

use amp_core::sched::{Herad, Scheduler};
use amp_core::{CoreType, Resources, Solution, Stage, Task, TaskChain};
use amp_runtime::{spin_for_micros, FnWork, PipelineSpec, RunConfig, RuntimeTask, VirtualMachine};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread;
use std::time::Duration;

/// Wall-clock tests contend for CPU when run in parallel; serialize them.
fn serial() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

type Trace = Arc<Mutex<Vec<(u64, Vec<u64>)>>>;

/// Two paced tasks (a sequential feeder and a replicable heavy stage) that
/// append their index to the frame payload; the heavy task also records
/// `(seq, payload)` at the end so completeness, uniqueness and traversal
/// order are all checkable after the run.
fn traced_spec(feeder_us: f64, heavy_us: f64) -> (PipelineSpec<Vec<u64>>, Trace) {
    let trace: Trace = Arc::new(Mutex::new(Vec::new()));
    let sink = trace.clone();
    let tasks = vec![
        RuntimeTask::new(
            "feed",
            false,
            FnWork(move |seq: u64, d: &mut Vec<u64>, _c: CoreType| {
                let _ = spin_for_micros(feeder_us, seq | 1);
                d.push(0);
            }),
        ),
        RuntimeTask::new(
            "heavy",
            true,
            FnWork(move |seq: u64, d: &mut Vec<u64>, _c: CoreType| {
                let _ = spin_for_micros(heavy_us, seq | 1);
                d.push(1);
                sink.lock().unwrap().push((seq, d.clone()));
            }),
        ),
    ];
    (PipelineSpec::new(Arc::new(|_| Vec::new()), tasks), trace)
}

fn traced_chain() -> TaskChain {
    TaskChain::new(vec![Task::new(100, 200, false), Task::new(400, 800, true)])
}

/// Asserts the trace holds exactly frames `0..total`, each having
/// traversed both tasks in order.
fn assert_lossless(trace: &Trace, total: u64) {
    let mut seen = trace.lock().unwrap().clone();
    seen.sort_unstable();
    assert_eq!(seen.len() as u64, total, "lost or duplicated frames");
    for (i, (seq, path)) in seen.iter().enumerate() {
        assert_eq!(*seq, i as u64, "hole or duplicate at frame {i}");
        assert_eq!(path, &vec![0, 1], "frame {seq} traversal {path:?}");
    }
}

/// Waits (bounded) for the live pipeline to pass `target` sink frames.
fn wait_frames(live: &amp_runtime::RunningPipeline<Vec<u64>>, target: u64) {
    let deadline = std::time::Instant::now() + Duration::from_secs(20);
    while live.frames_done() < target {
        assert!(
            std::time::Instant::now() < deadline,
            "pipeline stalled before frame {target}"
        );
        thread::yield_now();
    }
}

/// The headline contract: a live pool-shrink migration followed by a
/// pool-grow back, with zero lost, duplicated or reordered frames, on
/// worker threads that are re-assigned rather than respawned.
#[test]
fn shrink_then_grow_migration_is_lossless() {
    let _guard = serial();
    let chain = traced_chain();
    let wide = VirtualMachine::new(Resources::new(3, 0));
    let narrow = VirtualMachine::new(Resources::new(1, 0));
    let herad = Herad::new();
    let wide_solution = herad.schedule(&chain, wide.resources()).unwrap();
    assert!(
        wide_solution.stages().len() > 1,
        "wide pool must pipeline: {wide_solution}"
    );

    let total = 300u64;
    let (spec, trace) = traced_spec(100.0, 400.0);
    let live = spec
        .launch(
            &chain,
            &wide_solution,
            &wide,
            &RunConfig::with_frames(total),
        )
        .unwrap();

    wait_frames(&live, 60);
    let shrink = live.reconfigure(&narrow).expect("shrink migration");
    assert!(shrink.migrated_stages > 0, "{shrink:?}");
    assert_eq!(
        shrink.workers_parked, 2,
        "3 wide workers shrink to 1: {shrink:?}"
    );
    assert_eq!(shrink.workers_added, 0);
    assert!(shrink.boundary_frame >= 60 && shrink.boundary_frame < total);

    wait_frames(&live, shrink.boundary_frame + 40);
    let grow = live.reconfigure(&wide).expect("grow migration");
    assert!(grow.migrated_stages > 0, "{grow:?}");
    // The wide epoch re-assigns the parked threads — nothing is respawned.
    assert_eq!(grow.workers_added, 0, "{grow:?}");
    assert_eq!(grow.workers_parked, 0, "{grow:?}");
    assert!(grow.boundary_frame > shrink.boundary_frame);

    let report = live.join();
    assert_eq!(report.frames, total);
    assert_eq!(report.epochs, 3);
    assert_eq!(report.reconfigs.len(), 2);
    assert_eq!(report.reconfigs[0].boundary_frame, shrink.boundary_frame);
    assert_eq!(report.reconfigs[1].boundary_frame, grow.boundary_frame);
    for event in &report.reconfigs {
        assert!(event.downtime_us > 0.0, "{event:?}");
        assert!(event.sink_gap_us >= 0.0, "{event:?}");
    }
    assert_lossless(&trace, total);
}

/// Growing from a single-worker launch spawns exactly the missing worker
/// threads, and the migrated pipeline still accounts for every frame.
#[test]
fn pool_grow_spawns_only_the_missing_workers() {
    let _guard = serial();
    let chain = traced_chain();
    let narrow = VirtualMachine::new(Resources::new(1, 0));
    let wide = VirtualMachine::new(Resources::new(3, 0));
    let herad = Herad::new();
    let narrow_solution = herad.schedule(&chain, narrow.resources()).unwrap();
    assert_eq!(narrow_solution.stages().len(), 1);

    let total = 240u64;
    let (spec, trace) = traced_spec(100.0, 400.0);
    let live = spec
        .launch(
            &chain,
            &narrow_solution,
            &narrow,
            &RunConfig::with_frames(total),
        )
        .unwrap();

    wait_frames(&live, 40);
    let grow = live.reconfigure(&wide).expect("grow migration");
    assert_eq!(grow.workers_added, 2, "1 worker grows to 3: {grow:?}");
    assert_eq!(grow.workers_parked, 0);

    let report = live.join();
    assert_eq!(report.frames, total);
    assert_eq!(report.epochs, 2);
    assert_lossless(&trace, total);
    // Final-epoch stage stats describe the wide decomposition.
    assert!(report.stages.len() > 1);
}

/// Re-profiled weights: a chain migration through
/// `reconfigure_with_chain` re-solves for the new weights and validates
/// the chain shape against the running spec.
#[test]
fn chain_migration_revalidates_and_resolves() {
    let _guard = serial();
    let chain = traced_chain();
    let machine = VirtualMachine::new(Resources::new(3, 0));
    let solution = Herad::new().schedule(&chain, machine.resources()).unwrap();
    let total = 200u64;
    let (spec, trace) = traced_spec(100.0, 400.0);
    let live = spec
        .launch(&chain, &solution, &machine, &RunConfig::with_frames(total))
        .unwrap();
    wait_frames(&live, 30);

    // Wrong shape: typed errors, no migration.
    let short = TaskChain::new(vec![Task::new(1, 2, true)]);
    assert!(matches!(
        live.reconfigure_with_chain(&short, &machine),
        Err(amp_runtime::RuntimeError::ChainMismatch { .. })
    ));
    let flipped = TaskChain::new(vec![Task::new(100, 200, true), Task::new(400, 800, true)]);
    assert!(matches!(
        live.reconfigure_with_chain(&flipped, &machine),
        Err(amp_runtime::RuntimeError::ReplicabilityMismatch(0))
    ));

    // Re-profiled weights that invert the bottleneck: the feeder now
    // dominates, so the optimal decomposition changes.
    let reprofiled = TaskChain::new(vec![Task::new(900, 1800, false), Task::new(200, 400, true)]);
    let event = live
        .reconfigure_with_chain(&reprofiled, &machine)
        .expect("chain migration");
    assert!(event.migrated_stages > 0, "{event:?}");

    let report = live.join();
    assert_eq!(report.frames, total);
    assert_eq!(report.epochs, 2);
    assert_lossless(&trace, total);
}

/// Dry-run planning never touches the running pipeline.
#[test]
fn plan_is_a_pure_preview() {
    let _guard = serial();
    let chain = traced_chain();
    let wide = VirtualMachine::new(Resources::new(3, 0));
    let narrow = VirtualMachine::new(Resources::new(1, 0));
    let solution = Herad::new().schedule(&chain, wide.resources()).unwrap();
    let total = 120u64;
    let (spec, trace) = traced_spec(100.0, 400.0);
    let live = spec
        .launch(&chain, &solution, &wide, &RunConfig::with_frames(total))
        .unwrap();
    let plan = live.plan(&narrow).expect("preview");
    assert_eq!(plan.from.stages(), solution.stages());
    assert!(!plan.diff.is_noop());
    assert!(plan.diff.migrated_stages() > 0);
    let report = live.join();
    assert_eq!(report.frames, total);
    assert_eq!(report.epochs, 1, "a preview must not migrate");
    assert!(report.reconfigs.is_empty());
    assert_lossless(&trace, total);
}

/// Satellite pin for the drain-accounting fix: a duration stop must drain
/// exactly the claimed-and-processed frames — the sink trace is a
/// contiguous prefix `0..frames` with no holes (a frame claimed by the
/// source but dropped mid-pipeline would leave one).
#[test]
fn duration_stop_drains_exactly_the_produced_frames() {
    let _guard = serial();
    let chain = traced_chain();
    let machine = VirtualMachine::new(Resources::new(3, 0));
    let solution = Herad::new().schedule(&chain, machine.resources()).unwrap();
    let (spec, trace) = traced_spec(100.0, 400.0);
    let report = spec
        .run(
            &chain,
            &solution,
            &machine,
            &RunConfig::with_duration(Duration::from_millis(40)),
        )
        .unwrap();
    assert!(report.frames > 0);
    assert_lossless(&trace, report.frames);
}

/// A stop() during a replicated run drains contiguously too (the other
/// half of the unified drain semantics).
#[test]
fn manual_stop_drains_contiguously() {
    let _guard = serial();
    let chain = traced_chain();
    let machine = VirtualMachine::new(Resources::new(3, 0));
    let solution = Herad::new().schedule(&chain, machine.resources()).unwrap();
    let (spec, trace) = traced_spec(100.0, 400.0);
    let cfg = RunConfig {
        frames: None,
        max_duration: None,
        queue_capacity: 8,
        warmup_fraction: 0.2,
    };
    let live = spec.launch(&chain, &solution, &machine, &cfg).unwrap();
    wait_frames(&live, 25);
    live.stop();
    let report = live.join();
    assert!(report.frames >= 25);
    assert_lossless(&trace, report.frames);
}

/// Migration at a boundary right next to the frame limit: reconfigure
/// close to the end and make sure nothing is lost even when the new epoch
/// is tiny.
#[test]
fn late_migration_with_a_tiny_final_epoch_is_lossless() {
    let _guard = serial();
    let chain = TaskChain::new(vec![Task::new(300, 600, true)]);
    let trace: Trace = Arc::new(Mutex::new(Vec::new()));
    let sink = trace.clone();
    let spec = PipelineSpec::new(
        Arc::new(|_| Vec::new()),
        vec![RuntimeTask::new(
            "only",
            true,
            FnWork(move |seq: u64, d: &mut Vec<u64>, _c: CoreType| {
                let _ = spin_for_micros(300.0, seq | 1);
                d.push(0);
                d.push(1);
                sink.lock().unwrap().push((seq, d.clone()));
            }),
        )],
    );
    let wide = VirtualMachine::new(Resources::new(3, 0));
    let narrow = VirtualMachine::new(Resources::new(1, 0));
    let wide_solution = Solution::new(vec![Stage::new(0, 0, 3, CoreType::Big)]);
    let total = 120u64;
    let live = spec
        .launch(
            &chain,
            &wide_solution,
            &wide,
            &RunConfig::with_frames(total),
        )
        .unwrap();
    wait_frames(&live, total - 20);
    match live.reconfigure(&narrow) {
        Ok(event) => assert!(event.boundary_frame < total, "{event:?}"),
        // The run may legitimately finish while quiescing.
        Err(amp_runtime::RuntimeError::Terminated) => {}
        Err(e) => panic!("unexpected error {e}"),
    }
    let report = live.join();
    assert_eq!(report.frames, total);
    assert_lossless(&trace, total);
}
