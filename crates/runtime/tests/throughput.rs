//! End-to-end: measured runtime throughput tracks the analytic period of
//! the schedule.
//!
//! Wall-clock speedup from replication needs physical parallelism; on
//! single-core hosts (like the reproduction container) those assertions are
//! skipped — the semantics (ordering, completeness, back-pressure) are
//! covered by the unit tests regardless. On a multicore host the full
//! assertions run.

use amp_core::sched::{Herad, Scheduler};
use amp_core::{Resources, Task, TaskChain};
use amp_runtime::{PipelineSpec, RunConfig, RuntimeTask, VirtualMachine, WeightedWork};
use std::sync::{Arc, Mutex, MutexGuard};

/// Wall-clock measurements contend for CPU when the harness runs tests in
/// parallel (especially on single-core hosts); serialize them.
fn serial() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn spec_for(chain: &TaskChain) -> PipelineSpec<u64> {
    let tasks = chain
        .tasks()
        .iter()
        .enumerate()
        .map(|(i, t)| RuntimeTask::new(&format!("t{i}"), t.replicable, WeightedWork::from_task(t)))
        .collect();
    PipelineSpec::new(Arc::new(|seq| seq), tasks)
}

fn host_cpus() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

#[test]
fn measured_fps_tracks_analytic_period() {
    let _guard = serial();
    // Weights in microseconds; bottleneck is the 800 µs replicable task.
    let chain = TaskChain::new(vec![
        Task::new(100, 250, false),
        Task::new(800, 1900, true),
        Task::new(100, 260, false),
    ]);
    let res = Resources::new(2, 2);
    let solution = Herad::new().schedule(&chain, res).unwrap();
    let expected_period_us = solution.period(&chain).to_f64();

    let machine = VirtualMachine::new(res);
    let report = spec_for(&chain)
        .run(&chain, &solution, &machine, &RunConfig::with_frames(400))
        .unwrap();
    assert_eq!(report.frames, 400);

    // With fewer physical cores than workers, throughput is bounded by the
    // serialized work per frame instead of the pipeline period.
    let workers: u64 = solution.stages().iter().map(|s| s.cores).sum();
    if host_cpus() < workers as usize {
        let serial_us: f64 = chain.total(amp_core::CoreType::Big) as f64;
        let bound_fps = 1e6 / serial_us;
        assert!(
            report.fps < bound_fps * 1.2,
            "measured {} fps above the single-core bound {}",
            report.fps,
            bound_fps
        );
        return;
    }
    let expected_fps = 1e6 / expected_period_us;
    let rel = (report.fps - expected_fps).abs() / expected_fps;
    assert!(
        rel < 0.40,
        "measured {} fps vs expected {} fps (period {} µs, got {} µs)",
        report.fps,
        expected_fps,
        expected_period_us,
        report.period_us
    );
}

#[test]
fn replication_improves_measured_throughput() {
    let _guard = serial();
    if host_cpus() < 3 {
        eprintln!(
            "skipping: requires >= 3 physical cores, found {}",
            host_cpus()
        );
        return;
    }
    let chain = TaskChain::new(vec![Task::new(600, 1200, true)]);
    let machine = VirtualMachine::new(Resources::new(3, 0));
    let spec = spec_for(&chain);

    let single =
        amp_core::Solution::new(vec![amp_core::Stage::new(0, 0, 1, amp_core::CoreType::Big)]);
    let triple =
        amp_core::Solution::new(vec![amp_core::Stage::new(0, 0, 3, amp_core::CoreType::Big)]);
    let r1 = spec
        .run(&chain, &single, &machine, &RunConfig::with_frames(200))
        .unwrap();
    let r3 = spec
        .run(&chain, &triple, &machine, &RunConfig::with_frames(200))
        .unwrap();
    assert!(
        r3.fps > r1.fps * 1.8,
        "3x replication gave {} vs {} fps",
        r3.fps,
        r1.fps
    );
}

#[test]
fn little_cores_are_slower_than_big_cores() {
    let _guard = serial();
    // Needs no parallelism: both runs use a single worker.
    let chain = TaskChain::new(vec![Task::new(500, 2000, true)]);
    let machine = VirtualMachine::new(Resources::new(1, 1));
    let spec = spec_for(&chain);
    let big = amp_core::Solution::new(vec![amp_core::Stage::new(0, 0, 1, amp_core::CoreType::Big)]);
    let little = amp_core::Solution::new(vec![amp_core::Stage::new(
        0,
        0,
        1,
        amp_core::CoreType::Little,
    )]);
    let rb = spec
        .run(&chain, &big, &machine, &RunConfig::with_frames(150))
        .unwrap();
    let rl = spec
        .run(&chain, &little, &machine, &RunConfig::with_frames(150))
        .unwrap();
    assert!(
        rb.fps > rl.fps * 2.0,
        "big {} fps vs little {} fps",
        rb.fps,
        rl.fps
    );
}

#[test]
fn sequential_single_worker_fps_matches_task_cost() {
    let _guard = serial();
    // One worker, 1000 µs per frame -> ~1000 fps. The process-wide spin
    // calibration can be skewed ~2x either way when other test binaries
    // contend for this host's single CPU, so only the order of magnitude
    // is asserted.
    let chain = TaskChain::new(vec![Task::new(1000, 2000, false)]);
    let machine = VirtualMachine::new(Resources::new(1, 0));
    let spec = spec_for(&chain);
    let s = amp_core::Solution::new(vec![amp_core::Stage::new(0, 0, 1, amp_core::CoreType::Big)]);
    let r = spec
        .run(&chain, &s, &machine, &RunConfig::with_frames(200))
        .unwrap();
    assert!(
        (250.0..=4000.0).contains(&r.fps),
        "expected ~1000 fps, measured {}",
        r.fps
    );
}
