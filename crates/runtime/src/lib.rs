//! # amp-runtime — a StreamPU-style streaming runtime on virtual
//! heterogeneous cores
//!
//! The paper executes its schedules with [StreamPU], a C++ DSEL/runtime for
//! software-defined radio, on real big.LITTLE-class processors (Apple M1
//! Ultra, Intel Ultra 9 185H). Neither exists here, so this crate provides
//! the substrate the schedulers need, with the same execution semantics:
//!
//! * a task chain is decomposed into **pipeline stages** (one
//!   [`amp_core::Solution`] stage = one set of replica worker threads);
//! * **replicated stages** process frames round-robin while *adaptors*
//!   preserve frame order — including direct replicated→replicated links,
//!   the StreamPU v1.6.0 extension the paper's schedules `S16..S18` need;
//! * inter-stage buffers are **bounded** (back-pressure);
//! * each worker thread is bound to a **virtual core** of type big or
//!   little; a task's execution cost on a virtual core is its profiled
//!   weight on that core type, realized by calibrated spin-work (optionally
//!   wrapped around real payload computation, as in [`amp_dvbs2`'s blocks]).
//!
//! Virtualizing the heterogeneity is the documented substitution from
//! DESIGN.md: pipeline throughput depends on per-task latency per core
//! type — exactly the quantity injected — so schedule quality comparisons
//! (who wins, by how much) carry over even though the host's cores are
//! physically identical.
//!
//! [StreamPU]: https://github.com/aff3ct/streampu
//!
//! ## Example
//!
//! ```
//! use amp_core::{Task, TaskChain, Resources, sched::{Herad, Scheduler}};
//! use amp_runtime::{PipelineSpec, RunConfig, RuntimeTask, VirtualMachine, WeightedWork};
//! use std::sync::Arc;
//!
//! // Two-task chain: weights in microseconds on (big, little) cores.
//! let chain = TaskChain::new(vec![
//!     Task::new(50, 100, false),
//!     Task::new(200, 400, true),
//! ]);
//! let solution = Herad::new().schedule(&chain, Resources::new(1, 2)).unwrap();
//!
//! // Frames carry a u64 checksum; each task spins for its weight and mixes
//! // the sequence number into the payload.
//! let spec = PipelineSpec::new(
//!     Arc::new(|seq| seq),
//!     chain
//!         .tasks()
//!         .iter()
//!         .map(|t| RuntimeTask::new(&t.name, t.replicable, WeightedWork::from_task(t)))
//!         .collect(),
//! );
//! let machine = VirtualMachine::new(Resources::new(1, 2));
//! let report = spec
//!     .run(&chain, &solution, &machine, &RunConfig::with_frames(64))
//!     .unwrap();
//! assert_eq!(report.frames, 64);
//! assert!(report.fps > 0.0);
//! ```

mod adaptor;
mod pipeline;
mod profiler;
mod report;
mod spin;
mod vcore;
mod work;

pub use adaptor::OrderedRing;
pub use pipeline::{
    PipelineSpec, ReconfigPlan, RunConfig, RunningPipeline, RuntimeError, RuntimeTask,
};
pub use profiler::{profile_chain, ProfileConfig};
pub use report::{ReconfigEvent, RunReport, StageRuntimeReport};
pub use spin::{calibrated_spin, spin_for_micros, SpinCalibration};
pub use vcore::{VirtualCore, VirtualMachine};
pub use work::{FnWork, TaskWork, WeightedWork};
