//! Task work models: what a task *does* when a replica executes it.

use crate::spin;
use amp_core::{CoreType, Task};

/// The body of one task of the chain, executed once per frame by whichever
/// replica owns the frame. `core` is the virtual core type the replica is
/// bound to — implementations make their cost depend on it.
pub trait TaskWork<D>: Send + Sync {
    /// Processes frame `seq` in place.
    fn process(&self, seq: u64, data: &mut D, core: CoreType);
}

/// Pure calibrated spin-work: costs the task's profiled weight (in
/// microseconds) on the replica's core type. The workhorse for synthetic
/// chains and for padding functional blocks to profiled latencies.
#[derive(Clone, Copy, Debug)]
pub struct WeightedWork {
    big_us: f64,
    little_us: f64,
}

impl WeightedWork {
    /// Work costing `big_us` µs on big cores and `little_us` µs on little
    /// ones.
    #[must_use]
    pub fn new(big_us: f64, little_us: f64) -> Self {
        WeightedWork { big_us, little_us }
    }

    /// Work costing the task's weights, read as microseconds.
    #[must_use]
    pub fn from_task(task: &Task) -> Self {
        WeightedWork::new(task.weight_big as f64, task.weight_little as f64)
    }

    /// Work costing the task's weights scaled by `us_per_unit` microseconds
    /// per weight unit.
    #[must_use]
    pub fn from_task_scaled(task: &Task, us_per_unit: f64) -> Self {
        WeightedWork::new(
            task.weight_big as f64 * us_per_unit,
            task.weight_little as f64 * us_per_unit,
        )
    }

    /// The cost on a given core type, in microseconds.
    #[must_use]
    pub fn cost_us(&self, core: CoreType) -> f64 {
        match core {
            CoreType::Big => self.big_us,
            CoreType::Little => self.little_us,
        }
    }
}

impl<D> TaskWork<D> for WeightedWork {
    fn process(&self, seq: u64, _data: &mut D, core: CoreType) {
        let _ = spin::spin_for_micros(self.cost_us(core), seq | 1);
    }
}

/// Adapter turning a closure into a [`TaskWork`].
pub struct FnWork<F>(pub F);

impl<D, F> TaskWork<D> for FnWork<F>
where
    F: Fn(u64, &mut D, CoreType) + Send + Sync,
{
    fn process(&self, seq: u64, data: &mut D, core: CoreType) {
        (self.0)(seq, data, core);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weighted_work_costs_by_core_type() {
        let w = WeightedWork::new(100.0, 400.0);
        assert_eq!(w.cost_us(CoreType::Big), 100.0);
        assert_eq!(w.cost_us(CoreType::Little), 400.0);
    }

    #[test]
    fn from_task_scales() {
        let t = Task::new(50, 150, true);
        let w = WeightedWork::from_task_scaled(&t, 2.0);
        assert_eq!(w.cost_us(CoreType::Big), 100.0);
        assert_eq!(w.cost_us(CoreType::Little), 300.0);
    }

    #[test]
    fn fn_work_runs_the_closure() {
        let w = FnWork(|seq: u64, data: &mut u64, _core: CoreType| *data += seq);
        let mut d = 1u64;
        w.process(4, &mut d, CoreType::Big);
        assert_eq!(d, 5);
    }
}
