//! Virtual heterogeneous machine: a pool of big/little *virtual* cores.
//!
//! The host's physical cores are assumed identical; heterogeneity is
//! injected by the work model (a task costs its big-core weight on a
//! virtual big core and its little-core weight on a virtual little core).
//! The machine hands cores to pipeline replicas with the *compact
//! placement* the paper uses: stages claim consecutive core ids of their
//! type, in pipeline order.

use amp_core::{CoreType, Resources, Solution};
use serde::{Deserialize, Serialize};

/// One virtual core.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct VirtualCore {
    /// Dense id within the machine (big cores first, then little).
    pub id: usize,
    /// The core's type.
    pub kind: CoreType,
}

/// A fixed pool of virtual big and little cores.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct VirtualMachine {
    cores: Vec<VirtualCore>,
    resources: Resources,
}

impl VirtualMachine {
    /// Builds a machine with `resources.big` big and `resources.little`
    /// little cores.
    #[must_use]
    pub fn new(resources: Resources) -> Self {
        let mut cores = Vec::with_capacity(resources.total() as usize);
        for i in 0..resources.big {
            cores.push(VirtualCore {
                id: i as usize,
                kind: CoreType::Big,
            });
        }
        for i in 0..resources.little {
            cores.push(VirtualCore {
                id: (resources.big + i) as usize,
                kind: CoreType::Little,
            });
        }
        VirtualMachine { cores, resources }
    }

    /// The machine's resource pool.
    #[must_use]
    pub fn resources(&self) -> Resources {
        self.resources
    }

    /// All cores, big cores first.
    #[must_use]
    pub fn cores(&self) -> &[VirtualCore] {
        &self.cores
    }

    /// Compact placement of a solution's replicas: returns, per stage, the
    /// virtual cores assigned to its replicas (consecutive ids per type, in
    /// stage order). `None` if the solution needs more cores of some type
    /// than the machine has.
    #[must_use]
    pub fn place(&self, solution: &Solution) -> Option<Vec<Vec<VirtualCore>>> {
        let used = solution.used_cores();
        if used.big > self.resources.big || used.little > self.resources.little {
            return None;
        }
        let mut next_big = 0u64;
        let mut next_little = 0u64;
        let placement = solution
            .stages()
            .iter()
            .map(|stage| {
                (0..stage.cores)
                    .map(|_| match stage.core_type {
                        CoreType::Big => {
                            let id = next_big as usize;
                            next_big += 1;
                            VirtualCore {
                                id,
                                kind: CoreType::Big,
                            }
                        }
                        CoreType::Little => {
                            let id = (self.resources.big + next_little) as usize;
                            next_little += 1;
                            VirtualCore {
                                id,
                                kind: CoreType::Little,
                            }
                        }
                    })
                    .collect()
            })
            .collect();
        Some(placement)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amp_core::Stage;

    #[test]
    fn machine_layout_is_big_first() {
        let m = VirtualMachine::new(Resources::new(2, 3));
        assert_eq!(m.cores().len(), 5);
        assert_eq!(m.cores()[0].kind, CoreType::Big);
        assert_eq!(m.cores()[1].kind, CoreType::Big);
        assert_eq!(m.cores()[2].kind, CoreType::Little);
        assert_eq!(m.cores()[4].id, 4);
    }

    #[test]
    fn placement_is_compact_and_typed() {
        let m = VirtualMachine::new(Resources::new(3, 2));
        let s = Solution::new(vec![
            Stage::new(0, 0, 2, CoreType::Big),
            Stage::new(1, 1, 1, CoreType::Little),
            Stage::new(2, 2, 1, CoreType::Big),
        ]);
        let p = m.place(&s).unwrap();
        assert_eq!(p[0].len(), 2);
        assert_eq!(p[0][0].id, 0);
        assert_eq!(p[0][1].id, 1);
        assert_eq!(p[1][0].id, 3); // first little core
        assert_eq!(p[1][0].kind, CoreType::Little);
        assert_eq!(p[2][0].id, 2); // third big core
    }

    #[test]
    fn placement_fails_when_oversubscribed() {
        let m = VirtualMachine::new(Resources::new(1, 0));
        let s = Solution::new(vec![Stage::new(0, 0, 2, CoreType::Big)]);
        assert!(m.place(&s).is_none());
        let s = Solution::new(vec![Stage::new(0, 0, 1, CoreType::Little)]);
        assert!(m.place(&s).is_none());
    }
}
