//! Order-preserving bounded buffers between pipeline stages — the
//! equivalent of StreamPU's scatter/gather adaptors.
//!
//! An [`OrderedRing`] connects `n` producer replicas to `m` consumer
//! replicas (any `n, m >= 1`, covering the replicated→replicated links of
//! StreamPU v1.6.0). Producers push frames tagged with a global sequence
//! number; consumers pop *specific* sequence numbers (replica `w` of an
//! `r`-replica stage pops `w, w+r, w+2r, ...`), which realizes round-robin
//! scatter with end-to-end frame ordering.
//!
//! Capacity is a sliding window over sequence numbers: frame `s` may enter
//! only once every frame below `s - capacity + 1` has been popped, which
//! gives the same back-pressure semantics as the `amp-sim` recurrence.

use parking_lot::{Condvar, Mutex};
use std::collections::{BTreeSet, HashMap};

struct RingState<D> {
    /// In-flight frames, keyed by sequence number.
    frames: HashMap<u64, D>,
    /// Lowest sequence number not yet popped.
    next_out: u64,
    /// Frames popped ahead of `next_out` (popped out of order by replicas).
    popped_ahead: BTreeSet<u64>,
    /// Total frame count, once the producer side has finished.
    closed_total: Option<u64>,
}

/// A bounded, order-preserving n→m frame buffer.
pub struct OrderedRing<D> {
    state: Mutex<RingState<D>>,
    not_full: Condvar,
    available: Condvar,
    capacity: u64,
}

impl<D> OrderedRing<D> {
    /// Creates a ring admitting at most `capacity` in-flight frames,
    /// starting at sequence number 0.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    #[must_use]
    pub fn new(capacity: u64) -> Self {
        OrderedRing::with_base(capacity, 0)
    }

    /// Creates a ring whose first frame is sequence number `base` — the
    /// epoch-migration form: after a reconfiguration at frame boundary
    /// `base`, fresh rings carry frames `base..` and the sliding capacity
    /// window opens at `base` instead of 0.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    #[must_use]
    pub fn with_base(capacity: u64, base: u64) -> Self {
        assert!(capacity > 0, "ring capacity must be at least 1");
        OrderedRing {
            state: Mutex::new(RingState {
                frames: HashMap::new(),
                next_out: base,
                popped_ahead: BTreeSet::new(),
                closed_total: None,
            }),
            not_full: Condvar::new(),
            available: Condvar::new(),
            capacity,
        }
    }

    /// Inserts frame `seq`, blocking while the window is full.
    ///
    /// # Panics
    /// Panics on duplicate sequence numbers or pushes past a close — both
    /// are pipeline wiring bugs, not runtime conditions.
    pub fn push(&self, seq: u64, data: D) {
        let mut st = self.state.lock();
        assert!(
            st.closed_total.is_none_or(|t| seq < t),
            "push of frame {seq} after close"
        );
        while seq >= st.next_out + self.capacity {
            self.not_full.wait(&mut st);
        }
        let prev = st.frames.insert(seq, data);
        assert!(prev.is_none(), "duplicate push of frame {seq}");
        self.available.notify_all();
    }

    /// Removes and returns frame `seq`, blocking until it arrives. Returns
    /// `None` when the ring is closed with a total at or below `seq` (the
    /// consumer is past the final frame).
    #[must_use]
    pub fn pop(&self, seq: u64) -> Option<D> {
        let mut st = self.state.lock();
        loop {
            if let Some(data) = st.frames.remove(&seq) {
                if seq == st.next_out {
                    st.next_out += 1;
                    loop {
                        let next = st.next_out;
                        if !st.popped_ahead.remove(&next) {
                            break;
                        }
                        st.next_out += 1;
                    }
                } else {
                    st.popped_ahead.insert(seq);
                }
                self.not_full.notify_all();
                return Some(data);
            }
            if let Some(total) = st.closed_total {
                if seq >= total {
                    return None;
                }
            }
            self.available.wait(&mut st);
        }
    }

    /// Marks the producer side finished: exactly `total` frames
    /// (sequence numbers `0..total`) will ever exist. Wakes all consumers.
    pub fn close(&self, total: u64) {
        let mut st = self.state.lock();
        debug_assert!(st.closed_total.is_none(), "ring closed twice");
        st.closed_total = Some(total);
        self.available.notify_all();
    }

    /// The total frame count, once closed.
    #[must_use]
    pub fn closed_total(&self) -> Option<u64> {
        self.state.lock().closed_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn passes_frames_in_any_pop_order() {
        let ring = OrderedRing::new(8);
        ring.push(1, "b");
        ring.push(0, "a");
        assert_eq!(ring.pop(1), Some("b"));
        assert_eq!(ring.pop(0), Some("a"));
    }

    #[test]
    fn capacity_window_blocks_producers() {
        let ring = Arc::new(OrderedRing::new(2));
        let r = ring.clone();
        let producer = thread::spawn(move || {
            for seq in 0..6u64 {
                r.push(seq, seq);
            }
            r.close(6);
        });
        // Frame 2 may only enter once frame 0 is popped; popping slowly
        // must still drain everything.
        let mut got = Vec::new();
        for seq in 0..6u64 {
            got.push(ring.pop(seq).unwrap());
        }
        producer.join().unwrap();
        assert_eq!(got, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(ring.pop(6), None);
    }

    #[test]
    fn n_to_m_with_round_robin_consumers() {
        // 2 producers, 3 consumers, 60 frames.
        let ring = Arc::new(OrderedRing::new(4));
        let total = 60u64;
        let mut handles = Vec::new();
        for p in 0..2u64 {
            let r = ring.clone();
            handles.push(thread::spawn(move || {
                let mut seq = p;
                while seq < total {
                    r.push(seq, seq * 10);
                    seq += 2;
                }
            }));
        }
        let producers = handles;
        let closer = {
            let r = ring.clone();
            thread::spawn(move || r.close(total))
        };
        let mut consumers = Vec::new();
        for w in 0..3u64 {
            let r = ring.clone();
            consumers.push(thread::spawn(move || {
                let mut seq = w;
                let mut got = Vec::new();
                while let Some(v) = r.pop(seq) {
                    got.push((seq, v));
                    seq += 3;
                }
                got
            }));
        }
        for h in producers {
            h.join().unwrap();
        }
        closer.join().unwrap();
        let mut all: Vec<(u64, u64)> = consumers
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all.len(), 60);
        for (i, (seq, v)) in all.iter().enumerate() {
            assert_eq!(*seq, i as u64);
            assert_eq!(*v, seq * 10);
        }
    }

    #[test]
    fn close_wakes_waiting_consumers() {
        let ring: Arc<OrderedRing<u64>> = Arc::new(OrderedRing::new(4));
        let r = ring.clone();
        let consumer = thread::spawn(move || r.pop(5));
        thread::sleep(std::time::Duration::from_millis(20));
        ring.close(3);
        assert_eq!(consumer.join().unwrap(), None);
    }

    #[test]
    fn pop_before_close_still_returns_frames_below_total() {
        let ring = OrderedRing::new(4);
        ring.push(0, 7u64);
        ring.close(1);
        assert_eq!(ring.pop(0), Some(7));
        assert_eq!(ring.pop(1), None);
    }

    #[test]
    fn based_ring_windows_from_its_base() {
        // An epoch ring starting at frame 1000 must admit 1000 and 1001
        // immediately (capacity 2) and block 1002 until 1000 is popped.
        let ring = Arc::new(OrderedRing::with_base(2, 1000));
        ring.push(1000, "a");
        ring.push(1001, "b");
        let r = ring.clone();
        let producer = thread::spawn(move || {
            r.push(1002, "c");
            r.close(1003);
        });
        assert_eq!(ring.pop(1000), Some("a"));
        assert_eq!(ring.pop(1001), Some("b"));
        assert_eq!(ring.pop(1002), Some("c"));
        producer.join().unwrap();
        assert_eq!(ring.pop(1003), None);
    }

    #[test]
    fn based_ring_closed_empty_returns_none_at_base() {
        let ring: OrderedRing<u64> = OrderedRing::with_base(4, 50);
        ring.close(50);
        assert_eq!(ring.pop(50), None);
    }

    #[test]
    #[should_panic(expected = "duplicate push")]
    fn duplicate_push_panics() {
        let ring = OrderedRing::new(4);
        ring.push(0, 1u64);
        ring.push(0, 2u64);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_panics() {
        let _ = OrderedRing::<u64>::new(0);
    }
}
