//! Pipeline construction and execution.

use crate::adaptor::OrderedRing;
use crate::report::{RunReport, StageRuntimeReport};
use crate::vcore::VirtualMachine;
use crate::work::TaskWork;
use amp_core::{Solution, TaskChain};
use parking_lot::Mutex;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// One task of a runtime pipeline: the scheduling metadata (name,
/// replicability) plus the work executed per frame.
pub struct RuntimeTask<D> {
    /// Task name (diagnostics only).
    pub name: String,
    /// Must match the corresponding [`amp_core::Task::replicable`] flag.
    pub replicable: bool,
    /// Per-frame work body.
    pub work: Arc<dyn TaskWork<D>>,
}

impl<D> RuntimeTask<D> {
    /// Builds a task from any work implementation.
    pub fn new(name: &str, replicable: bool, work: impl TaskWork<D> + 'static) -> Self {
        RuntimeTask {
            name: name.to_string(),
            replicable,
            work: Arc::new(work),
        }
    }
}

/// Errors reported by [`PipelineSpec::run`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuntimeError {
    /// The spec has a different number of tasks than the scheduled chain.
    ChainMismatch {
        /// Tasks in the spec.
        spec: usize,
        /// Tasks in the chain.
        chain: usize,
    },
    /// A task's replicability flag disagrees with the chain's.
    ReplicabilityMismatch(usize),
    /// The solution fails [`Solution::validate`] for the chain.
    InvalidSolution(amp_core::ValidationError),
    /// The machine has fewer cores of some type than the solution uses.
    Placement,
    /// Neither a frame count nor a duration was requested.
    NoTerminationCondition,
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::ChainMismatch { spec, chain } => {
                write!(f, "spec has {spec} tasks but the chain has {chain}")
            }
            RuntimeError::ReplicabilityMismatch(i) => {
                write!(f, "task {i} replicability differs between spec and chain")
            }
            RuntimeError::InvalidSolution(e) => write!(f, "invalid solution: {e}"),
            RuntimeError::Placement => write!(f, "solution does not fit the machine"),
            RuntimeError::NoTerminationCondition => {
                write!(f, "run needs a frame count or a duration")
            }
        }
    }
}

impl std::error::Error for RuntimeError {}

/// Termination and buffering parameters of a run.
#[derive(Clone, Copy, Debug)]
pub struct RunConfig {
    /// Stop after this many frames (`None` = unbounded).
    pub frames: Option<u64>,
    /// Stop the source after this wall-clock duration (`None` = none).
    pub max_duration: Option<Duration>,
    /// Capacity of each inter-stage adaptor, in frames.
    pub queue_capacity: u64,
    /// Leading fraction of sink departures excluded from the steady-state
    /// throughput measurement.
    pub warmup_fraction: f64,
}

impl RunConfig {
    /// Runs exactly `frames` frames.
    #[must_use]
    pub fn with_frames(frames: u64) -> Self {
        RunConfig {
            frames: Some(frames),
            max_duration: None,
            queue_capacity: 16,
            warmup_fraction: 0.2,
        }
    }

    /// Runs until `duration` elapses (like the paper's 1-minute DVB-S2
    /// measurements).
    #[must_use]
    pub fn with_duration(duration: Duration) -> Self {
        RunConfig {
            frames: None,
            max_duration: Some(duration),
            queue_capacity: 16,
            warmup_fraction: 0.2,
        }
    }
}

/// A runnable pipeline: a frame factory (what the first task receives) and
/// the per-task work bodies, in chain order.
pub struct PipelineSpec<D> {
    source: Arc<dyn Fn(u64) -> D + Send + Sync>,
    tasks: Vec<RuntimeTask<D>>,
}

impl<D: Send + 'static> PipelineSpec<D> {
    /// Builds a spec from a frame factory and the task bodies.
    pub fn new(source: Arc<dyn Fn(u64) -> D + Send + Sync>, tasks: Vec<RuntimeTask<D>>) -> Self {
        PipelineSpec { source, tasks }
    }

    /// The task bodies.
    #[must_use]
    pub fn tasks(&self) -> &[RuntimeTask<D>] {
        &self.tasks
    }

    /// Executes `solution` over this pipeline on `machine`.
    ///
    /// Spawns one worker thread per stage replica, wires order-preserving
    /// bounded adaptors between consecutive stages, runs until the
    /// termination condition, and reports measured throughput.
    pub fn run(
        &self,
        chain: &TaskChain,
        solution: &Solution,
        machine: &VirtualMachine,
        config: &RunConfig,
    ) -> Result<RunReport, RuntimeError> {
        if self.tasks.len() != chain.len() {
            return Err(RuntimeError::ChainMismatch {
                spec: self.tasks.len(),
                chain: chain.len(),
            });
        }
        for (i, t) in self.tasks.iter().enumerate() {
            if t.replicable != chain.task(i).replicable {
                return Err(RuntimeError::ReplicabilityMismatch(i));
            }
        }
        solution
            .validate(chain)
            .map_err(RuntimeError::InvalidSolution)?;
        let placement = machine.place(solution).ok_or(RuntimeError::Placement)?;
        if config.frames.is_none() && config.max_duration.is_none() {
            return Err(RuntimeError::NoTerminationCondition);
        }
        let frame_limit = config.frames.unwrap_or(u64::MAX);
        let stages = solution.stages().to_vec();
        let k = stages.len();

        let rings: Vec<Arc<OrderedRing<D>>> = (0..k.saturating_sub(1))
            .map(|_| Arc::new(OrderedRing::new(config.queue_capacity)))
            .collect();
        let stop = Arc::new(AtomicBool::new(false));
        let claim = Arc::new(AtomicU64::new(0));
        let active: Arc<Vec<AtomicUsize>> = Arc::new(
            stages
                .iter()
                .map(|s| AtomicUsize::new(s.cores as usize))
                .collect(),
        );
        let busy_nanos: Arc<Vec<AtomicU64>> = Arc::new((0..k).map(|_| AtomicU64::new(0)).collect());
        let sink: Arc<Mutex<Vec<(u64, u64)>>> = Arc::new(Mutex::new(Vec::new()));
        let works: Arc<Vec<Arc<dyn TaskWork<D>>>> =
            Arc::new(self.tasks.iter().map(|t| t.work.clone()).collect());

        let start = Instant::now();
        let mut handles = Vec::new();
        for (i, stage) in stages.iter().enumerate() {
            for (j, core) in placement[i].iter().enumerate() {
                let ring_in = (i > 0).then(|| rings[i - 1].clone());
                let ring_out = (i + 1 < k).then(|| rings[i].clone());
                let works = works.clone();
                let source = self.source.clone();
                let stop = stop.clone();
                let claim = claim.clone();
                let active = active.clone();
                let busy_nanos = busy_nanos.clone();
                let sink = sink.clone();
                let (task_lo, task_hi) = (stage.start, stage.end);
                let replicas = stage.cores;
                let core_kind = core.kind;
                let worker = move || {
                    let process = |seq: u64, data: &mut D| {
                        let t0 = Instant::now();
                        for t in task_lo..=task_hi {
                            works[t].process(seq, data, core_kind);
                        }
                        busy_nanos[i].fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                    };
                    match &ring_in {
                        None => loop {
                            // Source stage: dynamically claim the next frame.
                            if stop.load(Ordering::Relaxed) {
                                break;
                            }
                            let seq = claim.fetch_add(1, Ordering::Relaxed);
                            if seq >= frame_limit {
                                break;
                            }
                            let mut data = source(seq);
                            process(seq, &mut data);
                            match &ring_out {
                                Some(out) => out.push(seq, data),
                                None => sink.lock().push((seq, start.elapsed().as_nanos() as u64)),
                            }
                        },
                        Some(input) => {
                            let mut seq = j as u64;
                            while let Some(mut data) = input.pop(seq) {
                                process(seq, &mut data);
                                match &ring_out {
                                    Some(out) => out.push(seq, data),
                                    None => {
                                        sink.lock().push((seq, start.elapsed().as_nanos() as u64))
                                    }
                                }
                                seq += replicas;
                            }
                        }
                    }
                    // Last replica out closes the downstream adaptor.
                    if active[i].fetch_sub(1, Ordering::AcqRel) == 1 {
                        if let Some(out) = &ring_out {
                            let total = match &ring_in {
                                None => claim.load(Ordering::Relaxed).min(frame_limit),
                                Some(input) => input
                                    .closed_total()
                                    .expect("input closed before this stage finished"),
                            };
                            out.close(total);
                        }
                    }
                };
                handles.push(
                    thread::Builder::new()
                        .name(format!("amp-s{i}r{j}"))
                        .spawn(worker)
                        .expect("spawning pipeline worker"),
                );
            }
        }

        // Deadline watchdog (duration-based termination).
        let watchdog = config.max_duration.map(|d| {
            let stop = stop.clone();
            let deadline = start + d;
            thread::spawn(move || {
                while Instant::now() < deadline {
                    if stop.load(Ordering::Relaxed) {
                        return;
                    }
                    thread::sleep(Duration::from_millis(2));
                }
                stop.store(true, Ordering::Relaxed);
            })
        });

        for h in handles {
            h.join().expect("pipeline worker panicked");
        }
        stop.store(true, Ordering::Relaxed);
        if let Some(w) = watchdog {
            w.join().expect("watchdog panicked");
        }
        let elapsed = start.elapsed();

        let mut departures = Arc::try_unwrap(sink)
            .map(Mutex::into_inner)
            .unwrap_or_else(|arc| arc.lock().clone());
        departures.sort_unstable();
        Ok(build_report(
            &departures,
            elapsed,
            &stages,
            &busy_nanos,
            config.warmup_fraction,
        ))
    }
}

fn build_report(
    departures: &[(u64, u64)],
    elapsed: Duration,
    stages: &[amp_core::Stage],
    busy_nanos: &[AtomicU64],
    warmup_fraction: f64,
) -> RunReport {
    let frames = departures.len() as u64;
    let elapsed_seconds = elapsed.as_secs_f64();
    let fps_total = if elapsed_seconds > 0.0 {
        frames as f64 / elapsed_seconds
    } else {
        0.0
    };
    let (fps, period_us) = if frames >= 2 {
        // Replicated sink stages may complete frames slightly out of
        // sequence order; measure inter-departure gaps over time order.
        let mut times: Vec<u64> = departures.iter().map(|&(_, t)| t).collect();
        times.sort_unstable();
        let warm = ((frames as f64) * warmup_fraction).floor() as usize;
        let warm = warm.min(times.len() - 2);
        let dt_nanos = times[times.len() - 1] - times[warm];
        let n = (times.len() - 1 - warm) as f64;
        if dt_nanos > 0 {
            let period = dt_nanos as f64 / n; // ns per frame
            (1e9 / period, period / 1e3)
        } else {
            (fps_total, 0.0)
        }
    } else {
        (fps_total, 0.0)
    };
    let stage_reports = stages
        .iter()
        .enumerate()
        .map(|(i, s)| {
            let busy = busy_nanos[i].load(Ordering::Relaxed) as f64 / 1e9;
            let denom = s.cores as f64 * elapsed_seconds;
            StageRuntimeReport {
                stage: i,
                replicas: s.cores,
                core_type: s.core_type,
                busy_seconds: busy,
                utilization: if denom > 0.0 {
                    (busy / denom).min(1.0)
                } else {
                    0.0
                },
            }
        })
        .collect();
    RunReport {
        frames,
        elapsed_seconds,
        fps,
        fps_total,
        period_us,
        stages: stage_reports,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vcore::VirtualMachine;
    use crate::work::{FnWork, WeightedWork};
    use amp_core::{CoreType, Resources, Stage, Task};

    fn spec_counting(n: usize) -> PipelineSpec<Vec<u64>> {
        // Each task appends its index; the sink payload records the full
        // traversal so ordering and completeness are checkable.
        let tasks = (0..n)
            .map(|i| {
                RuntimeTask::new(
                    &format!("t{i}"),
                    true,
                    FnWork(move |_seq: u64, data: &mut Vec<u64>, _core: CoreType| {
                        data.push(i as u64);
                    }),
                )
            })
            .collect();
        PipelineSpec::new(Arc::new(|_seq| Vec::new()), tasks)
    }

    fn chain_replicable(n: usize) -> TaskChain {
        TaskChain::new((0..n).map(|_| Task::new(10, 20, true)).collect())
    }

    #[test]
    fn runs_a_single_stage_pipeline() {
        let chain = chain_replicable(3);
        let spec = spec_counting(3);
        let solution = Solution::new(vec![Stage::new(0, 2, 1, CoreType::Big)]);
        let machine = VirtualMachine::new(Resources::new(1, 0));
        let r = spec
            .run(&chain, &solution, &machine, &RunConfig::with_frames(50))
            .unwrap();
        assert_eq!(r.frames, 50);
        assert!(r.fps > 0.0);
    }

    #[test]
    fn multi_stage_with_replication_processes_every_frame_once() {
        let chain = chain_replicable(4);
        let spec = spec_counting(4);
        let solution = Solution::new(vec![
            Stage::new(0, 0, 1, CoreType::Big),
            Stage::new(1, 2, 3, CoreType::Little),
            Stage::new(3, 3, 1, CoreType::Big),
        ]);
        let machine = VirtualMachine::new(Resources::new(2, 3));
        let r = spec
            .run(&chain, &solution, &machine, &RunConfig::with_frames(200))
            .unwrap();
        assert_eq!(r.frames, 200);
        assert_eq!(r.stages.len(), 3);
    }

    #[test]
    fn replicated_to_replicated_link_works() {
        // The StreamPU v1.6.0 extension: consecutive replicated stages with
        // different replica counts (n -> m adaptor).
        let chain = chain_replicable(2);
        let spec = spec_counting(2);
        let solution = Solution::new(vec![
            Stage::new(0, 0, 3, CoreType::Big),
            Stage::new(1, 1, 2, CoreType::Little),
        ]);
        let machine = VirtualMachine::new(Resources::new(3, 2));
        let r = spec
            .run(&chain, &solution, &machine, &RunConfig::with_frames(120))
            .unwrap();
        assert_eq!(r.frames, 120);
    }

    #[test]
    fn frame_payloads_traverse_all_tasks_in_order() {
        let chain = chain_replicable(3);
        let seen = Arc::new(Mutex::new(Vec::new()));
        let seen2 = seen.clone();
        let mut tasks: Vec<RuntimeTask<Vec<u64>>> = (0..2)
            .map(|i| {
                RuntimeTask::new(
                    &format!("t{i}"),
                    true,
                    FnWork(move |_s: u64, d: &mut Vec<u64>, _c: CoreType| d.push(i as u64)),
                )
            })
            .collect();
        tasks.push(RuntimeTask::new(
            "sink",
            true,
            FnWork(move |seq: u64, d: &mut Vec<u64>, _c: CoreType| {
                seen2.lock().push((seq, d.clone()));
            }),
        ));
        let spec = PipelineSpec::new(Arc::new(|_| Vec::new()), tasks);
        let solution = Solution::new(vec![
            Stage::new(0, 1, 2, CoreType::Big),
            Stage::new(2, 2, 1, CoreType::Big),
        ]);
        let machine = VirtualMachine::new(Resources::new(3, 0));
        let r = spec
            .run(&chain, &solution, &machine, &RunConfig::with_frames(64))
            .unwrap();
        assert_eq!(r.frames, 64);
        let mut seen = seen.lock().clone();
        seen.sort_unstable();
        assert_eq!(seen.len(), 64);
        for (i, (seq, path)) in seen.iter().enumerate() {
            assert_eq!(*seq, i as u64);
            assert_eq!(path, &vec![0, 1], "frame {seq} traversal {path:?}");
        }
    }

    #[test]
    fn duration_mode_terminates() {
        let chain = chain_replicable(2);
        let tasks = chain
            .tasks()
            .iter()
            .enumerate()
            .map(|(i, t)| RuntimeTask::new(&format!("t{i}"), true, WeightedWork::from_task(t)))
            .collect();
        let spec: PipelineSpec<u64> = PipelineSpec::new(Arc::new(|s| s), tasks);
        let solution = Solution::new(vec![Stage::new(0, 1, 2, CoreType::Big)]);
        let machine = VirtualMachine::new(Resources::new(2, 0));
        let r = spec
            .run(
                &chain,
                &solution,
                &machine,
                &RunConfig::with_duration(Duration::from_millis(50)),
            )
            .unwrap();
        assert!(r.frames > 0);
        assert!(r.elapsed_seconds < 5.0);
    }

    #[test]
    fn validates_inputs() {
        let chain = chain_replicable(2);
        let machine = VirtualMachine::new(Resources::new(1, 0));
        let solution = Solution::new(vec![Stage::new(0, 1, 1, CoreType::Big)]);

        let spec = spec_counting(3);
        assert!(matches!(
            spec.run(&chain, &solution, &machine, &RunConfig::with_frames(1)),
            Err(RuntimeError::ChainMismatch { spec: 3, chain: 2 })
        ));

        let spec = spec_counting(2);
        let bad = Solution::new(vec![Stage::new(0, 0, 1, CoreType::Big)]);
        assert!(matches!(
            spec.run(&chain, &bad, &machine, &RunConfig::with_frames(1)),
            Err(RuntimeError::InvalidSolution(_))
        ));

        let too_big = Solution::new(vec![Stage::new(0, 1, 2, CoreType::Big)]);
        assert!(matches!(
            spec.run(&chain, &too_big, &machine, &RunConfig::with_frames(1)),
            Err(RuntimeError::Placement)
        ));

        let cfg = RunConfig {
            frames: None,
            max_duration: None,
            queue_capacity: 4,
            warmup_fraction: 0.2,
        };
        assert!(matches!(
            spec.run(&chain, &solution, &machine, &cfg),
            Err(RuntimeError::NoTerminationCondition)
        ));

        // Replicability mismatch.
        let seq_chain = TaskChain::new(vec![Task::new(1, 2, false), Task::new(1, 2, true)]);
        assert!(matches!(
            spec.run(&seq_chain, &solution, &machine, &RunConfig::with_frames(1)),
            Err(RuntimeError::ReplicabilityMismatch(0))
        ));
    }
}
