//! Pipeline construction, execution and live elastic reconfiguration.
//!
//! A pipeline runs as a sequence of **epochs**. Each epoch executes one
//! stage decomposition over a contiguous frame range `[base, boundary)`;
//! a live reconfiguration ends the current epoch at a frame boundary
//! (quiesce the source, drain every in-flight frame to the sink), re-wires
//! the adaptors and worker roles to the new decomposition, and resumes at
//! the boundary. Worker threads are spawned once and *re-assigned* across
//! epochs — a migration never tears the thread pool down, which is what
//! makes it cheaper than a stop-the-world restart.

use crate::adaptor::OrderedRing;
use crate::report::{ReconfigEvent, RunReport, StageRuntimeReport};
use crate::vcore::VirtualMachine;
use crate::work::TaskWork;
use amp_core::sched::{schedule_diff, ChainTable, ScheduleDiff};
use amp_core::{CoreType, Solution, Stage, TaskChain};
use parking_lot::{Condvar, Mutex};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// One task of a runtime pipeline: the scheduling metadata (name,
/// replicability) plus the work executed per frame.
pub struct RuntimeTask<D> {
    /// Task name (diagnostics only).
    pub name: String,
    /// Must match the corresponding [`amp_core::Task::replicable`] flag.
    pub replicable: bool,
    /// Per-frame work body.
    pub work: Arc<dyn TaskWork<D>>,
}

impl<D> RuntimeTask<D> {
    /// Builds a task from any work implementation.
    pub fn new(name: &str, replicable: bool, work: impl TaskWork<D> + 'static) -> Self {
        RuntimeTask {
            name: name.to_string(),
            replicable,
            work: Arc::new(work),
        }
    }
}

/// Errors reported by [`PipelineSpec::run`], [`PipelineSpec::launch`] and
/// [`RunningPipeline::reconfigure`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuntimeError {
    /// The spec has a different number of tasks than the scheduled chain.
    ChainMismatch {
        /// Tasks in the spec.
        spec: usize,
        /// Tasks in the chain.
        chain: usize,
    },
    /// A task's replicability flag disagrees with the chain's.
    ReplicabilityMismatch(usize),
    /// The solution fails [`Solution::validate`] for the chain.
    InvalidSolution(amp_core::ValidationError),
    /// The machine has fewer cores of some type than the solution uses.
    Placement,
    /// Neither a frame count nor a duration was requested.
    NoTerminationCondition,
    /// The chain cannot be scheduled on the offered pool (no cores).
    Infeasible,
    /// The pipeline already ran to completion; there is nothing left to
    /// reconfigure.
    Terminated,
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::ChainMismatch { spec, chain } => {
                write!(f, "spec has {spec} tasks but the chain has {chain}")
            }
            RuntimeError::ReplicabilityMismatch(i) => {
                write!(f, "task {i} replicability differs between spec and chain")
            }
            RuntimeError::InvalidSolution(e) => write!(f, "invalid solution: {e}"),
            RuntimeError::Placement => write!(f, "solution does not fit the machine"),
            RuntimeError::NoTerminationCondition => {
                write!(f, "run needs a frame count or a duration")
            }
            RuntimeError::Infeasible => {
                write!(f, "the chain cannot be scheduled on the offered pool")
            }
            RuntimeError::Terminated => write!(f, "the pipeline already ran to completion"),
        }
    }
}

impl std::error::Error for RuntimeError {}

/// Termination and buffering parameters of a run.
#[derive(Clone, Copy, Debug)]
pub struct RunConfig {
    /// Stop after this many frames (`None` = unbounded).
    pub frames: Option<u64>,
    /// Stop the source after this wall-clock duration (`None` = none).
    pub max_duration: Option<Duration>,
    /// Capacity of each inter-stage adaptor, in frames.
    pub queue_capacity: u64,
    /// Leading fraction of sink departures excluded from the steady-state
    /// throughput measurement.
    pub warmup_fraction: f64,
}

impl RunConfig {
    /// Runs exactly `frames` frames.
    #[must_use]
    pub fn with_frames(frames: u64) -> Self {
        RunConfig {
            frames: Some(frames),
            max_duration: None,
            queue_capacity: 16,
            warmup_fraction: 0.2,
        }
    }

    /// Runs until `duration` elapses (like the paper's 1-minute DVB-S2
    /// measurements).
    #[must_use]
    pub fn with_duration(duration: Duration) -> Self {
        RunConfig {
            frames: None,
            max_duration: Some(duration),
            queue_capacity: 16,
            warmup_fraction: 0.2,
        }
    }
}

/// A runnable pipeline: a frame factory (what the first task receives) and
/// the per-task work bodies, in chain order.
pub struct PipelineSpec<D> {
    source: Arc<dyn Fn(u64) -> D + Send + Sync>,
    tasks: Vec<RuntimeTask<D>>,
}

/// A worker's assignment for one epoch: which stage replica it executes.
#[derive(Clone, Copy, Debug)]
struct Role {
    stage: usize,
    replica: u64,
    core_kind: CoreType,
}

/// Everything one epoch needs: the decomposition, the per-slot roles, the
/// freshly-based adaptors and the per-epoch counters.
struct EpochPlan<D> {
    stages: Vec<Stage>,
    /// Per worker slot; `None` parks the slot for this epoch.
    roles: Vec<Option<Role>>,
    rings: Vec<Arc<OrderedRing<D>>>,
    /// First frame of this epoch.
    base: u64,
    /// Global frame limit (static across epochs; `u64::MAX` = unbounded).
    limit: u64,
    /// Epoch start, in nanoseconds since the run started.
    start_nanos: u64,
    /// Quiesce request: source replicas stop claiming frames.
    pause: AtomicBool,
    /// Per-stage live replica count (last replica out closes downstream).
    active: Vec<AtomicUsize>,
    /// Per-stage processing time this epoch.
    busy_nanos: Vec<AtomicU64>,
    /// High-water frame count the source stage committed this epoch: every
    /// frame in `[base, produced)` was claimed *and* fully processed by
    /// the source stage. This — not the claim counter, which may overshoot
    /// on a quiesce or a frame limit — is the drain accounting both stop
    /// paths share: ring close totals and the next epoch's base come from
    /// it, so in-flight frames are always fully drained and counted.
    produced: AtomicU64,
}

struct ControlState<D> {
    /// Monotonic epoch counter; 0 = not started, 1 = first epoch.
    epoch: u64,
    plan: Option<Arc<EpochPlan<D>>>,
    /// Workers that have not yet parked for the current epoch.
    running: usize,
    /// A migration is between quiesce and re-publish.
    migrating: bool,
    /// Workers should exit instead of waiting for another epoch.
    shutdown: bool,
}

struct Control<D> {
    state: Mutex<ControlState<D>>,
    /// Workers wait here for a new epoch (or shutdown).
    epoch_cv: Condvar,
    /// The controller waits here for `running == 0`.
    done_cv: Condvar,
    /// Hard stop (duration watchdog or [`RunningPipeline::stop`]).
    stop: AtomicBool,
    /// Next frame for the source stage to claim.
    claim: AtomicU64,
    /// Sink departures `(frame, nanos since start)` across all epochs.
    sink: Mutex<Vec<(u64, u64)>>,
}

/// Executes one worker's role for one epoch, then returns so the worker
/// can park and wait for the next epoch.
#[allow(clippy::too_many_arguments)]
fn run_role<D: Send + 'static>(
    plan: &EpochPlan<D>,
    role: Role,
    works: &[Arc<dyn TaskWork<D>>],
    source: &(dyn Fn(u64) -> D + Send + Sync),
    control: &Control<D>,
    start: Instant,
) {
    let i = role.stage;
    let k = plan.stages.len();
    let stage = plan.stages[i];
    let (task_lo, task_hi) = (stage.start, stage.end);
    let replicas = stage.cores;
    let core_kind = role.core_kind;
    let ring_in = (i > 0).then(|| plan.rings[i - 1].clone());
    let ring_out = (i + 1 < k).then(|| plan.rings[i].clone());
    let process = |seq: u64, data: &mut D| {
        let t0 = Instant::now();
        for work in &works[task_lo..=task_hi] {
            work.process(seq, data, core_kind);
        }
        plan.busy_nanos[i].fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
    };
    let deliver = |seq: u64, data: D| match &ring_out {
        Some(out) => out.push(seq, data),
        None => control
            .sink
            .lock()
            .push((seq, start.elapsed().as_nanos() as u64)),
    };
    match &ring_in {
        None => loop {
            // Source stage: dynamically claim the next frame. The stop and
            // pause checks come *before* the claim, so every claimed frame
            // below the limit is committed — processed and delivered.
            if control.stop.load(Ordering::Relaxed) || plan.pause.load(Ordering::Relaxed) {
                break;
            }
            let seq = control.claim.fetch_add(1, Ordering::Relaxed);
            if seq >= plan.limit {
                break;
            }
            let mut data = source(seq);
            process(seq, &mut data);
            deliver(seq, data);
            plan.produced.fetch_max(seq + 1, Ordering::AcqRel);
        },
        Some(input) => {
            let mut seq = plan.base + role.replica;
            while let Some(mut data) = input.pop(seq) {
                process(seq, &mut data);
                deliver(seq, data);
                seq += replicas;
            }
        }
    }
    // Last replica out closes the downstream adaptor with the shared
    // drain total.
    if plan.active[i].fetch_sub(1, Ordering::AcqRel) == 1 {
        if let Some(out) = &ring_out {
            let total = match &ring_in {
                None => plan.produced.load(Ordering::Acquire),
                Some(input) => input
                    .closed_total()
                    .expect("input closed before this stage finished"),
            };
            out.close(total);
        }
    }
}

/// The worker thread body: wait for an epoch, execute the assigned role
/// (if any), park, repeat — until shutdown.
fn worker_loop<D: Send + 'static>(
    slot: usize,
    mut seen_epoch: u64,
    control: Arc<Control<D>>,
    works: Arc<Vec<Arc<dyn TaskWork<D>>>>,
    source: Arc<dyn Fn(u64) -> D + Send + Sync>,
    start: Instant,
) {
    loop {
        let plan = {
            let mut st = control.state.lock();
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch > seen_epoch {
                    seen_epoch = st.epoch;
                    break st.plan.clone().expect("published epoch carries a plan");
                }
                control.epoch_cv.wait(&mut st);
            }
        };
        if let Some(role) = plan.roles.get(slot).copied().flatten() {
            run_role(&plan, role, &works, &*source, &control, start);
        }
        let mut st = control.state.lock();
        st.running -= 1;
        if st.running == 0 {
            control.done_cv.notify_all();
        }
    }
}

/// The dry-run preview of a reconfiguration: the current and the proposed
/// decomposition plus their [`ScheduleDiff`], computed without touching
/// the running pipeline.
#[derive(Clone, Debug)]
pub struct ReconfigPlan {
    /// The decomposition the pipeline currently executes.
    pub from: Solution,
    /// The decomposition an applied reconfiguration would migrate to.
    pub to: Solution,
    /// Span-keyed diff between the two.
    pub diff: ScheduleDiff,
}

/// The solver/diff state a running pipeline keeps between migrations:
/// the chain it schedules for, the incremental HeRAD table, and the
/// decomposition currently executing.
struct MigrateState {
    chain: TaskChain,
    solution: Solution,
    table: Option<ChainTable>,
}

impl MigrateState {
    /// Re-solves for `resources`, incrementally: a covered pool is a pure
    /// extraction, a larger pool grows the table in place, and only a
    /// chain change pays a fresh cold solve.
    fn solve(&mut self, resources: amp_core::Resources) -> Result<Solution, RuntimeError> {
        let table = match &mut self.table {
            Some(t) if t.matches(&self.chain) => {
                if !t.covers(resources) {
                    t.grow_to(&self.chain, resources);
                }
                t
            }
            slot => slot.insert(ChainTable::solve(&self.chain, resources)),
        };
        let mut out = Solution::empty();
        if table.extract(&self.chain, resources, &mut out) {
            Ok(out)
        } else {
            Err(RuntimeError::Infeasible)
        }
    }
}

/// A live pipeline launched by [`PipelineSpec::launch`]: the handle for
/// online reconfiguration, early stop and final result collection.
pub struct RunningPipeline<D: Send + 'static> {
    control: Arc<Control<D>>,
    works: Arc<Vec<Arc<dyn TaskWork<D>>>>,
    source: Arc<dyn Fn(u64) -> D + Send + Sync>,
    workers: Mutex<Vec<thread::JoinHandle<()>>>,
    watchdog: Mutex<Option<thread::JoinHandle<()>>>,
    start: Instant,
    config: RunConfig,
    frame_limit: u64,
    replicable: Vec<bool>,
    migrate: Mutex<MigrateState>,
    events: Mutex<Vec<ReconfigEvent>>,
}

impl<D: Send + 'static> RunningPipeline<D> {
    /// Previews a migration to `machine` without applying it: re-solves
    /// incrementally and returns the decomposition diff.
    ///
    /// # Errors
    /// [`RuntimeError::Infeasible`] when the pool has no cores.
    pub fn plan(&self, machine: &VirtualMachine) -> Result<ReconfigPlan, RuntimeError> {
        let mut mig = self.migrate.lock();
        let to = mig.solve(machine.resources())?;
        machine.place(&to).ok_or(RuntimeError::Placement)?;
        let diff = schedule_diff(mig.solution.stages(), to.stages());
        Ok(ReconfigPlan {
            from: mig.solution.clone(),
            to,
            diff,
        })
    }

    /// Migrates the live pipeline to `machine` (a changed core pool).
    ///
    /// Re-solves incrementally via the chain's grown HeRAD table, diffs
    /// the decompositions, and — unless the diff is a no-op — quiesces
    /// the source at a frame boundary, drains every in-flight frame to
    /// the sink, re-wires adaptors and worker roles, and resumes. No
    /// frame is ever lost, duplicated or reordered across the boundary.
    ///
    /// # Errors
    /// [`RuntimeError::Infeasible`] when the pool has no cores,
    /// [`RuntimeError::Placement`] when the machine cannot place the new
    /// solution, [`RuntimeError::Terminated`] when the run already ended.
    pub fn reconfigure(&self, machine: &VirtualMachine) -> Result<ReconfigEvent, RuntimeError> {
        self.apply(None, machine)
    }

    /// Migrates to re-profiled task weights *and* a (possibly unchanged)
    /// machine: the chain's weights drifted, so the table is re-solved
    /// for the new chain before extraction. The new chain must describe
    /// the same tasks (length and replicability) as the running spec.
    ///
    /// # Errors
    /// As [`RunningPipeline::reconfigure`], plus
    /// [`RuntimeError::ChainMismatch`] /
    /// [`RuntimeError::ReplicabilityMismatch`] when the chain does not
    /// match the running spec.
    pub fn reconfigure_with_chain(
        &self,
        chain: &TaskChain,
        machine: &VirtualMachine,
    ) -> Result<ReconfigEvent, RuntimeError> {
        self.apply(Some(chain), machine)
    }

    /// Requests a stop: the source stops claiming frames and the pipeline
    /// drains. Useful for unbounded runs; [`RunningPipeline::join`]
    /// returns once the drain completes.
    pub fn stop(&self) {
        self.control.stop.store(true, Ordering::Relaxed);
    }

    /// Completed reconfigurations so far.
    #[must_use]
    pub fn reconfig_events(&self) -> Vec<ReconfigEvent> {
        self.events.lock().clone()
    }

    /// Frames that have reached the sink so far.
    #[must_use]
    pub fn frames_done(&self) -> u64 {
        self.control.sink.lock().len() as u64
    }

    fn apply(
        &self,
        chain: Option<&TaskChain>,
        machine: &VirtualMachine,
    ) -> Result<ReconfigEvent, RuntimeError> {
        let mut mig = self.migrate.lock();
        if let Some(new_chain) = chain {
            if new_chain.len() != self.replicable.len() {
                return Err(RuntimeError::ChainMismatch {
                    spec: self.replicable.len(),
                    chain: new_chain.len(),
                });
            }
            for (i, (t, &rep)) in new_chain.tasks().iter().zip(&self.replicable).enumerate() {
                if t.replicable != rep {
                    return Err(RuntimeError::ReplicabilityMismatch(i));
                }
            }
            if !mig.table.as_ref().is_some_and(|t| t.matches(new_chain)) {
                mig.table = None;
            }
            mig.chain = new_chain.clone();
        }
        let new_solution = mig.solve(machine.resources())?;
        let placement = machine
            .place(&new_solution)
            .ok_or(RuntimeError::Placement)?;
        let diff = schedule_diff(mig.solution.stages(), new_solution.stages());

        let (old_plan, cur_epoch) = {
            let mut st = self.control.state.lock();
            if st.shutdown {
                return Err(RuntimeError::Terminated);
            }
            if diff.is_noop() {
                // Identical decomposition: the running epoch already
                // executes it. Record a zero-cost event without a barrier.
                let plan = st.plan.clone().expect("running pipeline has a plan");
                return Ok(ReconfigEvent {
                    epoch: st.epoch,
                    boundary_frame: plan.base,
                    downtime_us: 0.0,
                    sink_gap_us: 0.0,
                    migrated_stages: 0,
                    unchanged_stages: diff.unchanged,
                    workers_added: 0,
                    workers_parked: 0,
                });
            }
            st.migrating = true;
            (
                st.plan.clone().expect("running pipeline has a plan"),
                st.epoch,
            )
        };

        // Quiesce: stop the source at a frame boundary, drain everything.
        let t0 = Instant::now();
        old_plan.pause.store(true, Ordering::SeqCst);
        {
            let mut st = self.control.state.lock();
            while st.running > 0 {
                self.control.done_cv.wait(&mut st);
            }
        }
        let base = old_plan.produced.load(Ordering::Acquire);
        if base >= self.frame_limit || self.control.stop.load(Ordering::Relaxed) {
            // The run completed while quiescing; hand the drained state
            // to `join` instead of publishing a new epoch.
            self.control.state.lock().migrating = false;
            self.control.done_cv.notify_all();
            return Err(RuntimeError::Terminated);
        }

        // Re-wire: fresh adaptors based at the boundary, new roles.
        let stages = new_solution.stages().to_vec();
        let k = stages.len();
        let rings: Vec<Arc<OrderedRing<D>>> = (0..k.saturating_sub(1))
            .map(|_| Arc::new(OrderedRing::with_base(self.config.queue_capacity, base)))
            .collect();
        let mut flat_roles = Vec::new();
        for (i, cores) in placement.iter().enumerate() {
            for (j, core) in cores.iter().enumerate() {
                flat_roles.push(Role {
                    stage: i,
                    replica: j as u64,
                    core_kind: core.kind,
                });
            }
        }
        let needed = flat_roles.len();
        let mut handles = self.workers.lock();
        let spawned = handles.len();
        let workers_added = needed.saturating_sub(spawned);
        let workers_parked = spawned.saturating_sub(needed);
        let slot_count = spawned.max(needed);
        let plan = Arc::new(EpochPlan {
            active: stages
                .iter()
                .map(|s| AtomicUsize::new(s.cores as usize))
                .collect(),
            busy_nanos: (0..k).map(|_| AtomicU64::new(0)).collect(),
            roles: (0..slot_count)
                .map(|s| flat_roles.get(s).copied())
                .collect(),
            stages,
            rings,
            base,
            limit: self.frame_limit,
            start_nanos: self.start.elapsed().as_nanos() as u64,
            pause: AtomicBool::new(false),
            produced: AtomicU64::new(base),
        });
        // Pool growth: spawn the extra slots before publishing, waiting on
        // the epoch about to be announced.
        for slot in spawned..needed {
            let control = self.control.clone();
            let works = self.works.clone();
            let source = self.source.clone();
            let start = self.start;
            handles.push(
                thread::Builder::new()
                    .name(format!("amp-w{slot}"))
                    .spawn(move || worker_loop(slot, cur_epoch, control, works, source, start))
                    .expect("spawning pipeline worker"),
            );
        }
        drop(handles);
        self.control.claim.store(base, Ordering::SeqCst);
        {
            let mut st = self.control.state.lock();
            st.plan = Some(plan);
            st.epoch = cur_epoch + 1;
            st.running = slot_count;
            st.migrating = false;
        }
        self.control.epoch_cv.notify_all();

        let event = ReconfigEvent {
            epoch: cur_epoch + 1,
            boundary_frame: base,
            downtime_us: t0.elapsed().as_secs_f64() * 1e6,
            sink_gap_us: 0.0, // filled from sink departures by `join`
            migrated_stages: diff.migrated_stages(),
            unchanged_stages: diff.unchanged,
            workers_added,
            workers_parked,
        };
        self.events.lock().push(event.clone());
        mig.solution = new_solution;
        Ok(event)
    }

    /// Waits for the run to finish (frame limit reached, duration elapsed
    /// or [`RunningPipeline::stop`]), drains the workers and reports.
    ///
    /// # Panics
    /// Panics if a worker thread panicked.
    #[must_use]
    pub fn join(self) -> RunReport {
        let (epochs, final_plan) = {
            let mut st = self.control.state.lock();
            while st.running > 0 || st.migrating {
                self.control.done_cv.wait(&mut st);
            }
            st.shutdown = true;
            (
                st.epoch,
                st.plan.take().expect("launched pipeline has a plan"),
            )
        };
        self.control.epoch_cv.notify_all();
        for handle in self.workers.into_inner() {
            handle.join().expect("pipeline worker panicked");
        }
        self.control.stop.store(true, Ordering::Relaxed);
        if let Some(watchdog) = self.watchdog.into_inner() {
            watchdog.join().expect("watchdog panicked");
        }
        let elapsed = self.start.elapsed();
        let mut departures = std::mem::take(&mut *self.control.sink.lock());
        departures.sort_unstable();
        let mut events = self.events.into_inner();
        fill_sink_gaps(&mut events, &departures);
        build_report(
            &departures,
            elapsed,
            &final_plan,
            self.config.warmup_fraction,
            epochs,
            events,
        )
    }
}

impl<D: Send + 'static> PipelineSpec<D> {
    /// Builds a spec from a frame factory and the task bodies.
    pub fn new(source: Arc<dyn Fn(u64) -> D + Send + Sync>, tasks: Vec<RuntimeTask<D>>) -> Self {
        PipelineSpec { source, tasks }
    }

    /// The task bodies.
    #[must_use]
    pub fn tasks(&self) -> &[RuntimeTask<D>] {
        &self.tasks
    }

    /// Executes `solution` over this pipeline on `machine` to completion.
    ///
    /// Equivalent to [`PipelineSpec::launch`] followed immediately by
    /// [`RunningPipeline::join`], with the additional requirement that
    /// `config` carries a termination condition.
    ///
    /// # Errors
    /// See [`RuntimeError`].
    pub fn run(
        &self,
        chain: &TaskChain,
        solution: &Solution,
        machine: &VirtualMachine,
        config: &RunConfig,
    ) -> Result<RunReport, RuntimeError> {
        if config.frames.is_none() && config.max_duration.is_none() {
            return Err(RuntimeError::NoTerminationCondition);
        }
        Ok(self.launch(chain, solution, machine, config)?.join())
    }

    /// Starts `solution` over this pipeline on `machine` and returns the
    /// live handle without waiting for termination.
    ///
    /// Worker threads (one per stage replica) are spawned once and
    /// re-assigned across reconfigurations. Unlike [`PipelineSpec::run`],
    /// a config without any termination condition is accepted: the caller
    /// owns a [`RunningPipeline::stop`] handle.
    ///
    /// # Errors
    /// See [`RuntimeError`].
    pub fn launch(
        &self,
        chain: &TaskChain,
        solution: &Solution,
        machine: &VirtualMachine,
        config: &RunConfig,
    ) -> Result<RunningPipeline<D>, RuntimeError> {
        if self.tasks.len() != chain.len() {
            return Err(RuntimeError::ChainMismatch {
                spec: self.tasks.len(),
                chain: chain.len(),
            });
        }
        for (i, t) in self.tasks.iter().enumerate() {
            if t.replicable != chain.task(i).replicable {
                return Err(RuntimeError::ReplicabilityMismatch(i));
            }
        }
        solution
            .validate(chain)
            .map_err(RuntimeError::InvalidSolution)?;
        let placement = machine.place(solution).ok_or(RuntimeError::Placement)?;
        let frame_limit = config.frames.unwrap_or(u64::MAX);
        let stages = solution.stages().to_vec();
        let k = stages.len();

        let rings: Vec<Arc<OrderedRing<D>>> = (0..k.saturating_sub(1))
            .map(|_| Arc::new(OrderedRing::new(config.queue_capacity)))
            .collect();
        let mut flat_roles = Vec::new();
        for (i, cores) in placement.iter().enumerate() {
            for (j, core) in cores.iter().enumerate() {
                flat_roles.push(Role {
                    stage: i,
                    replica: j as u64,
                    core_kind: core.kind,
                });
            }
        }
        let plan = Arc::new(EpochPlan {
            active: stages
                .iter()
                .map(|s| AtomicUsize::new(s.cores as usize))
                .collect(),
            busy_nanos: (0..k).map(|_| AtomicU64::new(0)).collect(),
            roles: flat_roles.iter().map(|r| Some(*r)).collect(),
            stages,
            rings,
            base: 0,
            limit: frame_limit,
            start_nanos: 0,
            pause: AtomicBool::new(false),
            produced: AtomicU64::new(0),
        });
        let workers = flat_roles.len();
        let control = Arc::new(Control {
            state: Mutex::new(ControlState {
                epoch: 1,
                plan: Some(plan),
                running: workers,
                migrating: false,
                shutdown: false,
            }),
            epoch_cv: Condvar::new(),
            done_cv: Condvar::new(),
            stop: AtomicBool::new(false),
            claim: AtomicU64::new(0),
            sink: Mutex::new(Vec::new()),
        });
        let works: Arc<Vec<Arc<dyn TaskWork<D>>>> =
            Arc::new(self.tasks.iter().map(|t| t.work.clone()).collect());
        let start = Instant::now();
        let mut handles = Vec::new();
        for slot in 0..workers {
            let control = control.clone();
            let works = works.clone();
            let source = self.source.clone();
            handles.push(
                thread::Builder::new()
                    .name(format!("amp-w{slot}"))
                    .spawn(move || worker_loop(slot, 0, control, works, source, start))
                    .expect("spawning pipeline worker"),
            );
        }

        // Deadline watchdog (duration-based termination).
        let watchdog = config.max_duration.map(|d| {
            let control = control.clone();
            let deadline = start + d;
            thread::spawn(move || {
                while Instant::now() < deadline {
                    if control.stop.load(Ordering::Relaxed) {
                        return;
                    }
                    thread::sleep(Duration::from_millis(2));
                }
                control.stop.store(true, Ordering::Relaxed);
            })
        });

        Ok(RunningPipeline {
            control,
            works,
            source: self.source.clone(),
            workers: Mutex::new(handles),
            watchdog: Mutex::new(watchdog),
            start,
            config: *config,
            frame_limit,
            replicable: self.tasks.iter().map(|t| t.replicable).collect(),
            migrate: Mutex::new(MigrateState {
                chain: chain.clone(),
                solution: solution.clone(),
                table: None,
            }),
            events: Mutex::new(Vec::new()),
        })
    }
}

/// Fills each event's sink-observed downtime: the departure gap between
/// the last frame of the old epoch and the first frame of the new one.
fn fill_sink_gaps(events: &mut [ReconfigEvent], departures: &[(u64, u64)]) {
    for event in events {
        let b = event.boundary_frame;
        if b == 0 || b as usize >= departures.len() {
            continue;
        }
        let (before, after) = (departures[b as usize - 1].1, departures[b as usize].1);
        event.sink_gap_us = after.saturating_sub(before) as f64 / 1e3;
    }
}

fn build_report<D>(
    departures: &[(u64, u64)],
    elapsed: Duration,
    final_plan: &EpochPlan<D>,
    warmup_fraction: f64,
    epochs: u64,
    reconfigs: Vec<ReconfigEvent>,
) -> RunReport {
    let frames = departures.len() as u64;
    let elapsed_seconds = elapsed.as_secs_f64();
    let fps_total = if elapsed_seconds > 0.0 {
        frames as f64 / elapsed_seconds
    } else {
        0.0
    };
    // Whole-run fallback for runs that end inside the warm-up window:
    // `fps` and `period_us` stay mutually consistent (no 0-period with a
    // positive fps, which used to blow up downstream `1e6 / period_us`).
    let fallback = || {
        let period = if fps_total > 0.0 {
            1e6 / fps_total
        } else {
            0.0
        };
        (fps_total, period, false)
    };
    let (fps, period_us, steady_state_valid) = if frames >= 2 {
        // Replicated sink stages may complete frames slightly out of
        // sequence order; measure inter-departure gaps over time order.
        let mut times: Vec<u64> = departures.iter().map(|&(_, t)| t).collect();
        times.sort_unstable();
        let warm = ((frames as f64) * warmup_fraction).floor() as usize;
        let warm = warm.min(times.len() - 2);
        let dt_nanos = times[times.len() - 1] - times[warm];
        let n = (times.len() - 1 - warm) as f64;
        if dt_nanos > 0 {
            let period = dt_nanos as f64 / n; // ns per frame
            (1e9 / period, period / 1e3, true)
        } else {
            fallback()
        }
    } else {
        fallback()
    };
    // Stage statistics cover the final epoch only (decompositions differ
    // across epochs), measured against the final epoch's wall-clock.
    let epoch_seconds =
        (elapsed.as_nanos() as u64).saturating_sub(final_plan.start_nanos) as f64 / 1e9;
    let stage_reports = final_plan
        .stages
        .iter()
        .enumerate()
        .map(|(i, s)| {
            let busy = final_plan.busy_nanos[i].load(Ordering::Relaxed) as f64 / 1e9;
            let denom = s.cores as f64 * epoch_seconds;
            StageRuntimeReport {
                stage: i,
                replicas: s.cores,
                core_type: s.core_type,
                busy_seconds: busy,
                utilization: if denom > 0.0 {
                    (busy / denom).min(1.0)
                } else {
                    0.0
                },
            }
        })
        .collect();
    RunReport {
        frames,
        elapsed_seconds,
        fps,
        fps_total,
        period_us,
        steady_state_valid,
        epochs,
        reconfigs,
        stages: stage_reports,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vcore::VirtualMachine;
    use crate::work::{FnWork, WeightedWork};
    use amp_core::sched::{Herad, Scheduler};
    use amp_core::{CoreType, Resources, Stage, Task};

    fn spec_counting(n: usize) -> PipelineSpec<Vec<u64>> {
        // Each task appends its index; the sink payload records the full
        // traversal so ordering and completeness are checkable.
        let tasks = (0..n)
            .map(|i| {
                RuntimeTask::new(
                    &format!("t{i}"),
                    true,
                    FnWork(move |_seq: u64, data: &mut Vec<u64>, _core: CoreType| {
                        data.push(i as u64);
                    }),
                )
            })
            .collect();
        PipelineSpec::new(Arc::new(|_seq| Vec::new()), tasks)
    }

    fn chain_replicable(n: usize) -> TaskChain {
        TaskChain::new((0..n).map(|_| Task::new(10, 20, true)).collect())
    }

    #[test]
    fn runs_a_single_stage_pipeline() {
        let chain = chain_replicable(3);
        let spec = spec_counting(3);
        let solution = Solution::new(vec![Stage::new(0, 2, 1, CoreType::Big)]);
        let machine = VirtualMachine::new(Resources::new(1, 0));
        let r = spec
            .run(&chain, &solution, &machine, &RunConfig::with_frames(50))
            .unwrap();
        assert_eq!(r.frames, 50);
        assert!(r.fps > 0.0);
        assert_eq!(r.epochs, 1);
        assert!(r.reconfigs.is_empty());
    }

    #[test]
    fn multi_stage_with_replication_processes_every_frame_once() {
        let chain = chain_replicable(4);
        let spec = spec_counting(4);
        let solution = Solution::new(vec![
            Stage::new(0, 0, 1, CoreType::Big),
            Stage::new(1, 2, 3, CoreType::Little),
            Stage::new(3, 3, 1, CoreType::Big),
        ]);
        let machine = VirtualMachine::new(Resources::new(2, 3));
        let r = spec
            .run(&chain, &solution, &machine, &RunConfig::with_frames(200))
            .unwrap();
        assert_eq!(r.frames, 200);
        assert_eq!(r.stages.len(), 3);
    }

    #[test]
    fn replicated_to_replicated_link_works() {
        // The StreamPU v1.6.0 extension: consecutive replicated stages with
        // different replica counts (n -> m adaptor).
        let chain = chain_replicable(2);
        let spec = spec_counting(2);
        let solution = Solution::new(vec![
            Stage::new(0, 0, 3, CoreType::Big),
            Stage::new(1, 1, 2, CoreType::Little),
        ]);
        let machine = VirtualMachine::new(Resources::new(3, 2));
        let r = spec
            .run(&chain, &solution, &machine, &RunConfig::with_frames(120))
            .unwrap();
        assert_eq!(r.frames, 120);
    }

    #[test]
    fn frame_payloads_traverse_all_tasks_in_order() {
        let chain = chain_replicable(3);
        let seen = Arc::new(Mutex::new(Vec::new()));
        let seen2 = seen.clone();
        let mut tasks: Vec<RuntimeTask<Vec<u64>>> = (0..2)
            .map(|i| {
                RuntimeTask::new(
                    &format!("t{i}"),
                    true,
                    FnWork(move |_s: u64, d: &mut Vec<u64>, _c: CoreType| d.push(i as u64)),
                )
            })
            .collect();
        tasks.push(RuntimeTask::new(
            "sink",
            true,
            FnWork(move |seq: u64, d: &mut Vec<u64>, _c: CoreType| {
                seen2.lock().push((seq, d.clone()));
            }),
        ));
        let spec = PipelineSpec::new(Arc::new(|_| Vec::new()), tasks);
        let solution = Solution::new(vec![
            Stage::new(0, 1, 2, CoreType::Big),
            Stage::new(2, 2, 1, CoreType::Big),
        ]);
        let machine = VirtualMachine::new(Resources::new(3, 0));
        let r = spec
            .run(&chain, &solution, &machine, &RunConfig::with_frames(64))
            .unwrap();
        assert_eq!(r.frames, 64);
        let mut seen = seen.lock().clone();
        seen.sort_unstable();
        assert_eq!(seen.len(), 64);
        for (i, (seq, path)) in seen.iter().enumerate() {
            assert_eq!(*seq, i as u64);
            assert_eq!(path, &vec![0, 1], "frame {seq} traversal {path:?}");
        }
    }

    #[test]
    fn duration_mode_terminates() {
        let chain = chain_replicable(2);
        let tasks = chain
            .tasks()
            .iter()
            .enumerate()
            .map(|(i, t)| RuntimeTask::new(&format!("t{i}"), true, WeightedWork::from_task(t)))
            .collect();
        let spec: PipelineSpec<u64> = PipelineSpec::new(Arc::new(|s| s), tasks);
        let solution = Solution::new(vec![Stage::new(0, 1, 2, CoreType::Big)]);
        let machine = VirtualMachine::new(Resources::new(2, 0));
        let r = spec
            .run(
                &chain,
                &solution,
                &machine,
                &RunConfig::with_duration(Duration::from_millis(50)),
            )
            .unwrap();
        assert!(r.frames > 0);
        assert!(r.elapsed_seconds < 5.0);
    }

    #[test]
    fn unbounded_launch_stops_on_request() {
        let chain = chain_replicable(2);
        let spec = spec_counting(2);
        let solution = Solution::new(vec![Stage::new(0, 1, 1, CoreType::Big)]);
        let machine = VirtualMachine::new(Resources::new(1, 0));
        let cfg = RunConfig {
            frames: None,
            max_duration: None,
            queue_capacity: 8,
            warmup_fraction: 0.2,
        };
        // `run` refuses an unbounded config; `launch` accepts it because
        // the caller holds the stop handle.
        assert!(matches!(
            spec.run(&chain, &solution, &machine, &cfg),
            Err(RuntimeError::NoTerminationCondition)
        ));
        let live = spec.launch(&chain, &solution, &machine, &cfg).unwrap();
        while live.frames_done() < 10 {
            thread::yield_now();
        }
        live.stop();
        let r = live.join();
        assert!(r.frames >= 10);
    }

    #[test]
    fn steady_state_flag_clears_on_single_frame_runs() {
        // Frame-limit termination inside the warm-up window.
        let chain = chain_replicable(2);
        let spec = spec_counting(2);
        let solution = Solution::new(vec![Stage::new(0, 1, 1, CoreType::Big)]);
        let machine = VirtualMachine::new(Resources::new(1, 0));
        let r = spec
            .run(&chain, &solution, &machine, &RunConfig::with_frames(1))
            .unwrap();
        assert_eq!(r.frames, 1);
        assert!(!r.steady_state_valid);
        assert!(r.fps.is_finite() && r.period_us.is_finite());
        // The fallback stays internally consistent: fps == 1e6/period.
        if r.fps > 0.0 {
            assert!((r.fps - 1e6 / r.period_us).abs() / r.fps < 1e-9);
        }
    }

    #[test]
    fn steady_state_flag_clears_on_early_duration_stop() {
        // Duration termination before a steady window exists: one heavy
        // frame outlives the deadline, so at most one departure lands.
        let chain = TaskChain::new(vec![Task::new(50_000, 50_000, false)]);
        let tasks = vec![RuntimeTask::new(
            "heavy",
            false,
            WeightedWork::new(50_000.0, 50_000.0),
        )];
        let spec: PipelineSpec<u64> = PipelineSpec::new(Arc::new(|s| s), tasks);
        let solution = Solution::new(vec![Stage::new(0, 0, 1, CoreType::Big)]);
        let machine = VirtualMachine::new(Resources::new(1, 0));
        let r = spec
            .run(
                &chain,
                &solution,
                &machine,
                &RunConfig::with_duration(Duration::from_millis(1)),
            )
            .unwrap();
        assert!(r.frames <= 1, "{} frames", r.frames);
        assert!(!r.steady_state_valid);
        assert!(r.fps.is_finite() && r.period_us.is_finite());
    }

    #[test]
    fn validates_inputs() {
        let chain = chain_replicable(2);
        let machine = VirtualMachine::new(Resources::new(1, 0));
        let solution = Solution::new(vec![Stage::new(0, 1, 1, CoreType::Big)]);

        let spec = spec_counting(3);
        assert!(matches!(
            spec.run(&chain, &solution, &machine, &RunConfig::with_frames(1)),
            Err(RuntimeError::ChainMismatch { spec: 3, chain: 2 })
        ));

        let spec = spec_counting(2);
        let bad = Solution::new(vec![Stage::new(0, 0, 1, CoreType::Big)]);
        assert!(matches!(
            spec.run(&chain, &bad, &machine, &RunConfig::with_frames(1)),
            Err(RuntimeError::InvalidSolution(_))
        ));

        let too_big = Solution::new(vec![Stage::new(0, 1, 2, CoreType::Big)]);
        assert!(matches!(
            spec.run(&chain, &too_big, &machine, &RunConfig::with_frames(1)),
            Err(RuntimeError::Placement)
        ));

        let cfg = RunConfig {
            frames: None,
            max_duration: None,
            queue_capacity: 4,
            warmup_fraction: 0.2,
        };
        assert!(matches!(
            spec.run(&chain, &solution, &machine, &cfg),
            Err(RuntimeError::NoTerminationCondition)
        ));

        // Replicability mismatch.
        let seq_chain = TaskChain::new(vec![Task::new(1, 2, false), Task::new(1, 2, true)]);
        assert!(matches!(
            spec.run(&seq_chain, &solution, &machine, &RunConfig::with_frames(1)),
            Err(RuntimeError::ReplicabilityMismatch(0))
        ));
    }

    #[test]
    fn reconfigure_after_completion_is_terminated() {
        let chain = chain_replicable(2);
        let spec = spec_counting(2);
        let solution = Solution::new(vec![Stage::new(0, 1, 1, CoreType::Big)]);
        let machine = VirtualMachine::new(Resources::new(2, 2));
        let live = spec
            .launch(&chain, &solution, &machine, &RunConfig::with_frames(5))
            .unwrap();
        // Wait for natural completion, then try to migrate.
        while live.frames_done() < 5 {
            thread::yield_now();
        }
        let shrunk = VirtualMachine::new(Resources::new(0, 1));
        assert!(matches!(
            live.reconfigure(&shrunk),
            Err(RuntimeError::Terminated)
        ));
        let r = live.join();
        assert_eq!(r.frames, 5);
    }

    #[test]
    fn noop_reconfigure_skips_the_barrier() {
        let chain = chain_replicable(3);
        let spec = spec_counting(3);
        let machine = VirtualMachine::new(Resources::new(2, 1));
        let solution = Herad::new().schedule(&chain, machine.resources()).unwrap();
        let live = spec
            .launch(&chain, &solution, &machine, &RunConfig::with_frames(400))
            .unwrap();
        // Re-offering the same machine re-solves to the same decomposition.
        let event = live.reconfigure(&machine).unwrap();
        assert_eq!(event.migrated_stages, 0);
        assert_eq!(event.downtime_us, 0.0);
        let r = live.join();
        assert_eq!(r.frames, 400);
        assert_eq!(r.epochs, 1);
        assert!(r.reconfigs.is_empty());
    }
}
