//! Measured results of a runtime execution.

use amp_core::CoreType;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Per-stage runtime statistics.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct StageRuntimeReport {
    /// Stage index in the solution.
    pub stage: usize,
    /// Replica count.
    pub replicas: u64,
    /// Core type of the replicas.
    pub core_type: CoreType,
    /// Total processing time across replicas, in seconds.
    pub busy_seconds: f64,
    /// Fraction of `replicas × wall-clock` spent processing.
    pub utilization: f64,
}

/// One live reconfiguration of a running pipeline: the migration from one
/// stage decomposition to the next at an epoch frame boundary.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ReconfigEvent {
    /// The epoch the migration started (epochs count from 1 at launch, so
    /// the first migration begins epoch 2).
    pub epoch: u64,
    /// First frame of the new epoch: every frame below it departed through
    /// the old decomposition, every frame at or above it through the new.
    pub boundary_frame: u64,
    /// Controller-side downtime in microseconds: quiesce request →
    /// workers resumed on the new decomposition (includes the incremental
    /// re-solve, the drain and the re-wiring).
    pub downtime_us: f64,
    /// Sink-observed downtime in microseconds: the departure gap between
    /// frame `boundary_frame - 1` and frame `boundary_frame` (0 when
    /// either frame does not exist). Includes the pipeline re-fill.
    pub sink_gap_us: f64,
    /// Stages of the new decomposition that required migration (resized
    /// or freshly cut spans, per [`amp_core::sched::ScheduleDiff`]).
    pub migrated_stages: usize,
    /// Stages identical across the boundary.
    pub unchanged_stages: usize,
    /// Worker threads spawned for the new epoch (pool growth).
    pub workers_added: usize,
    /// Worker threads left parked by the new epoch (pool shrink).
    pub workers_parked: usize,
}

/// Outcome of a pipeline run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RunReport {
    /// Frames that reached the sink.
    pub frames: u64,
    /// Wall-clock duration of the run, in seconds.
    pub elapsed_seconds: f64,
    /// Steady-state throughput: frames per second measured over sink
    /// departures after the warm-up window. Falls back to [`fps_total`]
    /// when the run terminated before a steady-state window existed —
    /// check [`steady_state_valid`] before trusting it as a steady-state
    /// figure.
    ///
    /// [`fps_total`]: RunReport::fps_total
    /// [`steady_state_valid`]: RunReport::steady_state_valid
    pub fps: f64,
    /// Whole-run throughput `frames / elapsed` (includes pipeline fill).
    pub fps_total: f64,
    /// Measured period, in microseconds — always consistent with `fps`
    /// (`period_us == 1e6 / fps` whenever `fps > 0`, and `0.0` only when
    /// no frame departed at all).
    pub period_us: f64,
    /// `true` when `fps`/`period_us` were measured over a real
    /// steady-state window (at least two departures after warm-up with a
    /// positive time span). `false` means the run terminated inside the
    /// warm-up window and both fields fell back to the whole-run
    /// throughput.
    pub steady_state_valid: bool,
    /// Number of epochs executed (1 + completed live reconfigurations).
    pub epochs: u64,
    /// Every completed live reconfiguration, in order.
    pub reconfigs: Vec<ReconfigEvent>,
    /// Per-stage statistics of the *final* epoch's decomposition,
    /// measured over that epoch only.
    pub stages: Vec<StageRuntimeReport>,
}

impl RunReport {
    /// Information throughput in Mb/s given the number of information bits
    /// carried per frame (e.g. `K × R` for a DVB-S2 frame).
    #[must_use]
    pub fn mbps(&self, info_bits_per_frame: f64) -> f64 {
        self.fps * info_bits_per_frame / 1e6
    }

    /// The run's wall-clock duration.
    #[must_use]
    pub fn elapsed(&self) -> Duration {
        Duration::from_secs_f64(self.elapsed_seconds)
    }
}
