//! Measured results of a runtime execution.

use amp_core::CoreType;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Per-stage runtime statistics.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct StageRuntimeReport {
    /// Stage index in the solution.
    pub stage: usize,
    /// Replica count.
    pub replicas: u64,
    /// Core type of the replicas.
    pub core_type: CoreType,
    /// Total processing time across replicas, in seconds.
    pub busy_seconds: f64,
    /// Fraction of `replicas × wall-clock` spent processing.
    pub utilization: f64,
}

/// Outcome of a pipeline run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RunReport {
    /// Frames that reached the sink.
    pub frames: u64,
    /// Wall-clock duration of the run, in seconds.
    pub elapsed_seconds: f64,
    /// Steady-state throughput: frames per second measured over sink
    /// departures after the warm-up window.
    pub fps: f64,
    /// Whole-run throughput `frames / elapsed` (includes pipeline fill).
    pub fps_total: f64,
    /// Measured steady-state period, in microseconds (`1e6 / fps`).
    pub period_us: f64,
    /// Per-stage statistics.
    pub stages: Vec<StageRuntimeReport>,
}

impl RunReport {
    /// Information throughput in Mb/s given the number of information bits
    /// carried per frame (e.g. `K × R` for a DVB-S2 frame).
    #[must_use]
    pub fn mbps(&self, info_bits_per_frame: f64) -> f64 {
        self.fps * info_bits_per_frame / 1e6
    }

    /// The run's wall-clock duration.
    #[must_use]
    pub fn elapsed(&self) -> Duration {
        Duration::from_secs_f64(self.elapsed_seconds)
    }
}
