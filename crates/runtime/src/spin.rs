//! Calibrated spin-work: deterministic busy CPU time.
//!
//! Virtual big/little cores are realized by making a task's execution cost
//! depend on the core type it was scheduled to — a task with weight `w` µs
//! on that type spins for `w` µs of real CPU time. The spin loop does real
//! arithmetic (a xorshift mix) so the optimizer cannot elide it and the
//! cost scales with cycles rather than with timer reads.

use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// Iterations-per-microsecond calibration of the spin kernel.
#[derive(Clone, Copy, Debug)]
pub struct SpinCalibration {
    iters_per_micro: f64,
}

impl SpinCalibration {
    /// Measures the host: runs the kernel in growing batches until a batch
    /// takes at least 20 ms, then derives iterations per microsecond.
    #[must_use]
    pub fn calibrate() -> SpinCalibration {
        let mut iters: u64 = 10_000;
        loop {
            let start = Instant::now();
            let _ = spin_kernel(iters, 0x9e37_79b9);
            let dt = start.elapsed();
            if dt >= Duration::from_millis(20) {
                let micros = dt.as_secs_f64() * 1e6;
                return SpinCalibration {
                    iters_per_micro: (iters as f64 / micros).max(1.0),
                };
            }
            iters = iters.saturating_mul(2);
        }
    }

    /// The process-wide calibration, measured once on first use.
    pub fn global() -> &'static SpinCalibration {
        static CAL: OnceLock<SpinCalibration> = OnceLock::new();
        CAL.get_or_init(SpinCalibration::calibrate)
    }

    /// Spin-kernel iterations corresponding to `micros` microseconds.
    #[must_use]
    pub fn iters_for_micros(&self, micros: f64) -> u64 {
        (micros * self.iters_per_micro).round().max(0.0) as u64
    }

    /// Burns approximately `micros` microseconds of CPU time; returns the
    /// kernel's accumulator so callers can fold it into a checksum (keeping
    /// the work observable).
    #[must_use]
    pub fn spin(&self, micros: f64, seed: u64) -> u64 {
        spin_kernel(self.iters_for_micros(micros), seed)
    }
}

/// Burns `micros` µs with the process-wide calibration.
#[must_use]
pub fn spin_for_micros(micros: f64, seed: u64) -> u64 {
    SpinCalibration::global().spin(micros, seed)
}

/// Burns CPU time proportional to `weight` µs and mixes the result into the
/// seed (convenience for task bodies).
#[must_use]
pub fn calibrated_spin(weight: u64, seed: u64) -> u64 {
    spin_for_micros(weight as f64, seed)
}

#[inline(never)]
fn spin_kernel(iters: u64, seed: u64) -> u64 {
    let mut x = seed | 1;
    for _ in 0..iters {
        // xorshift64* step: cheap, dependency-chained, not elidable.
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        x = x.wrapping_mul(0x2545_f491_4f6c_dd1d);
    }
    std::hint::black_box(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_is_positive() {
        let cal = SpinCalibration::calibrate();
        assert!(cal.iters_per_micro >= 1.0);
        assert!(cal.iters_for_micros(100.0) > cal.iters_for_micros(10.0));
        assert_eq!(cal.iters_for_micros(0.0), 0);
    }

    #[test]
    fn spin_duration_tracks_request() {
        let cal = SpinCalibration::global();
        let start = std::time::Instant::now();
        let _ = cal.spin(2_000.0, 42);
        let short = start.elapsed();
        let start = std::time::Instant::now();
        let _ = cal.spin(20_000.0, 42);
        let long = start.elapsed();
        // 10x the work should take markedly longer; generous bounds because
        // CI machines are noisy.
        assert!(
            long > short * 3,
            "short {short:?} vs long {long:?} not proportional"
        );
    }

    #[test]
    fn kernel_result_depends_on_seed() {
        assert_ne!(spin_kernel(1000, 1), spin_kernel(1000, 2));
    }
}
