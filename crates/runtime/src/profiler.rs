//! Task profiling: measures each task's per-frame latency on each virtual
//! core type, producing the weight table the schedulers consume (the
//! paper's Table III workflow: profile first, schedule second).
//!
//! Weights are accumulated in nanoseconds and quantized to a configurable
//! unit ([`ProfileConfig::unit_nanos`]). The schedulers only consume weight
//! *ratios*, so the unit is free — but it must be fine enough for the
//! chain at hand: quantizing a 300 ns task and a 900 ns task to whole
//! microseconds collapses both to weight 1 and erases the very asymmetry
//! the schedulers balance. The default unit is 1 ns, which preserves
//! sub-microsecond asymmetry exactly.

use crate::pipeline::RuntimeTask;
use amp_core::{CoreType, Task, TaskChain};
use std::time::Instant;

/// Profiling parameters.
#[derive(Clone, Copy, Debug)]
pub struct ProfileConfig {
    /// Measured frames per task and core type.
    pub frames: u64,
    /// Leading frames discarded (cache warm-up).
    pub warmup: u64,
    /// Weight scale: one weight unit equals this many nanoseconds. Mean
    /// latencies are divided by it, rounded up, floored at 1. Use 1 (the
    /// default) for nanosecond weights, 1000 for the paper's microsecond
    /// tables when every task is far above 1 µs.
    pub unit_nanos: u64,
}

impl Default for ProfileConfig {
    fn default() -> Self {
        ProfileConfig {
            frames: 32,
            warmup: 4,
            unit_nanos: 1,
        }
    }
}

/// Runs every task of `spec` `config.frames` times on each core type and
/// returns a [`TaskChain`] whose weights are the measured mean latencies
/// in units of [`ProfileConfig::unit_nanos`] (rounded up, minimum 1).
///
/// # Panics
/// Panics when `config` leaves no measured frames after warm-up or has a
/// zero `unit_nanos`.
#[must_use]
pub fn profile_chain<D>(
    tasks: &[RuntimeTask<D>],
    source: impl Fn(u64) -> D,
    config: &ProfileConfig,
) -> TaskChain {
    assert!(config.frames > config.warmup, "need frames after warm-up");
    assert!(config.unit_nanos > 0, "weight unit must be at least 1 ns");
    let measured: Vec<Task> = tasks
        .iter()
        .map(|task| {
            let mut weights = [0u64; 2];
            for (slot, core) in CoreType::BOTH.into_iter().enumerate() {
                let mut total_nanos = 0u64;
                for f in 0..config.frames {
                    let mut data = source(f);
                    let t0 = Instant::now();
                    task.work.process(f, &mut data, core);
                    let dt = t0.elapsed().as_nanos() as u64;
                    if f >= config.warmup {
                        total_nanos += dt;
                    }
                }
                let mean_nanos = total_nanos as f64 / (config.frames - config.warmup) as f64;
                let units = (mean_nanos / config.unit_nanos as f64).ceil() as u64;
                weights[slot] = units.max(1);
            }
            Task {
                name: task.name.clone(),
                weight_big: weights[0],
                weight_little: weights[1],
                replicable: task.replicable,
            }
        })
        .collect();
    TaskChain::new(measured)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::work::WeightedWork;

    #[test]
    fn profiled_weights_track_the_work_model() {
        let tasks = vec![
            RuntimeTask::<u64>::new("fast", true, WeightedWork::new(200.0, 800.0)),
            RuntimeTask::<u64>::new("slow", false, WeightedWork::new(1000.0, 2000.0)),
        ];
        let us = ProfileConfig {
            unit_nanos: 1000,
            ..ProfileConfig::default()
        };
        let chain = profile_chain(&tasks, |s| s, &us);
        assert_eq!(chain.len(), 2);
        // Within 50% of the configured cost (spin calibration tolerance on
        // noisy CI machines).
        let t0 = chain.task(0);
        assert!((100..=400).contains(&t0.weight_big), "{}", t0.weight_big);
        assert!(
            (400..=1600).contains(&t0.weight_little),
            "{}",
            t0.weight_little
        );
        let t1 = chain.task(1);
        assert!(t1.weight_big > t0.weight_big);
        assert!(!t1.replicable && t0.replicable);
        // The little/big ratio should roughly match the 4x / 2x setup.
        let r0 = t0.weight_little as f64 / t0.weight_big as f64;
        assert!((2.0..=8.0).contains(&r0), "ratio {r0}");
    }

    #[test]
    fn sub_microsecond_asymmetry_survives_quantization() {
        // Regression: microsecond quantization (ceil, floor 1) used to
        // collapse a 0.3 µs and a 0.9 µs task both to weight 1 on both
        // core types, hiding a 3x asymmetry from the schedulers. The
        // default nanosecond unit must keep them distinct.
        let tasks = vec![
            RuntimeTask::<u64>::new("tiny", true, WeightedWork::new(0.3, 0.9)),
            RuntimeTask::<u64>::new("small", true, WeightedWork::new(0.9, 2.7)),
        ];
        let chain = profile_chain(&tasks, |s| s, &ProfileConfig::default());
        let (t0, t1) = (chain.task(0), chain.task(1));
        assert!(
            t0.weight_little > t0.weight_big,
            "big {} vs little {} must stay asymmetric",
            t0.weight_big,
            t0.weight_little
        );
        assert!(
            t1.weight_big > t0.weight_big,
            "0.9us ({}) must outweigh 0.3us ({})",
            t1.weight_big,
            t0.weight_big
        );
        // The 3x spread should be roughly preserved (loose bounds: spin
        // granularity and timer overhead dominate at this scale).
        let ratio = t1.weight_big as f64 / t0.weight_big as f64;
        assert!((1.5..=10.0).contains(&ratio), "ratio {ratio}");
    }
}
