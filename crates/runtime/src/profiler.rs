//! Task profiling: measures each task's per-frame latency on each virtual
//! core type, producing the weight table the schedulers consume (the
//! paper's Table III workflow: profile first, schedule second).

use crate::pipeline::RuntimeTask;
use amp_core::{CoreType, Task, TaskChain};
use std::time::Instant;

/// Profiling parameters.
#[derive(Clone, Copy, Debug)]
pub struct ProfileConfig {
    /// Measured frames per task and core type.
    pub frames: u64,
    /// Leading frames discarded (cache warm-up).
    pub warmup: u64,
}

impl Default for ProfileConfig {
    fn default() -> Self {
        ProfileConfig {
            frames: 32,
            warmup: 4,
        }
    }
}

/// Runs every task of `spec` `config.frames` times on each core type and
/// returns a [`TaskChain`] whose weights are the measured mean latencies in
/// microseconds (rounded up, minimum 1).
#[must_use]
pub fn profile_chain<D>(
    tasks: &[RuntimeTask<D>],
    source: impl Fn(u64) -> D,
    config: &ProfileConfig,
) -> TaskChain {
    assert!(config.frames > config.warmup, "need frames after warm-up");
    let measured: Vec<Task> = tasks
        .iter()
        .map(|task| {
            let mut weights = [0u64; 2];
            for (slot, core) in CoreType::BOTH.into_iter().enumerate() {
                let mut total_nanos = 0u64;
                for f in 0..config.frames {
                    let mut data = source(f);
                    let t0 = Instant::now();
                    task.work.process(f, &mut data, core);
                    let dt = t0.elapsed().as_nanos() as u64;
                    if f >= config.warmup {
                        total_nanos += dt;
                    }
                }
                let mean_us = total_nanos as f64 / ((config.frames - config.warmup) as f64 * 1e3);
                weights[slot] = (mean_us.ceil() as u64).max(1);
            }
            Task {
                name: task.name.clone(),
                weight_big: weights[0],
                weight_little: weights[1],
                replicable: task.replicable,
            }
        })
        .collect();
    TaskChain::new(measured)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::work::WeightedWork;

    #[test]
    fn profiled_weights_track_the_work_model() {
        let tasks = vec![
            RuntimeTask::<u64>::new("fast", true, WeightedWork::new(200.0, 800.0)),
            RuntimeTask::<u64>::new("slow", false, WeightedWork::new(1000.0, 2000.0)),
        ];
        let chain = profile_chain(&tasks, |s| s, &ProfileConfig::default());
        assert_eq!(chain.len(), 2);
        // Within 50% of the configured cost (spin calibration tolerance on
        // noisy CI machines).
        let t0 = chain.task(0);
        assert!((100..=400).contains(&t0.weight_big), "{}", t0.weight_big);
        assert!(
            (400..=1600).contains(&t0.weight_little),
            "{}",
            t0.weight_little
        );
        let t1 = chain.task(1);
        assert!(t1.weight_big > t0.weight_big);
        assert!(!t1.replicable && t0.replicable);
        // The little/big ratio should roughly match the 4x / 2x setup.
        let r0 = t0.weight_little as f64 / t0.weight_big as f64;
        assert!((2.0..=8.0).contains(&r0), "ratio {r0}");
    }
}
