//! Socket load generator CLI.
//!
//! Two modes:
//!
//! * **Self-hosted** (default): boots an in-process [`Server`] on a
//!   loopback port, drives it, audits the responses, and prints a JSON
//!   report. `--smoke` runs the CI gate: a steady phase that must be
//!   audit-clean with a warm cache, an overload phase that must produce
//!   *typed* rejections (never silence), a pool-sweep phase that
//!   must pay exactly one cold HeRAD solve across every pool shape of a
//!   chain (the solve-once chain tier), a warm-restart phase that
//!   must serve the same sweep entirely from a snapshot loaded at boot,
//!   a sustained throughput phase that must clear the 140k req/s floor,
//!   and a scaling sweep (1/8/64/256 connections at one offered load)
//!   whose p99 at 256 connections must stay within 5x of p99 at 8.
//! * **External** (`--addr HOST:PORT`): drives an already-running
//!   server; the audit still applies, the cache/overload assertions
//!   don't (the server's config is unknown).
//! * **Scaling** (`--scaling`, self-hosted or external): just the
//!   latency-vs-connections sweep, gated, curve printed (and written to
//!   `--scaling-out`). `--duration`/`--rate`/`--warmup` tune the
//!   sustained open-loop phases; `--duration` without `--scaling` runs
//!   one sustained point instead of the fixed-count workload.
//!
//! Exit status is 0 only when every audit and smoke assertion holds.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

use amp_core::json::Json;
use amp_net::{loadgen, proto, LoadConfig, Server, ServerConfig};
use amp_service::{Objective, Policy, ScheduleRequest, TaskSpec};

struct Args {
    addr: Option<SocketAddr>,
    connections: usize,
    requests: usize,
    distinct: usize,
    seed: u64,
    shards: usize,
    smoke: bool,
    scaling: bool,
    duration_ms: Option<u64>,
    rate: Option<u64>,
    warmup_ms: Option<u64>,
    out: Option<String>,
    scaling_out: Option<String>,
    snapshot_out: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: net_loadgen [--smoke] [--scaling] [--addr HOST:PORT] \
         [--connections N] [--requests N] [--distinct N] [--duration MS] \
         [--rate RPS] [--warmup MS] [--seed N] [--shards N] [--out FILE] \
         [--scaling-out FILE] [--snapshot-out FILE]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        addr: None,
        connections: 4,
        requests: 256,
        distinct: 8,
        seed: 0xA11CE,
        shards: 4,
        smoke: false,
        scaling: false,
        duration_ms: None,
        rate: None,
        warmup_ms: None,
        out: None,
        scaling_out: None,
        snapshot_out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().unwrap_or_else(|| usage_for(name));
        match flag.as_str() {
            "--smoke" => args.smoke = true,
            "--scaling" => args.scaling = true,
            "--addr" => args.addr = Some(value("--addr").parse().unwrap_or_else(|_| usage())),
            "--connections" => {
                args.connections = value("--connections").parse().unwrap_or_else(|_| usage());
            }
            "--requests" => args.requests = value("--requests").parse().unwrap_or_else(|_| usage()),
            "--distinct" => args.distinct = value("--distinct").parse().unwrap_or_else(|_| usage()),
            "--duration" => {
                args.duration_ms = Some(value("--duration").parse().unwrap_or_else(|_| usage()));
            }
            "--rate" => args.rate = Some(value("--rate").parse().unwrap_or_else(|_| usage())),
            "--warmup" => {
                args.warmup_ms = Some(value("--warmup").parse().unwrap_or_else(|_| usage()));
            }
            "--seed" => args.seed = value("--seed").parse().unwrap_or_else(|_| usage()),
            "--shards" => args.shards = value("--shards").parse().unwrap_or_else(|_| usage()),
            "--out" => args.out = Some(value("--out")),
            "--scaling-out" => args.scaling_out = Some(value("--scaling-out")),
            "--snapshot-out" => args.snapshot_out = Some(value("--snapshot-out")),
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    args
}

fn usage_for(name: &str) -> ! {
    eprintln!("missing value for {name}");
    usage();
}

fn load_config(addr: SocketAddr, args: &Args) -> LoadConfig {
    LoadConfig {
        addr,
        connections: args.connections,
        requests_per_connection: args.requests,
        distinct_instances: args.distinct,
        seed: args.seed,
        duration: args.duration_ms.map(Duration::from_millis),
        target_rps: args.rate,
        warmup: Duration::from_millis(args.warmup_ms.unwrap_or(250)),
        ..LoadConfig::default()
    }
}

/// The connection counts every scaling sweep visits: the same offered
/// load pushed through 1, 8, 64 and 256 connections.
const SCALING_SWEEP: [usize; 4] = [1, 8, 64, 256];

/// Throughput floor for the smoke gate, answered responses per second.
/// Twice the pre-overhaul per-line-syscall wire's checked-in number.
const THROUGHPUT_FLOOR_RPS: u64 = 140_000;

/// The scaling gate: p99 at 256 connections may cost at most this
/// multiple of p99 at 8 connections for the same offered load.
const SCALING_P99_RATIO: u64 = 5;

/// Quantization floor for the ratio gate's denominator: below one
/// millisecond, p99 at 8 connections is dominated by OS scheduler noise
/// and a ratio against it measures the host, not the server.
const SCALING_P99_FLOOR_US: u64 = 1000;

/// A server sized for the scaling sweep's widest point (256 client
/// connections plus audit headroom).
fn wide_server(args: &Args) -> Result<Server, std::io::Error> {
    Server::start(ServerConfig {
        shards: args.shards.max(1),
        max_connections: 512,
        quota: None,
        ..ServerConfig::default()
    })
}

/// How many times the sweep may re-run before a tail-gate miss counts.
/// A one-core CI box occasionally eats a multi-millisecond host stall
/// mid-run that lands squarely in one point's p99; a genuine fan-out
/// regression (the per-connection collapse this gate exists for) fails
/// every attempt, a stolen timeslice doesn't.
const SCALING_ATTEMPTS: u64 = 3;

/// The sustained open-loop config the smoke scaling sweep runs:
/// `--duration`/`--rate`/`--warmup` override the defaults.
fn scaling_config(addr: SocketAddr, args: &Args) -> LoadConfig {
    LoadConfig {
        addr,
        distinct_instances: args.distinct,
        seed: args.seed ^ 0x5CA1E,
        duration: Some(Duration::from_millis(args.duration_ms.unwrap_or(2400))),
        target_rps: Some(args.rate.unwrap_or(4_000)),
        warmup: Duration::from_millis(args.warmup_ms.unwrap_or(600)),
        read_timeout: Duration::from_secs(30),
        ..LoadConfig::default()
    }
}

/// Every gate a finished sweep must clear, as failure labels (empty =
/// pass). Also prints the per-point summary.
fn scaling_gate(scaling: &amp_net::ScalingReport) -> Vec<String> {
    let mut gate = Vec::new();
    check(
        &mut gate,
        scaling.all_clean(),
        "scaling: every point audit-clean with every sent frame answered",
    );
    for point in &scaling.points {
        check(
            &mut gate,
            point.report.answered > 0,
            "scaling: every point answered at least one frame",
        );
        eprintln!(
            "scaling@{}: {} sent, {} rps, p50 {}us, p99 {}us",
            point.connections,
            point.report.sent,
            point.report.throughput_rps,
            point.report.p50_us,
            point.report.p99_us
        );
    }
    let p99_narrow = scaling.point(8).map_or(0, |p| p.report.p99_us);
    let p99_wide = scaling.point(256).map_or(u64::MAX, |p| p.report.p99_us);
    check(
        &mut gate,
        p99_wide <= SCALING_P99_RATIO * p99_narrow.max(SCALING_P99_FLOOR_US),
        "scaling: p99 at 256 connections within 5x of p99 at 8 connections",
    );
    gate
}

/// Runs the gated sweep, retrying host-noise outliers; the attempt that
/// passes (or the last one) is returned and its gate verdict appended
/// to `failures`.
fn run_gated_scaling(
    cfg: &LoadConfig,
    failures: &mut Vec<String>,
) -> std::io::Result<amp_net::ScalingReport> {
    let mut last: Option<(amp_net::ScalingReport, Vec<String>)> = None;
    for attempt in 0..SCALING_ATTEMPTS {
        let attempt_cfg = LoadConfig {
            seed: cfg.seed ^ (attempt << 48),
            ..cfg.clone()
        };
        let scaling = loadgen::run_scaling(&attempt_cfg, &SCALING_SWEEP)?;
        let gate = scaling_gate(&scaling);
        if gate.is_empty() {
            return Ok(scaling);
        }
        if attempt + 1 < SCALING_ATTEMPTS {
            eprintln!(
                "scaling: gate missed on attempt {} of {SCALING_ATTEMPTS} \
                 ({}); re-running the sweep",
                attempt + 1,
                gate.join("; ")
            );
        }
        last = Some((scaling, gate));
    }
    let (scaling, gate) = last.expect("at least one attempt ran");
    failures.extend(gate);
    Ok(scaling)
}

/// One named assertion; failures accumulate instead of aborting so a
/// smoke run reports everything that broke.
fn check(failures: &mut Vec<String>, ok: bool, what: &str) {
    if !ok {
        failures.push(what.to_string());
    }
}

/// The one fixed chain the pool-sweep phase revisits under every pool
/// shape; a mix of sequential and replicable stages so the HeRAD table
/// is non-trivial.
fn sweep_chain() -> Vec<TaskSpec> {
    [
        (10, 25, false),
        (40, 90, true),
        (8, 8, true),
        (5, 12, false),
    ]
    .into_iter()
    .map(|(weight_big, weight_little, replicable)| TaskSpec {
        weight_big,
        weight_little,
        replicable,
    })
    .collect()
}

/// Every pool shape the sweep visits: 12 distinct `(big, little)`
/// pairs, all of one chain, in growing order so the tier's grow path is
/// exercised as well as pure extraction.
fn sweep_pools() -> Vec<(u64, u64)> {
    (1..=3u64)
        .flat_map(|big| (0..=3u64).map(move |little| (big, little)))
        .collect()
}

/// Pipelines one HeRAD schedule frame per pool shape over a single
/// connection and returns how many came back as success frames.
fn drive_sweep(addr: SocketAddr) -> std::io::Result<u64> {
    let pools = sweep_pools();
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    let mut write_half = stream.try_clone()?;
    for (seq, &(big_cores, little_cores)) in pools.iter().enumerate() {
        let request = ScheduleRequest {
            id: seq as u64,
            tasks: sweep_chain(),
            big_cores,
            little_cores,
            policy: Policy::Strategy("HeRAD".to_string()),
            objective: Objective::Period,
            deadline_us: None,
        };
        let frame = format!("{}\n", proto::render_request(&request, "public"));
        write_half.write_all(frame.as_bytes())?;
    }
    let mut ok = 0;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    for _ in 0..pools.len() {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            break;
        }
        if let Ok(response) = proto::parse_response(line.trim_end()) {
            if response.result.is_ok() {
                ok += 1;
            }
        }
    }
    Ok(ok)
}

/// Pulls one counter out of the `fleet.chain_cache` block of a status
/// snapshot; `u64::MAX` (which fails every assertion loudly) when the
/// block or key is missing.
fn chain_tier_counter(status: &str, key: &str) -> u64 {
    Json::parse(status)
        .ok()
        .and_then(|doc| {
            doc.as_obj()?
                .get("fleet")?
                .as_obj()?
                .get("chain_cache")?
                .as_obj()?
                .get(key)?
                .as_int()
        })
        .unwrap_or(u64::MAX)
}

fn main() -> ExitCode {
    let args = parse_args();
    let mut failures: Vec<String> = Vec::new();
    let mut scaling_json: Option<String> = None;

    let report_json = if let Some(addr) = args.addr {
        if args.scaling {
            // External scaling sweep: latency-vs-connections against an
            // already-running server.
            let scaling = match run_gated_scaling(&scaling_config(addr, &args), &mut failures) {
                Ok(scaling) => scaling,
                Err(e) => {
                    eprintln!("scaling sweep failed against {addr}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let json = scaling.to_json();
            scaling_json = Some(json.clone());
            json
        } else {
            // External mode: audit only.
            let report = match loadgen::run(&load_config(addr, &args)) {
                Ok(report) => report,
                Err(e) => {
                    eprintln!("loadgen failed against {addr}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            check(&mut failures, report.clean(), "audit: lost/dup/misrouted");
            check(
                &mut failures,
                report.answered + report.lost == report.sent,
                "audit: every frame accounted for",
            );
            eprintln!(
                "external: {} sent, {} ok, {} rejected, p99 {}us",
                report.sent,
                report.ok,
                report.rejected.values().sum::<u64>(),
                report.p99_us
            );
            report.to_json()
        }
    } else if args.scaling && !args.smoke {
        // Self-hosted scaling sweep: boot one wide server and push the
        // same offered load through every sweep point.
        let server = match wide_server(&args) {
            Ok(server) => server,
            Err(e) => {
                eprintln!("failed to start scaling server: {e}");
                return ExitCode::FAILURE;
            }
        };
        let scaling =
            match run_gated_scaling(&scaling_config(server.local_addr(), &args), &mut failures) {
                Ok(scaling) => scaling,
                Err(e) => {
                    eprintln!("scaling sweep failed: {e}");
                    return ExitCode::FAILURE;
                }
            };
        server.shutdown();
        let json = scaling.to_json();
        scaling_json = Some(json.clone());
        json
    } else {
        // Self-hosted: steady phase (warm cache, audit-clean), then an
        // overload phase (typed rejections, bounded tail).
        let steady_server = match Server::start(ServerConfig {
            shards: args.shards.max(1),
            quota: None,
            ..ServerConfig::default()
        }) {
            Ok(server) => server,
            Err(e) => {
                eprintln!("failed to start steady-phase server: {e}");
                return ExitCode::FAILURE;
            }
        };
        let steady_cfg = load_config(steady_server.local_addr(), &args);
        let steady = match loadgen::run(&steady_cfg) {
            Ok(report) => report,
            Err(e) => {
                eprintln!("steady phase failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        let status = steady_server.status_json();
        steady_server.shutdown();

        check(&mut failures, steady.clean(), "steady: lost/dup/misrouted");
        check(
            &mut failures,
            steady.answered == steady.sent,
            "steady: every request answered",
        );
        check(&mut failures, steady.ok == steady.sent, "steady: all ok");
        // The distinct-instance pool is tiny relative to the request
        // count, so nearly every response must come from cache. This is
        // also the per-shard cache counters' end-to-end check.
        check(
            &mut failures,
            steady.cache_hit_rate() > 0.90,
            "steady: cache hit rate > 90% on the repeated-request pool",
        );
        check(
            &mut failures,
            status.contains("\"per_shard\""),
            "steady: status exposes per-shard counters",
        );
        eprintln!(
            "steady: {} sent, {} ok, cache hit rate {:.3}, {} rps, p99 {}us",
            steady.sent,
            steady.ok,
            steady.cache_hit_rate(),
            steady.throughput_rps,
            steady.p99_us
        );

        if args.smoke {
            // Overload: one worker behind a depth-1 queue, every
            // request distinct (no cache relief), windows far wider
            // than the queue. The contract: every frame still gets a
            // typed answer — OVERLOADED, not silence — and the tail
            // stays bounded because rejection is immediate.
            let overload_server = match Server::start(ServerConfig {
                shards: 1,
                per_shard: amp_service::EngineConfig {
                    workers: 1,
                    racer_threads: 1,
                    queue_depth: 1,
                    cache_capacity: 0,
                    ..amp_service::EngineConfig::default()
                },
                window: 512,
                batch_max: 1,
                quota: None,
                ..ServerConfig::default()
            }) {
                Ok(server) => server,
                Err(e) => {
                    eprintln!("failed to start overload-phase server: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let overload_cfg = LoadConfig {
                addr: overload_server.local_addr(),
                connections: args.connections,
                requests_per_connection: args.requests,
                // Pool far larger than the request count: all distinct.
                distinct_instances: args.connections * args.requests,
                seed: args.seed ^ 0xDEAD,
                read_timeout: Duration::from_secs(30),
                ..LoadConfig::default()
            };
            let overload = match loadgen::run(&overload_cfg) {
                Ok(report) => report,
                Err(e) => {
                    eprintln!("overload phase failed: {e}");
                    return ExitCode::FAILURE;
                }
            };
            overload_server.shutdown();
            let overloaded = overload.rejected.get("OVERLOADED").copied().unwrap_or(0);
            check(
                &mut failures,
                overload.clean(),
                "overload: lost/dup/misrouted",
            );
            check(
                &mut failures,
                overload.answered == overload.sent,
                "overload: every request answered (typed rejection, not silence)",
            );
            check(
                &mut failures,
                overloaded > 0,
                "overload: backpressure surfaced as typed OVERLOADED",
            );
            // Rejections are immediate, so the p99 over the mixed
            // stream must stay well under the audit read timeout.
            check(
                &mut failures,
                Duration::from_micros(overload.p99_us) < overload_cfg.read_timeout / 2,
                "overload: p99 bounded",
            );
            eprintln!(
                "overload: {} sent, {} ok, {} OVERLOADED, p99 {}us",
                overload.sent, overload.ok, overloaded, overload.p99_us
            );

            // Pool sweep: the same chain under 12 distinct pool shapes.
            // Every request misses the exact-fingerprint LRU (the pool
            // is part of that key), so this is the chain tier's
            // end-to-end gate: one cold HeRAD solve, everything else
            // answered by growing/extracting the one cached table.
            let snap_path = args.snapshot_out.clone().map_or_else(
                || {
                    std::env::temp_dir().join(format!(
                        "amp-net-smoke-snapshot-{}.json",
                        std::process::id()
                    ))
                },
                PathBuf::from,
            );
            let sweep_server = match Server::start(ServerConfig {
                shards: args.shards.max(1),
                quota: None,
                ..ServerConfig::default()
            }) {
                Ok(server) => server,
                Err(e) => {
                    eprintln!("failed to start sweep-phase server: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let sweep_total = sweep_pools().len() as u64;
            let sweep_ok = match drive_sweep(sweep_server.local_addr()) {
                Ok(ok) => ok,
                Err(e) => {
                    eprintln!("sweep phase failed: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let sweep_status = sweep_server.status_json();
            let cold = chain_tier_counter(&sweep_status, "cold_solves");
            let warm_serves = chain_tier_counter(&sweep_status, "hits")
                .saturating_add(chain_tier_counter(&sweep_status, "grows"));
            check(&mut failures, sweep_ok == sweep_total, "sweep: all ok");
            check(
                &mut failures,
                cold == 1,
                "sweep: exactly one cold HeRAD solve across every pool shape",
            );
            check(
                &mut failures,
                warm_serves == sweep_total - 1,
                "sweep: every other pool served from the chain tier",
            );
            check(
                &mut failures,
                chain_tier_counter(&sweep_status, "hit_rate_milli") > 0,
                "sweep: chain-tier hit rate per-mille is split out and non-zero",
            );
            let written = match sweep_server.shards().save_tier_snapshot(&snap_path) {
                Ok(written) => written,
                Err(e) => {
                    eprintln!("snapshot save failed: {e}");
                    return ExitCode::FAILURE;
                }
            };
            sweep_server.shutdown();
            check(
                &mut failures,
                written == 1,
                "sweep: snapshot holds the one grown table",
            );
            eprintln!(
                "sweep: {sweep_ok}/{sweep_total} ok, {cold} cold solve(s), \
                 {warm_serves} tier serves, snapshot {} ({written} table(s))",
                snap_path.display()
            );

            // Warm restart: a fresh server loads the snapshot at boot
            // and must answer the whole sweep without a single cold
            // solve — persistence is the difference between "cache" and
            // "solve-once".
            let mut warm_per_shard = ServerConfig::default().per_shard;
            warm_per_shard.snapshot_path = Some(snap_path.clone());
            let warm_server = match Server::start(ServerConfig {
                shards: args.shards.max(1),
                per_shard: warm_per_shard,
                quota: None,
                ..ServerConfig::default()
            }) {
                Ok(server) => server,
                Err(e) => {
                    eprintln!("failed to start warm-restart server: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let warm_ok = match drive_sweep(warm_server.local_addr()) {
                Ok(ok) => ok,
                Err(e) => {
                    eprintln!("warm-restart phase failed: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let warm_status = warm_server.status_json();
            warm_server.shutdown();
            let warm_cold = chain_tier_counter(&warm_status, "cold_solves");
            let warm_loaded = chain_tier_counter(&warm_status, "snapshot_loaded");
            check(
                &mut failures,
                warm_ok == sweep_total,
                "warm restart: all ok",
            );
            check(
                &mut failures,
                warm_cold == 0,
                "warm restart: zero cold solves after loading the snapshot",
            );
            check(
                &mut failures,
                warm_loaded >= 1 && warm_loaded != u64::MAX,
                "warm restart: snapshot tables loaded at boot",
            );
            check(
                &mut failures,
                chain_tier_counter(&warm_status, "hits") == sweep_total,
                "warm restart: every pool shape extracted from the restored table",
            );
            eprintln!(
                "warm restart: {warm_ok}/{sweep_total} ok, {warm_cold} cold solve(s), \
                 {warm_loaded} snapshot table(s) loaded"
            );
            if args.snapshot_out.is_none() {
                std::fs::remove_file(&snap_path).ok();
            }

            // Throughput floor: a sustained flat-out run (open-loop,
            // unpaced, warmup excluded from the percentiles) over the
            // corked vectored wire must answer at least twice what the
            // per-line-syscall wire's checked-in BENCH_net.json shows.
            let tp_server = match Server::start(ServerConfig {
                shards: args.shards.max(1),
                quota: None,
                ..ServerConfig::default()
            }) {
                Ok(server) => server,
                Err(e) => {
                    eprintln!("failed to start throughput-phase server: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let tp_cfg = LoadConfig {
                addr: tp_server.local_addr(),
                connections: 2,
                distinct_instances: args.distinct,
                seed: args.seed ^ 0xF1A7,
                duration: Some(Duration::from_millis(args.duration_ms.unwrap_or(1500))),
                target_rps: None,
                warmup: Duration::from_millis(args.warmup_ms.unwrap_or(250)),
                read_timeout: Duration::from_secs(30),
                ..LoadConfig::default()
            };
            let throughput = match loadgen::run(&tp_cfg) {
                Ok(report) => report,
                Err(e) => {
                    eprintln!("throughput phase failed: {e}");
                    return ExitCode::FAILURE;
                }
            };
            tp_server.shutdown();
            check(
                &mut failures,
                throughput.clean(),
                "throughput: lost/dup/misrouted",
            );
            check(
                &mut failures,
                throughput.answered == throughput.sent,
                "throughput: every sent frame answered after the drain",
            );
            check(
                &mut failures,
                throughput.throughput_rps >= THROUGHPUT_FLOOR_RPS,
                "throughput: sustained rate at or above the 140k req/s floor",
            );
            eprintln!(
                "throughput: {} sent, {} rps (floor {}), p50 {}us, p99 {}us",
                throughput.sent,
                throughput.throughput_rps,
                THROUGHPUT_FLOOR_RPS,
                throughput.p50_us,
                throughput.p99_us
            );

            // Scaling curve: the same offered load through 1, 8, 64 and
            // 256 connections; the tail may not fall apart as the
            // registry and pumps fan out.
            let sc_server = match wide_server(&args) {
                Ok(server) => server,
                Err(e) => {
                    eprintln!("failed to start scaling-phase server: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let scaling = match run_gated_scaling(
                &scaling_config(sc_server.local_addr(), &args),
                &mut failures,
            ) {
                Ok(scaling) => scaling,
                Err(e) => {
                    eprintln!("scaling phase failed: {e}");
                    return ExitCode::FAILURE;
                }
            };
            sc_server.shutdown();
            let curve = scaling.to_json();
            scaling_json = Some(curve.clone());

            // The combined smoke artifact: steady-state audit, the
            // sustained throughput run and the scaling curve in one
            // document (sorted keys, in-tree codec compatible).
            format!(
                "{{\"scaling\":{curve},\"steady\":{},\"throughput\":{}}}",
                steady.to_json(),
                throughput.to_json()
            )
        } else {
            steady.to_json()
        }
    };

    if let Some(path) = &args.out {
        if let Err(e) = std::fs::write(path, format!("{report_json}\n")) {
            eprintln!("failed to write {path}: {e}");
            failures.push("write --out artifact".to_string());
        }
    }
    if let Some(path) = &args.scaling_out {
        match &scaling_json {
            Some(json) => {
                if let Err(e) = std::fs::write(path, format!("{json}\n")) {
                    eprintln!("failed to write {path}: {e}");
                    failures.push("write --scaling-out artifact".to_string());
                }
            }
            None => {
                eprintln!(
                    "--scaling-out given but no scaling sweep ran (add --scaling or --smoke)"
                );
                failures.push("--scaling-out without a scaling sweep".to_string());
            }
        }
    }
    println!("{report_json}");

    if failures.is_empty() {
        ExitCode::SUCCESS
    } else {
        for failure in &failures {
            eprintln!("FAILED: {failure}");
        }
        ExitCode::FAILURE
    }
}
