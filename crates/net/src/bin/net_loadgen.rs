//! Socket load generator CLI.
//!
//! Two modes:
//!
//! * **Self-hosted** (default): boots an in-process [`Server`] on a
//!   loopback port, drives it, audits the responses, and prints a JSON
//!   report. `--smoke` runs the CI gate: a steady phase that must be
//!   audit-clean with a warm cache, then an overload phase that must
//!   produce *typed* rejections, never silence.
//! * **External** (`--addr HOST:PORT`): drives an already-running
//!   server; the audit still applies, the cache/overload assertions
//!   don't (the server's config is unknown).
//!
//! Exit status is 0 only when every audit and smoke assertion holds.

use std::net::SocketAddr;
use std::process::ExitCode;
use std::time::Duration;

use amp_net::{loadgen, LoadConfig, Server, ServerConfig};

struct Args {
    addr: Option<SocketAddr>,
    connections: usize,
    requests: usize,
    distinct: usize,
    seed: u64,
    shards: usize,
    smoke: bool,
    out: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: net_loadgen [--smoke] [--addr HOST:PORT] [--connections N] \
         [--requests N] [--distinct N] [--seed N] [--shards N] [--out FILE]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        addr: None,
        connections: 4,
        requests: 256,
        distinct: 8,
        seed: 0xA11CE,
        shards: 4,
        smoke: false,
        out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().unwrap_or_else(|| usage_for(name));
        match flag.as_str() {
            "--smoke" => args.smoke = true,
            "--addr" => args.addr = Some(value("--addr").parse().unwrap_or_else(|_| usage())),
            "--connections" => {
                args.connections = value("--connections").parse().unwrap_or_else(|_| usage());
            }
            "--requests" => args.requests = value("--requests").parse().unwrap_or_else(|_| usage()),
            "--distinct" => args.distinct = value("--distinct").parse().unwrap_or_else(|_| usage()),
            "--seed" => args.seed = value("--seed").parse().unwrap_or_else(|_| usage()),
            "--shards" => args.shards = value("--shards").parse().unwrap_or_else(|_| usage()),
            "--out" => args.out = Some(value("--out")),
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    args
}

fn usage_for(name: &str) -> ! {
    eprintln!("missing value for {name}");
    usage();
}

fn load_config(addr: SocketAddr, args: &Args) -> LoadConfig {
    LoadConfig {
        addr,
        connections: args.connections,
        requests_per_connection: args.requests,
        distinct_instances: args.distinct,
        seed: args.seed,
        ..LoadConfig::default()
    }
}

/// One named assertion; failures accumulate instead of aborting so a
/// smoke run reports everything that broke.
fn check(failures: &mut Vec<String>, ok: bool, what: &str) {
    if !ok {
        failures.push(what.to_string());
    }
}

fn main() -> ExitCode {
    let args = parse_args();
    let mut failures: Vec<String> = Vec::new();

    let report_json = if let Some(addr) = args.addr {
        // External mode: audit only.
        let report = match loadgen::run(&load_config(addr, &args)) {
            Ok(report) => report,
            Err(e) => {
                eprintln!("loadgen failed against {addr}: {e}");
                return ExitCode::FAILURE;
            }
        };
        check(&mut failures, report.clean(), "audit: lost/dup/misrouted");
        check(
            &mut failures,
            report.answered + report.lost == report.sent,
            "audit: every frame accounted for",
        );
        eprintln!(
            "external: {} sent, {} ok, {} rejected, p99 {}us",
            report.sent,
            report.ok,
            report.rejected.values().sum::<u64>(),
            report.p99_us
        );
        report.to_json()
    } else {
        // Self-hosted: steady phase (warm cache, audit-clean), then an
        // overload phase (typed rejections, bounded tail).
        let steady_server = match Server::start(ServerConfig {
            shards: args.shards.max(1),
            quota: None,
            ..ServerConfig::default()
        }) {
            Ok(server) => server,
            Err(e) => {
                eprintln!("failed to start steady-phase server: {e}");
                return ExitCode::FAILURE;
            }
        };
        let steady_cfg = load_config(steady_server.local_addr(), &args);
        let steady = match loadgen::run(&steady_cfg) {
            Ok(report) => report,
            Err(e) => {
                eprintln!("steady phase failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        let status = steady_server.status_json();
        steady_server.shutdown();

        check(&mut failures, steady.clean(), "steady: lost/dup/misrouted");
        check(
            &mut failures,
            steady.answered == steady.sent,
            "steady: every request answered",
        );
        check(&mut failures, steady.ok == steady.sent, "steady: all ok");
        // The distinct-instance pool is tiny relative to the request
        // count, so nearly every response must come from cache. This is
        // also the per-shard cache counters' end-to-end check.
        check(
            &mut failures,
            steady.cache_hit_rate() > 0.90,
            "steady: cache hit rate > 90% on the repeated-request pool",
        );
        check(
            &mut failures,
            status.contains("\"per_shard\""),
            "steady: status exposes per-shard counters",
        );
        eprintln!(
            "steady: {} sent, {} ok, cache hit rate {:.3}, {} rps, p99 {}us",
            steady.sent,
            steady.ok,
            steady.cache_hit_rate(),
            steady.throughput_rps,
            steady.p99_us
        );

        if args.smoke {
            // Overload: one worker behind a depth-1 queue, every
            // request distinct (no cache relief), windows far wider
            // than the queue. The contract: every frame still gets a
            // typed answer — OVERLOADED, not silence — and the tail
            // stays bounded because rejection is immediate.
            let overload_server = match Server::start(ServerConfig {
                shards: 1,
                per_shard: amp_service::EngineConfig {
                    workers: 1,
                    racer_threads: 1,
                    queue_depth: 1,
                    cache_capacity: 0,
                    ..amp_service::EngineConfig::default()
                },
                window: 512,
                batch_max: 1,
                quota: None,
                ..ServerConfig::default()
            }) {
                Ok(server) => server,
                Err(e) => {
                    eprintln!("failed to start overload-phase server: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let overload_cfg = LoadConfig {
                addr: overload_server.local_addr(),
                connections: args.connections,
                requests_per_connection: args.requests,
                // Pool far larger than the request count: all distinct.
                distinct_instances: args.connections * args.requests,
                seed: args.seed ^ 0xDEAD,
                read_timeout: Duration::from_secs(30),
                ..LoadConfig::default()
            };
            let overload = match loadgen::run(&overload_cfg) {
                Ok(report) => report,
                Err(e) => {
                    eprintln!("overload phase failed: {e}");
                    return ExitCode::FAILURE;
                }
            };
            overload_server.shutdown();
            let overloaded = overload.rejected.get("OVERLOADED").copied().unwrap_or(0);
            check(
                &mut failures,
                overload.clean(),
                "overload: lost/dup/misrouted",
            );
            check(
                &mut failures,
                overload.answered == overload.sent,
                "overload: every request answered (typed rejection, not silence)",
            );
            check(
                &mut failures,
                overloaded > 0,
                "overload: backpressure surfaced as typed OVERLOADED",
            );
            // Rejections are immediate, so the p99 over the mixed
            // stream must stay well under the audit read timeout.
            check(
                &mut failures,
                Duration::from_micros(overload.p99_us) < overload_cfg.read_timeout / 2,
                "overload: p99 bounded",
            );
            eprintln!(
                "overload: {} sent, {} ok, {} OVERLOADED, p99 {}us",
                overload.sent, overload.ok, overloaded, overload.p99_us
            );
        }
        steady.to_json()
    };

    if let Some(path) = &args.out {
        if let Err(e) = std::fs::write(path, format!("{report_json}\n")) {
            eprintln!("failed to write {path}: {e}");
            failures.push("write --out artifact".to_string());
        }
    }
    println!("{report_json}");

    if failures.is_empty() {
        ExitCode::SUCCESS
    } else {
        for failure in &failures {
            eprintln!("FAILED: {failure}");
        }
        ExitCode::FAILURE
    }
}
