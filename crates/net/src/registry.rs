//! The sharded slab connection registry.
//!
//! The first wire put every live connection in one global
//! `Mutex<HashMap<u64, TcpStream>>` and pushed every reader's
//! `JoinHandle` into a `Mutex<Vec<_>>` that was only drained at
//! shutdown — so accept/close serialized on a single lock, and a
//! long-running server retained one finished handle per connection it
//! had *ever* accepted. This registry fixes both:
//!
//! * **Sharding** — slots live in [`SHARDS`] independently locked
//!   slabs, picked by connection id, so concurrent accepts and closes
//!   contend only 1/[`SHARDS`]th of the time. Within a shard, slots are
//!   a free-list slab (`Vec<Option<Entry>>`): registration is a pop +
//!   write, deregistration a take + push — no hashing, no rebalancing.
//! * **Slot reuse safety** — a [`ConnToken`] carries `(shard, slot,
//!   conn_id)` and every slot records the id it was issued to; a stale
//!   token (its slot since recycled for a newer connection) is detected
//!   by the id check and refused instead of evicting the newcomer.
//! * **Handle reaping** — a closing reader deregisters itself and
//!   *buries* its own `JoinHandle` in a small graveyard; the acceptor
//!   (and anyone else) [`ConnRegistry::reap`]s the graveyard
//!   opportunistically, joining threads that have already announced
//!   their exit. Retained handles are therefore bounded by the burst of
//!   closes since the last reap, not by the server's lifetime — pinned
//!   by the 1k open/close regression test in `tests/handle_reap.rs`.

use std::net::{Shutdown, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread::JoinHandle;

use parking_lot::Mutex;

/// Lock shards. Power of two so the id → shard map is a mask.
pub const SHARDS: usize = 16;

/// Proof of registration: names the slot a connection occupies. The
/// holder uses it to attach its reader handle and to deregister.
/// Clonable so the acceptor can keep one to attach the reader handle
/// while the reader thread owns another; the id check makes stale
/// copies inert.
#[derive(Clone, Debug)]
pub struct ConnToken {
    shard: usize,
    slot: usize,
    /// The registry-assigned connection id (unique for the server's
    /// lifetime; also the metrics stripe key).
    pub conn_id: u64,
}

struct Entry {
    conn_id: u64,
    /// A clone of the connection's stream, retained so shutdown can
    /// half-close every live reader.
    stream: TcpStream,
    /// The reader thread's handle, once the acceptor attaches it.
    reader: Option<JoinHandle<()>>,
}

#[derive(Default)]
struct Shard {
    slots: Vec<Option<Entry>>,
    free: Vec<usize>,
}

/// See the module docs.
pub struct ConnRegistry {
    shards: [Mutex<Shard>; SHARDS],
    /// Finished (or about-to-finish) reader handles awaiting a join.
    graveyard: Mutex<Vec<JoinHandle<()>>>,
    live: AtomicUsize,
    max: usize,
    next_id: AtomicUsize,
}

impl ConnRegistry {
    /// A registry admitting at most `max` simultaneous connections.
    #[must_use]
    pub fn new(max: usize) -> Self {
        ConnRegistry {
            shards: std::array::from_fn(|_| Mutex::new(Shard::default())),
            graveyard: Mutex::new(Vec::new()),
            live: AtomicUsize::new(0),
            max,
            next_id: AtomicUsize::new(1),
        }
    }

    /// Registers a connection, assigning it an id. `stream` should be a
    /// clone retained for shutdown half-close. Fails (returning the
    /// stream) when the connection cap is reached.
    pub fn register(&self, stream: TcpStream) -> Result<ConnToken, TcpStream> {
        if self
            .live
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |n| {
                (n < self.max).then_some(n + 1)
            })
            .is_err()
        {
            return Err(stream);
        }
        let conn_id = self.next_id.fetch_add(1, Ordering::Relaxed) as u64;
        let shard_idx = (conn_id as usize) & (SHARDS - 1);
        let mut shard = self.shards[shard_idx].lock();
        let entry = Entry {
            conn_id,
            stream,
            reader: None,
        };
        let slot = match shard.free.pop() {
            Some(slot) => {
                shard.slots[slot] = Some(entry);
                slot
            }
            None => {
                shard.slots.push(Some(entry));
                shard.slots.len() - 1
            }
        };
        Ok(ConnToken {
            shard: shard_idx,
            slot,
            conn_id,
        })
    }

    /// Attaches the reader thread's handle to its slot. If the
    /// connection already deregistered (the reader can finish before
    /// the acceptor gets here), the handle comes back so the caller can
    /// [`Self::bury`] it instead.
    pub fn attach_reader(
        &self,
        token: &ConnToken,
        handle: JoinHandle<()>,
    ) -> Option<JoinHandle<()>> {
        let mut shard = self.shards[token.shard].lock();
        match shard.slots.get_mut(token.slot) {
            Some(Some(entry)) if entry.conn_id == token.conn_id => {
                entry.reader = Some(handle);
                None
            }
            _ => Some(handle),
        }
    }

    /// Removes the connection, returning its attached reader handle (if
    /// the acceptor got around to attaching one). The retained stream
    /// clone drops here. Stale tokens (slot recycled) are a no-op.
    pub fn deregister(&self, token: &ConnToken) -> Option<JoinHandle<()>> {
        let mut shard = self.shards[token.shard].lock();
        let reader = match shard.slots.get_mut(token.slot) {
            Some(slot @ Some(_)) if slot.as_ref().is_some_and(|e| e.conn_id == token.conn_id) => {
                let entry = slot.take().expect("checked above");
                shard.free.push(token.slot);
                entry.reader
            }
            _ => return None,
        };
        drop(shard);
        self.live.fetch_sub(1, Ordering::AcqRel);
        reader
    }

    /// Parks a finished thread's handle for a later [`Self::reap`].
    /// Readers bury *their own* handle on the way out, so everything in
    /// the graveyard is joinable without blocking meaningfully.
    pub fn bury(&self, handle: JoinHandle<()>) {
        self.graveyard.lock().push(handle);
    }

    /// Joins every buried handle. Called opportunistically (each
    /// accept, each close) so retained handles stay bounded by close
    /// bursts, not server lifetime. Returns how many were joined.
    pub fn reap(&self) -> usize {
        let dead = std::mem::take(&mut *self.graveyard.lock());
        let n = dead.len();
        for handle in dead {
            let _ = handle.join();
        }
        n
    }

    /// Half-closes every live connection (shutdown of the read side),
    /// nudging readers toward EOF without dropping queued responses —
    /// the first step of drain-then-close.
    pub fn half_close_all(&self) {
        for shard in &self.shards {
            let shard = shard.lock();
            for entry in shard.slots.iter().flatten() {
                let _ = entry.stream.shutdown(Shutdown::Read);
            }
        }
    }

    /// Removes every entry and returns all attached reader handles (the
    /// shutdown join set). Locks are released before the caller joins.
    pub fn take_reader_handles(&self) -> Vec<JoinHandle<()>> {
        let mut handles = Vec::new();
        for shard in &self.shards {
            let mut shard = shard.lock();
            for slot in 0..shard.slots.len() {
                if let Some(entry) = shard.slots[slot].take() {
                    shard.free.push(slot);
                    self.live.fetch_sub(1, Ordering::AcqRel);
                    handles.extend(entry.reader);
                }
            }
        }
        handles
    }

    /// Live registered connections.
    #[must_use]
    pub fn live(&self) -> usize {
        self.live.load(Ordering::Acquire)
    }

    /// Handles currently retained anywhere in the registry: buried but
    /// not yet reaped, plus those still attached to live connections.
    /// The handle-leak regression test asserts this stays bounded.
    #[must_use]
    pub fn retained_handles(&self) -> usize {
        let buried = self.graveyard.lock().len();
        let attached: usize = self
            .shards
            .iter()
            .map(|s| {
                s.lock()
                    .slots
                    .iter()
                    .flatten()
                    .filter(|e| e.reader.is_some())
                    .count()
            })
            .sum();
        buried + attached
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn pair(listener: &TcpListener) -> TcpStream {
        let addr = listener.local_addr().expect("addr");
        let client = TcpStream::connect(addr).expect("connect");
        let (server, _) = listener.accept().expect("accept");
        drop(client);
        server
    }

    #[test]
    fn cap_refuses_and_returns_the_stream() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let reg = ConnRegistry::new(2);
        let a = reg.register(pair(&listener)).expect("first fits");
        let _b = reg.register(pair(&listener)).expect("second fits");
        assert!(reg.register(pair(&listener)).is_err(), "third refused");
        assert_eq!(reg.live(), 2);
        assert!(reg.deregister(&a).is_none(), "no reader was attached");
        assert_eq!(reg.live(), 1);
        let _c = reg.register(pair(&listener)).expect("slot freed");
    }

    #[test]
    fn stale_tokens_cannot_evict_slot_reusers() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let reg = ConnRegistry::new(64);
        let a = reg.register(pair(&listener)).expect("register");
        reg.deregister(&a);
        // Register a full shard cycle so conn id 1 + SHARDS lands back
        // on the freed slot of the same shard.
        let tokens: Vec<_> = (0..SHARDS)
            .map(|_| reg.register(pair(&listener)))
            .filter_map(Result::ok)
            .collect();
        assert!(
            tokens
                .iter()
                .any(|t| t.shard == a.shard && t.slot == a.slot),
            "the freed slot must have been recycled for this test to bite"
        );
        // The stale token must be inert now.
        assert!(reg.deregister(&a).is_none());
        assert_eq!(reg.live(), tokens.len());
        // And attaching through it must hand the handle back.
        let handle = std::thread::spawn(|| {});
        let returned = reg.attach_reader(&a, handle);
        assert!(returned.is_some(), "stale attach must refuse");
        returned.expect("returned").join().expect("join");
    }

    #[test]
    fn reap_joins_buried_handles() {
        let reg = ConnRegistry::new(4);
        for _ in 0..3 {
            reg.bury(std::thread::spawn(|| {}));
        }
        assert_eq!(reg.retained_handles(), 3);
        assert_eq!(reg.reap(), 3);
        assert_eq!(reg.retained_handles(), 0);
    }

    #[test]
    fn take_reader_handles_drains_everything() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let reg = ConnRegistry::new(4);
        let a = reg.register(pair(&listener)).expect("register");
        let b = reg.register(pair(&listener)).expect("register");
        assert!(reg.attach_reader(&a, std::thread::spawn(|| {})).is_none());
        assert!(reg.attach_reader(&b, std::thread::spawn(|| {})).is_none());
        let handles = reg.take_reader_handles();
        assert_eq!(handles.len(), 2);
        for h in handles {
            h.join().expect("join");
        }
        assert_eq!(reg.live(), 0);
        assert_eq!(reg.retained_handles(), 0);
    }
}
