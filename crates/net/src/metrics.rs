//! Lock-free counters for the socket front end, following the service
//! metrics pattern: relaxed atomics, snapshot-on-read, JSON export.
//! Engine-side counters (latency histogram, worker panics, per-shard
//! cache hits) live in the engine's own metrics; these cover what only
//! the wire layer can see — connections, frames and admission outcomes.
//!
//! ## False sharing
//!
//! The hot counters (`frames_in`, `accepted`, `frames_out`, the batch
//! pair) are bumped on every frame by every connection's reader and
//! pump. Packed as plain `AtomicU64`s they share cache lines, so under
//! many connections each increment ping-pongs the line between cores.
//! Two fixes, both cheap:
//!
//! * every hot counter lives in its own [`Pad`] — a 64-byte-aligned
//!   cell, one cache line each, so distinct counters never collide;
//! * the per-frame counters are additionally [`Striped`] across
//!   [`STRIPES`] lines keyed by connection id, so two *connections*
//!   bumping the *same* logical counter usually hit different lines
//!   too. Snapshots sum the stripes.
//!
//! The in-flight gauge and its high-water mark stay single (padded)
//! atomics: the peak must be exact (`fetch_max` over the true global
//! gauge), which striping cannot provide.

use std::sync::atomic::{AtomicU64, Ordering};

/// One counter, alone on its cache line.
#[derive(Default)]
#[repr(align(64))]
struct Pad(AtomicU64);

impl Pad {
    fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Stripe count for per-frame counters. Power of two: the stripe key is
/// `conn_id & (STRIPES - 1)`.
const STRIPES: usize = 8;

/// A logical counter spread over [`STRIPES`] cache lines.
#[derive(Default)]
struct Striped([Pad; STRIPES]);

impl Striped {
    fn add(&self, stripe: usize, n: u64) {
        self.0[stripe & (STRIPES - 1)].add(n);
    }

    fn sum(&self) -> u64 {
        self.0.iter().map(Pad::get).sum()
    }
}

/// Wire-layer counters. All methods are callable from any thread; the
/// hot ones take the caller's connection id as the stripe key.
#[derive(Default)]
pub struct NetMetrics {
    connections_opened: Pad,
    connections_closed: Pad,
    connections_refused: Pad,
    frames_in: Striped,
    frames_out: Striped,
    parse_errors: Pad,
    oversized_frames: Pad,
    accepted: Striped,
    rejected_overload: Pad,
    rejected_quota: Pad,
    rejected_shutdown: Pad,
    batches: Striped,
    batched_requests: Striped,
    inflight: Pad,
    peak_inflight: Pad,
}

/// Point-in-time copy of [`NetMetrics`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetSnapshot {
    /// Connections accepted and served.
    pub connections_opened: u64,
    /// Connections fully torn down.
    pub connections_closed: u64,
    /// Connections turned away at the limit (answered with a typed
    /// error, then closed).
    pub connections_refused: u64,
    /// Request frames parsed off sockets (including rejected ones).
    pub frames_in: u64,
    /// Response frames written to sockets.
    pub frames_out: u64,
    /// Frames refused as unparseable (`PARSE_ERROR`/`BAD_REQUEST`).
    pub parse_errors: u64,
    /// Frames refused for exceeding the line-length bound.
    pub oversized_frames: u64,
    /// Requests admitted into the engine.
    pub accepted: u64,
    /// Requests bounced by engine backpressure (`OVERLOADED`).
    pub rejected_overload: u64,
    /// Requests bounced by tenant quotas (`QUOTA_EXCEEDED`).
    pub rejected_quota: u64,
    /// Requests bounced because the server is draining.
    pub rejected_shutdown: u64,
    /// Engine hand-offs (a batch of any size counts once).
    pub batches: u64,
    /// Requests carried by those hand-offs (avg batch size =
    /// `batched_requests / batches`).
    pub batched_requests: u64,
    /// Requests currently in flight across all connections.
    pub inflight: u64,
    /// High-water mark of `inflight`.
    pub peak_inflight: u64,
}

impl NetMetrics {
    /// Fresh, all-zero counters.
    #[must_use]
    pub fn new() -> Self {
        NetMetrics::default()
    }

    pub(crate) fn connection_opened(&self) {
        self.connections_opened.add(1);
    }
    pub(crate) fn connection_closed(&self) {
        self.connections_closed.add(1);
    }
    pub(crate) fn connection_refused(&self) {
        self.connections_refused.add(1);
    }
    pub(crate) fn frame_in(&self, stripe: usize) {
        self.frames_in.add(stripe, 1);
    }
    pub(crate) fn frame_out(&self, stripe: usize) {
        self.frames_out.add(stripe, 1);
    }
    pub(crate) fn parse_error(&self) {
        self.parse_errors.add(1);
    }
    pub(crate) fn oversized_frame(&self) {
        self.oversized_frames.add(1);
    }
    pub(crate) fn rejected_overload(&self) {
        self.rejected_overload.add(1);
    }
    pub(crate) fn rejected_quota(&self) {
        self.rejected_quota.add(1);
    }
    pub(crate) fn rejected_shutdown(&self) {
        self.rejected_shutdown.add(1);
    }
    pub(crate) fn batch_submitted(&self, stripe: usize, members: u64) {
        self.batches.add(stripe, 1);
        self.batched_requests.add(stripe, members);
    }
    /// Counts `n` requests as admitted. MUST be called *before* the
    /// batch reaches the engine: a reply can arrive (and decrement the
    /// in-flight gauge) the instant the hand-off happens, so counting
    /// afterwards would race the gauge below zero.
    pub(crate) fn requests_admitted(&self, stripe: usize, n: u64) {
        self.accepted.add(stripe, n);
        let now = self.inflight.0.fetch_add(n, Ordering::Relaxed) + n;
        self.peak_inflight.0.fetch_max(now, Ordering::Relaxed);
    }

    /// Undoes [`requests_admitted`](Self::requests_admitted) for batch
    /// members the engine bounced (they were provisionally admitted,
    /// then answered with a typed error by the caller instead).
    pub(crate) fn requests_bounced(&self, stripe: usize, n: u64) {
        self.accepted.0[stripe & (STRIPES - 1)]
            .0
            .fetch_sub(n, Ordering::Relaxed);
        self.inflight.0.fetch_sub(n, Ordering::Relaxed);
    }

    /// Counts `n` engine responses written by one cork: `n` frames out
    /// plus `n` off the in-flight gauge.
    pub(crate) fn responses_out(&self, stripe: usize, n: u64) {
        self.frames_out.add(stripe, n);
        self.inflight.0.fetch_sub(n, Ordering::Relaxed);
    }

    /// A consistent-enough point-in-time copy (each counter atomic; the
    /// set is not a global snapshot).
    #[must_use]
    pub fn snapshot(&self) -> NetSnapshot {
        NetSnapshot {
            connections_opened: self.connections_opened.get(),
            connections_closed: self.connections_closed.get(),
            connections_refused: self.connections_refused.get(),
            frames_in: self.frames_in.sum(),
            frames_out: self.frames_out.sum(),
            parse_errors: self.parse_errors.get(),
            oversized_frames: self.oversized_frames.get(),
            accepted: self.accepted.sum(),
            rejected_overload: self.rejected_overload.get(),
            rejected_quota: self.rejected_quota.get(),
            rejected_shutdown: self.rejected_shutdown.get(),
            batches: self.batches.sum(),
            batched_requests: self.batched_requests.sum(),
            inflight: self.inflight.get(),
            peak_inflight: self.peak_inflight.get(),
        }
    }
}

impl NetSnapshot {
    /// Renders the snapshot as one JSON object (stable key order).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(256);
        s.push('{');
        let mut field = |key: &str, value: u64| {
            if s.len() > 1 {
                s.push(',');
            }
            s.push('"');
            s.push_str(key);
            s.push_str("\":");
            s.push_str(&value.to_string());
        };
        field("connections_opened", self.connections_opened);
        field("connections_closed", self.connections_closed);
        field("connections_refused", self.connections_refused);
        field("frames_in", self.frames_in);
        field("frames_out", self.frames_out);
        field("parse_errors", self.parse_errors);
        field("oversized_frames", self.oversized_frames);
        field("accepted", self.accepted);
        field("rejected_overload", self.rejected_overload);
        field("rejected_quota", self.rejected_quota);
        field("rejected_shutdown", self.rejected_shutdown);
        field("batches", self.batches);
        field("batched_requests", self.batched_requests);
        field("inflight", self.inflight);
        field("peak_inflight", self.peak_inflight);
        s.push('}');
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amp_core::json::Json;

    #[test]
    fn snapshot_counts_and_json_parses() {
        let m = NetMetrics::new();
        m.connection_opened();
        m.frame_in(1);
        m.requests_admitted(1, 3);
        m.batch_submitted(1, 3);
        m.responses_out(1, 1);
        m.rejected_quota();
        let s = m.snapshot();
        assert_eq!(s.accepted, 3);
        assert_eq!(s.inflight, 2);
        assert_eq!(s.peak_inflight, 3);
        assert_eq!(s.frames_out, 1);
        assert_eq!(s.rejected_quota, 1);
        let json = s.to_json();
        let parsed = Json::parse(&json).expect("snapshot JSON parses");
        let Json::Obj(fields) = parsed else {
            panic!("must be an object")
        };
        assert_eq!(fields.get("accepted"), Some(&Json::Int(3)));
        assert_eq!(fields.get("peak_inflight"), Some(&Json::Int(3)));
    }

    /// Stripes are an implementation detail: sums must agree no matter
    /// which stripe each event lands on, and the padded cells must
    /// actually occupy distinct cache lines.
    #[test]
    fn stripes_sum_and_pads_are_line_sized() {
        let m = NetMetrics::new();
        for conn in 0..37u64 {
            m.frame_in(conn as usize);
            m.requests_admitted(conn as usize, 2);
            m.responses_out(conn as usize, 2);
        }
        let s = m.snapshot();
        assert_eq!(s.frames_in, 37);
        assert_eq!(s.accepted, 74);
        assert_eq!(s.frames_out, 74);
        assert_eq!(s.inflight, 0);
        assert_eq!(std::mem::size_of::<Pad>(), 64);
        assert_eq!(std::mem::align_of::<Pad>(), 64);
        assert_eq!(std::mem::size_of::<Striped>(), 64 * STRIPES);
    }
}
