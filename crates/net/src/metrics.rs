//! Lock-free counters for the socket front end, following the service
//! metrics pattern: relaxed atomics, snapshot-on-read, JSON export.
//! Engine-side counters (latency histogram, worker panics, per-shard
//! cache hits) live in the engine's own metrics; these cover what only
//! the wire layer can see — connections, frames and admission outcomes.

use std::sync::atomic::{AtomicU64, Ordering};

/// Wire-layer counters. All methods are callable from any thread.
#[derive(Default)]
pub struct NetMetrics {
    connections_opened: AtomicU64,
    connections_closed: AtomicU64,
    connections_refused: AtomicU64,
    frames_in: AtomicU64,
    frames_out: AtomicU64,
    parse_errors: AtomicU64,
    oversized_frames: AtomicU64,
    accepted: AtomicU64,
    rejected_overload: AtomicU64,
    rejected_quota: AtomicU64,
    rejected_shutdown: AtomicU64,
    batches: AtomicU64,
    batched_requests: AtomicU64,
    inflight: AtomicU64,
    peak_inflight: AtomicU64,
}

/// Point-in-time copy of [`NetMetrics`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetSnapshot {
    /// Connections accepted and served.
    pub connections_opened: u64,
    /// Connections fully torn down.
    pub connections_closed: u64,
    /// Connections turned away at the limit (answered with a typed
    /// error, then closed).
    pub connections_refused: u64,
    /// Request frames parsed off sockets (including rejected ones).
    pub frames_in: u64,
    /// Response frames written to sockets.
    pub frames_out: u64,
    /// Frames refused as unparseable (`PARSE_ERROR`/`BAD_REQUEST`).
    pub parse_errors: u64,
    /// Frames refused for exceeding the line-length bound.
    pub oversized_frames: u64,
    /// Requests admitted into the engine.
    pub accepted: u64,
    /// Requests bounced by engine backpressure (`OVERLOADED`).
    pub rejected_overload: u64,
    /// Requests bounced by tenant quotas (`QUOTA_EXCEEDED`).
    pub rejected_quota: u64,
    /// Requests bounced because the server is draining.
    pub rejected_shutdown: u64,
    /// Engine hand-offs (a batch of any size counts once).
    pub batches: u64,
    /// Requests carried by those hand-offs (avg batch size =
    /// `batched_requests / batches`).
    pub batched_requests: u64,
    /// Requests currently in flight across all connections.
    pub inflight: u64,
    /// High-water mark of `inflight`.
    pub peak_inflight: u64,
}

impl NetMetrics {
    /// Fresh, all-zero counters.
    #[must_use]
    pub fn new() -> Self {
        NetMetrics::default()
    }

    pub(crate) fn connection_opened(&self) {
        self.connections_opened.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn connection_closed(&self) {
        self.connections_closed.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn connection_refused(&self) {
        self.connections_refused.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn frame_in(&self) {
        self.frames_in.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn frame_out(&self) {
        self.frames_out.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn parse_error(&self) {
        self.parse_errors.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn oversized_frame(&self) {
        self.oversized_frames.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn rejected_overload(&self) {
        self.rejected_overload.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn rejected_quota(&self) {
        self.rejected_quota.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn rejected_shutdown(&self) {
        self.rejected_shutdown.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn batch_submitted(&self, members: u64) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batched_requests.fetch_add(members, Ordering::Relaxed);
    }
    /// Counts `n` requests as admitted. MUST be called *before* the
    /// batch reaches the engine: a reply can arrive (and decrement the
    /// in-flight gauge) the instant the hand-off happens, so counting
    /// afterwards would race the gauge below zero.
    pub(crate) fn requests_admitted(&self, n: u64) {
        self.accepted.fetch_add(n, Ordering::Relaxed);
        let now = self.inflight.fetch_add(n, Ordering::Relaxed) + n;
        self.peak_inflight.fetch_max(now, Ordering::Relaxed);
    }

    /// Undoes [`requests_admitted`](Self::requests_admitted) for batch
    /// members the engine bounced (they were provisionally admitted,
    /// then answered with a typed error by the caller instead).
    pub(crate) fn requests_bounced(&self, n: u64) {
        self.accepted.fetch_sub(n, Ordering::Relaxed);
        self.inflight.fetch_sub(n, Ordering::Relaxed);
    }
    pub(crate) fn response_out(&self) {
        self.frame_out();
        self.inflight.fetch_sub(1, Ordering::Relaxed);
    }

    /// A consistent-enough point-in-time copy (each counter atomic; the
    /// set is not a global snapshot).
    #[must_use]
    pub fn snapshot(&self) -> NetSnapshot {
        NetSnapshot {
            connections_opened: self.connections_opened.load(Ordering::Relaxed),
            connections_closed: self.connections_closed.load(Ordering::Relaxed),
            connections_refused: self.connections_refused.load(Ordering::Relaxed),
            frames_in: self.frames_in.load(Ordering::Relaxed),
            frames_out: self.frames_out.load(Ordering::Relaxed),
            parse_errors: self.parse_errors.load(Ordering::Relaxed),
            oversized_frames: self.oversized_frames.load(Ordering::Relaxed),
            accepted: self.accepted.load(Ordering::Relaxed),
            rejected_overload: self.rejected_overload.load(Ordering::Relaxed),
            rejected_quota: self.rejected_quota.load(Ordering::Relaxed),
            rejected_shutdown: self.rejected_shutdown.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            batched_requests: self.batched_requests.load(Ordering::Relaxed),
            inflight: self.inflight.load(Ordering::Relaxed),
            peak_inflight: self.peak_inflight.load(Ordering::Relaxed),
        }
    }
}

impl NetSnapshot {
    /// Renders the snapshot as one JSON object (stable key order).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(256);
        s.push('{');
        let mut field = |key: &str, value: u64| {
            if s.len() > 1 {
                s.push(',');
            }
            s.push('"');
            s.push_str(key);
            s.push_str("\":");
            s.push_str(&value.to_string());
        };
        field("connections_opened", self.connections_opened);
        field("connections_closed", self.connections_closed);
        field("connections_refused", self.connections_refused);
        field("frames_in", self.frames_in);
        field("frames_out", self.frames_out);
        field("parse_errors", self.parse_errors);
        field("oversized_frames", self.oversized_frames);
        field("accepted", self.accepted);
        field("rejected_overload", self.rejected_overload);
        field("rejected_quota", self.rejected_quota);
        field("rejected_shutdown", self.rejected_shutdown);
        field("batches", self.batches);
        field("batched_requests", self.batched_requests);
        field("inflight", self.inflight);
        field("peak_inflight", self.peak_inflight);
        s.push('}');
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amp_core::json::Json;

    #[test]
    fn snapshot_counts_and_json_parses() {
        let m = NetMetrics::new();
        m.connection_opened();
        m.frame_in();
        m.requests_admitted(3);
        m.batch_submitted(3);
        m.response_out();
        m.rejected_quota();
        let s = m.snapshot();
        assert_eq!(s.accepted, 3);
        assert_eq!(s.inflight, 2);
        assert_eq!(s.peak_inflight, 3);
        assert_eq!(s.frames_out, 1);
        assert_eq!(s.rejected_quota, 1);
        let json = s.to_json();
        let parsed = Json::parse(&json).expect("snapshot JSON parses");
        let Json::Obj(fields) = parsed else {
            panic!("must be an object")
        };
        assert_eq!(fields.get("accepted"), Some(&Json::Int(3)));
        assert_eq!(fields.get("peak_inflight"), Some(&Json::Int(3)));
    }
}
