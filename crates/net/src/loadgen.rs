//! Seeded socket load generator: drives M persistent connections of
//! pipelined schedule requests against a server and *audits* the
//! response stream instead of trusting it.
//!
//! ## Correctness audit
//!
//! Request ids partition the id space per connection — connection `c`
//! sends ids `(c << 32) | seq` — so the auditor can prove three
//! properties independently per connection:
//!
//! * **zero lost**: every sequence number sent came back;
//! * **zero duplicated**: no sequence number came back twice;
//! * **zero misrouted**: no response carried another connection's high
//!   bits (a frame written to the wrong socket is unmistakable, not
//!   silently absorbed).
//!
//! Typed rejections (`OVERLOADED`, `QUOTA_EXCEEDED`, ...) count as
//! *answered* — the contract under overload is a typed error, never
//! silence — and are tallied per code in the report.
//!
//! ## Determinism
//!
//! The workload is a pure function of [`LoadConfig::seed`]: the
//! instance pool, the per-connection request sequence, and the id
//! assignment all derive from `StdRng` streams. Timing (and therefore
//! latency numbers) varies run to run; the *set* of frames does not.
//! (In `duration` mode the *count* of frames is time-dependent, but the
//! sequence of instances drawn is still the seeded stream.)
//!
//! ## Modes
//!
//! * **Fixed-count** (default): each connection pipelines
//!   `requests_per_connection` frames flat-out, corked
//!   [`LoadConfig::client_cork`] frames per write so the client's own
//!   syscall rate cannot become the bottleneck being measured.
//! * **Sustained** ([`LoadConfig::duration`]): open-loop pacing — the
//!   sender derives each frame's due time from the offered rate and the
//!   clock, never from responses, so a slow server faces mounting
//!   in-flight pressure instead of a politely backing-off client. The
//!   first [`LoadConfig::warmup`] of samples is excluded from the
//!   latency percentiles (ramp, cold caches), which is what makes the
//!   scaling sweep a steady-state measurement.
//! * **Scaling** ([`run_scaling`]): the sustained mode swept over
//!   connection counts at a *fixed total offered load*, emitting the
//!   latency-vs-connections curve the CI gate checks.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use amp_service::{Objective, Policy, ScheduleRequest, TaskSpec};
use rand::{rngs::StdRng, Rng, SeedableRng};

use crate::proto;

/// Workload shape for one [`run`].
#[derive(Clone, Debug)]
pub struct LoadConfig {
    /// Server to drive.
    pub addr: SocketAddr,
    /// Concurrent persistent connections.
    pub connections: usize,
    /// Frames pipelined per connection.
    pub requests_per_connection: usize,
    /// Size of the distinct-instance pool requests are drawn from. A
    /// small pool against a warm cache yields a high hit rate; a pool
    /// larger than the request count makes every request distinct.
    pub distinct_instances: usize,
    /// Longest generated task chain.
    pub max_tasks: usize,
    /// Workload seed (see module docs).
    pub seed: u64,
    /// Tenant stamped on every request.
    pub tenant: String,
    /// How long a receiver waits on a quiet socket before declaring the
    /// remaining responses lost.
    pub read_timeout: Duration,
    /// Sustained mode: run for this long instead of a fixed request
    /// count (`requests_per_connection` is ignored when set).
    pub duration: Option<Duration>,
    /// Sustained mode: total offered load across all connections,
    /// requests per second. `None` paces nothing — every connection
    /// sends flat-out for the duration.
    pub target_rps: Option<u64>,
    /// Sustained mode: samples sent inside this initial window are
    /// excluded from the latency percentiles (ramp/cold-cache
    /// exclusion). They still count for the audit.
    pub warmup: Duration,
    /// Sustained mode: samples sent inside this final window before the
    /// deadline are excluded from the latency percentiles — their
    /// responses land amid the fleet-wide half-close/drain storm, which
    /// measures teardown, not service. They still count for the audit.
    pub cooldown: Duration,
    /// Frames per client-side write: senders cork this many frames into
    /// one syscall so client write overhead doesn't shadow the server's
    /// numbers.
    pub client_cork: usize,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            addr: "127.0.0.1:0".parse().expect("literal addr"),
            connections: 4,
            requests_per_connection: 256,
            distinct_instances: 8,
            max_tasks: 8,
            seed: 0xA11CE,
            tenant: "public".to_string(),
            read_timeout: Duration::from_secs(10),
            duration: None,
            target_rps: None,
            warmup: Duration::from_millis(250),
            cooldown: Duration::from_millis(150),
            client_cork: 32,
        }
    }
}

/// What one run observed, aggregated over all connections.
#[derive(Clone, Debug, Default)]
pub struct LoadReport {
    /// Frames written.
    pub sent: u64,
    /// Responses received and attributed to a sent id.
    pub answered: u64,
    /// Responses carrying a successful outcome.
    pub ok: u64,
    /// Of the successful outcomes, how many were served from cache.
    pub cache_hits: u64,
    /// Typed rejections, tallied by error code.
    pub rejected: BTreeMap<String, u64>,
    /// Sent ids that never came back (audit failure unless the server
    /// was torn down mid-run).
    pub lost: u64,
    /// Ids answered more than once (audit failure).
    pub duplicates: u64,
    /// Responses carrying another connection's id bits (audit failure).
    pub misrouted: u64,
    /// Responses with no id at all (connection-level errors).
    pub unattributed: u64,
    /// Wall-clock of the whole run, milliseconds.
    pub elapsed_ms: u64,
    /// Answered responses per second.
    pub throughput_rps: u64,
    /// Latency percentiles over answered requests, microseconds.
    pub p50_us: u64,
    /// 90th percentile latency, microseconds.
    pub p90_us: u64,
    /// 99th percentile latency, microseconds.
    pub p99_us: u64,
    /// Worst observed latency, microseconds.
    pub max_us: u64,
}

impl LoadReport {
    /// `true` when the audit found no lost, duplicated or misrouted
    /// response.
    #[must_use]
    pub fn clean(&self) -> bool {
        self.lost == 0 && self.duplicates == 0 && self.misrouted == 0
    }

    /// Cache hits as a fraction of successful outcomes.
    #[must_use]
    pub fn cache_hit_rate(&self) -> f64 {
        if self.ok == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.ok as f64
        }
    }

    /// Renders the report as one JSON object (stable key order; integer
    /// fields only, so the artifact parses with the in-tree codec).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(512);
        s.push('{');
        let mut field = |key: &str, value: String| {
            if s.len() > 1 {
                s.push(',');
            }
            s.push('"');
            s.push_str(key);
            s.push_str("\":");
            s.push_str(&value);
        };
        field("sent", self.sent.to_string());
        field("answered", self.answered.to_string());
        field("ok", self.ok.to_string());
        field("cache_hits", self.cache_hits.to_string());
        let mut rej = String::from("{");
        for (code, count) in &self.rejected {
            if rej.len() > 1 {
                rej.push(',');
            }
            rej.push('"');
            rej.push_str(code);
            rej.push_str("\":");
            rej.push_str(&count.to_string());
        }
        rej.push('}');
        field("rejected", rej);
        field("lost", self.lost.to_string());
        field("duplicates", self.duplicates.to_string());
        field("misrouted", self.misrouted.to_string());
        field("unattributed", self.unattributed.to_string());
        field("elapsed_ms", self.elapsed_ms.to_string());
        field("throughput_rps", self.throughput_rps.to_string());
        field("p50_us", self.p50_us.to_string());
        field("p90_us", self.p90_us.to_string());
        field("p99_us", self.p99_us.to_string());
        field("max_us", self.max_us.to_string());
        s.push('}');
        s
    }
}

/// Builds the deterministic distinct-instance pool for `cfg`.
#[must_use]
pub fn instance_pool(cfg: &LoadConfig) -> Vec<ScheduleRequest> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let policies = ["FERTAC", "HeRAD", "2CATAC"];
    (0..cfg.distinct_instances.max(1))
        .map(|_| {
            let len = rng.gen_range(2..=cfg.max_tasks.max(2));
            let tasks: Vec<TaskSpec> = (0..len)
                .map(|_| TaskSpec {
                    weight_big: rng.gen_range(1..=48u64),
                    weight_little: rng.gen_range(1..=96u64),
                    replicable: rng.gen_bool(0.5),
                })
                .collect();
            ScheduleRequest {
                id: 0, // assigned per frame at send time
                tasks,
                big_cores: rng.gen_range(1..=4u64),
                little_cores: rng.gen_range(1..=4u64),
                policy: Policy::Strategy(policies[rng.gen_range(0..policies.len())].to_string()),
                objective: Objective::Period,
                deadline_us: None,
            }
        })
        .collect()
}

/// Composite id: connection index in the high 32 bits, sequence number
/// in the low 32.
fn compose_id(conn: usize, seq: usize) -> u64 {
    ((conn as u64) << 32) | (seq as u64 & 0xFFFF_FFFF)
}

/// What one connection's receiver observed.
struct ConnAudit {
    answered: u64,
    ok: u64,
    cache_hits: u64,
    rejected: BTreeMap<String, u64>,
    duplicates: u64,
    misrouted: u64,
    unattributed: u64,
    latencies_us: Vec<u64>,
    /// Per-sequence answered flags; unanswered ones count as lost.
    seen: Vec<bool>,
}

impl ConnAudit {
    fn empty(capacity: usize) -> Self {
        ConnAudit {
            answered: 0,
            ok: 0,
            cache_hits: 0,
            rejected: BTreeMap::new(),
            duplicates: 0,
            misrouted: 0,
            unattributed: 0,
            latencies_us: Vec::with_capacity(capacity),
            seen: vec![false; capacity],
        }
    }
}

/// Sustained mode grows the audit tables to the sequence numbers it
/// sees; this caps the growth a corrupt (huge-seq) frame could force.
const MAX_SEQ: usize = 1 << 26;

/// Attributes one received frame to the audit. `grow` is sustained
/// mode, where the total frame count isn't known while receiving.
fn attribute(
    line: &str,
    conn: usize,
    audit: &mut ConnAudit,
    recv_at: &mut Vec<Option<Duration>>,
    now: Duration,
    grow: bool,
) {
    // The scanner matches the canonical frame shapes directly and falls
    // back to the full parse on anything else, so at high rates the
    // client isn't the JSON-parsing bottleneck in its own measurement.
    let Ok(response) = proto::scan_response(line) else {
        // An unparseable frame is still an answer of sorts; it has no
        // id, so it can only be tallied as unattributed.
        audit.unattributed += 1;
        return;
    };
    let Some(id) = response.id else {
        audit.unattributed += 1;
        return;
    };
    if (id >> 32) as usize != conn {
        audit.misrouted += 1;
        return;
    }
    let seq = (id & 0xFFFF_FFFF) as usize;
    if grow && seq < MAX_SEQ && seq >= audit.seen.len() {
        audit.seen.resize(seq + 1, false);
        recv_at.resize(seq + 1, None);
    }
    if seq >= audit.seen.len() || audit.seen[seq] {
        audit.duplicates += 1;
        return;
    }
    audit.seen[seq] = true;
    audit.answered += 1;
    recv_at[seq] = Some(now);
    match response.outcome {
        Ok(cached) => {
            audit.ok += 1;
            if cached {
                audit.cache_hits += 1;
            }
        }
        Err(code) => {
            *audit.rejected.entry(code).or_insert(0) += 1;
        }
    }
}

/// Appends decimal digits to a byte buffer (the id splice).
fn push_digits(out: &mut Vec<u8>, mut n: u64) {
    let mut tmp = [0u8; 20];
    let mut i = tmp.len();
    loop {
        i -= 1;
        tmp[i] = b'0' + (n % 10) as u8;
        n /= 10;
        if n == 0 {
            break;
        }
    }
    out.extend_from_slice(&tmp[i..]);
}

/// Drives one connection in fixed-count mode: a sender thread pipelines
/// every frame (corked `client_cork` per write) while this thread
/// audits the response stream.
fn drive_connection(
    cfg: &LoadConfig,
    pool: &[ScheduleRequest],
    conn: usize,
) -> std::io::Result<ConnAudit> {
    let n = cfg.requests_per_connection;
    let cork = cfg.client_cork.max(1);
    let stream = TcpStream::connect(cfg.addr)?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(cfg.read_timeout))?;
    let mut write_half = stream.try_clone()?;

    // The request sequence is seeded per connection so every connection
    // draws a different (but reproducible) sample of the pool.
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ (conn as u64).wrapping_mul(0x9E37_79B9));
    let picks: Vec<usize> = (0..n).map(|_| rng.gen_range(0..pool.len())).collect();
    let tenant = cfg.tenant.clone();
    let frames: Vec<String> = picks
        .iter()
        .enumerate()
        .map(|(seq, &pick)| {
            let mut request = pool[pick].clone();
            request.id = compose_id(conn, seq);
            proto::render_request(&request, &tenant)
        })
        .collect();

    let send_clock = Instant::now();
    let sender = std::thread::spawn(move || -> std::io::Result<Vec<Duration>> {
        let mut sent_at = Vec::with_capacity(frames.len());
        let mut out: Vec<u8> = Vec::with_capacity(64 * 1024);
        for (i, frame) in frames.iter().enumerate() {
            sent_at.push(send_clock.elapsed());
            out.extend_from_slice(frame.as_bytes());
            out.push(b'\n');
            if (i + 1) % cork == 0 {
                write_half.write_all(&out)?;
                out.clear();
            }
        }
        if !out.is_empty() {
            write_half.write_all(&out)?;
        }
        Ok(sent_at)
    });

    let mut audit = ConnAudit::empty(n);
    let mut recv_at: Vec<Option<Duration>> = vec![None; n];
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    while audit.answered + audit.unattributed + audit.misrouted < n as u64 {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => break, // server closed; remainder counts as lost
            Ok(_) => {}
            Err(_) => break, // read timeout or socket error
        }
        let now = send_clock.elapsed();
        attribute(line.trim_end(), conn, &mut audit, &mut recv_at, now, false);
    }

    let sent_at = sender
        .join()
        .map_err(|_| std::io::Error::other("sender thread panicked"))??;
    for (seq, received) in recv_at.iter().enumerate() {
        if let (Some(sent), Some(received)) = (sent_at.get(seq), received) {
            let us = received.saturating_sub(*sent).as_micros();
            audit
                .latencies_us
                .push(u64::try_from(us).unwrap_or(u64::MAX));
        }
    }
    Ok(audit)
}

/// Drives one connection in sustained mode: the sender open-loop paces
/// frames off the clock for `cfg.duration`, half-closes its write side,
/// and the receiver audits until the server's drain closes the socket.
/// Returns the audit plus how many frames were actually sent.
fn drive_sustained(
    cfg: &LoadConfig,
    pool: &[ScheduleRequest],
    conn: usize,
) -> std::io::Result<(ConnAudit, u64)> {
    let duration = cfg.duration.expect("sustained mode requires a duration");
    let per_conn_rate = cfg
        .target_rps
        .map(|total| (total / cfg.connections.max(1) as u64).max(1));
    let cork = cfg.client_cork.max(1);
    let stream = TcpStream::connect(cfg.addr)?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(cfg.read_timeout))?;
    let mut write_half = stream.try_clone()?;

    // Pre-render each pool instance once with a placeholder id and keep
    // the split, so building a frame is two memcpys and a digit write —
    // the client must not be the allocation-bound side of the bench.
    let templates: Vec<(String, String)> = pool
        .iter()
        .map(|req| {
            let mut request = req.clone();
            request.id = 0;
            let line = proto::render_request(&request, &cfg.tenant);
            let pos = line
                .find("\"id\":0")
                .expect("rendered request carries its id");
            let split = pos + "\"id\":".len();
            (line[..split].to_string(), line[split + 1..].to_string())
        })
        .collect();
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ (conn as u64).wrapping_mul(0x9E37_79B9));

    let connections = cfg.connections.max(1) as u64;
    let send_clock = Instant::now();
    let sender = std::thread::spawn(move || -> std::io::Result<Vec<Duration>> {
        let interval_ns = per_conn_rate.map(|r| (1_000_000_000u64 / r).max(1));
        // Phase-offset each connection's tick schedule so the fleet's
        // arrivals spread evenly over the interval instead of every
        // connection bursting on the same clock edge.
        let phase_ns = interval_ns.map_or(0, |iv| {
            iv.wrapping_mul(conn as u64 % connections) / connections
        });
        let mut sent_at: Vec<Duration> = Vec::new();
        let mut out: Vec<u8> = Vec::with_capacity(64 * 1024);
        loop {
            let now = send_clock.elapsed();
            if now >= duration {
                break;
            }
            let seq = sent_at.len();
            // Open loop: how many frames the clock says should have
            // been sent by now, regardless of what came back. The burst
            // cap bounds catch-up after a scheduler hiccup.
            let due = match interval_ns {
                Some(iv) => {
                    let t = u64::try_from(now.as_nanos()).unwrap_or(u64::MAX);
                    let due = (t.saturating_sub(phase_ns) / iv) as usize + 1;
                    due.clamp(seq, seq + 4096)
                }
                None => seq + cork,
            };
            for s in seq..due {
                let (prefix, suffix) = &templates[rng.gen_range(0..templates.len())];
                out.extend_from_slice(prefix.as_bytes());
                push_digits(&mut out, compose_id(conn, s));
                out.extend_from_slice(suffix.as_bytes());
                out.push(b'\n');
                sent_at.push(send_clock.elapsed());
                if out.len() >= 64 * 1024 {
                    write_half.write_all(&out)?;
                    out.clear();
                }
            }
            if !out.is_empty() {
                write_half.write_all(&out)?;
                out.clear();
            }
            if let Some(iv) = interval_ns {
                // Sleep the full gap to the next tick (bounded by the
                // deadline): with hundreds of paced connections on few
                // cores, capped catnaps turn into a wakeup storm that
                // costs more latency than the pacing saves.
                let next = Duration::from_nanos(phase_ns.saturating_add(sent_at.len() as u64 * iv));
                let now = send_clock.elapsed();
                if next > now {
                    std::thread::sleep((next - now).min(duration.saturating_sub(now)));
                }
            }
        }
        // Half-close: the server reader sees EOF, drains what it
        // accepted, and the connection closes once every response is
        // out — which is the receiver's termination signal.
        write_half.shutdown(Shutdown::Write)?;
        Ok(sent_at)
    });

    let mut audit = ConnAudit::empty(0);
    let mut recv_at: Vec<Option<Duration>> = Vec::new();
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => break, // drain complete: server closed the socket
            Ok(_) => {}
            Err(_) => break, // read timeout or socket error
        }
        let now = send_clock.elapsed();
        attribute(line.trim_end(), conn, &mut audit, &mut recv_at, now, true);
    }

    let sent_at = sender
        .join()
        .map_err(|_| std::io::Error::other("sender thread panicked"))??;
    if audit.seen.len() < sent_at.len() {
        audit.seen.resize(sent_at.len(), false);
    }
    let cutoff = duration.saturating_sub(cfg.cooldown);
    for (seq, sent) in sent_at.iter().enumerate() {
        // Warmup/cooldown exclusion: the ramp (cold caches, first-touch
        // pages) and the drain (every connection tearing down at once)
        // are real but neither is the steady state the percentiles
        // claim to describe.
        if *sent < cfg.warmup || *sent >= cutoff {
            continue;
        }
        if let Some(Some(received)) = recv_at.get(seq) {
            let us = received.saturating_sub(*sent).as_micros();
            audit
                .latencies_us
                .push(u64::try_from(us).unwrap_or(u64::MAX));
        }
    }
    Ok((audit, sent_at.len() as u64))
}

fn percentile(sorted_us: &[u64], pct: u64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let rank = (sorted_us.len() as u64 * pct).div_ceil(100);
    let idx = (rank.max(1) - 1) as usize;
    sorted_us[idx.min(sorted_us.len() - 1)]
}

/// Runs the configured workload and audits every response. Connection
/// setup errors surface as `Err`; protocol-level anomalies land in the
/// report's audit counters instead. With [`LoadConfig::duration`] set
/// this is the sustained open-loop mode; otherwise fixed-count.
pub fn run(cfg: &LoadConfig) -> std::io::Result<LoadReport> {
    let pool = instance_pool(cfg);
    let sustained = cfg.duration.is_some();
    let started = Instant::now();
    let audits: Vec<std::io::Result<(ConnAudit, u64)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..cfg.connections)
            .map(|conn| {
                let cfg = &*cfg;
                let pool = &pool[..];
                scope.spawn(move || {
                    if sustained {
                        drive_sustained(cfg, pool, conn)
                    } else {
                        drive_connection(cfg, pool, conn)
                            .map(|audit| (audit, cfg.requests_per_connection as u64))
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(result) => result,
                Err(_) => Err(std::io::Error::other("connection thread panicked")),
            })
            .collect()
    });
    let elapsed = started.elapsed();

    let mut report = LoadReport {
        elapsed_ms: u64::try_from(elapsed.as_millis()).unwrap_or(u64::MAX),
        ..LoadReport::default()
    };
    let mut latencies: Vec<u64> = Vec::new();
    for audit in audits {
        let (audit, sent) = audit?;
        report.sent += sent;
        report.answered += audit.answered;
        report.ok += audit.ok;
        report.cache_hits += audit.cache_hits;
        report.duplicates += audit.duplicates;
        report.misrouted += audit.misrouted;
        report.unattributed += audit.unattributed;
        for (code, count) in audit.rejected {
            *report.rejected.entry(code).or_insert(0) += count;
        }
        report.lost += audit.seen.iter().filter(|&&seen| !seen).count() as u64;
        latencies.extend(audit.latencies_us);
    }
    latencies.sort_unstable();
    report.p50_us = percentile(&latencies, 50);
    report.p90_us = percentile(&latencies, 90);
    report.p99_us = percentile(&latencies, 99);
    report.max_us = latencies.last().copied().unwrap_or(0);
    let secs = elapsed.as_secs_f64();
    report.throughput_rps = if secs > 0.0 {
        (report.answered as f64 / secs) as u64
    } else {
        report.answered
    };
    Ok(report)
}

/// One connection count's measurement in a [`run_scaling`] sweep.
#[derive(Clone, Debug)]
pub struct ScalingPoint {
    /// Connections driven at this point.
    pub connections: usize,
    /// The full audited report for this point.
    pub report: LoadReport,
}

/// The latency-vs-connections curve: the same offered load pushed
/// through more and more connections.
#[derive(Clone, Debug, Default)]
pub struct ScalingReport {
    /// Total offered load, req/s (0 = unpaced/flat-out).
    pub offered_rps: u64,
    /// Per-point run length, milliseconds.
    pub duration_ms: u64,
    /// Warmup excluded from each point's percentiles, milliseconds.
    pub warmup_ms: u64,
    /// One entry per swept connection count, in sweep order.
    pub points: Vec<ScalingPoint>,
}

impl ScalingReport {
    /// The point measured at exactly `connections`, if the sweep held
    /// one.
    #[must_use]
    pub fn point(&self, connections: usize) -> Option<&ScalingPoint> {
        self.points.iter().find(|p| p.connections == connections)
    }

    /// `true` when every point's audit came back clean and every sent
    /// frame was answered.
    #[must_use]
    pub fn all_clean(&self) -> bool {
        self.points
            .iter()
            .all(|p| p.report.clean() && p.report.answered == p.report.sent)
    }

    /// Renders the curve as one JSON object (stable key order).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(1024);
        s.push_str("{\"offered_rps\":");
        s.push_str(&self.offered_rps.to_string());
        s.push_str(",\"duration_ms\":");
        s.push_str(&self.duration_ms.to_string());
        s.push_str(",\"warmup_ms\":");
        s.push_str(&self.warmup_ms.to_string());
        s.push_str(",\"points\":[");
        for (i, point) in self.points.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("{\"connections\":");
            s.push_str(&point.connections.to_string());
            s.push_str(",\"report\":");
            s.push_str(&point.report.to_json());
            s.push('}');
        }
        s.push_str("]}");
        s
    }
}

/// Sweeps connection counts at the `cfg`-fixed offered load (sustained
/// mode: `cfg.duration` and usually `cfg.target_rps` should be set) and
/// returns the latency-vs-connections curve. Points run sequentially so
/// they never contend with each other.
pub fn run_scaling(cfg: &LoadConfig, sweep: &[usize]) -> std::io::Result<ScalingReport> {
    let mut points = Vec::with_capacity(sweep.len());
    for &connections in sweep {
        let point_cfg = LoadConfig {
            connections: connections.max(1),
            ..cfg.clone()
        };
        let report = run(&point_cfg)?;
        points.push(ScalingPoint {
            connections: connections.max(1),
            report,
        });
    }
    Ok(ScalingReport {
        offered_rps: cfg.target_rps.unwrap_or(0),
        duration_ms: u64::try_from(cfg.duration.unwrap_or_default().as_millis()).unwrap_or(0),
        warmup_ms: u64::try_from(cfg.warmup.as_millis()).unwrap_or(0),
        points,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_is_deterministic_in_the_seed() {
        let cfg = LoadConfig::default();
        let a = instance_pool(&cfg);
        let b = instance_pool(&cfg);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.tasks, y.tasks);
            assert_eq!(x.policy, y.policy);
            assert_eq!((x.big_cores, x.little_cores), (y.big_cores, y.little_cores));
        }
        let other = instance_pool(&LoadConfig {
            seed: cfg.seed + 1,
            ..cfg
        });
        assert!(
            a.iter().zip(&other).any(|(x, y)| x.tasks != y.tasks),
            "different seeds should generate different pools"
        );
    }

    #[test]
    fn ids_partition_by_connection() {
        assert_eq!(compose_id(0, 0), 0);
        assert_eq!(compose_id(3, 7) >> 32, 3);
        assert_eq!(compose_id(3, 7) & 0xFFFF_FFFF, 7);
        assert_ne!(compose_id(1, 0), compose_id(0, 1));
    }

    #[test]
    fn percentiles_pick_the_right_ranks() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 50), 50);
        assert_eq!(percentile(&v, 99), 99);
        assert_eq!(percentile(&v, 100), 100);
        assert_eq!(percentile(&[], 50), 0);
        assert_eq!(percentile(&[7], 99), 7);
    }
}
