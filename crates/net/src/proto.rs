//! The wire protocol: newline-delimited canonical JSON frames.
//!
//! One line is one frame; a frame is one [`amp_core::json`] value
//! rendered with [`Json::render_compact`], which never contains a raw
//! newline — so "split on `\n`" is the complete framing layer, and
//! "the line parsed" means "the frame arrived whole" (the canonical
//! parser rejects every strict prefix of a container-rooted document).
//!
//! ## Requests (client → server)
//!
//! A schedule request:
//!
//! ```json
//! {"id":7,"tenant":"acme","policy":"HeRAD","big":2,"little":2,
//!  "tasks":[[10,25,0],[40,90,1],[5,12,0]],"deadline_us":5000}
//! ```
//!
//! * `id` — client-chosen correlation id, echoed verbatim; responses
//!   may arrive in any order.
//! * `tenant` — optional quota bucket name (default `"public"`).
//! * `policy` — `"portfolio"` (case-insensitive) or a strategy name.
//! * `tasks` — `[weight_big, weight_little, replicable(0|1)]` triples.
//! * `deadline_us` — optional portfolio compute deadline.
//! * `objective` — optional: `"period"` (the default when absent, so
//!   pre-energy clients keep bit-identical behavior) or `"min_energy"`,
//!   which additionally requires `target_period` as the exact
//!   `"num/den"` string. Energy responses carry the served power as the
//!   integer `energy_mw` (whole milliwatts — no floats on the wire).
//!
//! Control frames: `{"op":"status"}` returns the server status
//! snapshot, `{"op":"ping"}` returns a pong (liveness probes).
//!
//! ## Responses (server → client)
//!
//! `{"id":7,"ok":{...outcome...}}` on success;
//! `{"id":7,"err":{"code":"QUOTA_EXCEEDED","message":"..."}}` on any
//! failure (the `id` key is absent when the frame was too mangled to
//! recover one). Codes are the stable [`ServiceError::code`] set plus
//! the transport-level codes `PARSE_ERROR`, `BAD_REQUEST`,
//! `FRAME_TOO_LARGE` and `QUOTA_EXCEEDED`. The period travels as the
//! exact `"num/den"` string — the wire format has no floats.

use std::collections::BTreeMap;

use amp_core::json::Json;
use amp_core::CoreType;
use amp_service::{
    Objective, Policy, ScheduleOutcome, ScheduleRequest, ScheduleResponse, TaskSpec,
};

/// A transport-level rejection, answered without entering the engine.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireError {
    /// Stable machine-readable code.
    pub code: &'static str,
    /// Human-readable diagnostic.
    pub message: String,
}

impl WireError {
    fn parse(message: impl Into<String>) -> Self {
        WireError {
            code: "PARSE_ERROR",
            message: message.into(),
        }
    }

    fn bad_request(message: impl Into<String>) -> Self {
        WireError {
            code: "BAD_REQUEST",
            message: message.into(),
        }
    }
}

/// One parsed request frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireRequest {
    /// A scheduling request plus its quota tenant.
    Schedule {
        /// The engine-level request.
        request: ScheduleRequest,
        /// Quota bucket the request draws from.
        tenant: String,
    },
    /// `{"op":"status"}` — status snapshot probe.
    Status,
    /// `{"op":"ping"}` — liveness probe.
    Ping,
}

/// Parses one frame. `max_tasks` bounds the chain length a single frame
/// may carry (memory protection; longer chains are `BAD_REQUEST`).
///
/// On error the result carries the recovered request id when one was
/// present, so the rejection can still be correlated.
pub fn parse_request(
    line: &str,
    max_tasks: usize,
) -> Result<WireRequest, (Option<u64>, WireError)> {
    let value = Json::parse(line).map_err(|e| (None, WireError::parse(e.to_string())))?;
    let Json::Obj(fields) = value else {
        return Err((None, WireError::parse("frame must be a JSON object")));
    };
    // Recover the id first so even malformed schedule frames reject
    // with a correlatable error.
    let id = match fields.get("id") {
        Some(Json::Int(n)) => Some(*n),
        _ => None,
    };
    let fail = |id: Option<u64>, e: WireError| Err((id, e));
    if let Some(op) = fields.get("op") {
        return match op {
            Json::Str(s) if s == "status" => Ok(WireRequest::Status),
            Json::Str(s) if s == "ping" => Ok(WireRequest::Ping),
            other => fail(
                id,
                WireError::bad_request(format!("unknown op {}", other.render_compact())),
            ),
        };
    }
    let Some(id) = id else {
        return fail(None, WireError::bad_request("missing integer \"id\""));
    };
    let int_field = |name: &str| -> Result<u64, (Option<u64>, WireError)> {
        match fields.get(name) {
            Some(Json::Int(n)) => Ok(*n),
            _ => Err((
                Some(id),
                WireError::bad_request(format!("missing integer {name:?}")),
            )),
        }
    };
    let big_cores = int_field("big")?;
    let little_cores = int_field("little")?;
    let deadline_us = match fields.get("deadline_us") {
        None => None,
        Some(Json::Int(n)) => Some(*n),
        Some(_) => {
            return fail(
                Some(id),
                WireError::bad_request("\"deadline_us\" must be an integer"),
            )
        }
    };
    let tenant = match fields.get("tenant") {
        None => "public".to_string(),
        Some(Json::Str(s)) => s.clone(),
        Some(_) => {
            return fail(
                Some(id),
                WireError::bad_request("\"tenant\" must be a string"),
            )
        }
    };
    let objective = match fields.get("objective") {
        None => Objective::Period,
        Some(Json::Str(s)) if s == "period" => Objective::Period,
        Some(Json::Str(s)) if s == "min_energy" => match fields.get("target_period") {
            Some(Json::Str(target)) => Objective::MinEnergy {
                target_period: target.clone(),
            },
            _ => {
                return fail(
                    Some(id),
                    WireError::bad_request(
                        "objective \"min_energy\" requires string \"target_period\"",
                    ),
                )
            }
        },
        Some(_) => {
            return fail(
                Some(id),
                WireError::bad_request("\"objective\" must be \"period\" or \"min_energy\""),
            )
        }
    };
    let policy = match fields.get("policy") {
        Some(Json::Str(s)) if s.eq_ignore_ascii_case("portfolio") => Policy::Portfolio,
        Some(Json::Str(s)) => Policy::Strategy(s.clone()),
        _ => {
            return fail(
                Some(id),
                WireError::bad_request("missing string \"policy\""),
            )
        }
    };
    let Some(Json::Arr(raw_tasks)) = fields.get("tasks") else {
        return fail(Some(id), WireError::bad_request("missing array \"tasks\""));
    };
    if raw_tasks.len() > max_tasks {
        return fail(
            Some(id),
            WireError::bad_request(format!(
                "chain has {} tasks; this server accepts at most {max_tasks}",
                raw_tasks.len()
            )),
        );
    }
    let mut tasks = Vec::with_capacity(raw_tasks.len());
    for t in raw_tasks {
        let Json::Arr(triple) = t else {
            return fail(
                Some(id),
                WireError::bad_request("each task must be a [big, little, replicable] triple"),
            );
        };
        match triple.as_slice() {
            [Json::Int(wb), Json::Int(wl), Json::Int(r)] if *r <= 1 => tasks.push(TaskSpec {
                weight_big: *wb,
                weight_little: *wl,
                replicable: *r == 1,
            }),
            _ => {
                return fail(
                    Some(id),
                    WireError::bad_request(
                        "each task must be [weight_big, weight_little, replicable(0|1)]",
                    ),
                )
            }
        }
    }
    Ok(WireRequest::Schedule {
        request: ScheduleRequest {
            id,
            tasks,
            big_cores,
            little_cores,
            policy,
            objective,
            deadline_us,
        },
        tenant,
    })
}

/// Renders a schedule request as one frame (the client/loadgen side of
/// [`parse_request`]). `tenant` is omitted when `"public"`.
#[must_use]
pub fn render_request(request: &ScheduleRequest, tenant: &str) -> String {
    let mut fields = BTreeMap::new();
    fields.insert("id".to_string(), Json::Int(request.id));
    fields.insert("big".to_string(), Json::Int(request.big_cores));
    fields.insert("little".to_string(), Json::Int(request.little_cores));
    if let Some(us) = request.deadline_us {
        fields.insert("deadline_us".to_string(), Json::Int(us));
    }
    if tenant != "public" {
        fields.insert("tenant".to_string(), Json::Str(tenant.to_string()));
    }
    let policy = match &request.policy {
        Policy::Portfolio => "portfolio".to_string(),
        Policy::Strategy(name) => name.clone(),
    };
    fields.insert("policy".to_string(), Json::Str(policy));
    // The default period objective is omitted so legacy frames stay
    // byte-identical.
    if let Objective::MinEnergy { target_period } = &request.objective {
        fields.insert("objective".to_string(), Json::Str("min_energy".to_string()));
        fields.insert(
            "target_period".to_string(),
            Json::Str(target_period.clone()),
        );
    }
    fields.insert(
        "tasks".to_string(),
        Json::Arr(
            request
                .tasks
                .iter()
                .map(|t| {
                    Json::Arr(vec![
                        Json::Int(t.weight_big),
                        Json::Int(t.weight_little),
                        Json::Int(u64::from(t.replicable)),
                    ])
                })
                .collect(),
        ),
    );
    Json::Obj(fields).render_compact()
}

/// Renders an outcome as the `ok` payload.
fn outcome_json(outcome: &ScheduleOutcome) -> Json {
    let mut fields = BTreeMap::new();
    fields.insert("strategy".to_string(), Json::Str(outcome.strategy.clone()));
    fields.insert("period".to_string(), Json::Str(outcome.period.clone()));
    fields.insert(
        "decomposition".to_string(),
        Json::Str(outcome.decomposition.clone()),
    );
    fields.insert(
        "stages".to_string(),
        Json::Arr(
            outcome
                .stages
                .iter()
                .map(|s| {
                    Json::Arr(vec![
                        Json::Int(s.start as u64),
                        Json::Int(s.end as u64),
                        Json::Int(s.cores),
                        Json::Str(
                            match s.core_type {
                                CoreType::Big => "B",
                                CoreType::Little => "L",
                            }
                            .to_string(),
                        ),
                    ])
                })
                .collect(),
        ),
    );
    fields.insert("used_big".to_string(), Json::Int(outcome.used_big));
    fields.insert("used_little".to_string(), Json::Int(outcome.used_little));
    fields.insert("cache_hit".to_string(), Json::Bool(outcome.cache_hit));
    fields.insert("complete".to_string(), Json::Bool(outcome.complete));
    // Present exactly when the request's objective was energy; period
    // responses stay byte-identical to the pre-energy wire.
    if let Some(mw) = outcome.energy_milliwatts {
        fields.insert("energy_mw".to_string(), Json::Int(mw));
    }
    Json::Obj(fields)
}

/// Renders an engine response as one frame (no trailing newline).
#[must_use]
pub fn render_response(response: &ScheduleResponse) -> String {
    match &response.result {
        Ok(outcome) => {
            let mut fields = BTreeMap::new();
            fields.insert("id".to_string(), Json::Int(response.id));
            fields.insert("ok".to_string(), outcome_json(outcome));
            Json::Obj(fields).render_compact()
        }
        Err(e) => render_error(Some(response.id), e.code(), &e.to_string()),
    }
}

/// Appends one response frame *plus its newline* to `out` without
/// building a `Json` tree — the pump's allocation-free framing path.
///
/// Byte-identical to [`render_response`] + `'\n'` (canonical key order
/// is hard-coded; the equality is pinned by tests and the conformance
/// service checks). With a warm, pre-grown `out` this performs zero
/// heap allocations for success frames.
pub fn render_response_line(response: &ScheduleResponse, out: &mut String) {
    match &response.result {
        Ok(outcome) => {
            // Keys in canonical (sorted) order: id < ok; inside ok:
            // cache_hit < complete < decomposition < energy_mw < period
            // < stages < strategy < used_big < used_little.
            out.push_str("{\"id\":");
            push_u64(out, response.id);
            out.push_str(",\"ok\":{\"cache_hit\":");
            out.push_str(bool_str(outcome.cache_hit));
            out.push_str(",\"complete\":");
            out.push_str(bool_str(outcome.complete));
            out.push_str(",\"decomposition\":");
            push_escaped(out, &outcome.decomposition);
            if let Some(mw) = outcome.energy_milliwatts {
                out.push_str(",\"energy_mw\":");
                push_u64(out, mw);
            }
            out.push_str(",\"period\":");
            push_escaped(out, &outcome.period);
            out.push_str(",\"stages\":[");
            for (i, s) in outcome.stages.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('[');
                push_u64(out, s.start as u64);
                out.push(',');
                push_u64(out, s.end as u64);
                out.push(',');
                push_u64(out, s.cores);
                out.push_str(match s.core_type {
                    CoreType::Big => ",\"B\"]",
                    CoreType::Little => ",\"L\"]",
                });
            }
            out.push_str("],\"strategy\":");
            push_escaped(out, &outcome.strategy);
            out.push_str(",\"used_big\":");
            push_u64(out, outcome.used_big);
            out.push_str(",\"used_little\":");
            push_u64(out, outcome.used_little);
            out.push_str("}}\n");
        }
        Err(e) => render_error_line(Some(response.id), e.code(), &e.to_string(), out),
    }
}

/// Appends one error frame plus its newline to `out`; byte-identical to
/// [`render_error`] + `'\n'` (canonical key order: err < id).
pub fn render_error_line(id: Option<u64>, code: &str, message: &str, out: &mut String) {
    out.push_str("{\"err\":{\"code\":");
    push_escaped(out, code);
    out.push_str(",\"message\":");
    push_escaped(out, message);
    out.push('}');
    if let Some(id) = id {
        out.push_str(",\"id\":");
        push_u64(out, id);
    }
    out.push_str("}\n");
}

fn bool_str(b: bool) -> &'static str {
    if b {
        "true"
    } else {
        "false"
    }
}

/// Appends decimal digits without going through `core::fmt` (and
/// without allocating).
fn push_u64(out: &mut String, mut n: u64) {
    let mut tmp = [0u8; 20];
    let mut i = tmp.len();
    loop {
        i -= 1;
        tmp[i] = b'0' + (n % 10) as u8;
        n /= 10;
        if n == 0 {
            break;
        }
    }
    // The buffer holds only ASCII digits.
    out.push_str(std::str::from_utf8(&tmp[i..]).expect("digits are UTF-8"));
}

/// Mirrors the canonical codec's string escaping exactly (pinned by the
/// bit-identity tests below).
fn push_escaped(out: &mut String, s: &str) {
    use std::fmt::Write as _;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// What [`scan_response`] recovers from a frame without building a
/// `Json` tree.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScannedResponse {
    /// Echoed correlation id, when present.
    pub id: Option<u64>,
    /// `Ok(cache_hit)` for success frames, `Err(code)` for errors.
    pub outcome: Result<bool, String>,
}

/// Parses a response frame by shape instead of by grammar — the load
/// generator's high-rate client path.
///
/// Canonical server frames always start `{"id":` (success; keys sort id
/// < ok) or `{"err":` (errors; a trailing `,"id":N` when correlatable).
/// Because the canonical renderer escapes every `"` inside string
/// values, the byte sequences this scanner matches cannot occur inside
/// message text — the scan is exact on server-rendered frames, and
/// anything shaped differently falls back to the full codec parse, so
/// the scanner is never *less* correct than [`parse_response`].
/// Equivalence is pinned by proptests in this module.
pub fn scan_response(line: &str) -> Result<ScannedResponse, WireError> {
    if let Some(rest) = line.strip_prefix("{\"id\":") {
        let digits = rest.bytes().take_while(u8::is_ascii_digit).count();
        if digits > 0 {
            if let Ok(id) = rest[..digits].parse::<u64>() {
                if rest[digits..].starts_with(",\"ok\":{\"cache_hit\":") {
                    let cached = rest[digits..].starts_with(",\"ok\":{\"cache_hit\":true");
                    return Ok(ScannedResponse {
                        id: Some(id),
                        outcome: Ok(cached),
                    });
                }
            }
        }
    } else if let Some(rest) = line.strip_prefix("{\"err\":{\"code\":\"") {
        let code_len = rest
            .bytes()
            .take_while(|b| b.is_ascii_uppercase() || *b == b'_')
            .count();
        if code_len > 0 && rest[code_len..].starts_with('"') {
            let code = rest[..code_len].to_string();
            // A correlatable error carries its id last: `...},"id":N}`.
            // `,"id":` cannot occur inside a rendered string (quotes are
            // escaped there), so a raw match is exact.
            let body = &line[..line.len().saturating_sub(1)];
            let id = body.rfind(",\"id\":").and_then(|p| {
                let digits = &body[p + 6..];
                (!digits.is_empty() && digits.bytes().all(|b| b.is_ascii_digit()))
                    .then(|| digits.parse().ok())
                    .flatten()
            });
            if line.ends_with('}') {
                return Ok(ScannedResponse {
                    id,
                    outcome: Err(code),
                });
            }
        }
    }
    // Unrecognized shape: fall back to the full parse.
    let parsed = parse_response(line)?;
    Ok(ScannedResponse {
        id: parsed.id,
        outcome: match parsed.result {
            Ok(payload) => Ok(payload
                .as_obj()
                .and_then(|o| o.get("cache_hit"))
                .and_then(Json::as_bool)
                .unwrap_or(false)),
            Err((code, _)) => Err(code),
        },
    })
}

/// Renders an error frame (no trailing newline). `id` is echoed when
/// the offending frame carried one.
#[must_use]
pub fn render_error(id: Option<u64>, code: &str, message: &str) -> String {
    let mut err = BTreeMap::new();
    err.insert("code".to_string(), Json::Str(code.to_string()));
    err.insert("message".to_string(), Json::Str(message.to_string()));
    let mut fields = BTreeMap::new();
    if let Some(id) = id {
        fields.insert("id".to_string(), Json::Int(id));
    }
    fields.insert("err".to_string(), Json::Obj(err));
    Json::Obj(fields).render_compact()
}

/// A response frame as the client sees it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ClientResponse {
    /// Echoed correlation id, when the server could recover one.
    pub id: Option<u64>,
    /// `Ok(payload)` for success frames, `Err((code, message))` for
    /// error frames.
    pub result: Result<Json, (String, String)>,
}

/// Parses a response frame (the client/loadgen side).
pub fn parse_response(line: &str) -> Result<ClientResponse, WireError> {
    let value = Json::parse(line).map_err(|e| WireError::parse(e.to_string()))?;
    let Json::Obj(mut fields) = value else {
        return Err(WireError::parse("response must be a JSON object"));
    };
    let id = match fields.get("id") {
        Some(Json::Int(n)) => Some(*n),
        _ => None,
    };
    if let Some(ok) = fields.remove("ok") {
        return Ok(ClientResponse { id, result: Ok(ok) });
    }
    match fields.remove("err") {
        Some(Json::Obj(err)) => {
            let text = |key: &str| match err.get(key) {
                Some(Json::Str(s)) => s.clone(),
                _ => String::new(),
            };
            Ok(ClientResponse {
                id,
                result: Err((text("code"), text("message"))),
            })
        }
        _ => Err(WireError::parse("response has neither \"ok\" nor \"err\"")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amp_core::sched::Scheduler;
    use amp_core::{Resources, Task, TaskChain};

    fn request() -> ScheduleRequest {
        let chain = TaskChain::new(vec![
            Task::new(10, 25, false),
            Task::new(40, 90, true),
            Task::new(5, 12, false),
        ]);
        ScheduleRequest::from_chain(
            7,
            &chain,
            Resources::new(2, 2),
            Policy::Strategy("HeRAD".to_string()),
        )
    }

    #[test]
    fn request_round_trips_through_the_wire() {
        let req = request();
        let line = render_request(&req, "acme");
        assert!(!line.contains('\n'));
        match parse_request(&line, 64).expect("parses") {
            WireRequest::Schedule { request, tenant } => {
                assert_eq!(request, req);
                assert_eq!(tenant, "acme");
            }
            other => panic!("expected schedule, got {other:?}"),
        }
        // Default tenant and portfolio policy.
        let mut req = request();
        req.policy = Policy::Portfolio;
        req.deadline_us = Some(1500);
        match parse_request(&render_request(&req, "public"), 64).expect("parses") {
            WireRequest::Schedule { request, tenant } => {
                assert_eq!(request, req);
                assert_eq!(tenant, "public");
            }
            other => panic!("expected schedule, got {other:?}"),
        }
    }

    #[test]
    fn control_frames_parse() {
        assert_eq!(
            parse_request("{\"op\":\"status\"}", 8).expect("status"),
            WireRequest::Status
        );
        assert_eq!(
            parse_request("{\"op\":\"ping\"}", 8).expect("ping"),
            WireRequest::Ping
        );
        let (_, err) = parse_request("{\"op\":\"reboot\"}", 8).unwrap_err();
        assert_eq!(err.code, "BAD_REQUEST");
    }

    #[test]
    fn malformed_frames_reject_with_recovered_id() {
        // Garbage: no id recoverable.
        let (id, err) = parse_request("not json at all", 8).unwrap_err();
        assert_eq!((id, err.code), (None, "PARSE_ERROR"));
        // Truncated JSON is a parse error, not a panic.
        let line = render_request(&request(), "public");
        let (_, err) = parse_request(&line[..line.len() - 3], 8).unwrap_err();
        assert_eq!(err.code, "PARSE_ERROR");
        // Structurally valid but missing fields: id comes back.
        let (id, err) = parse_request("{\"id\":42,\"policy\":\"HeRAD\"}", 8).unwrap_err();
        assert_eq!((id, err.code), (Some(42), "BAD_REQUEST"));
        // Oversized chains are refused before allocation.
        let line = render_request(&request(), "public");
        let (id, err) = parse_request(&line, 2).unwrap_err();
        assert_eq!((id, err.code), (Some(7), "BAD_REQUEST"));
        assert!(err.message.contains("at most 2"), "{}", err.message);
    }

    #[test]
    fn responses_round_trip_ok_and_err() {
        let req = request();
        let chain = req.chain();
        let solution = amp_core::sched::Fertac
            .schedule(&chain, req.resources())
            .expect("feasible");
        let outcome = ScheduleOutcome::from_solution("FERTAC", &solution, &chain, true);
        let ok_line = render_response(&ScheduleResponse {
            id: 7,
            result: Ok(outcome.clone()),
        });
        assert!(!ok_line.contains('\n'));
        let parsed = parse_response(&ok_line).expect("parses");
        assert_eq!(parsed.id, Some(7));
        let payload = parsed.result.expect("ok frame");
        let Json::Obj(fields) = payload else {
            panic!("payload must be an object")
        };
        assert_eq!(
            fields.get("period"),
            Some(&Json::Str(outcome.period.clone()))
        );
        assert_eq!(fields.get("cache_hit"), Some(&Json::Bool(false)));
        assert_eq!(
            fields.get("stages").map(|s| matches!(s, Json::Arr(_))),
            Some(true)
        );

        let err_line = render_response(&ScheduleResponse {
            id: 9,
            result: Err(amp_service::ServiceError::Overloaded),
        });
        let parsed = parse_response(&err_line).expect("parses");
        assert_eq!(parsed.id, Some(9));
        let (code, message) = parsed.result.unwrap_err();
        assert_eq!(code, "OVERLOADED");
        assert!(!message.is_empty());

        // Transport-level error without an id.
        let line = render_error(None, "FRAME_TOO_LARGE", "line exceeded 65536 bytes");
        let parsed = parse_response(&line).expect("parses");
        assert_eq!(parsed.id, None);
        assert_eq!(parsed.result.unwrap_err().0, "FRAME_TOO_LARGE");
    }

    #[test]
    fn energy_objective_round_trips_through_the_wire() {
        let req = request().with_objective(Objective::MinEnergy {
            target_period: "5/2".to_string(),
        });
        let line = render_request(&req, "public");
        assert!(line.contains("\"objective\":\"min_energy\""));
        assert!(line.contains("\"target_period\":\"5/2\""));
        match parse_request(&line, 64).expect("parses") {
            WireRequest::Schedule { request, .. } => assert_eq!(request, req),
            other => panic!("expected schedule, got {other:?}"),
        }
        // An explicit "period" objective parses to the default.
        let line = "{\"id\":7,\"policy\":\"HeRAD\",\"big\":2,\"little\":2,\
                    \"objective\":\"period\",\"tasks\":[[10,25,0]]}";
        match parse_request(line, 64).expect("parses") {
            WireRequest::Schedule { request, .. } => {
                assert_eq!(request.objective, Objective::Period);
            }
            other => panic!("expected schedule, got {other:?}"),
        }
        // min_energy without a target is a correlatable rejection.
        let line = "{\"id\":7,\"policy\":\"HeRAD\",\"big\":2,\"little\":2,\
                    \"objective\":\"min_energy\",\"tasks\":[[10,25,0]]}";
        let (id, err) = parse_request(line, 64).unwrap_err();
        assert_eq!((id, err.code), (Some(7), "BAD_REQUEST"));
        assert!(err.message.contains("target_period"), "{}", err.message);
        // Unknown objectives are rejected, not silently defaulted.
        let line = "{\"id\":7,\"policy\":\"HeRAD\",\"big\":2,\"little\":2,\
                    \"objective\":\"min_carbon\",\"tasks\":[[10,25,0]]}";
        let (id, err) = parse_request(line, 64).unwrap_err();
        assert_eq!((id, err.code), (Some(7), "BAD_REQUEST"));
    }

    /// Backward-compatibility pin: a default-objective request renders
    /// the exact pre-energy frame (no `objective` key), and a
    /// default-objective response renders the exact pre-energy payload
    /// (no `energy_mw` key). Byte-for-byte, so pre-PR clients and
    /// recorded traffic stay valid.
    #[test]
    fn default_objective_frames_are_bit_identical_to_pre_energy_wire() {
        let chain = TaskChain::new(vec![Task::new(10, 25, false), Task::new(40, 90, true)]);
        let req = ScheduleRequest::from_chain(
            3,
            &chain,
            Resources::new(2, 1),
            Policy::Strategy("FERTAC".to_string()),
        );
        assert_eq!(
            render_request(&req, "public"),
            "{\"big\":2,\"id\":3,\"little\":1,\"policy\":\"FERTAC\",\
             \"tasks\":[[10,25,0],[40,90,1]]}"
        );
        let solution = amp_core::sched::Fertac
            .schedule(&chain, req.resources())
            .expect("feasible");
        let outcome = ScheduleOutcome::from_solution("FERTAC", &solution, &chain, true);
        let line = render_response(&ScheduleResponse {
            id: 3,
            result: Ok(outcome.clone()),
        });
        assert!(!line.contains("energy_mw"));
        assert_eq!(
            line,
            format!(
                "{{\"id\":3,\"ok\":{{\"cache_hit\":false,\"complete\":true,\
                 \"decomposition\":\"{}\",\"period\":\"{}\",\"stages\":{},\
                 \"strategy\":\"FERTAC\",\"used_big\":{},\"used_little\":{}}}}}",
                outcome.decomposition,
                outcome.period,
                Json::Arr(
                    outcome
                        .stages
                        .iter()
                        .map(|s| Json::Arr(vec![
                            Json::Int(s.start as u64),
                            Json::Int(s.end as u64),
                            Json::Int(s.cores),
                            Json::Str(
                                match s.core_type {
                                    CoreType::Big => "B",
                                    CoreType::Little => "L",
                                }
                                .to_string()
                            ),
                        ]))
                        .collect()
                )
                .render_compact(),
                outcome.used_big,
                outcome.used_little,
            )
        );
        // The energy figure appears if and only if the outcome carries one.
        let energized = outcome.with_energy_milliwatts(4321);
        let line = render_response(&ScheduleResponse {
            id: 3,
            result: Ok(energized),
        });
        assert!(line.contains("\"energy_mw\":4321"));
    }

    /// Every response the streaming renderer can produce must be
    /// byte-identical to the tree renderer plus a newline — including
    /// energy frames, errors with and without ids, and strings needing
    /// every escape class.
    #[test]
    fn streaming_renderer_matches_tree_renderer_bit_for_bit() {
        let req = request();
        let chain = req.chain();
        let solution = amp_core::sched::Fertac
            .schedule(&chain, req.resources())
            .expect("feasible");
        let base = ScheduleOutcome::from_solution("FERTAC", &solution, &chain, true);
        let mut cached = base.clone();
        cached.cache_hit = true;
        let mut nasty = base.clone();
        nasty.strategy = "we\"ird\\str\nat\regy\tname\u{1}".to_string();
        nasty.decomposition = "π→∞ \u{7}".to_string();
        let responses = vec![
            ScheduleResponse {
                id: 0,
                result: Ok(base.clone()),
            },
            ScheduleResponse {
                id: u64::MAX,
                result: Ok(cached),
            },
            ScheduleResponse {
                id: 1234567890123,
                result: Ok(base.clone().with_energy_milliwatts(98765)),
            },
            ScheduleResponse {
                id: 17,
                result: Ok(nasty),
            },
            ScheduleResponse {
                id: 9,
                result: Err(amp_service::ServiceError::Overloaded),
            },
        ];
        let mut out = String::new();
        for resp in &responses {
            out.clear();
            render_response_line(resp, &mut out);
            assert_eq!(out, format!("{}\n", render_response(resp)), "{resp:?}");
        }
        // Error frames, with and without ids, through the error path.
        for (id, code, msg) in [
            (
                Some(42),
                "QUOTA_EXCEEDED",
                "tenant \"acme\" is\nover\tbudget",
            ),
            (None, "FRAME_TOO_LARGE", "line exceeded 65536 bytes"),
        ] {
            out.clear();
            render_error_line(id, code, msg, &mut out);
            assert_eq!(out, format!("{}\n", render_error(id, code, msg)));
        }
    }

    /// The warm streaming renderer reuses its buffer: rendering the same
    /// frame twice into a pre-grown `String` must not reallocate.
    #[test]
    fn streaming_renderer_reuses_a_warm_buffer() {
        let req = request();
        let chain = req.chain();
        let solution = amp_core::sched::Fertac
            .schedule(&chain, req.resources())
            .expect("feasible");
        let resp = ScheduleResponse {
            id: 7,
            result: Ok(ScheduleOutcome::from_solution(
                "FERTAC", &solution, &chain, true,
            )),
        };
        let mut out = String::new();
        render_response_line(&resp, &mut out);
        let warm_cap = out.capacity();
        out.clear();
        render_response_line(&resp, &mut out);
        assert_eq!(out.capacity(), warm_cap, "warm render must not regrow");
    }

    /// The fast scanner must agree with the full parser on every frame
    /// the server can emit, and fall back (not misparse) on anything
    /// shaped differently.
    #[test]
    fn scanner_agrees_with_parser() {
        let req = request();
        let chain = req.chain();
        let solution = amp_core::sched::Fertac
            .schedule(&chain, req.resources())
            .expect("feasible");
        let base = ScheduleOutcome::from_solution("FERTAC", &solution, &chain, true);
        let mut cached = base.clone();
        cached.cache_hit = true;
        let mut frames = vec![
            render_response(&ScheduleResponse {
                id: 7,
                result: Ok(base.clone()),
            }),
            render_response(&ScheduleResponse {
                id: u64::MAX,
                result: Ok(cached),
            }),
            render_response(&ScheduleResponse {
                id: 0,
                result: Ok(base.with_energy_milliwatts(5)),
            }),
            render_response(&ScheduleResponse {
                id: 11,
                result: Err(amp_service::ServiceError::Overloaded),
            }),
            render_error(Some(3), "QUOTA_EXCEEDED", "tenant over budget"),
            render_error(None, "FRAME_TOO_LARGE", "line exceeded 65536 bytes"),
            // Adversarial: error messages that *mention* scanner
            // landmarks — escaping keeps them unambiguous on the wire.
            render_error(Some(8), "BAD_REQUEST", "literal \",\\\"id\\\":9\" inside"),
            render_error(None, "PARSE_ERROR", "{\"id\":5,\"ok\":{\"cache_hit\":true"),
            // Non-canonical but valid frames must take the fallback.
            "{\"ok\":{\"cache_hit\":true},\"id\":4}".to_string(),
            "{ \"id\" : 6 , \"ok\" : { \"cache_hit\" : false } }".to_string(),
        ];
        // Pong/status-style frames also flow through client readers.
        frames.push("{\"ok\":\"pong\"}".to_string());
        for frame in &frames {
            let scanned = scan_response(frame).expect("scan accepts valid frames");
            let parsed = parse_response(frame).expect("parser accepts valid frames");
            assert_eq!(scanned.id, parsed.id, "id mismatch on {frame}");
            match (&scanned.outcome, &parsed.result) {
                (Ok(cached), Ok(payload)) => {
                    let expect = payload
                        .as_obj()
                        .and_then(|o| o.get("cache_hit"))
                        .and_then(Json::as_bool)
                        .unwrap_or(false);
                    assert_eq!(*cached, expect, "cache_hit mismatch on {frame}");
                }
                (Err(code), Err((expect, _))) => {
                    assert_eq!(code, expect, "code mismatch on {frame}");
                }
                other => panic!("outcome class mismatch on {frame}: {other:?}"),
            }
        }
        // Garbage errors in both.
        assert!(scan_response("not json").is_err());
        assert!(scan_response("{\"neither\":1}").is_err());
    }
}
