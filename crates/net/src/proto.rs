//! The wire protocol: newline-delimited canonical JSON frames.
//!
//! One line is one frame; a frame is one [`amp_core::json`] value
//! rendered with [`Json::render_compact`], which never contains a raw
//! newline — so "split on `\n`" is the complete framing layer, and
//! "the line parsed" means "the frame arrived whole" (the canonical
//! parser rejects every strict prefix of a container-rooted document).
//!
//! ## Requests (client → server)
//!
//! A schedule request:
//!
//! ```json
//! {"id":7,"tenant":"acme","policy":"HeRAD","big":2,"little":2,
//!  "tasks":[[10,25,0],[40,90,1],[5,12,0]],"deadline_us":5000}
//! ```
//!
//! * `id` — client-chosen correlation id, echoed verbatim; responses
//!   may arrive in any order.
//! * `tenant` — optional quota bucket name (default `"public"`).
//! * `policy` — `"portfolio"` (case-insensitive) or a strategy name.
//! * `tasks` — `[weight_big, weight_little, replicable(0|1)]` triples.
//! * `deadline_us` — optional portfolio compute deadline.
//! * `objective` — optional: `"period"` (the default when absent, so
//!   pre-energy clients keep bit-identical behavior) or `"min_energy"`,
//!   which additionally requires `target_period` as the exact
//!   `"num/den"` string. Energy responses carry the served power as the
//!   integer `energy_mw` (whole milliwatts — no floats on the wire).
//!
//! Control frames: `{"op":"status"}` returns the server status
//! snapshot, `{"op":"ping"}` returns a pong (liveness probes).
//!
//! ## Responses (server → client)
//!
//! `{"id":7,"ok":{...outcome...}}` on success;
//! `{"id":7,"err":{"code":"QUOTA_EXCEEDED","message":"..."}}` on any
//! failure (the `id` key is absent when the frame was too mangled to
//! recover one). Codes are the stable [`ServiceError::code`] set plus
//! the transport-level codes `PARSE_ERROR`, `BAD_REQUEST`,
//! `FRAME_TOO_LARGE` and `QUOTA_EXCEEDED`. The period travels as the
//! exact `"num/den"` string — the wire format has no floats.

use std::collections::BTreeMap;

use amp_core::json::Json;
use amp_core::CoreType;
use amp_service::{
    Objective, Policy, ScheduleOutcome, ScheduleRequest, ScheduleResponse, TaskSpec,
};

/// A transport-level rejection, answered without entering the engine.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireError {
    /// Stable machine-readable code.
    pub code: &'static str,
    /// Human-readable diagnostic.
    pub message: String,
}

impl WireError {
    fn parse(message: impl Into<String>) -> Self {
        WireError {
            code: "PARSE_ERROR",
            message: message.into(),
        }
    }

    fn bad_request(message: impl Into<String>) -> Self {
        WireError {
            code: "BAD_REQUEST",
            message: message.into(),
        }
    }
}

/// One parsed request frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireRequest {
    /// A scheduling request plus its quota tenant.
    Schedule {
        /// The engine-level request.
        request: ScheduleRequest,
        /// Quota bucket the request draws from.
        tenant: String,
    },
    /// `{"op":"status"}` — status snapshot probe.
    Status,
    /// `{"op":"ping"}` — liveness probe.
    Ping,
}

/// Parses one frame. `max_tasks` bounds the chain length a single frame
/// may carry (memory protection; longer chains are `BAD_REQUEST`).
///
/// On error the result carries the recovered request id when one was
/// present, so the rejection can still be correlated.
pub fn parse_request(
    line: &str,
    max_tasks: usize,
) -> Result<WireRequest, (Option<u64>, WireError)> {
    let value = Json::parse(line).map_err(|e| (None, WireError::parse(e.to_string())))?;
    let Json::Obj(fields) = value else {
        return Err((None, WireError::parse("frame must be a JSON object")));
    };
    // Recover the id first so even malformed schedule frames reject
    // with a correlatable error.
    let id = match fields.get("id") {
        Some(Json::Int(n)) => Some(*n),
        _ => None,
    };
    let fail = |id: Option<u64>, e: WireError| Err((id, e));
    if let Some(op) = fields.get("op") {
        return match op {
            Json::Str(s) if s == "status" => Ok(WireRequest::Status),
            Json::Str(s) if s == "ping" => Ok(WireRequest::Ping),
            other => fail(
                id,
                WireError::bad_request(format!("unknown op {}", other.render_compact())),
            ),
        };
    }
    let Some(id) = id else {
        return fail(None, WireError::bad_request("missing integer \"id\""));
    };
    let int_field = |name: &str| -> Result<u64, (Option<u64>, WireError)> {
        match fields.get(name) {
            Some(Json::Int(n)) => Ok(*n),
            _ => Err((
                Some(id),
                WireError::bad_request(format!("missing integer {name:?}")),
            )),
        }
    };
    let big_cores = int_field("big")?;
    let little_cores = int_field("little")?;
    let deadline_us = match fields.get("deadline_us") {
        None => None,
        Some(Json::Int(n)) => Some(*n),
        Some(_) => {
            return fail(
                Some(id),
                WireError::bad_request("\"deadline_us\" must be an integer"),
            )
        }
    };
    let tenant = match fields.get("tenant") {
        None => "public".to_string(),
        Some(Json::Str(s)) => s.clone(),
        Some(_) => {
            return fail(
                Some(id),
                WireError::bad_request("\"tenant\" must be a string"),
            )
        }
    };
    let objective = match fields.get("objective") {
        None => Objective::Period,
        Some(Json::Str(s)) if s == "period" => Objective::Period,
        Some(Json::Str(s)) if s == "min_energy" => match fields.get("target_period") {
            Some(Json::Str(target)) => Objective::MinEnergy {
                target_period: target.clone(),
            },
            _ => {
                return fail(
                    Some(id),
                    WireError::bad_request(
                        "objective \"min_energy\" requires string \"target_period\"",
                    ),
                )
            }
        },
        Some(_) => {
            return fail(
                Some(id),
                WireError::bad_request("\"objective\" must be \"period\" or \"min_energy\""),
            )
        }
    };
    let policy = match fields.get("policy") {
        Some(Json::Str(s)) if s.eq_ignore_ascii_case("portfolio") => Policy::Portfolio,
        Some(Json::Str(s)) => Policy::Strategy(s.clone()),
        _ => {
            return fail(
                Some(id),
                WireError::bad_request("missing string \"policy\""),
            )
        }
    };
    let Some(Json::Arr(raw_tasks)) = fields.get("tasks") else {
        return fail(Some(id), WireError::bad_request("missing array \"tasks\""));
    };
    if raw_tasks.len() > max_tasks {
        return fail(
            Some(id),
            WireError::bad_request(format!(
                "chain has {} tasks; this server accepts at most {max_tasks}",
                raw_tasks.len()
            )),
        );
    }
    let mut tasks = Vec::with_capacity(raw_tasks.len());
    for t in raw_tasks {
        let Json::Arr(triple) = t else {
            return fail(
                Some(id),
                WireError::bad_request("each task must be a [big, little, replicable] triple"),
            );
        };
        match triple.as_slice() {
            [Json::Int(wb), Json::Int(wl), Json::Int(r)] if *r <= 1 => tasks.push(TaskSpec {
                weight_big: *wb,
                weight_little: *wl,
                replicable: *r == 1,
            }),
            _ => {
                return fail(
                    Some(id),
                    WireError::bad_request(
                        "each task must be [weight_big, weight_little, replicable(0|1)]",
                    ),
                )
            }
        }
    }
    Ok(WireRequest::Schedule {
        request: ScheduleRequest {
            id,
            tasks,
            big_cores,
            little_cores,
            policy,
            objective,
            deadline_us,
        },
        tenant,
    })
}

/// Renders a schedule request as one frame (the client/loadgen side of
/// [`parse_request`]). `tenant` is omitted when `"public"`.
#[must_use]
pub fn render_request(request: &ScheduleRequest, tenant: &str) -> String {
    let mut fields = BTreeMap::new();
    fields.insert("id".to_string(), Json::Int(request.id));
    fields.insert("big".to_string(), Json::Int(request.big_cores));
    fields.insert("little".to_string(), Json::Int(request.little_cores));
    if let Some(us) = request.deadline_us {
        fields.insert("deadline_us".to_string(), Json::Int(us));
    }
    if tenant != "public" {
        fields.insert("tenant".to_string(), Json::Str(tenant.to_string()));
    }
    let policy = match &request.policy {
        Policy::Portfolio => "portfolio".to_string(),
        Policy::Strategy(name) => name.clone(),
    };
    fields.insert("policy".to_string(), Json::Str(policy));
    // The default period objective is omitted so legacy frames stay
    // byte-identical.
    if let Objective::MinEnergy { target_period } = &request.objective {
        fields.insert("objective".to_string(), Json::Str("min_energy".to_string()));
        fields.insert(
            "target_period".to_string(),
            Json::Str(target_period.clone()),
        );
    }
    fields.insert(
        "tasks".to_string(),
        Json::Arr(
            request
                .tasks
                .iter()
                .map(|t| {
                    Json::Arr(vec![
                        Json::Int(t.weight_big),
                        Json::Int(t.weight_little),
                        Json::Int(u64::from(t.replicable)),
                    ])
                })
                .collect(),
        ),
    );
    Json::Obj(fields).render_compact()
}

/// Renders an outcome as the `ok` payload.
fn outcome_json(outcome: &ScheduleOutcome) -> Json {
    let mut fields = BTreeMap::new();
    fields.insert("strategy".to_string(), Json::Str(outcome.strategy.clone()));
    fields.insert("period".to_string(), Json::Str(outcome.period.clone()));
    fields.insert(
        "decomposition".to_string(),
        Json::Str(outcome.decomposition.clone()),
    );
    fields.insert(
        "stages".to_string(),
        Json::Arr(
            outcome
                .stages
                .iter()
                .map(|s| {
                    Json::Arr(vec![
                        Json::Int(s.start as u64),
                        Json::Int(s.end as u64),
                        Json::Int(s.cores),
                        Json::Str(
                            match s.core_type {
                                CoreType::Big => "B",
                                CoreType::Little => "L",
                            }
                            .to_string(),
                        ),
                    ])
                })
                .collect(),
        ),
    );
    fields.insert("used_big".to_string(), Json::Int(outcome.used_big));
    fields.insert("used_little".to_string(), Json::Int(outcome.used_little));
    fields.insert("cache_hit".to_string(), Json::Bool(outcome.cache_hit));
    fields.insert("complete".to_string(), Json::Bool(outcome.complete));
    // Present exactly when the request's objective was energy; period
    // responses stay byte-identical to the pre-energy wire.
    if let Some(mw) = outcome.energy_milliwatts {
        fields.insert("energy_mw".to_string(), Json::Int(mw));
    }
    Json::Obj(fields)
}

/// Renders an engine response as one frame (no trailing newline).
#[must_use]
pub fn render_response(response: &ScheduleResponse) -> String {
    match &response.result {
        Ok(outcome) => {
            let mut fields = BTreeMap::new();
            fields.insert("id".to_string(), Json::Int(response.id));
            fields.insert("ok".to_string(), outcome_json(outcome));
            Json::Obj(fields).render_compact()
        }
        Err(e) => render_error(Some(response.id), e.code(), &e.to_string()),
    }
}

/// Renders an error frame (no trailing newline). `id` is echoed when
/// the offending frame carried one.
#[must_use]
pub fn render_error(id: Option<u64>, code: &str, message: &str) -> String {
    let mut err = BTreeMap::new();
    err.insert("code".to_string(), Json::Str(code.to_string()));
    err.insert("message".to_string(), Json::Str(message.to_string()));
    let mut fields = BTreeMap::new();
    if let Some(id) = id {
        fields.insert("id".to_string(), Json::Int(id));
    }
    fields.insert("err".to_string(), Json::Obj(err));
    Json::Obj(fields).render_compact()
}

/// A response frame as the client sees it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ClientResponse {
    /// Echoed correlation id, when the server could recover one.
    pub id: Option<u64>,
    /// `Ok(payload)` for success frames, `Err((code, message))` for
    /// error frames.
    pub result: Result<Json, (String, String)>,
}

/// Parses a response frame (the client/loadgen side).
pub fn parse_response(line: &str) -> Result<ClientResponse, WireError> {
    let value = Json::parse(line).map_err(|e| WireError::parse(e.to_string()))?;
    let Json::Obj(mut fields) = value else {
        return Err(WireError::parse("response must be a JSON object"));
    };
    let id = match fields.get("id") {
        Some(Json::Int(n)) => Some(*n),
        _ => None,
    };
    if let Some(ok) = fields.remove("ok") {
        return Ok(ClientResponse { id, result: Ok(ok) });
    }
    match fields.remove("err") {
        Some(Json::Obj(err)) => {
            let text = |key: &str| match err.get(key) {
                Some(Json::Str(s)) => s.clone(),
                _ => String::new(),
            };
            Ok(ClientResponse {
                id,
                result: Err((text("code"), text("message"))),
            })
        }
        _ => Err(WireError::parse("response has neither \"ok\" nor \"err\"")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amp_core::sched::Scheduler;
    use amp_core::{Resources, Task, TaskChain};

    fn request() -> ScheduleRequest {
        let chain = TaskChain::new(vec![
            Task::new(10, 25, false),
            Task::new(40, 90, true),
            Task::new(5, 12, false),
        ]);
        ScheduleRequest::from_chain(
            7,
            &chain,
            Resources::new(2, 2),
            Policy::Strategy("HeRAD".to_string()),
        )
    }

    #[test]
    fn request_round_trips_through_the_wire() {
        let req = request();
        let line = render_request(&req, "acme");
        assert!(!line.contains('\n'));
        match parse_request(&line, 64).expect("parses") {
            WireRequest::Schedule { request, tenant } => {
                assert_eq!(request, req);
                assert_eq!(tenant, "acme");
            }
            other => panic!("expected schedule, got {other:?}"),
        }
        // Default tenant and portfolio policy.
        let mut req = request();
        req.policy = Policy::Portfolio;
        req.deadline_us = Some(1500);
        match parse_request(&render_request(&req, "public"), 64).expect("parses") {
            WireRequest::Schedule { request, tenant } => {
                assert_eq!(request, req);
                assert_eq!(tenant, "public");
            }
            other => panic!("expected schedule, got {other:?}"),
        }
    }

    #[test]
    fn control_frames_parse() {
        assert_eq!(
            parse_request("{\"op\":\"status\"}", 8).expect("status"),
            WireRequest::Status
        );
        assert_eq!(
            parse_request("{\"op\":\"ping\"}", 8).expect("ping"),
            WireRequest::Ping
        );
        let (_, err) = parse_request("{\"op\":\"reboot\"}", 8).unwrap_err();
        assert_eq!(err.code, "BAD_REQUEST");
    }

    #[test]
    fn malformed_frames_reject_with_recovered_id() {
        // Garbage: no id recoverable.
        let (id, err) = parse_request("not json at all", 8).unwrap_err();
        assert_eq!((id, err.code), (None, "PARSE_ERROR"));
        // Truncated JSON is a parse error, not a panic.
        let line = render_request(&request(), "public");
        let (_, err) = parse_request(&line[..line.len() - 3], 8).unwrap_err();
        assert_eq!(err.code, "PARSE_ERROR");
        // Structurally valid but missing fields: id comes back.
        let (id, err) = parse_request("{\"id\":42,\"policy\":\"HeRAD\"}", 8).unwrap_err();
        assert_eq!((id, err.code), (Some(42), "BAD_REQUEST"));
        // Oversized chains are refused before allocation.
        let line = render_request(&request(), "public");
        let (id, err) = parse_request(&line, 2).unwrap_err();
        assert_eq!((id, err.code), (Some(7), "BAD_REQUEST"));
        assert!(err.message.contains("at most 2"), "{}", err.message);
    }

    #[test]
    fn responses_round_trip_ok_and_err() {
        let req = request();
        let chain = req.chain();
        let solution = amp_core::sched::Fertac
            .schedule(&chain, req.resources())
            .expect("feasible");
        let outcome = ScheduleOutcome::from_solution("FERTAC", &solution, &chain, true);
        let ok_line = render_response(&ScheduleResponse {
            id: 7,
            result: Ok(outcome.clone()),
        });
        assert!(!ok_line.contains('\n'));
        let parsed = parse_response(&ok_line).expect("parses");
        assert_eq!(parsed.id, Some(7));
        let payload = parsed.result.expect("ok frame");
        let Json::Obj(fields) = payload else {
            panic!("payload must be an object")
        };
        assert_eq!(
            fields.get("period"),
            Some(&Json::Str(outcome.period.clone()))
        );
        assert_eq!(fields.get("cache_hit"), Some(&Json::Bool(false)));
        assert_eq!(
            fields.get("stages").map(|s| matches!(s, Json::Arr(_))),
            Some(true)
        );

        let err_line = render_response(&ScheduleResponse {
            id: 9,
            result: Err(amp_service::ServiceError::Overloaded),
        });
        let parsed = parse_response(&err_line).expect("parses");
        assert_eq!(parsed.id, Some(9));
        let (code, message) = parsed.result.unwrap_err();
        assert_eq!(code, "OVERLOADED");
        assert!(!message.is_empty());

        // Transport-level error without an id.
        let line = render_error(None, "FRAME_TOO_LARGE", "line exceeded 65536 bytes");
        let parsed = parse_response(&line).expect("parses");
        assert_eq!(parsed.id, None);
        assert_eq!(parsed.result.unwrap_err().0, "FRAME_TOO_LARGE");
    }

    #[test]
    fn energy_objective_round_trips_through_the_wire() {
        let req = request().with_objective(Objective::MinEnergy {
            target_period: "5/2".to_string(),
        });
        let line = render_request(&req, "public");
        assert!(line.contains("\"objective\":\"min_energy\""));
        assert!(line.contains("\"target_period\":\"5/2\""));
        match parse_request(&line, 64).expect("parses") {
            WireRequest::Schedule { request, .. } => assert_eq!(request, req),
            other => panic!("expected schedule, got {other:?}"),
        }
        // An explicit "period" objective parses to the default.
        let line = "{\"id\":7,\"policy\":\"HeRAD\",\"big\":2,\"little\":2,\
                    \"objective\":\"period\",\"tasks\":[[10,25,0]]}";
        match parse_request(line, 64).expect("parses") {
            WireRequest::Schedule { request, .. } => {
                assert_eq!(request.objective, Objective::Period);
            }
            other => panic!("expected schedule, got {other:?}"),
        }
        // min_energy without a target is a correlatable rejection.
        let line = "{\"id\":7,\"policy\":\"HeRAD\",\"big\":2,\"little\":2,\
                    \"objective\":\"min_energy\",\"tasks\":[[10,25,0]]}";
        let (id, err) = parse_request(line, 64).unwrap_err();
        assert_eq!((id, err.code), (Some(7), "BAD_REQUEST"));
        assert!(err.message.contains("target_period"), "{}", err.message);
        // Unknown objectives are rejected, not silently defaulted.
        let line = "{\"id\":7,\"policy\":\"HeRAD\",\"big\":2,\"little\":2,\
                    \"objective\":\"min_carbon\",\"tasks\":[[10,25,0]]}";
        let (id, err) = parse_request(line, 64).unwrap_err();
        assert_eq!((id, err.code), (Some(7), "BAD_REQUEST"));
    }

    /// Backward-compatibility pin: a default-objective request renders
    /// the exact pre-energy frame (no `objective` key), and a
    /// default-objective response renders the exact pre-energy payload
    /// (no `energy_mw` key). Byte-for-byte, so pre-PR clients and
    /// recorded traffic stay valid.
    #[test]
    fn default_objective_frames_are_bit_identical_to_pre_energy_wire() {
        let chain = TaskChain::new(vec![Task::new(10, 25, false), Task::new(40, 90, true)]);
        let req = ScheduleRequest::from_chain(
            3,
            &chain,
            Resources::new(2, 1),
            Policy::Strategy("FERTAC".to_string()),
        );
        assert_eq!(
            render_request(&req, "public"),
            "{\"big\":2,\"id\":3,\"little\":1,\"policy\":\"FERTAC\",\
             \"tasks\":[[10,25,0],[40,90,1]]}"
        );
        let solution = amp_core::sched::Fertac
            .schedule(&chain, req.resources())
            .expect("feasible");
        let outcome = ScheduleOutcome::from_solution("FERTAC", &solution, &chain, true);
        let line = render_response(&ScheduleResponse {
            id: 3,
            result: Ok(outcome.clone()),
        });
        assert!(!line.contains("energy_mw"));
        assert_eq!(
            line,
            format!(
                "{{\"id\":3,\"ok\":{{\"cache_hit\":false,\"complete\":true,\
                 \"decomposition\":\"{}\",\"period\":\"{}\",\"stages\":{},\
                 \"strategy\":\"FERTAC\",\"used_big\":{},\"used_little\":{}}}}}",
                outcome.decomposition,
                outcome.period,
                Json::Arr(
                    outcome
                        .stages
                        .iter()
                        .map(|s| Json::Arr(vec![
                            Json::Int(s.start as u64),
                            Json::Int(s.end as u64),
                            Json::Int(s.cores),
                            Json::Str(
                                match s.core_type {
                                    CoreType::Big => "B",
                                    CoreType::Little => "L",
                                }
                                .to_string()
                            ),
                        ]))
                        .collect()
                )
                .render_compact(),
                outcome.used_big,
                outcome.used_little,
            )
        );
        // The energy figure appears if and only if the outcome carries one.
        let energized = outcome.with_energy_milliwatts(4321);
        let line = render_response(&ScheduleResponse {
            id: 3,
            result: Ok(energized),
        });
        assert!(line.contains("\"energy_mw\":4321"));
    }
}
