//! The corked write path: vectored frame writes and reusable frame
//! buffers.
//!
//! ## Why vectored writes
//!
//! The response pump used to push every frame through its own
//! `write_all` — one syscall per line, serialized under the connection's
//! writer mutex. A pipelined burst of N cache hits therefore paid N
//! syscalls and N lock round-trips on the hottest path in the server.
//! [`write_frames`] instead hands the kernel a whole batch of frames as
//! one `writev`: the pump corks every response already queued (bounded
//! by [`CORK_MAX`]), writes them with a single call, and only then
//! releases the window slots. Quiescence bounds the added latency: the
//! cork only holds frames that were *already waiting* — the moment the
//! reply queue runs dry the batch is flushed, so an isolated response
//! still leaves in one write.
//!
//! ## Short writes
//!
//! `writev` may stop mid-frame (socket buffer full). The resume loop in
//! [`write_frames`] tracks a `(frame, offset)` cursor and rebuilds the
//! slice table from the cursor after every partial write, so frames are
//! never torn, reordered or duplicated no matter how adversarially the
//! kernel splits them — pinned by the short-writer shim tests below and
//! the end-to-end interleave test in `tests/wire_order.rs`.
//!
//! ## Zero steady-state allocations
//!
//! The slice table lives on the stack (a fixed [`CORK_MAX`]-wide array;
//! empty tail slices are legal and contribute nothing), and frame
//! buffers recycle through [`BufPool`], so a warm connection frames and
//! writes responses without touching the heap — pinned by the
//! counting-allocator gate in `tests/wire_alloc.rs`.

use std::io::{self, IoSlice, Write};

/// Most frames one vectored write may carry. Also the cork bound: a
/// pump drains at most this many queued responses per syscall. Safely
/// under Linux's `IOV_MAX` (1024) and wide enough that a pipelined
/// burst amortizes to a fraction of a syscall per response.
pub const CORK_MAX: usize = 64;

/// Writes every frame in `frames`, in order, completely.
///
/// One `write_vectored` per [`CORK_MAX`] frames in the common case; on a
/// short write the cursor advances exactly as many bytes as the kernel
/// took and the remainder is retried from the tear point. Interrupted
/// writes are retried; a zero-length write with bytes outstanding is
/// reported as [`io::ErrorKind::WriteZero`].
pub fn write_frames<W: Write + ?Sized>(w: &mut W, frames: &[impl AsRef<[u8]>]) -> io::Result<()> {
    let mut idx = 0; // first frame not yet fully written
    let mut off = 0; // bytes of `frames[idx]` already written
    while idx < frames.len() {
        let chunk_end = (idx + CORK_MAX).min(frames.len());
        let mut remaining = 0usize;
        let slices: [IoSlice; CORK_MAX] = std::array::from_fn(|i| {
            let j = idx + i;
            if j < chunk_end {
                let frame = frames[j].as_ref();
                let part = if j == idx { &frame[off..] } else { frame };
                remaining += part.len();
                IoSlice::new(part)
            } else {
                IoSlice::new(&[])
            }
        });
        if remaining == 0 {
            // Nothing but empty frames in this chunk.
            idx = chunk_end;
            off = 0;
            continue;
        }
        let written = match w.write_vectored(&slices) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::WriteZero,
                    "vectored write made no progress",
                ))
            }
            Ok(n) => n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        // Advance the cursor over exactly `written` bytes.
        let mut n = written;
        while n > 0 {
            let avail = frames[idx].as_ref().len() - off;
            if n >= avail {
                n -= avail;
                idx += 1;
                off = 0;
            } else {
                off += n;
                n = 0;
            }
        }
    }
    Ok(())
}

/// A free-list of reusable frame buffers.
///
/// The pump rents a buffer per response, renders into it, writes the
/// cork, and returns every buffer — so after the first few corks the
/// per-response wire path performs no heap allocation at all. The pool
/// is bounded: it never retains more than `cap` buffers, so a one-off
/// burst cannot pin memory forever.
pub struct BufPool {
    free: Vec<String>,
    cap: usize,
}

impl BufPool {
    /// A pool retaining at most `cap` idle buffers.
    #[must_use]
    pub fn new(cap: usize) -> Self {
        BufPool {
            free: Vec::with_capacity(cap),
            cap,
        }
    }

    /// Rents a cleared buffer (recycled when available).
    #[must_use]
    pub fn rent(&mut self) -> String {
        let mut buf = self.free.pop().unwrap_or_default();
        buf.clear();
        buf
    }

    /// Returns a buffer to the free list (dropped when the pool is
    /// full, so capacity stays bounded).
    pub fn give(&mut self, buf: String) {
        if self.free.len() < self.cap {
            self.free.push(buf);
        }
    }

    /// Idle buffers currently pooled (tests).
    #[must_use]
    pub fn idle(&self) -> usize {
        self.free.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A writer that accepts at most `limit` bytes per call and only
    /// ever consumes the *first* non-empty slice of a vectored write —
    /// the most adversarial legal short-write behavior.
    struct ShortWriter {
        out: Vec<u8>,
        limit: usize,
        calls: usize,
    }

    impl Write for ShortWriter {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.calls += 1;
            let n = buf.len().min(self.limit).max(usize::from(!buf.is_empty()));
            let n = n.min(buf.len());
            self.out.extend_from_slice(&buf[..n]);
            Ok(n)
        }

        fn write_vectored(&mut self, bufs: &[IoSlice]) -> io::Result<usize> {
            for b in bufs {
                if !b.is_empty() {
                    return self.write(b);
                }
            }
            Ok(0)
        }

        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn frames_survive_single_byte_writes() {
        let frames: Vec<Vec<u8>> = (0..10)
            .map(|i| format!("{{\"id\":{i},\"payload\":\"abcdef\"}}\n").into_bytes())
            .collect();
        let mut w = ShortWriter {
            out: Vec::new(),
            limit: 1,
            calls: 0,
        };
        write_frames(&mut w, &frames).expect("writes complete");
        let expect: Vec<u8> = frames.concat();
        assert_eq!(w.out, expect, "byte-exact, in order, no tears");
        assert_eq!(w.calls, expect.len(), "one byte per call");
    }

    #[test]
    fn more_frames_than_one_chunk_still_write_in_order() {
        let frames: Vec<Vec<u8>> = (0..CORK_MAX * 3 + 7)
            .map(|i| format!("frame-{i}\n").into_bytes())
            .collect();
        let mut out = Vec::new();
        write_frames(&mut out, &frames).expect("writes complete");
        assert_eq!(out, frames.concat());
    }

    #[test]
    fn empty_frames_are_skipped_not_looped() {
        let frames: Vec<Vec<u8>> = vec![b"a\n".to_vec(), Vec::new(), b"b\n".to_vec(), Vec::new()];
        let mut out = Vec::new();
        write_frames(&mut out, &frames).expect("writes complete");
        assert_eq!(out, b"a\nb\n");
    }

    #[test]
    fn write_zero_is_an_error_not_a_spin() {
        struct Zero;
        impl Write for Zero {
            fn write(&mut self, _buf: &[u8]) -> io::Result<usize> {
                Ok(0)
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let err = write_frames(&mut Zero, &[b"frame\n".as_slice()]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::WriteZero);
    }

    #[test]
    fn pool_recycles_and_stays_bounded() {
        let mut pool = BufPool::new(2);
        let mut a = pool.rent();
        a.push_str("dirty");
        let b = pool.rent();
        pool.give(b);
        pool.give(a);
        pool.give(String::from("overflow"));
        assert_eq!(pool.idle(), 2, "cap bounds retained buffers");
        let rented = pool.rent();
        assert!(rented.is_empty(), "rented buffers come back cleared");
        assert!(rented.capacity() > 0, "and recycled, not reallocated");
    }
}
