//! # amp-net — wire-level RPC front end for the scheduling service
//!
//! A dependency-light TCP server that puts the sharded scheduling
//! engine ([`amp_service::EngineShards`]) on a socket, plus the seeded
//! load generator that audits it. Built entirely on `std::net` and
//! bounded threads — no async runtime — with the workspace's canonical
//! JSON codec ([`amp_core::json`]) as the wire format.
//!
//! The crate divides along the request path:
//!
//! * [`proto`] — the wire protocol: newline-delimited canonical JSON
//!   frames, request/response/error rendering and parsing. One line is
//!   one frame; the codec guarantees a rendered value never contains a
//!   raw newline.
//! * [`admission`] — who gets in and how fast: per-tenant token-bucket
//!   quotas (typed `QUOTA_EXCEEDED`, fair across tenants) and bounded
//!   per-connection in-flight windows (TCP backpressure, never a
//!   disconnect).
//! * [`server`] — the listener and per-connection reader/pump threads:
//!   greedy pipeline batching into [`amp_service::EngineShards`], typed
//!   rejections for every refused frame, and drain-then-close shutdown
//!   that answers everything it accepted.
//! * [`metrics`] — wire-layer counters (connections, frames, admission
//!   outcomes), exported through the `{"op":"status"}` control frame
//!   next to the engine fleet's own per-shard metrics and cache
//!   counters.
//! * [`wire`] — the corked write path: a vectored frame writer with a
//!   short-write resume loop (one `writev` per response burst instead
//!   of one syscall per line) and the bounded buffer pool that keeps
//!   the steady-state framing path allocation-free.
//! * [`registry`] — the sharded slab connection registry: conn-id-keyed
//!   slots across lock shards (no global accept/close bottleneck) plus
//!   JoinHandle reaping so a long-lived server retains a bounded number
//!   of finished handles.
//! * [`loadgen`] — the seeded socket load generator: M pipelined
//!   connections, id-partitioned audit proving zero lost, duplicated or
//!   misrouted responses, and a latency/throughput report, with
//!   fixed-count, sustained `--duration` (open-loop paced) and
//!   `--scaling` (latency-vs-connections sweep) modes. The `net_loadgen`
//!   binary wraps it for the CLI and the CI smoke gate.

pub mod admission;
pub mod loadgen;
pub mod metrics;
pub mod proto;
pub mod registry;
pub mod server;
pub mod wire;

pub use admission::{InflightWindow, QuotaConfig, TenantQuotas};
pub use loadgen::{LoadConfig, LoadReport, ScalingPoint, ScalingReport};
pub use metrics::{NetMetrics, NetSnapshot};
pub use proto::{ClientResponse, WireError, WireRequest};
pub use registry::ConnRegistry;
pub use server::{Server, ServerConfig};
pub use wire::{write_frames, BufPool, CORK_MAX};
