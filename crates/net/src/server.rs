//! The socket server: a `std::net` TCP listener, one reader and one
//! response-pump thread per connection, and a sharded engine behind an
//! admission layer.
//!
//! ## Threading model (and why not an async runtime)
//!
//! The server is deliberately built on blocking `std::net` sockets and
//! plain threads: the engine below it is a thread-per-core worker pool
//! with *bounded queues*, so the concurrency the server must sustain is
//! bounded by design — `max_connections` × (reader + pump) threads is a
//! few hundred OS threads at the configured limits, well inside what
//! the OS schedules efficiently, and every instrument in the repo
//! (panic isolation, drain-then-join shutdown, scoped batch fan-out)
//! composes with plain threads without an executor in the middle. An
//! async runtime would buy connection counts this service cannot use
//! (the engine saturates long before 10k sockets) at the price of a
//! second scheduler and a dependency the build must vendor. See
//! DESIGN.md for the full decision record.
//!
//! ## Connection life cycle
//!
//! The *reader* thread owns framing (newline-delimited canonical JSON),
//! parse/quota admission, and batching: it greedily drains every
//! complete frame already buffered before touching the socket again, so
//! a pipelined burst becomes one [`EngineShards::try_submit_batch`]
//! hand-off. The *pump* thread drains the connection's reply channel
//! and writes response frames. Both write whole lines under one mutex,
//! so frames never interleave mid-line. A full in-flight window parks
//! the reader — TCP backpressure, not an error; see
//! [`admission`](crate::admission).
//!
//! ## Shutdown
//!
//! `shutdown` is drain-then-close: stop accepting, half-close every
//! connection's read side (readers wind down after their current
//! batch), drain the engine shards (every accepted request reaches its
//! reply channel), then join the pumps — which exit only after writing
//! out everything the engine produced. No accepted request is dropped.

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use amp_service::{EngineConfig, EngineShards, ScheduleRequest, ServiceError};
use crossbeam::channel::{self, Sender};
use parking_lot::Mutex;

use crate::admission::{InflightWindow, QuotaConfig, TenantQuotas};
use crate::metrics::{NetMetrics, NetSnapshot};
use crate::proto::{self, WireRequest};

/// Sizing and limits of a [`Server`].
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address; port 0 picks a free port (see
    /// [`Server::local_addr`]).
    pub addr: String,
    /// Engine shards (≥ 1); requests route by instance fingerprint.
    pub shards: usize,
    /// Per-shard engine sizing.
    pub per_shard: EngineConfig,
    /// Connections served concurrently; beyond it, new connections get
    /// a typed error frame and a clean close.
    pub max_connections: usize,
    /// Longest accepted frame in bytes; longer lines are answered with
    /// `FRAME_TOO_LARGE` and discarded (the connection survives).
    pub max_line_bytes: usize,
    /// Longest accepted task chain per request.
    pub max_tasks: usize,
    /// Per-connection in-flight window (backpressure bound).
    pub window: usize,
    /// Per-tenant token-bucket quota; `None` disables quotas.
    pub quota: Option<QuotaConfig>,
    /// Most requests per engine hand-off.
    pub batch_max: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        let cores = thread::available_parallelism().map_or(4, usize::from);
        let shards = 4;
        let workers = (cores / shards).max(1);
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            shards,
            per_shard: EngineConfig {
                workers,
                racer_threads: workers * 2,
                queue_depth: 256,
                cache_capacity: 1024,
                cache_shards: 8,
                ..EngineConfig::default()
            },
            max_connections: 64,
            max_line_bytes: 64 * 1024,
            max_tasks: 512,
            window: 64,
            quota: None,
            batch_max: 32,
        }
    }
}

/// State shared by the acceptor and every connection thread.
struct Shared {
    shards: EngineShards,
    net: NetMetrics,
    quotas: TenantQuotas,
    cfg: ServerConfig,
    closing: AtomicBool,
    /// Live connections, for read-side half-close during drain.
    conns: Mutex<std::collections::HashMap<u64, TcpStream>>,
    /// Every reader/pump handle ever spawned, joined at shutdown.
    threads: Mutex<Vec<JoinHandle<()>>>,
    next_conn: AtomicU64,
}

/// One line-oriented socket writer; whole frames only, shared between
/// the reader (direct rejections, control responses) and the pump.
struct ConnWriter {
    stream: TcpStream,
    /// Set on the first write failure; later writes become no-ops so a
    /// dead client cannot wedge the drain path.
    broken: bool,
}

impl ConnWriter {
    fn write_line(&mut self, line: &str) {
        if self.broken {
            return;
        }
        let mut framed = String::with_capacity(line.len() + 1);
        framed.push_str(line);
        framed.push('\n');
        if self.stream.write_all(framed.as_bytes()).is_err() {
            self.broken = true;
        }
    }
}

/// A running socket front end.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds the listener and starts the acceptor thread.
    pub fn start(cfg: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            shards: EngineShards::start(cfg.shards, &cfg.per_shard),
            net: NetMetrics::new(),
            quotas: TenantQuotas::new(cfg.quota),
            cfg,
            closing: AtomicBool::new(false),
            conns: Mutex::new(std::collections::HashMap::new()),
            threads: Mutex::new(Vec::new()),
            next_conn: AtomicU64::new(0),
        });
        let acceptor_shared = Arc::clone(&shared);
        let acceptor = thread::Builder::new()
            .name("amp-net-acceptor".to_string())
            .spawn(move || accept_loop(&listener, &acceptor_shared))?;
        Ok(Server {
            addr,
            shared,
            acceptor: Some(acceptor),
        })
    }

    /// The bound address (resolves port 0).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Wire-layer counters.
    #[must_use]
    pub fn net_snapshot(&self) -> NetSnapshot {
        self.shared.net.snapshot()
    }

    /// The full status snapshot served by the `{"op":"status"}` control
    /// frame: wire counters plus the sharded fleet status (aggregate
    /// and per-shard service metrics and cache hit/miss counters).
    #[must_use]
    pub fn status_json(&self) -> String {
        status_json(&self.shared)
    }

    /// Direct access to the engine fleet (tests, embedders).
    #[must_use]
    pub fn shards(&self) -> &EngineShards {
        &self.shared.shards
    }

    /// Graceful drain-then-close shutdown; dropping does the same.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        let Some(acceptor) = self.acceptor.take() else {
            return;
        };
        self.shared.closing.store(true, Ordering::SeqCst);
        // Wake the acceptor out of `accept` with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        let _ = acceptor.join();
        // Half-close every connection: readers see EOF after finishing
        // the frames already buffered, so admissions stop per-socket.
        for stream in self.shared.conns.lock().values() {
            let _ = stream.shutdown(Shutdown::Read);
        }
        // Fleet drain: every accepted request reaches its reply channel.
        self.shared.shards.drain();
        // Pumps write out the drained responses, then exit when the
        // last reply sender (reader's, or a queued job's) drops.
        let handles = std::mem::take(&mut *self.shared.threads.lock());
        for handle in handles {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// The full status snapshot (shared by the control frame and
/// [`Server::status_json`]).
fn status_json(shared: &Shared) -> String {
    format!(
        "{{\"net\":{},\"fleet\":{}}}",
        shared.net.snapshot().to_json(),
        shared.shards.status_json()
    )
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shared.closing.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if shared.closing.load(Ordering::SeqCst) {
            return;
        }
        if shared.conns.lock().len() >= shared.cfg.max_connections {
            shared.net.connection_refused();
            let mut writer = ConnWriter {
                stream,
                broken: false,
            };
            writer.write_line(&proto::render_error(
                None,
                "TOO_MANY_CONNECTIONS",
                &format!(
                    "server serves at most {} concurrent connections",
                    shared.cfg.max_connections
                ),
            ));
            continue;
        }
        let conn_id = shared.next_conn.fetch_add(1, Ordering::Relaxed);
        let conn_shared = Arc::clone(shared);
        let spawned = thread::Builder::new()
            .name(format!("amp-net-conn-{conn_id}"))
            .spawn(move || serve_connection(&conn_shared, stream, conn_id));
        match spawned {
            Ok(handle) => shared.threads.lock().push(handle),
            Err(_) => {
                // Spawn failure degrades to a refused connection.
                shared.net.connection_refused();
            }
        }
    }
}

/// Per-connection context threaded through the framing helpers.
struct Conn<'a> {
    shared: &'a Arc<Shared>,
    writer: &'a Arc<Mutex<ConnWriter>>,
    window: &'a Arc<InflightWindow>,
    reply_tx: &'a Sender<amp_service::ScheduleResponse>,
}

impl Conn<'_> {
    /// Writes a frame produced by the reader itself (rejections,
    /// control responses).
    fn write_direct(&self, line: &str) {
        self.writer.lock().write_line(line);
        self.shared.net.frame_out();
    }

    /// Hands the pending batch to the engine; bounced members are
    /// answered with their typed error right here.
    fn flush_batch(&self, batch: &mut Vec<ScheduleRequest>) {
        if batch.is_empty() {
            return;
        }
        let n = batch.len() as u64;
        // Admission is counted *before* the hand-off: the engine can
        // answer a member the instant it is enqueued, and the response
        // pump's decrement must never beat this increment.
        self.shared.net.requests_admitted(n);
        let submission = self
            .shared
            .shards
            .try_submit_batch(std::mem::take(batch), self.reply_tx);
        self.shared.net.batch_submitted(n);
        if !submission.rejected.is_empty() {
            self.shared
                .net
                .requests_bounced(submission.rejected.len() as u64);
        }
        for (request, error) in submission.rejected {
            // The slot acquired for this member frees now; accepted
            // members free theirs when the pump writes the response.
            self.window.release();
            match error {
                ServiceError::Overloaded => self.shared.net.rejected_overload(),
                ServiceError::ShuttingDown => self.shared.net.rejected_shutdown(),
                _ => {}
            }
            self.write_direct(&proto::render_error(
                Some(request.id),
                error.code(),
                &error.to_string(),
            ));
        }
    }

    /// Parses and admits one frame. Pushes admitted requests onto
    /// `batch`; everything else is answered immediately.
    fn handle_line(&self, line: &[u8], batch: &mut Vec<ScheduleRequest>) {
        let text = match std::str::from_utf8(line) {
            Ok(t) => t.trim_end_matches('\r'),
            Err(_) => {
                self.shared.net.frame_in();
                self.shared.net.parse_error();
                self.write_direct(&proto::render_error(
                    None,
                    "PARSE_ERROR",
                    "frame is not valid UTF-8",
                ));
                return;
            }
        };
        if text.trim().is_empty() {
            // Blank lines are tolerated (interactive clients, netcat).
            return;
        }
        self.shared.net.frame_in();
        match proto::parse_request(text, self.shared.cfg.max_tasks) {
            Err((id, err)) => {
                self.shared.net.parse_error();
                self.write_direct(&proto::render_error(id, err.code, &err.message));
            }
            Ok(WireRequest::Ping) => {
                self.write_direct("{\"ok\":\"pong\",\"op\":\"ping\"}");
            }
            Ok(WireRequest::Status) => {
                let status = status_json(self.shared);
                self.write_direct(&format!("{{\"ok\":{status},\"op\":\"status\"}}"));
            }
            Ok(WireRequest::Schedule { request, tenant }) => {
                if !self.shared.quotas.admit(&tenant, Instant::now()) {
                    self.shared.net.rejected_quota();
                    self.write_direct(&proto::render_error(
                        Some(request.id),
                        "QUOTA_EXCEEDED",
                        &format!("tenant {tenant:?} is over its request quota"),
                    ));
                    return;
                }
                if !self.window.try_acquire() {
                    // Window full: ship what we have so responses keep
                    // flowing, then park until a slot frees. This stall
                    // is the backpressure — the socket is simply not
                    // read while we wait.
                    self.flush_batch(batch);
                    self.window.acquire();
                }
                batch.push(request);
            }
        }
    }
}

fn serve_connection(shared: &Arc<Shared>, stream: TcpStream, conn_id: u64) {
    shared.net.connection_opened();
    let _ = stream.set_nodelay(true);
    // A dead-slow client blocks the pump at most this long per frame;
    // after that the writer goes `broken` and drains become no-ops.
    let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
    let Ok(write_half) = stream.try_clone() else {
        shared.net.connection_closed();
        return;
    };
    if let Ok(registered) = stream.try_clone() {
        shared.conns.lock().insert(conn_id, registered);
    }
    let writer = Arc::new(Mutex::new(ConnWriter {
        stream: write_half,
        broken: false,
    }));
    let window = Arc::new(InflightWindow::new(shared.cfg.window));
    let (reply_tx, reply_rx) = channel::unbounded();
    // The response pump: engine replies → wire frames, in arrival order.
    let pump_writer = Arc::clone(&writer);
    let pump_window = Arc::clone(&window);
    let pump_shared = Arc::clone(shared);
    let pump = thread::Builder::new()
        .name(format!("amp-net-pump-{conn_id}"))
        .spawn(move || {
            while let Ok(response) = reply_rx.recv() {
                let line = proto::render_response(&response);
                pump_writer.lock().write_line(&line);
                pump_shared.net.response_out();
                pump_window.release();
            }
        });
    match pump {
        Ok(handle) => shared.threads.lock().push(handle),
        Err(_) => {
            // Without a pump no response can ever leave; refuse the
            // connection instead of accepting requests into a void.
            shared.conns.lock().remove(&conn_id);
            shared.net.connection_closed();
            return;
        }
    }

    let conn = Conn {
        shared,
        writer: &writer,
        window: &window,
        reply_tx: &reply_tx,
    };
    let mut stream = stream;
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 16 * 1024];
    let mut batch: Vec<ScheduleRequest> = Vec::new();
    // When a line overruns `max_line_bytes` we answer once, then
    // discard bytes until its terminating newline.
    let mut discarding = false;
    loop {
        // Greedy drain: consume every complete frame already buffered
        // before the next syscall — this is what turns a pipelined
        // burst into one batch.
        while let Some(pos) = buf.iter().position(|&b| b == b'\n') {
            let line: Vec<u8> = buf.drain(..=pos).collect();
            if discarding {
                discarding = false;
                continue;
            }
            // The size limit applies to complete lines too, not just
            // lines still accumulating — whether an oversized frame
            // arrived in one read or many must not change its answer.
            if line.len() - 1 > shared.cfg.max_line_bytes {
                shared.net.oversized_frame();
                conn.write_direct(&proto::render_error(
                    None,
                    "FRAME_TOO_LARGE",
                    &format!(
                        "frame exceeds {} bytes; it was discarded",
                        shared.cfg.max_line_bytes
                    ),
                ));
                continue;
            }
            conn.handle_line(&line[..line.len() - 1], &mut batch);
            if batch.len() >= shared.cfg.batch_max {
                conn.flush_batch(&mut batch);
            }
        }
        if !discarding && buf.len() > shared.cfg.max_line_bytes {
            shared.net.oversized_frame();
            conn.write_direct(&proto::render_error(
                None,
                "FRAME_TOO_LARGE",
                &format!(
                    "frame exceeds {} bytes; it was discarded",
                    shared.cfg.max_line_bytes
                ),
            ));
            buf.clear();
            discarding = true;
        } else if discarding {
            buf.clear();
        }
        // Nothing more is buffered: ship the batch before blocking.
        conn.flush_batch(&mut batch);
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => break,
        }
    }
    conn.flush_batch(&mut batch);
    // Dropping the reader's sender lets the pump exit once the engine
    // has answered everything this connection submitted.
    drop(reply_tx);
    shared.conns.lock().remove(&conn_id);
    shared.net.connection_closed();
}
