//! The socket server: a `std::net` TCP listener, one reader and one
//! response-pump thread per connection, and a sharded engine behind an
//! admission layer.
//!
//! ## Threading model (and why not an async runtime)
//!
//! The server is deliberately built on blocking `std::net` sockets and
//! plain threads: the engine below it is a thread-per-core worker pool
//! with *bounded queues*, so the concurrency the server must sustain is
//! bounded by design — `max_connections` × (reader + pump) threads is a
//! few hundred OS threads at the configured limits, well inside what
//! the OS schedules efficiently, and every instrument in the repo
//! (panic isolation, drain-then-join shutdown, scoped batch fan-out)
//! composes with plain threads without an executor in the middle. An
//! async runtime would buy connection counts this service cannot use
//! (the engine saturates long before 10k sockets) at the price of a
//! second scheduler and a dependency the build must vendor. See
//! DESIGN.md for the full decision record.
//!
//! ## Connection life cycle
//!
//! The *reader* thread owns framing (newline-delimited canonical JSON),
//! parse/quota admission, and batching: it greedily drains every
//! complete frame already buffered before touching the socket again —
//! scanning lines *in place* and compacting the read buffer once per
//! read, so framing allocates nothing in steady state — and a pipelined
//! burst becomes one [`EngineShards::try_submit_batch`] hand-off. The
//! *pump* thread drains the connection's reply channel with a **corked
//! vectored write**: every response already queued (up to
//! [`CORK_MAX`]) is rendered into pooled buffers and shipped in one
//! `writev`, so a burst of N responses costs one syscall and one writer
//! lock instead of N of each. The cork only holds frames that were
//! already waiting — the moment the queue runs dry the batch flushes,
//! so an isolated response still leaves immediately (the quiescence
//! bound; see DESIGN.md). Both sides write whole frames under one
//! mutex, so frames never interleave mid-line. A full in-flight window
//! parks the reader — TCP backpressure, not an error; see
//! [`admission`](crate::admission).
//!
//! Connections live in the sharded slab [`ConnRegistry`]; finished
//! reader handles are buried there and reaped opportunistically, so a
//! long-running server retains a bounded number of handles (see
//! [`registry`](crate::registry)).
//!
//! ## Shutdown
//!
//! `shutdown` is drain-then-close: stop accepting, half-close every
//! connection's read side (readers wind down after their current
//! batch), drain the engine shards (every accepted request reaches its
//! reply channel), then join the readers — each of which joins its own
//! pump, which exits only after writing out everything the engine
//! produced. No accepted request is dropped.

use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use amp_service::{EngineConfig, EngineShards, ScheduleRequest, ServiceError};
use crossbeam::channel::{self, Sender};
use parking_lot::Mutex;

use crate::admission::{InflightWindow, QuotaConfig, TenantQuotas};
use crate::metrics::{NetMetrics, NetSnapshot};
use crate::proto::{self, WireRequest};
use crate::registry::{ConnRegistry, ConnToken};
use crate::wire::{self, BufPool, CORK_MAX};

/// Sizing and limits of a [`Server`].
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address; port 0 picks a free port (see
    /// [`Server::local_addr`]).
    pub addr: String,
    /// Engine shards (≥ 1); requests route by instance fingerprint.
    pub shards: usize,
    /// Per-shard engine sizing.
    pub per_shard: EngineConfig,
    /// Connections served concurrently; beyond it, new connections get
    /// a typed error frame and a clean close.
    pub max_connections: usize,
    /// Longest accepted frame in bytes; longer lines are answered with
    /// `FRAME_TOO_LARGE` and discarded (the connection survives).
    pub max_line_bytes: usize,
    /// Longest accepted task chain per request.
    pub max_tasks: usize,
    /// Per-connection in-flight window (backpressure bound).
    pub window: usize,
    /// Per-tenant token-bucket quota; `None` disables quotas.
    pub quota: Option<QuotaConfig>,
    /// Most requests per engine hand-off.
    pub batch_max: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        let cores = thread::available_parallelism().map_or(4, usize::from);
        let shards = 4;
        let workers = (cores / shards).max(1);
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            shards,
            per_shard: EngineConfig {
                workers,
                racer_threads: workers * 2,
                queue_depth: 256,
                cache_capacity: 1024,
                cache_shards: 8,
                ..EngineConfig::default()
            },
            max_connections: 64,
            max_line_bytes: 64 * 1024,
            max_tasks: 512,
            window: 64,
            quota: None,
            batch_max: 32,
        }
    }
}

/// State shared by the acceptor and every connection thread.
struct Shared {
    shards: EngineShards,
    net: NetMetrics,
    quotas: TenantQuotas,
    cfg: ServerConfig,
    closing: AtomicBool,
    /// Live connections (sharded slab) + the JoinHandle graveyard.
    registry: ConnRegistry,
}

/// One frame-oriented socket writer; whole frames only, shared between
/// the reader (direct rejections, control responses) and the pump.
struct ConnWriter {
    stream: TcpStream,
    /// Set on the first write failure; later writes become no-ops so a
    /// dead client cannot wedge the drain path.
    broken: bool,
}

impl ConnWriter {
    /// Writes one frame (no trailing newline in `line`); the newline
    /// rides in the same vectored write, so nothing is copied.
    fn write_line(&mut self, line: &str) {
        if self.broken {
            return;
        }
        if wire::write_frames(&mut self.stream, &[line.as_bytes(), b"\n"]).is_err() {
            self.broken = true;
        }
    }

    /// Writes a cork of already-newline-terminated frames in one
    /// vectored write.
    fn write_cork(&mut self, frames: &[String]) {
        if self.broken {
            return;
        }
        if wire::write_frames(&mut self.stream, frames).is_err() {
            self.broken = true;
        }
    }
}

/// A running socket front end.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<thread::JoinHandle<()>>,
}

impl Server {
    /// Binds the listener and starts the acceptor thread.
    pub fn start(cfg: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            shards: EngineShards::start(cfg.shards, &cfg.per_shard),
            net: NetMetrics::new(),
            quotas: TenantQuotas::new(cfg.quota),
            registry: ConnRegistry::new(cfg.max_connections),
            cfg,
            closing: AtomicBool::new(false),
        });
        let acceptor_shared = Arc::clone(&shared);
        let acceptor = thread::Builder::new()
            .name("amp-net-acceptor".to_string())
            .spawn(move || accept_loop(&listener, &acceptor_shared))?;
        Ok(Server {
            addr,
            shared,
            acceptor: Some(acceptor),
        })
    }

    /// The bound address (resolves port 0).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Wire-layer counters.
    #[must_use]
    pub fn net_snapshot(&self) -> NetSnapshot {
        self.shared.net.snapshot()
    }

    /// The full status snapshot served by the `{"op":"status"}` control
    /// frame: wire counters plus the sharded fleet status (aggregate
    /// and per-shard service metrics and cache hit/miss counters).
    #[must_use]
    pub fn status_json(&self) -> String {
        status_json(&self.shared)
    }

    /// Direct access to the engine fleet (tests, embedders).
    #[must_use]
    pub fn shards(&self) -> &EngineShards {
        &self.shared.shards
    }

    /// JoinHandles currently retained for connection threads (buried
    /// awaiting reap + attached to live connections). The handle-leak
    /// regression test asserts this stays bounded as connections churn.
    #[must_use]
    pub fn retained_reader_handles(&self) -> usize {
        self.shared.registry.retained_handles()
    }

    /// Graceful drain-then-close shutdown; dropping does the same.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        let Some(acceptor) = self.acceptor.take() else {
            return;
        };
        self.shared.closing.store(true, Ordering::SeqCst);
        // Wake the acceptor out of `accept` with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        let _ = acceptor.join();
        // Half-close every connection: readers see EOF after finishing
        // the frames already buffered, so admissions stop per-socket.
        self.shared.registry.half_close_all();
        // Fleet drain: every accepted request reaches its reply channel.
        self.shared.shards.drain();
        // Readers join their own pumps (which write out the drained
        // responses) before exiting; joining the readers joins it all.
        for handle in self.shared.registry.take_reader_handles() {
            let _ = handle.join();
        }
        // Readers that closed concurrently buried their own handles.
        self.shared.registry.reap();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// The full status snapshot (shared by the control frame and
/// [`Server::status_json`]).
fn status_json(shared: &Shared) -> String {
    format!(
        "{{\"net\":{},\"fleet\":{}}}",
        shared.net.snapshot().to_json(),
        shared.shards.status_json()
    )
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shared.closing.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if shared.closing.load(Ordering::SeqCst) {
            return;
        }
        // Opportunistic reap: join readers that finished since the last
        // accept, so retained handles track churn, not lifetime.
        shared.registry.reap();
        let Ok(registered) = stream.try_clone() else {
            shared.net.connection_refused();
            continue;
        };
        let token = match shared.registry.register(registered) {
            Ok(token) => token,
            Err(_stream_back) => {
                shared.net.connection_refused();
                let mut writer = ConnWriter {
                    stream,
                    broken: false,
                };
                writer.write_line(&proto::render_error(
                    None,
                    "TOO_MANY_CONNECTIONS",
                    &format!(
                        "server serves at most {} concurrent connections",
                        shared.cfg.max_connections
                    ),
                ));
                continue;
            }
        };
        let conn_shared = Arc::clone(shared);
        let reader_token = token.clone();
        let spawned = thread::Builder::new()
            .name(format!("amp-net-conn-{}", token.conn_id))
            .spawn(move || serve_connection(&conn_shared, stream, reader_token));
        match spawned {
            Ok(handle) => {
                // If the reader already finished and deregistered, the
                // handle comes back — bury it for the next reap.
                if let Some(handle) = shared.registry.attach_reader(&token, handle) {
                    shared.registry.bury(handle);
                }
            }
            Err(_) => {
                // Spawn failure degrades to a refused connection.
                shared.registry.deregister(&token);
                shared.net.connection_refused();
            }
        }
    }
}

/// Per-connection context threaded through the framing helpers.
struct Conn<'a> {
    shared: &'a Arc<Shared>,
    writer: &'a Arc<Mutex<ConnWriter>>,
    window: &'a Arc<InflightWindow>,
    reply_tx: &'a Sender<amp_service::ScheduleResponse>,
    /// Metrics stripe key (the connection id).
    stripe: usize,
}

impl Conn<'_> {
    /// Writes a frame produced by the reader itself (rejections,
    /// control responses).
    fn write_direct(&self, line: &str) {
        self.writer.lock().write_line(line);
        self.shared.net.frame_out(self.stripe);
    }

    /// Hands the pending batch to the engine; bounced members are
    /// answered with their typed error right here.
    fn flush_batch(&self, batch: &mut Vec<ScheduleRequest>) {
        if batch.is_empty() {
            return;
        }
        let n = batch.len() as u64;
        // Admission is counted *before* the hand-off: the engine can
        // answer a member the instant it is enqueued, and the response
        // pump's decrement must never beat this increment.
        self.shared.net.requests_admitted(self.stripe, n);
        let submission = self
            .shared
            .shards
            .try_submit_batch(std::mem::take(batch), self.reply_tx);
        self.shared.net.batch_submitted(self.stripe, n);
        if !submission.rejected.is_empty() {
            self.shared
                .net
                .requests_bounced(self.stripe, submission.rejected.len() as u64);
        }
        for (request, error) in submission.rejected {
            // The slot acquired for this member frees now; accepted
            // members free theirs when the pump writes the response.
            self.window.release();
            match error {
                ServiceError::Overloaded => self.shared.net.rejected_overload(),
                ServiceError::ShuttingDown => self.shared.net.rejected_shutdown(),
                _ => {}
            }
            self.write_direct(&proto::render_error(
                Some(request.id),
                error.code(),
                &error.to_string(),
            ));
        }
    }

    /// Parses and admits one frame. Pushes admitted requests onto
    /// `batch`; everything else is answered immediately.
    fn handle_line(&self, line: &[u8], batch: &mut Vec<ScheduleRequest>) {
        let text = match std::str::from_utf8(line) {
            Ok(t) => t.trim_end_matches('\r'),
            Err(_) => {
                self.shared.net.frame_in(self.stripe);
                self.shared.net.parse_error();
                self.write_direct(&proto::render_error(
                    None,
                    "PARSE_ERROR",
                    "frame is not valid UTF-8",
                ));
                return;
            }
        };
        if text.trim().is_empty() {
            // Blank lines are tolerated (interactive clients, netcat).
            return;
        }
        self.shared.net.frame_in(self.stripe);
        match proto::parse_request(text, self.shared.cfg.max_tasks) {
            Err((id, err)) => {
                self.shared.net.parse_error();
                self.write_direct(&proto::render_error(id, err.code, &err.message));
            }
            Ok(WireRequest::Ping) => {
                self.write_direct("{\"ok\":\"pong\",\"op\":\"ping\"}");
            }
            Ok(WireRequest::Status) => {
                let status = status_json(self.shared);
                self.write_direct(&format!("{{\"ok\":{status},\"op\":\"status\"}}"));
            }
            Ok(WireRequest::Schedule { request, tenant }) => {
                if !self.shared.quotas.admit(&tenant, Instant::now()) {
                    self.shared.net.rejected_quota();
                    self.write_direct(&proto::render_error(
                        Some(request.id),
                        "QUOTA_EXCEEDED",
                        &format!("tenant {tenant:?} is over its request quota"),
                    ));
                    return;
                }
                if !self.window.try_acquire() {
                    // Window full: ship what we have so responses keep
                    // flowing, then park until a slot frees. This stall
                    // is the backpressure — the socket is simply not
                    // read while we wait.
                    self.flush_batch(batch);
                    self.window.acquire();
                }
                batch.push(request);
            }
        }
    }
}

/// The response pump: engine replies → wire frames, in arrival order,
/// corked. `recv` blocks for the first response; everything else
/// already queued (up to [`CORK_MAX`]) joins the same vectored write.
/// Quiescence is the flush: `try_recv` running dry ends the cork, so a
/// lone response is never held back waiting for company.
fn pump_loop(
    reply_rx: &channel::Receiver<amp_service::ScheduleResponse>,
    writer: &Mutex<ConnWriter>,
    window: &InflightWindow,
    shared: &Shared,
    stripe: usize,
) {
    let mut pool = BufPool::new(CORK_MAX);
    let mut cork: Vec<String> = Vec::with_capacity(CORK_MAX);
    while let Ok(first) = reply_rx.recv() {
        let mut buf = pool.rent();
        proto::render_response_line(&first, &mut buf);
        cork.push(buf);
        while cork.len() < CORK_MAX {
            match reply_rx.try_recv() {
                Ok(response) => {
                    let mut buf = pool.rent();
                    proto::render_response_line(&response, &mut buf);
                    cork.push(buf);
                }
                Err(_) => break,
            }
        }
        writer.lock().write_cork(&cork);
        shared.net.responses_out(stripe, cork.len() as u64);
        window.release_n(cork.len());
        for buf in cork.drain(..) {
            pool.give(buf);
        }
    }
}

fn serve_connection(shared: &Arc<Shared>, stream: TcpStream, token: ConnToken) {
    shared.net.connection_opened();
    let stripe = token.conn_id as usize;
    let _ = stream.set_nodelay(true);
    // A dead-slow client blocks the pump at most this long per frame;
    // after that the writer goes `broken` and drains become no-ops.
    let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
    let close = |shared: &Arc<Shared>, token: &ConnToken| {
        // Join other finished readers first, then bury our own handle
        // (never reap after burying self — that would be a self-join).
        shared.registry.reap();
        if let Some(own) = shared.registry.deregister(token) {
            shared.registry.bury(own);
        }
        shared.net.connection_closed();
    };
    let Ok(write_half) = stream.try_clone() else {
        close(shared, &token);
        return;
    };
    let writer = Arc::new(Mutex::new(ConnWriter {
        stream: write_half,
        broken: false,
    }));
    let window = Arc::new(InflightWindow::new(shared.cfg.window));
    let (reply_tx, reply_rx) = channel::unbounded();
    let pump_writer = Arc::clone(&writer);
    let pump_window = Arc::clone(&window);
    let pump_shared = Arc::clone(shared);
    let pump = thread::Builder::new()
        .name(format!("amp-net-pump-{}", token.conn_id))
        .spawn(move || {
            pump_loop(&reply_rx, &pump_writer, &pump_window, &pump_shared, stripe);
        });
    let Ok(pump) = pump else {
        // Without a pump no response can ever leave; refuse the
        // connection instead of accepting requests into a void.
        close(shared, &token);
        return;
    };

    let conn = Conn {
        shared,
        writer: &writer,
        window: &window,
        reply_tx: &reply_tx,
        stripe,
    };
    let mut stream = stream;
    let mut buf: Vec<u8> = Vec::with_capacity(16 * 1024);
    let mut chunk = [0u8; 16 * 1024];
    let mut batch: Vec<ScheduleRequest> = Vec::new();
    // When a line overruns `max_line_bytes` we answer once, then
    // discard bytes until its terminating newline.
    let mut discarding = false;
    loop {
        // Greedy drain: consume every complete frame already buffered
        // before the next syscall — this is what turns a pipelined
        // burst into one batch. Lines are scanned in place (no per-line
        // buffer) and the read buffer is compacted once per pass.
        let mut consumed = 0;
        while let Some(pos) = buf[consumed..].iter().position(|&b| b == b'\n') {
            let line = &buf[consumed..consumed + pos];
            if discarding {
                discarding = false;
            } else if line.len() > shared.cfg.max_line_bytes {
                // The size limit applies to complete lines too, not
                // just lines still accumulating — whether an oversized
                // frame arrived in one read or many must not change its
                // answer.
                shared.net.oversized_frame();
                conn.write_direct(&proto::render_error(
                    None,
                    "FRAME_TOO_LARGE",
                    &format!(
                        "frame exceeds {} bytes; it was discarded",
                        shared.cfg.max_line_bytes
                    ),
                ));
            } else {
                conn.handle_line(line, &mut batch);
                if batch.len() >= shared.cfg.batch_max {
                    conn.flush_batch(&mut batch);
                }
            }
            consumed += pos + 1;
        }
        if consumed > 0 {
            buf.copy_within(consumed.., 0);
            buf.truncate(buf.len() - consumed);
        }
        if !discarding && buf.len() > shared.cfg.max_line_bytes {
            shared.net.oversized_frame();
            conn.write_direct(&proto::render_error(
                None,
                "FRAME_TOO_LARGE",
                &format!(
                    "frame exceeds {} bytes; it was discarded",
                    shared.cfg.max_line_bytes
                ),
            ));
            buf.clear();
            discarding = true;
        } else if discarding {
            buf.clear();
        }
        // Nothing more is buffered: ship the batch before blocking.
        conn.flush_batch(&mut batch);
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => break,
        }
    }
    conn.flush_batch(&mut batch);
    // Dropping the reader's sender lets the pump exit once the engine
    // has answered everything this connection submitted; joining it
    // guarantees every response was written before we tear down.
    // (`conn` is not `Drop`, but it borrows `reply_tx`, so its lifetime
    // must end before the sender can be dropped.)
    #[allow(clippy::drop_non_drop)]
    drop(conn);
    drop(reply_tx);
    let _ = pump.join();
    close(shared, &token);
}
