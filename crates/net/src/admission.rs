//! Admission control for the socket front end: per-tenant token-bucket
//! quotas and per-connection in-flight windows.
//!
//! The two mechanisms answer different questions and fail differently:
//!
//! * **Quotas** bound each tenant's *rate*. Every tenant owns an
//!   independent token bucket, so one hog exhausts its own bucket and
//!   sees typed `QUOTA_EXCEEDED` rejections while every other tenant is
//!   untouched — that is the fairness property. A quota rejection is a
//!   *response*, never a dropped frame or a disconnect.
//! * **Windows** bound each connection's *in-flight concurrency*. A
//!   full window is not an error at all: the reader simply stops
//!   reading until a response frees a slot, which propagates as TCP
//!   backpressure to the client's socket. No frame is rejected, no
//!   connection is closed — the client just can't get further ahead
//!   than the server is willing to buffer.

use std::collections::HashMap;
use std::time::Instant;

use parking_lot::{Condvar, Mutex};

/// Token-bucket sizing for one tenant.
#[derive(Clone, Copy, Debug)]
pub struct QuotaConfig {
    /// Maximum burst: the bucket's capacity in requests.
    pub burst: u64,
    /// Sustained rate: tokens added per second.
    pub per_second: u64,
}

/// Milli-token resolution so sub-second refills accumulate exactly.
const MILLI: u64 = 1000;

/// One tenant's bucket.
struct Bucket {
    milli_tokens: u64,
    last_refill: Instant,
}

impl Bucket {
    fn try_take(&mut self, cfg: &QuotaConfig, now: Instant) -> bool {
        let cap = cfg.burst.saturating_mul(MILLI);
        let elapsed = now.saturating_duration_since(self.last_refill);
        // Milli-tokens refilled = rate (tokens/s) × elapsed ms: exact
        // integer arithmetic, no float drift. Sub-millisecond remainders
        // stay on the clock (`last_refill` only advances when something
        // was credited).
        let refill =
            u64::try_from(u128::from(cfg.per_second) * elapsed.as_millis()).unwrap_or(u64::MAX);
        if refill > 0 {
            self.milli_tokens = (self.milli_tokens + refill).min(cap);
            self.last_refill = now;
        }
        if self.milli_tokens >= MILLI {
            self.milli_tokens -= MILLI;
            true
        } else {
            false
        }
    }
}

/// Per-tenant token buckets. `None` config disables quotas entirely
/// (every request admitted).
pub struct TenantQuotas {
    cfg: Option<QuotaConfig>,
    buckets: Mutex<HashMap<String, Bucket>>,
}

impl TenantQuotas {
    /// Builds the quota table; `None` disables quota enforcement.
    #[must_use]
    pub fn new(cfg: Option<QuotaConfig>) -> Self {
        TenantQuotas {
            cfg,
            buckets: Mutex::new(HashMap::new()),
        }
    }

    /// Takes one token from `tenant`'s bucket. `true` admits; `false`
    /// means the tenant is over quota *right now* (the caller answers
    /// with `QUOTA_EXCEEDED`; other tenants' buckets are unaffected).
    pub fn admit(&self, tenant: &str, now: Instant) -> bool {
        let Some(cfg) = &self.cfg else {
            return true;
        };
        let mut buckets = self.buckets.lock();
        let bucket = buckets.entry(tenant.to_string()).or_insert_with(|| Bucket {
            // A new tenant starts with a full burst allowance.
            milli_tokens: cfg.burst.saturating_mul(MILLI),
            last_refill: now,
        });
        bucket.try_take(cfg, now)
    }
}

/// A bounded in-flight window: `acquire` blocks while full (TCP
/// backpressure via the paused reader), `release` frees a slot when a
/// response is written out.
pub struct InflightWindow {
    max: usize,
    inflight: Mutex<usize>,
    freed: Condvar,
}

impl InflightWindow {
    /// A window admitting at most `max` (≥ 1) un-answered requests.
    #[must_use]
    pub fn new(max: usize) -> Self {
        InflightWindow {
            max: max.max(1),
            inflight: Mutex::new(0),
            freed: Condvar::new(),
        }
    }

    /// Takes a slot immediately if one is free.
    pub fn try_acquire(&self) -> bool {
        let mut inflight = self.inflight.lock();
        if *inflight < self.max {
            *inflight += 1;
            true
        } else {
            false
        }
    }

    /// Takes a slot, blocking until one frees up. This is the
    /// backpressure point: the connection reader parks here instead of
    /// reading further frames.
    pub fn acquire(&self) {
        let mut inflight = self.inflight.lock();
        while *inflight >= self.max {
            self.freed.wait(&mut inflight);
        }
        *inflight += 1;
    }

    /// Returns a slot (one response left the server).
    pub fn release(&self) {
        self.release_n(1);
    }

    /// Returns `n` slots at once — one corked vectored write can retire
    /// a whole burst of responses, and taking the lock once for the
    /// batch keeps the release path off the pump's per-frame cost.
    pub fn release_n(&self, n: usize) {
        if n == 0 {
            return;
        }
        let mut inflight = self.inflight.lock();
        *inflight = inflight.saturating_sub(n);
        self.freed.notify_all();
    }

    /// Current in-flight count (status snapshots, tests).
    #[must_use]
    pub fn in_flight(&self) -> usize {
        *self.inflight.lock()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn bursts_are_bounded_and_tenants_are_isolated() {
        let quotas = TenantQuotas::new(Some(QuotaConfig {
            burst: 3,
            per_second: 1,
        }));
        let t0 = Instant::now();
        // The hog drains its burst...
        assert!(quotas.admit("hog", t0));
        assert!(quotas.admit("hog", t0));
        assert!(quotas.admit("hog", t0));
        assert!(!quotas.admit("hog", t0), "burst exhausted");
        // ...while another tenant is untouched.
        assert!(quotas.admit("quiet", t0));
        // Refill restores exactly rate * elapsed, capped at the burst.
        let later = t0 + Duration::from_secs(2);
        assert!(quotas.admit("hog", later));
        assert!(quotas.admit("hog", later));
        assert!(!quotas.admit("hog", later), "only 2 tokens refilled");
        let much_later = t0 + Duration::from_secs(3600);
        for _ in 0..3 {
            assert!(quotas.admit("hog", much_later));
        }
        assert!(
            !quotas.admit("hog", much_later),
            "refill must cap at the burst"
        );
    }

    #[test]
    fn disabled_quotas_admit_everything() {
        let quotas = TenantQuotas::new(None);
        let now = Instant::now();
        for _ in 0..10_000 {
            assert!(quotas.admit("anyone", now));
        }
    }

    #[test]
    fn window_blocks_at_capacity_and_wakes_on_release() {
        let w = Arc::new(InflightWindow::new(2));
        w.acquire();
        w.acquire();
        assert!(!w.try_acquire(), "window full");
        assert_eq!(w.in_flight(), 2);
        // A blocked acquirer wakes when a slot frees.
        let w2 = Arc::clone(&w);
        let blocked = std::thread::spawn(move || {
            w2.acquire();
            w2.in_flight()
        });
        std::thread::sleep(Duration::from_millis(10));
        w.release();
        assert_eq!(blocked.join().expect("no panic"), 2);
    }
}
