//! Regression test for the JoinHandle leak: the first wire pushed every
//! connection thread's handle into a `Mutex<Vec<_>>` that was only
//! drained at shutdown, so a long-running server retained one handle
//! per connection *ever accepted*. With the sharded registry, finished
//! readers bury their own handles and the acceptor reaps them, so the
//! retained count tracks churn, not lifetime.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use amp_net::{Server, ServerConfig};
use amp_service::EngineConfig;

fn light_config() -> ServerConfig {
    ServerConfig {
        shards: 1,
        per_shard: EngineConfig {
            workers: 1,
            racer_threads: 1,
            queue_depth: 64,
            cache_capacity: 64,
            cache_shards: 1,
            ..EngineConfig::default()
        },
        max_connections: 8,
        ..ServerConfig::default()
    }
}

#[test]
fn a_thousand_connection_churns_retain_a_bounded_handle_count() {
    let server = Server::start(light_config()).expect("server starts");
    let addr = server.local_addr();
    const CHURNS: usize = 1000;
    // Generous bound: retained handles may lag by the few connections
    // whose readers haven't been rescheduled yet, but a leak of one
    // handle per connection (the old behavior) blows far past this.
    const BOUND: usize = 64;
    let mut worst = 0usize;
    for i in 0..CHURNS {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).expect("nodelay");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .expect("timeout");
        // A full round trip proves the reader is up before we close.
        stream
            .write_all(b"{\"op\":\"ping\"}\n")
            .expect("ping written");
        let mut line = String::new();
        BufReader::new(&stream).read_line(&mut line).expect("pong");
        assert!(line.contains("pong"), "unexpected reply: {line}");
        drop(stream);
        if i % 16 == 0 {
            worst = worst.max(server.retained_reader_handles());
        }
    }
    assert!(
        worst <= BOUND,
        "retained handles peaked at {worst} during {CHURNS} churns (bound {BOUND}); \
         connection handles are leaking again"
    );
    // Quiescence: once the stragglers finish and one more accept cycle
    // reaps, nothing should stay retained but the last few burials.
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut retained = server.retained_reader_handles();
    while retained > 4 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(20));
        // A fresh connection triggers an acceptor-side reap.
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.write_all(b"{\"op\":\"ping\"}\n").expect("ping");
        let mut line = String::new();
        let _ = BufReader::new(&stream).read_line(&mut line);
        drop(stream);
        retained = server.retained_reader_handles();
    }
    assert!(
        retained <= 4,
        "{retained} handles still retained after churn settled"
    );
    let snapshot = server.net_snapshot();
    assert!(snapshot.connections_opened >= CHURNS as u64);
    server.shutdown();
}
