//! The zero-steady-state-allocation gate for the wire hot path.
//!
//! The response pump's per-response work is: rent a pooled buffer,
//! stream-render the frame into it, cork it into one vectored write,
//! return the buffer. After warmup (buffers grown to frame size, pool
//! populated, cork vector at capacity) that cycle must not touch the
//! heap at all — the same discipline PR 3 pinned for the scheduler's
//! solve path, now extended to the wire in front of it.
//!
//! The counting allocator tracks per-thread allocation counts, so
//! `cargo test`'s parallel test threads cannot pollute the delta.

use std::io::{self, IoSlice, Write};

use amp_bench::alloc_track::{count_thread_allocs, TrackingAllocator};
use amp_core::sched::Scheduler;
use amp_core::{Resources, Task, TaskChain};
use amp_net::proto::{render_error_line, render_response_line};
use amp_net::{write_frames, BufPool, CORK_MAX};
use amp_service::{Policy, ScheduleOutcome, ScheduleRequest, ScheduleResponse};

#[global_allocator]
static ALLOC: TrackingAllocator = TrackingAllocator;

/// Accepts every byte without storing (or allocating) anything — the
/// gate measures the framing path, not the kernel.
struct NullSink;

impl Write for NullSink {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        Ok(buf.len())
    }

    fn write_vectored(&mut self, bufs: &[IoSlice]) -> io::Result<usize> {
        Ok(bufs.iter().map(|b| b.len()).sum())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

fn sample_response() -> ScheduleResponse {
    let chain = TaskChain::new(vec![
        Task::new(10, 25, false),
        Task::new(40, 90, true),
        Task::new(5, 12, false),
    ]);
    let request = ScheduleRequest::from_chain(
        7,
        &chain,
        Resources::new(2, 2),
        Policy::Strategy("FERTAC".to_string()),
    );
    let solution = amp_core::sched::Fertac
        .schedule(&chain, request.resources())
        .expect("feasible");
    ScheduleResponse {
        id: 0,
        result: Ok(ScheduleOutcome::from_solution(
            "FERTAC", &solution, &chain, true,
        )),
    }
}

/// One pump cycle: render a full cork of responses into pooled buffers,
/// vector-write them, recycle the buffers.
fn pump_cycle(
    response: &mut ScheduleResponse,
    pool: &mut BufPool,
    cork: &mut Vec<String>,
    sink: &mut NullSink,
) {
    for _ in 0..CORK_MAX {
        response.id = response.id.wrapping_add(1);
        let mut buf = pool.rent();
        render_response_line(response, &mut buf);
        cork.push(buf);
    }
    write_frames(sink, cork).expect("sink never fails");
    for buf in cork.drain(..) {
        pool.give(buf);
    }
}

#[test]
fn steady_state_response_path_allocates_nothing() {
    let mut response = sample_response();
    let mut pool = BufPool::new(CORK_MAX);
    let mut cork: Vec<String> = Vec::with_capacity(CORK_MAX);
    let mut sink = NullSink;
    // Warmup: grow every buffer to frame size and fill the pool.
    for _ in 0..4 {
        pump_cycle(&mut response, &mut pool, &mut cork, &mut sink);
    }
    let (_, allocs) = count_thread_allocs(|| {
        for _ in 0..256 {
            pump_cycle(&mut response, &mut pool, &mut cork, &mut sink);
        }
    });
    assert_eq!(
        allocs, 0,
        "warm framing+write path must not allocate (got {allocs} allocations \
         over 256 corks of {CORK_MAX} responses)"
    );
}

#[test]
fn steady_state_error_framing_allocates_nothing() {
    let mut pool = BufPool::new(4);
    let mut sink = NullSink;
    let cycle = |pool: &mut BufPool, sink: &mut NullSink| {
        let mut buf = pool.rent();
        render_error_line(
            Some(41),
            "OVERLOADED",
            "service queue is full; retry with backoff",
            &mut buf,
        );
        write_frames(sink, &[buf.as_bytes()]).expect("sink never fails");
        pool.give(buf);
    };
    for _ in 0..4 {
        cycle(&mut pool, &mut sink);
    }
    let (_, allocs) = count_thread_allocs(|| {
        for _ in 0..1024 {
            cycle(&mut pool, &mut sink);
        }
    });
    assert_eq!(allocs, 0, "warm error framing must not allocate");
}
