//! Edge-of-the-wire integration tests: real sockets against a real
//! server, probing the admission contracts and the malformed-input
//! surface.
//!
//! The contracts under test:
//!
//! * quota exhaustion answers `QUOTA_EXCEEDED` (not `OVERLOADED`), and
//!   only for the offending tenant;
//! * a full in-flight window slows the reader down (backpressure) —
//!   it never rejects and never disconnects;
//! * malformed frames (truncated JSON, oversized lines, interleaved
//!   garbage) get a typed answer or a clean close, never a panic, and
//!   never poison the frames around them.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

use amp_core::json::Json;
use amp_net::{QuotaConfig, Server, ServerConfig};
use amp_service::{EngineConfig, Objective, Policy, ScheduleRequest, TaskSpec};

fn small_server_config() -> ServerConfig {
    ServerConfig {
        shards: 2,
        per_shard: EngineConfig {
            workers: 2,
            racer_threads: 2,
            queue_depth: 64,
            cache_capacity: 64,
            cache_shards: 2,
            ..EngineConfig::default()
        },
        ..ServerConfig::default()
    }
}

fn request(id: u64, spread: u64) -> ScheduleRequest {
    ScheduleRequest {
        id,
        tasks: vec![
            TaskSpec {
                weight_big: 10 + spread,
                weight_little: 25 + spread,
                replicable: false,
            },
            TaskSpec {
                weight_big: 40,
                weight_little: 90,
                replicable: true,
            },
        ],
        big_cores: 2,
        little_cores: 2,
        policy: Policy::Strategy("FERTAC".to_string()),
        objective: Objective::Period,
        deadline_us: None,
    }
}

fn connect(server: &Server) -> (TcpStream, BufReader<TcpStream>) {
    let stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");
    let reader = BufReader::new(stream.try_clone().expect("clone"));
    (stream, reader)
}

fn send_line(stream: &mut TcpStream, line: &str) {
    stream.write_all(line.as_bytes()).expect("write");
    stream.write_all(b"\n").expect("write newline");
}

/// Reads one response frame and returns `(id, Ok(outcome) | Err(code))`.
fn read_response(reader: &mut BufReader<TcpStream>) -> (Option<u64>, Result<Json, String>) {
    let mut line = String::new();
    let n = reader.read_line(&mut line).expect("read frame");
    assert!(n > 0, "server closed the connection unexpectedly");
    let response = amp_net::proto::parse_response(line.trim_end()).expect("parseable frame");
    (response.id, response.result.map_err(|(code, _)| code))
}

#[test]
fn quota_exhaustion_is_typed_and_tenant_scoped() {
    // per_second: 0 — no refill, so admissions are exactly the burst.
    let server = Server::start(ServerConfig {
        quota: Some(QuotaConfig {
            burst: 3,
            per_second: 0,
        }),
        ..small_server_config()
    })
    .expect("server");
    let (mut stream, mut reader) = connect(&server);

    // The hog: 6 requests against a burst of 3.
    for id in 0..6 {
        send_line(
            &mut stream,
            &amp_net::proto::render_request(&request(id, id), "hog"),
        );
    }
    let mut ok = 0;
    let mut quota = 0;
    for _ in 0..6 {
        match read_response(&mut reader) {
            (Some(_), Ok(_)) => ok += 1,
            (Some(_), Err(code)) => {
                // The typed-rejection contract: quota pressure is
                // QUOTA_EXCEEDED, never conflated with OVERLOADED.
                assert_eq!(code, "QUOTA_EXCEEDED");
                quota += 1;
            }
            other => panic!("unexpected response: {other:?}"),
        }
    }
    assert_eq!((ok, quota), (3, 3));

    // Fairness: a quiet tenant on the same connection is untouched.
    send_line(
        &mut stream,
        &amp_net::proto::render_request(&request(100, 1), "quiet"),
    );
    let (id, result) = read_response(&mut reader);
    assert_eq!(id, Some(100));
    assert!(result.is_ok(), "quiet tenant must still be admitted");

    // And the hog stays rejected (no refill at per_second 0).
    send_line(
        &mut stream,
        &amp_net::proto::render_request(&request(101, 1), "hog"),
    );
    let (id, result) = read_response(&mut reader);
    assert_eq!(id, Some(101));
    assert_eq!(result.expect_err("hog is out of quota"), "QUOTA_EXCEEDED");

    drop(stream);
    server.shutdown();
}

#[test]
fn full_window_backpressures_instead_of_disconnecting() {
    let window = 4;
    let server = Server::start(ServerConfig {
        window,
        ..small_server_config()
    })
    .expect("server");
    let (mut stream, mut reader) = connect(&server);

    // Pipeline far more requests than the window admits at once. All
    // must be answered: a full window pauses the reader, it never
    // rejects or closes.
    let total = 100u64;
    for id in 0..total {
        send_line(
            &mut stream,
            &amp_net::proto::render_request(&request(id, id % 7), "public"),
        );
    }
    let mut seen = vec![false; total as usize];
    for _ in 0..total {
        let (id, result) = read_response(&mut reader);
        let id = id.expect("every response correlates") as usize;
        assert!(!seen[id], "duplicate response for id {id}");
        seen[id] = true;
        assert!(result.is_ok(), "no request may be rejected by the window");
    }
    assert!(seen.iter().all(|&answered| answered));

    // The wire metrics prove the bound held: at no instant were more
    // than `window` requests of this connection in flight.
    let snapshot = server.net_snapshot();
    assert_eq!(snapshot.accepted, total);
    assert!(
        snapshot.peak_inflight <= window as u64,
        "peak inflight {} exceeded the window {}",
        snapshot.peak_inflight,
        window
    );
    assert_eq!(snapshot.connections_refused, 0);

    drop(stream);
    server.shutdown();
}

#[test]
fn malformed_frames_get_typed_answers_and_spare_their_neighbors() {
    let server = Server::start(ServerConfig {
        max_line_bytes: 1024,
        ..small_server_config()
    })
    .expect("server");
    let (mut stream, mut reader) = connect(&server);

    // 1. Interleaved garbage: answered PARSE_ERROR, connection lives.
    send_line(&mut stream, "!!! this is not json !!!");
    let (id, result) = read_response(&mut reader);
    assert_eq!(id, None, "garbage has no recoverable id");
    assert_eq!(result.expect_err("garbage is rejected"), "PARSE_ERROR");

    // 2. Truncated JSON — a strict prefix of a request object. The
    //    codec must refuse it (a prefix of a container never parses).
    let valid = amp_net::proto::render_request(&request(7, 1), "public");
    send_line(&mut stream, &valid[..valid.len() / 2]);
    let (_, result) = read_response(&mut reader);
    let code = result.expect_err("truncated frame is rejected");
    assert!(
        code == "PARSE_ERROR" || code == "BAD_REQUEST",
        "unexpected code {code}"
    );

    // 3. Oversized line: typed FRAME_TOO_LARGE, then the connection
    //    keeps working.
    let huge = format!("{{\"id\":9,\"pad\":\"{}\"}}", "x".repeat(4096));
    send_line(&mut stream, &huge);
    let (_, result) = read_response(&mut reader);
    assert_eq!(
        result.expect_err("oversized is rejected"),
        "FRAME_TOO_LARGE"
    );

    // 4. A well-formed request right after all that abuse still works.
    send_line(
        &mut stream,
        &amp_net::proto::render_request(&request(42, 3), "public"),
    );
    let (id, result) = read_response(&mut reader);
    assert_eq!(id, Some(42));
    assert!(
        result.is_ok(),
        "the connection must survive malformed frames"
    );

    // 5. Structured-but-wrong: valid JSON missing required fields keeps
    //    its id for correlation.
    send_line(&mut stream, "{\"id\":77,\"policy\":\"FERTAC\"}");
    let (id, result) = read_response(&mut reader);
    assert_eq!(id, Some(77));
    assert_eq!(result.expect_err("missing fields"), "BAD_REQUEST");

    let snapshot = server.net_snapshot();
    assert!(snapshot.parse_errors >= 3);
    assert_eq!(snapshot.oversized_frames, 1);
    assert_eq!(snapshot.connections_refused, 0);

    drop(stream);
    server.shutdown();
}

#[test]
fn fuzzed_garbage_never_panics_the_server() {
    use rand::{rngs::StdRng, Rng, SeedableRng};
    let server = Server::start(ServerConfig {
        max_line_bytes: 512,
        ..small_server_config()
    })
    .expect("server");
    let mut rng = StdRng::seed_from_u64(0xF0_22);
    let (mut stream, mut reader) = connect(&server);
    let mut expected_answers = 0u64;
    for round in 0..200u64 {
        let roll = rng.gen_range(0..5u32);
        match roll {
            // Random bytes (newline-free so they stay one frame).
            0 => {
                let len = rng.gen_range(1..64usize);
                let mut bytes: Vec<u8> = (0..len).map(|_| rng.gen_range(1..=255u8)).collect();
                for b in &mut bytes {
                    if *b == b'\n' {
                        *b = b'?';
                    }
                }
                stream.write_all(&bytes).expect("write");
                stream.write_all(b"\n").expect("newline");
                expected_answers += 1;
            }
            // Truncated valid request.
            1 => {
                let full = amp_net::proto::render_request(&request(round, round % 5), "public");
                let cut = rng.gen_range(1..full.len());
                send_line(&mut stream, &full[..cut]);
                expected_answers += 1;
            }
            // Oversized frame.
            2 => {
                send_line(&mut stream, &"y".repeat(2048));
                expected_answers += 1;
            }
            // Blank line: tolerated silently.
            3 => send_line(&mut stream, "   "),
            // A valid request, which must still succeed amid the abuse.
            _ => {
                send_line(
                    &mut stream,
                    &amp_net::proto::render_request(&request(round, round % 5), "public"),
                );
                expected_answers += 1;
            }
        }
    }
    // Every answerable frame got an answer; the connection never died.
    for _ in 0..expected_answers {
        let mut line = String::new();
        let n = reader.read_line(&mut line).expect("read");
        assert!(n > 0, "server must not close mid-fuzz");
        assert!(
            amp_net::proto::parse_response(line.trim_end()).is_ok(),
            "every answer is a well-formed frame: {line:?}"
        );
    }
    // Liveness proof: a ping round-trips after the storm.
    send_line(&mut stream, "{\"op\":\"ping\"}");
    let mut line = String::new();
    reader.read_line(&mut line).expect("read pong");
    assert!(line.contains("pong"));

    drop(stream);
    server.shutdown();
}

#[test]
fn status_frame_exposes_fleet_and_per_shard_cache_counters() {
    let server = Server::start(small_server_config()).expect("server");
    let (mut stream, mut reader) = connect(&server);

    // Warm the cache: same instance twice; the second must be a hit.
    for id in [1u64, 2] {
        send_line(
            &mut stream,
            &amp_net::proto::render_request(&request(id, 0), "public"),
        );
        let (_, result) = read_response(&mut reader);
        assert!(result.is_ok());
    }

    send_line(&mut stream, "{\"op\":\"status\"}");
    let mut line = String::new();
    reader.read_line(&mut line).expect("read status");
    let parsed = Json::parse(line.trim_end()).expect("status frame parses");
    let Json::Obj(top) = parsed else {
        panic!("status must be an object")
    };
    let Some(Json::Obj(ok)) = top.get("ok") else {
        panic!("status carries ok")
    };
    let Some(Json::Obj(net)) = ok.get("net") else {
        panic!("status carries net counters")
    };
    assert!(net.contains_key("frames_in"));
    let Some(Json::Obj(fleet)) = ok.get("fleet") else {
        panic!("status carries fleet")
    };
    let Some(Json::Obj(cache)) = fleet.get("cache") else {
        panic!("fleet carries aggregate cache stats")
    };
    assert_eq!(cache.get("hits"), Some(&Json::Int(1)), "one warm hit");
    let Some(Json::Arr(shards)) = fleet.get("per_shard") else {
        panic!("fleet carries per-shard stats")
    };
    assert_eq!(shards.len(), 2);
    for shard in shards {
        let Json::Obj(shard) = shard else {
            panic!("per-shard entry is an object")
        };
        assert!(
            shard.contains_key("cache"),
            "each shard exposes its own cache hit/miss counters"
        );
    }

    drop(stream);
    server.shutdown();
}

/// The energy objective over the socket, against the real sharded fleet:
/// a period entry warmed for a chain must not answer the energy request
/// for the same chain and pool (the cache keys on the objective), the
/// energy response carries the integer `energy_mw`, its repeat is a
/// cache hit that still carries it, and period responses never grow the
/// field.
#[test]
fn energy_objective_is_cache_separated_over_the_socket() {
    let server = Server::start(small_server_config()).expect("server");
    let (mut stream, mut reader) = connect(&server);

    let energy_mw_of = |payload: &Json| -> Option<u64> {
        payload.as_obj().and_then(|o| o.get("energy_mw")?.as_int())
    };
    let cache_hit_of = |payload: &Json| -> bool {
        payload
            .as_obj()
            .and_then(|o| o.get("cache_hit"))
            .map(|v| matches!(v, Json::Bool(true)))
            .unwrap_or(false)
    };

    // Warm a period entry for the chain.
    send_line(
        &mut stream,
        &amp_net::proto::render_request(&request(1, 0), "public"),
    );
    let (_, result) = read_response(&mut reader);
    let payload = result.expect("period request is feasible");
    assert_eq!(energy_mw_of(&payload), None, "period frames have no energy");

    // The same chain and pool under min_energy: a fresh solve with the
    // energy figure, not the period cache entry.
    let energy_request = |id: u64| {
        let mut req = request(id, 0).with_objective(Objective::MinEnergy {
            target_period: "100/1".to_string(),
        });
        req.policy = Policy::Strategy("EnergyDP".to_string());
        req
    };
    send_line(
        &mut stream,
        &amp_net::proto::render_request(&energy_request(2), "public"),
    );
    let (id, result) = read_response(&mut reader);
    assert_eq!(id, Some(2));
    let payload = result.expect("energy request is feasible");
    assert!(!cache_hit_of(&payload), "the period entry must not answer");
    let served = energy_mw_of(&payload).expect("energy_mw present");
    assert!(served > 0);

    // The identical energy request hits its own entry — figure intact.
    send_line(
        &mut stream,
        &amp_net::proto::render_request(&energy_request(3), "public"),
    );
    let (_, result) = read_response(&mut reader);
    let payload = result.expect("feasible");
    assert!(cache_hit_of(&payload), "the energy repeat must hit");
    assert_eq!(energy_mw_of(&payload), Some(served));

    // And the period repeat still hits its own entry, energy-free.
    send_line(
        &mut stream,
        &amp_net::proto::render_request(&request(4, 0), "public"),
    );
    let (_, result) = read_response(&mut reader);
    let payload = result.expect("feasible");
    assert!(cache_hit_of(&payload));
    assert_eq!(energy_mw_of(&payload), None);

    drop(stream);
    server.shutdown();
}
