//! Ordering and integrity of the corked vectored write path, observed
//! end to end over a real socket.
//!
//! Two writers share one connection: the pump (engine responses, corked
//! into vectored writes) and the reader (direct typed rejections).
//! Whatever the interleaving, two properties must hold:
//!
//! * **No tearing**: every line the client reads is a complete,
//!   parseable frame — a vectored write that resumed after a short
//!   write must never interleave with a competing whole-frame write.
//! * **Per-connection response order**: with a single engine shard and
//!   a single worker, engine responses are produced in submission
//!   order, and the pump's cork must preserve that order on the wire.
//!
//! The request mix (valid schedule frames vs malformed rejects) is
//! seeded, so failures reproduce.

use std::collections::BTreeSet;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

use amp_net::proto;
use amp_net::{Server, ServerConfig};
use amp_service::EngineConfig;
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Ids below this are valid schedule requests; at/above are malformed
/// frames answered by the reader directly.
const REJECT_BASE: u64 = 1 << 20;

fn single_lane_config() -> ServerConfig {
    ServerConfig {
        // One shard, one worker: the engine is a FIFO, so response
        // order == submission order and any reordering is the wire's.
        shards: 1,
        per_shard: EngineConfig {
            workers: 1,
            racer_threads: 1,
            queue_depth: 512,
            cache_capacity: 256,
            cache_shards: 1,
            ..EngineConfig::default()
        },
        max_connections: 4,
        window: 128,
        batch_max: 16,
        ..ServerConfig::default()
    }
}

fn interleaved_run(seed: u64) {
    let server = Server::start(single_lane_config()).expect("server starts");
    let addr = server.local_addr();
    let mut rng = StdRng::seed_from_u64(seed);

    const TOTAL: usize = 600;
    let mut frames = String::new();
    let mut valid_ids: Vec<u64> = Vec::new();
    let mut reject_ids: Vec<u64> = Vec::new();
    for i in 0..TOTAL {
        if rng.gen_bool(0.25) {
            // Malformed: parses as JSON, fails validation — the reader
            // answers this directly, racing the pump for the socket.
            let id = REJECT_BASE + i as u64;
            frames.push_str(&format!("{{\"id\":{id},\"policy\":\"HeRAD\"}}\n"));
            reject_ids.push(id);
        } else {
            let id = i as u64;
            let tasks = (0..rng.gen_range(2..=5))
                .map(|_| {
                    format!(
                        "[{},{},{}]",
                        rng.gen_range(1..=40u64),
                        rng.gen_range(1..=80u64),
                        u8::from(rng.gen_bool(0.5))
                    )
                })
                .collect::<Vec<_>>()
                .join(",");
            frames.push_str(&format!(
                "{{\"id\":{id},\"policy\":\"FERTAC\",\"big\":2,\"little\":2,\
                 \"tasks\":[{tasks}]}}\n"
            ));
            valid_ids.push(id);
        }
    }

    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    let mut write_half = stream.try_clone().expect("clone");
    // Pipelining everything at once maximizes batching, corking and the
    // reader/pump write race.
    let sender = std::thread::spawn(move || {
        write_half
            .write_all(frames.as_bytes())
            .expect("frames sent");
    });

    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    let mut answered: BTreeSet<u64> = BTreeSet::new();
    let mut valid_order: Vec<u64> = Vec::new();
    for _ in 0..TOTAL {
        line.clear();
        let n = reader.read_line(&mut line).expect("line readable");
        assert!(n > 0, "server closed early: {answered:?}");
        // No tearing: every line is a complete canonical frame.
        let response = proto::parse_response(line.trim_end())
            .unwrap_or_else(|e| panic!("torn/corrupt frame {line:?}: {e:?}"));
        let id = response.id.expect("every answer here carries an id");
        assert!(answered.insert(id), "id {id} answered twice");
        match response.result {
            Ok(_) => {
                assert!(id < REJECT_BASE, "malformed frame got an ok answer");
                valid_order.push(id);
            }
            Err((code, _)) => {
                assert!(id >= REJECT_BASE, "valid frame {id} rejected: {code}");
                assert_eq!(code, "BAD_REQUEST");
            }
        }
    }
    sender.join().expect("sender finishes");

    // Completeness: exactly the sent ids, each once.
    let expected: BTreeSet<u64> = valid_ids.iter().chain(&reject_ids).copied().collect();
    assert_eq!(answered, expected, "answered set mismatch");
    // Per-connection response order: the engine produced responses in
    // submission order (single lane); the corked pump must not reorder.
    assert_eq!(
        valid_order, valid_ids,
        "engine responses were reordered on the wire (seed {seed})"
    );
    server.shutdown();
}

#[test]
fn corked_pump_preserves_engine_order_amid_direct_rejections() {
    for seed in [0xC0FFEE, 1, 42] {
        interleaved_run(seed);
    }
}
