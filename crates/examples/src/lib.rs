//! Host package for the workspace examples; see `/examples/*.rs`.
//!
//! Run them with, e.g., `cargo run --release -p amp-examples --example
//! quickstart`.
