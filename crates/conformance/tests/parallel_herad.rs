//! Large-scale differential suite for HeRAD's layer-parallel DP kernel.
//!
//! The parallel kernel is required to be *bit-identical* to the
//! sequential driver — same `Solution`, same period, same tie-break core
//! usage — because both drive the exact same cell function over the same
//! wavefront order; only the execution schedule differs. This suite
//! hammers that claim with 1000 seeded instances at several worker
//! counts, plus handcrafted degenerate shapes that stress the kernel's
//! edge cases (more workers than table rows, single-layer tables,
//! starved pools).

use amp_conformance::{instance_for_seed, GenConfig, Instance, TaskDef};
use amp_core::sched::{Herad, Pruning, Scheduler};

const WORKERS: [usize; 4] = [1, 2, 3, 8];

/// Asserts that forced-parallel solves match the sequential one exactly
/// for every pruning policy and worker count.
fn assert_bit_identical(inst: &Instance) {
    let chain = inst.chain();
    let resources = inst.resources();
    for pruning in [Pruning::None, Pruning::Lossless, Pruning::Aggressive] {
        let seq = Herad::with_pruning(pruning).schedule(&chain, resources);
        for workers in WORKERS {
            let par =
                Herad::with_pruning_and_parallelism(pruning, workers).schedule(&chain, resources);
            assert_eq!(
                par,
                seq,
                "parallel HeRAD diverged: {pruning:?}, {workers} workers, {}",
                inst.summary()
            );
            if let (Some(p), Some(s)) = (&par, &seq) {
                assert_eq!(p.period(&chain), s.period(&chain));
                assert_eq!(p.used_cores(), s.used_cores());
            }
        }
    }
}

#[test]
fn thousand_seeds_are_bit_identical_across_worker_counts() {
    // Slightly larger than the fuzz default so multi-row tables (where
    // the wavefront actually pipelines) are common.
    let cfg = GenConfig {
        max_tasks: 10,
        max_weight: 12,
        max_big: 5,
        max_little: 5,
        allow_empty_pool: true,
    };
    for seed in 0..1000 {
        assert_bit_identical(&instance_for_seed(seed, &cfg));
    }
}

#[test]
fn degenerate_shapes_are_bit_identical() {
    let cases = [
        Instance::new("single-task", vec![TaskDef::new(5, 9, true)], 4, 4),
        Instance::new(
            "all-sequential",
            vec![
                TaskDef::new(3, 7, false),
                TaskDef::new(2, 2, false),
                TaskDef::new(8, 11, false),
                TaskDef::new(1, 4, false),
            ],
            3,
            3,
        ),
        Instance::new(
            "starved-big",
            vec![TaskDef::new(4, 6, true), TaskDef::new(2, 5, false)],
            0,
            4,
        ),
        Instance::new(
            "starved-little",
            vec![TaskDef::new(4, 6, true), TaskDef::new(2, 5, false)],
            4,
            0,
        ),
        Instance::new("empty-pool", vec![TaskDef::new(4, 6, true)], 0, 0),
        Instance::new("unit-weights", vec![TaskDef::new(1, 1, true); 6], 2, 5),
    ];
    for inst in &cases {
        assert_bit_identical(inst);
    }
}

#[test]
fn larger_chain_is_bit_identical() {
    // One bigger instance (n = 20, the paper's chain length) so the
    // kernel runs with many layers and a real wavefront; still fast
    // because the pool stays small.
    let tasks: Vec<TaskDef> = (0..20)
        .map(|i| {
            TaskDef::new(
                1 + (i * 7) % 13,
                1 + (i * 11) % 17,
                i % 3 != 0, // mixed replicability
            )
        })
        .collect();
    assert_bit_identical(&Instance::new("paper-length", tasks, 5, 6));
}
