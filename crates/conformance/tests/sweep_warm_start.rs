//! Differential suite for HeRAD's pool-delta warm starts.
//!
//! A `SchedScratch` carried across solves keeps the DP sub-table and
//! grows it monotonically (the sub-table-growth invariant: every cell is
//! a pure function of the chain prefix and its indices, never of the
//! total pool). These tests sweep one scratch over resource grids in
//! ascending, descending and shuffled orders and require every warm
//! solve to be bit-identical to a fresh allocating solve.

use amp_conformance::{check_sweep, instance_for_seed, GenConfig, Instance, TaskDef};
use amp_core::sched::{Herad, Pruning, SchedScratch, Scheduler};
use amp_core::{Resources, Solution};

#[test]
fn seeded_instances_pass_the_sweep_check() {
    let cfg = GenConfig::default();
    for seed in 0..150 {
        let mismatches = check_sweep(&instance_for_seed(seed, &cfg));
        assert!(
            mismatches.is_empty(),
            "seed {seed}: {}",
            mismatches
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("; ")
        );
    }
}

/// Sweeps one scratch over a shuffled pool grid — every transition is an
/// arbitrary mix of grows, rebuilds and pure sub-table extractions — and
/// checks solutions and periods against fresh solves.
#[test]
fn shuffled_grid_sweep_matches_fresh_solves() {
    let inst = Instance::new(
        "shuffled-sweep",
        vec![
            TaskDef::new(6, 13, true),
            TaskDef::new(3, 4, false),
            TaskDef::new(9, 15, true),
            TaskDef::new(2, 2, false),
            TaskDef::new(5, 10, true),
            TaskDef::new(7, 7, true),
        ],
        6,
        6,
    );
    let chain = inst.chain();
    let mut grid: Vec<(u64, u64)> = (0..=6u64)
        .flat_map(|b| (0..=6u64).map(move |l| (b, l)))
        .collect();
    // Deterministic LCG shuffle: no RNG dependency, reproducible order.
    let mut state = 0x2545_f491_4f6c_dd1du64;
    for i in (1..grid.len()).rev() {
        state = state
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        grid.swap(i, (state >> 33) as usize % (i + 1));
    }

    for pruning in [Pruning::Aggressive, Pruning::Lossless] {
        let herad = Herad::with_pruning(pruning);
        let mut scratch = SchedScratch::new();
        let mut warm = Solution::empty();
        for &(b, l) in &grid {
            let r = Resources::new(b, l);
            let fresh = herad.schedule(&chain, r);
            let got = herad
                .schedule_into(&chain, r, &mut scratch, &mut warm)
                .then(|| warm.clone());
            assert_eq!(got, fresh, "{pruning:?} shuffled sweep diverged at {r}");
            assert_eq!(
                herad.optimal_period_with(&chain, r, &mut scratch),
                herad.optimal_period(&chain, r),
                "{pruning:?} warm period diverged at {r}"
            );
        }
    }
}

/// The scratch must survive *chain changes* between sweeps: rekeying on a
/// different chain invalidates the memo, and the new sweep is again
/// bit-identical to fresh solves.
#[test]
fn scratch_reuse_across_different_chains_stays_exact() {
    let herad = Herad::new();
    let mut scratch = SchedScratch::new();
    let mut warm = Solution::empty();
    let cfg = GenConfig::default();
    for seed in 0..60 {
        let inst = instance_for_seed(seed, &cfg);
        let chain = inst.chain();
        for b in 0..=inst.big {
            for l in 0..=inst.little {
                let r = Resources::new(b, l);
                let fresh = herad.schedule(&chain, r);
                let got = herad
                    .schedule_into(&chain, r, &mut scratch, &mut warm)
                    .then(|| warm.clone());
                assert_eq!(got, fresh, "seed {seed} at {r} after chain switch");
            }
        }
    }
}
