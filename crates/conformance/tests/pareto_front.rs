//! Property-based tests of the period×energy Pareto front and the
//! energy DP's metamorphic invariants.
//!
//! The literal sequel-paper claim "making big cores pricier never adds
//! big cores to the optimal schedule" is false in general (a pricier big
//! pool can flip an interval *split*, and the new decomposition may use
//! more big cores somewhere else), so it is not asserted here — see
//! DESIGN.md. What *is* provable, and pinned below, is value-level
//! monotonicity: every schedule's energy is non-decreasing in the
//! big-core power coefficient, hence so is the constrained minimum
//! (X-monotonicity), and any schedule feasible at a target stays
//! feasible and no pricier at a looser target (relaxation
//! monotonicity).

use amp_conformance::gen::{instance_strategy, GenConfig};
use amp_conformance::instance::Instance;
use amp_core::sched::{pareto_front, EnergyDp, EnergyScheduler, Herad, Scheduler};
use amp_core::{MilliPower, PowerModel, Ratio};
use proptest::prelude::*;

fn t_opt_of(inst: &Instance) -> Option<Ratio> {
    let chain = inst.chain();
    Herad::new()
        .schedule(&chain, inst.resources())
        .map(|s| s.period(&chain))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// The front is sorted by strictly ascending period with strictly
    /// descending energy — which together imply no point dominates
    /// another — and starts at HeRAD's optimal period.
    #[test]
    fn front_is_a_strict_tradeoff_starting_at_the_optimum(
        inst in instance_strategy(GenConfig::small())
    ) {
        let chain = inst.chain();
        let model = PowerModel::typical();
        let front = pareto_front(&chain, inst.resources(), &model);
        match t_opt_of(&inst) {
            None => prop_assert!(front.is_empty(), "front on an unschedulable pool"),
            Some(t_opt) => {
                prop_assert!(!front.is_empty(), "schedulable but empty front");
                prop_assert_eq!(front[0].period, t_opt, "min-period endpoint");
                for w in front.windows(2) {
                    prop_assert!(w[0].period < w[1].period, "periods must strictly ascend");
                    prop_assert!(w[0].energy_mw > w[1].energy_mw, "energy must strictly drop");
                }
            }
        }
    }

    /// Every front point is exactly what a fresh energy-DP solve at that
    /// period produces: same minimal energy, and a witness schedule that
    /// is feasible at the point's period and honestly scored.
    #[test]
    fn front_points_agree_with_fresh_dp_solves(
        inst in instance_strategy(GenConfig::small())
    ) {
        let chain = inst.chain();
        let model = PowerModel::typical();
        let power = model.to_milli();
        let front = pareto_front(&chain, inst.resources(), &model);
        for p in &front {
            prop_assert!(p.solution.validate(&chain).is_ok());
            prop_assert!(p.solution.period(&chain) <= p.period);
            let used = p.solution.used_cores();
            prop_assert!(used.big <= inst.big && used.little <= inst.little);
            prop_assert_eq!(
                power.solution_power_mw(&chain, &p.solution, p.period),
                p.energy_mw,
                "front energy must match an independent recomputation"
            );
            let (_, fresh) = EnergyDp::new()
                .schedule_energy(&chain, inst.resources(), &power, p.period)
                .expect("front period must be DP-feasible");
            prop_assert_eq!(fresh, p.energy_mw, "front point vs fresh solve at {}", p.period);
        }
    }

    /// X-monotonicity: scaling the big-core power coefficient up can
    /// never make the constrained optimum cheaper (every schedule's
    /// energy is non-decreasing in it, so the minimum is too).
    #[test]
    fn raising_the_big_coefficient_never_lowers_the_optimum(
        inst in instance_strategy(GenConfig::small()),
        scale in 2u64..=5,
    ) {
        let Some(t_opt) = t_opt_of(&inst) else { return Ok(()) };
        let chain = inst.chain();
        let base = MilliPower::typical();
        let pricier = MilliPower::new(base.big_mw * scale, base.little_mw, base.idle_millis);
        for k in 1..=3u128 {
            let target = Ratio::new(t_opt.numer() * k, t_opt.denom());
            let cheap = EnergyDp::new().schedule_energy(&chain, inst.resources(), &base, target);
            let costly = EnergyDp::new().schedule_energy(&chain, inst.resources(), &pricier, target);
            match (cheap, costly) {
                (Some((_, e0)), Some((_, e1))) => {
                    prop_assert!(e1 >= e0, "pricier big cores lowered the optimum at {target}")
                }
                // Feasibility is a pure period question — it cannot
                // change with the power model.
                (a, b) => prop_assert_eq!(a.is_some(), b.is_some()),
            }
        }
    }

    /// Relaxation monotonicity: loosening the throughput constraint
    /// never costs energy (anything feasible at `T` stays feasible and
    /// no pricier at `T' > T`).
    #[test]
    fn relaxing_the_target_never_costs_energy(
        inst in instance_strategy(GenConfig::small())
    ) {
        let Some(t_opt) = t_opt_of(&inst) else { return Ok(()) };
        let chain = inst.chain();
        let power = MilliPower::typical();
        let mut last = Ratio::INFINITY;
        for k in 1..=5u128 {
            let target = Ratio::new(t_opt.numer() * k, t_opt.denom());
            let (_, e) = EnergyDp::new()
                .schedule_energy(&chain, inst.resources(), &power, target)
                .expect("targets at or above the optimum are feasible");
            prop_assert!(e <= last, "energy rose from {last} to {e} mW relaxing to {target}");
            last = e;
        }
    }
}
