//! The conformance checks: differential comparisons against the
//! exhaustive oracle, metamorphic properties, and service-vs-library
//! equivalence.
//!
//! Every check returns a list of [`Mismatch`]es instead of panicking, so
//! the runner can keep fuzzing, count failures, and shrink each offending
//! instance independently.

use crate::instance::Instance;
use amp_core::sched::{
    optimal_period, optimal_usage_front, paper_strategies, schedule_many, ChainTable, Fertac,
    Herad, Otac, Pruning, SchedScratch, Scheduler, Twocatac,
};
use amp_core::{Ratio, Resources, Solution, Task, TaskChain};
use amp_service::{Engine, Policy, ScheduleRequest};

/// One conformance violation: a stable code, the offending instance's
/// summary and a human-readable detail line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Mismatch {
    /// Stable machine-readable code, e.g. `"HERAD_PERIOD"`.
    pub code: &'static str,
    /// [`Instance::summary`] of the offending instance.
    pub instance: String,
    /// What differed.
    pub detail: String,
}

impl Mismatch {
    pub(crate) fn new(code: &'static str, instance: &Instance, detail: String) -> Self {
        Mismatch {
            code,
            instance: instance.summary(),
            detail,
        }
    }
}

impl std::fmt::Display for Mismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {} — {}", self.code, self.instance, self.detail)
    }
}

fn fmt_period(p: Option<Ratio>) -> String {
    match p {
        Some(p) => format!("{p}"),
        None => "infeasible".to_string(),
    }
}

/// Validates a heuristic's solution against the chain, the pool, and the
/// oracle's lower bound. `period_must_equal` is set for optimal schedulers.
fn check_solution(
    out: &mut Vec<Mismatch>,
    inst: &Instance,
    chain: &TaskChain,
    label: &str,
    solution: &Solution,
    oracle: Ratio,
    period_must_equal: bool,
) {
    if let Err(e) = solution.validate(chain) {
        out.push(Mismatch::new(
            "INVALID_SOLUTION",
            inst,
            format!("{label}: {e} ({})", solution.decomposition()),
        ));
        return;
    }
    let used = solution.used_cores();
    if used.big > inst.big || used.little > inst.little {
        out.push(Mismatch::new(
            "RESOURCE_OVERUSE",
            inst,
            format!(
                "{label}: uses ({}B, {}L) of ({}B, {}L)",
                used.big, used.little, inst.big, inst.little
            ),
        ));
    }
    let period = solution.period(chain);
    if period < oracle {
        out.push(Mismatch::new(
            "BELOW_OPTIMUM",
            inst,
            format!("{label}: period {period} < oracle optimum {oracle}"),
        ));
    }
    if period_must_equal && period != oracle {
        out.push(Mismatch::new(
            "HERAD_PERIOD",
            inst,
            format!("{label}: period {period} != oracle optimum {oracle}"),
        ));
    }
}

/// Differential checks of every library scheduler against the exhaustive
/// oracle.
///
/// * HeRAD under all three pruning policies must agree with the oracle on
///   feasibility and on the optimal period.
/// * Under `Pruning::None` and `Pruning::Lossless`, HeRAD's core usage
///   must also win the paper's secondary objective: among all optimal
///   usages, the fewest big cores, ties broken by fewest little cores.
///   (`Pruning::Aggressive` stays period-optimal but may keep a different
///   equal-period core mix, so only usage *membership* is asserted.)
/// * FERTAC and 2CATAC (budgeted or not) must return valid solutions
///   within the pool whose period is never below the optimum, and must
///   agree with the oracle on feasibility.
/// * OTAC (B) / OTAC (L) must match HeRAD's optimum on the corresponding
///   homogeneous sub-pool.
#[must_use]
pub fn check_core(inst: &Instance) -> Vec<Mismatch> {
    let mut out = Vec::new();
    let chain = inst.chain();
    let resources = inst.resources();
    let oracle = optimal_period(&chain, resources);
    let front = optimal_usage_front(&chain, resources);
    if oracle != front.as_ref().map(|(p, _)| *p) {
        out.push(Mismatch::new(
            "ORACLE_SELF",
            inst,
            format!(
                "optimal_period {} != optimal_usage_front {}",
                fmt_period(oracle),
                fmt_period(front.as_ref().map(|(p, _)| *p)),
            ),
        ));
    }

    for pruning in [Pruning::None, Pruning::Lossless, Pruning::Aggressive] {
        let label = format!("HeRAD({pruning:?})");
        let herad = Herad::with_pruning(pruning);
        let solution = herad.schedule(&chain, resources);
        let claimed = herad.optimal_period(&chain, resources);
        match (&solution, oracle) {
            (None, None) => {}
            (None, Some(p)) => out.push(Mismatch::new(
                "FEASIBILITY",
                inst,
                format!("{label}: no solution but oracle finds period {p}"),
            )),
            (Some(s), None) => out.push(Mismatch::new(
                "FEASIBILITY",
                inst,
                format!(
                    "{label}: returns {} but oracle finds the pool infeasible",
                    s.decomposition()
                ),
            )),
            (Some(s), Some(opt)) => {
                check_solution(&mut out, inst, &chain, &label, s, opt, true);
                if claimed != Some(s.period(&chain)) {
                    out.push(Mismatch::new(
                        "HERAD_CLAIM",
                        inst,
                        format!(
                            "{label}: optimal_period reports {} but schedule yields {}",
                            fmt_period(claimed),
                            s.period(&chain)
                        ),
                    ));
                }
                if let Some((_, usages)) = &front {
                    let used = s.used_cores();
                    if !usages.contains(&used) {
                        out.push(Mismatch::new(
                            "HERAD_USAGE",
                            inst,
                            format!(
                                "{label}: usage ({}B, {}L) is not an optimal usage",
                                used.big, used.little
                            ),
                        ));
                    } else if pruning != Pruning::Aggressive {
                        let best = usages
                            .iter()
                            .copied()
                            .min_by_key(|u| (u.big, u.little))
                            .expect("front is non-empty when feasible");
                        if (used.big, used.little) != (best.big, best.little) {
                            out.push(Mismatch::new(
                                "HERAD_TIEBREAK",
                                inst,
                                format!(
                                    "{label}: usage ({}B, {}L) but ({}B, {}L) is optimal \
                                     with fewer cores",
                                    used.big, used.little, best.big, best.little
                                ),
                            ));
                        }
                    }
                }
            }
        }
    }

    let heuristics: Vec<(String, Box<dyn Scheduler>)> = vec![
        ("FERTAC".to_string(), Box::new(Fertac)),
        ("2CATAC".to_string(), Box::new(Twocatac::new())),
        (
            "2CATAC(budget=n)".to_string(),
            Box::new(Twocatac::with_node_budget(inst.len() as u64)),
        ),
    ];
    for (label, strategy) in &heuristics {
        match (strategy.schedule(&chain, resources), oracle) {
            (None, None) => {}
            (None, Some(p)) => out.push(Mismatch::new(
                "FEASIBILITY",
                inst,
                format!("{label}: no solution but oracle finds period {p}"),
            )),
            (Some(s), None) => out.push(Mismatch::new(
                "FEASIBILITY",
                inst,
                format!(
                    "{label}: returns {} but oracle finds the pool infeasible",
                    s.decomposition()
                ),
            )),
            (Some(s), Some(opt)) => check_solution(&mut out, inst, &chain, label, &s, opt, false),
        }
    }

    // OTAC is homogeneous-optimal: on the big-only (resp. little-only)
    // sub-pool its period must equal HeRAD's optimum for that sub-pool.
    for (otac, sub) in [
        (Otac::big(), Resources::new(inst.big, 0)),
        (Otac::little(), Resources::new(0, inst.little)),
    ] {
        let label = otac.name();
        let sub_opt = optimal_period(&chain, sub);
        match (otac.schedule(&chain, resources), sub_opt) {
            (None, None) => {}
            (None, Some(p)) => out.push(Mismatch::new(
                "OTAC_FEASIBILITY",
                inst,
                format!("{label}: no solution but sub-pool optimum is {p}"),
            )),
            (Some(s), None) => out.push(Mismatch::new(
                "OTAC_FEASIBILITY",
                inst,
                format!(
                    "{label}: returns {} on an infeasible sub-pool",
                    s.decomposition()
                ),
            )),
            (Some(s), Some(opt)) => {
                check_solution(&mut out, inst, &chain, label, &s, opt, false);
                let period = s.period(&chain);
                if period != opt {
                    out.push(Mismatch::new(
                        "OTAC_PERIOD",
                        inst,
                        format!("{label}: period {period} != sub-pool optimum {opt}"),
                    ));
                }
            }
        }
    }
    out
}

/// Metamorphic properties of the optimal period (computed by HeRAD):
///
/// * scaling every weight by `k` scales the optimal period by `k`;
/// * adding a core of either type never increases the optimal period;
/// * flipping a sequential task to replicable never increases it.
#[must_use]
pub fn check_metamorphic(inst: &Instance) -> Vec<Mismatch> {
    let mut out = Vec::new();
    let herad = Herad::new();
    let chain = inst.chain();
    let resources = inst.resources();
    let base = herad.optimal_period(&chain, resources);

    let k = 3u64;
    let mut scaled = inst.clone();
    for t in &mut scaled.tasks {
        t.weight_big *= k;
        t.weight_little *= k;
    }
    let scaled_period = herad.optimal_period(&scaled.chain(), resources);
    let expected = base.map(|p| Ratio::new(p.numer() * u128::from(k), p.denom()));
    if scaled_period != expected {
        out.push(Mismatch::new(
            "META_SCALE",
            inst,
            format!(
                "scaling weights by {k}: period {} but {} expected",
                fmt_period(scaled_period),
                fmt_period(expected)
            ),
        ));
    }

    for (label, extra) in [
        ("big", Resources::new(1, 0)),
        ("little", Resources::new(0, 1)),
    ] {
        let grown = Resources::new(resources.big + extra.big, resources.little + extra.little);
        let grown_period = herad.optimal_period(&chain, grown);
        let regressed = match (base, grown_period) {
            (Some(b), Some(g)) => g > b,
            // Feasible before, infeasible after adding a core: impossible.
            (Some(_), None) => true,
            (None, _) => false,
        };
        if regressed {
            out.push(Mismatch::new(
                "META_MORE_CORES",
                inst,
                format!(
                    "adding one {label} core: period {} worse than {}",
                    fmt_period(grown_period),
                    fmt_period(base)
                ),
            ));
        }
    }

    if let Some(pos) = inst.tasks.iter().position(|t| !t.replicable) {
        let mut relaxed = inst.clone();
        relaxed.tasks[pos].replicable = true;
        let relaxed_period = herad.optimal_period(&relaxed.chain(), resources);
        let regressed = match (base, relaxed_period) {
            (Some(b), Some(r)) => r > b,
            (Some(_), None) => true,
            (None, _) => false,
        };
        if regressed {
            out.push(Mismatch::new(
                "META_RELAX",
                inst,
                format!(
                    "making task {pos} replicable: period {} worse than {}",
                    fmt_period(relaxed_period),
                    fmt_period(base)
                ),
            ));
        }
    }
    out
}

/// Service-vs-library equivalence through a running [`Engine`]:
///
/// * every named strategy served by the engine returns stages bit-identical
///   to a direct library call (or the matching typed error);
/// * an immediate resubmission is answered from the cache with identical
///   stages;
/// * the undeadlined portfolio matches HeRAD's optimal period and reports
///   `complete`;
/// * zero-core pools map to [`amp_service::ServiceError::NoCores`].
#[must_use]
pub fn check_service(engine: &Engine, inst: &Instance) -> Vec<Mismatch> {
    let mut out = Vec::new();
    let chain = inst.chain();
    let resources = inst.resources();
    let empty_pool = inst.big + inst.little == 0;

    for strategy in paper_strategies() {
        let name = strategy.name();
        let request =
            ScheduleRequest::from_chain(0, &chain, resources, Policy::Strategy(name.to_string()));
        let response = engine.schedule_blocking(request.clone());
        let direct = strategy.schedule(&chain, resources);
        match (response.result, direct) {
            (Ok(outcome), Some(solution)) => {
                if outcome.stages != solution.stages() {
                    out.push(Mismatch::new(
                        "SERVICE_STAGES",
                        inst,
                        format!(
                            "{name}: service returned {} but library computes {}",
                            outcome.decomposition,
                            solution.decomposition()
                        ),
                    ));
                }
                if !outcome.complete {
                    out.push(Mismatch::new(
                        "SERVICE_COMPLETE",
                        inst,
                        format!("{name}: single-strategy outcome not marked complete"),
                    ));
                }
                let again = engine.schedule_blocking(request);
                match again.result {
                    Ok(cached) => {
                        if !cached.cache_hit {
                            out.push(Mismatch::new(
                                "SERVICE_CACHE",
                                inst,
                                format!("{name}: resubmission missed the cache"),
                            ));
                        }
                        if cached.stages != outcome.stages {
                            out.push(Mismatch::new(
                                "SERVICE_CACHE",
                                inst,
                                format!("{name}: cached stages differ from the first answer"),
                            ));
                        }
                    }
                    Err(e) => out.push(Mismatch::new(
                        "SERVICE_CACHE",
                        inst,
                        format!("{name}: resubmission failed with {e}"),
                    )),
                }
            }
            (Err(e), None) => {
                let expected = if empty_pool { "NO_CORES" } else { "INFEASIBLE" };
                if e.code() != expected {
                    out.push(Mismatch::new(
                        "SERVICE_ERROR",
                        inst,
                        format!("{name}: error code {} but {expected} expected", e.code()),
                    ));
                }
            }
            (Ok(outcome), None) => out.push(Mismatch::new(
                "SERVICE_DIVERGE",
                inst,
                format!(
                    "{name}: service returned {} but the library finds no solution",
                    outcome.decomposition
                ),
            )),
            (Err(e), Some(solution)) => out.push(Mismatch::new(
                "SERVICE_DIVERGE",
                inst,
                format!(
                    "{name}: service failed with {e} but the library computes {}",
                    solution.decomposition()
                ),
            )),
        }
    }

    let request = ScheduleRequest::from_chain(0, &chain, resources, Policy::Portfolio);
    let response = engine.schedule_blocking(request);
    let optimum = Herad::new().optimal_period(&chain, resources);
    match (response.result, optimum) {
        (Ok(outcome), Some(opt)) => {
            if !outcome.complete {
                out.push(Mismatch::new(
                    "PORTFOLIO_COMPLETE",
                    inst,
                    "undeadlined portfolio outcome not marked complete".to_string(),
                ));
            }
            let solution = outcome.solution();
            if let Err(e) = solution.validate(&chain) {
                out.push(Mismatch::new(
                    "PORTFOLIO_INVALID",
                    inst,
                    format!("portfolio solution invalid: {e}"),
                ));
            } else if solution.period(&chain) != opt {
                out.push(Mismatch::new(
                    "PORTFOLIO_PERIOD",
                    inst,
                    format!(
                        "portfolio period {} != HeRAD optimum {opt}",
                        solution.period(&chain)
                    ),
                ));
            }
        }
        (Err(e), None) => {
            let expected = if empty_pool { "NO_CORES" } else { "INFEASIBLE" };
            if e.code() != expected {
                out.push(Mismatch::new(
                    "SERVICE_ERROR",
                    inst,
                    format!("portfolio: error code {} but {expected} expected", e.code()),
                ));
            }
        }
        (Ok(outcome), None) => out.push(Mismatch::new(
            "SERVICE_DIVERGE",
            inst,
            format!(
                "portfolio returned {} on an infeasible pool",
                outcome.decomposition
            ),
        )),
        (Err(e), Some(opt)) => out.push(Mismatch::new(
            "SERVICE_DIVERGE",
            inst,
            format!("portfolio failed with {e} but the optimum is {opt}"),
        )),
    }
    out
}

/// Differential checks of the allocation-free hot paths against the
/// legacy allocating paths, for every paper strategy:
///
/// * `schedule_into` on a *deliberately dirtied* shared scratch — first
///   warmed on a larger shape, then on a smaller one — must return
///   bit-identical stages to a fresh `schedule` call (stale DP cells or
///   pooled stage buffers must never leak into the result);
/// * `schedule_many` over duplicated jobs must return the same solution
///   for every copy at every worker count, with no lost or reordered
///   entries.
///
/// Together with [`check_core`] (which pins `schedule` to the exhaustive
/// oracle) this transitively pins the hot paths to the oracle too.
#[must_use]
pub fn check_scratch(inst: &Instance) -> Vec<Mismatch> {
    let mut out = Vec::new();
    let chain = inst.chain();
    let resources = inst.resources();

    // One shared scratch, dirtied on a shape strictly larger than the
    // instance and then on a tiny one, so both the grow and the shrink
    // transitions happen before the instance itself is solved.
    let warm_large = TaskChain::new(
        (0..chain.len() + 3)
            .map(|i| Task::new(1 + i as u64 % 5, 2 + i as u64 % 7, i % 2 == 0))
            .collect(),
    );
    let warm_tiny = TaskChain::new(vec![Task::new(1, 1, true)]);
    let mut scratch = SchedScratch::new();
    let mut sink = Solution::empty();
    for strategy in paper_strategies() {
        let _ = strategy.schedule_into(
            &warm_large,
            Resources::new(inst.big + 2, inst.little + 2),
            &mut scratch,
            &mut sink,
        );
        let _ = strategy.schedule_into(&warm_tiny, Resources::new(1, 1), &mut scratch, &mut sink);
    }

    for strategy in paper_strategies() {
        let name = strategy.name();
        let legacy = strategy.schedule(&chain, resources);

        let mut warm = Solution::empty();
        let warm = strategy
            .schedule_into(&chain, resources, &mut scratch, &mut warm)
            .then_some(warm);
        if warm != legacy {
            out.push(Mismatch::new(
                "SCRATCH_DIVERGE",
                inst,
                format!(
                    "{name}: warm schedule_into returned {} but schedule computes {}",
                    fmt_solution(&warm),
                    fmt_solution(&legacy)
                ),
            ));
        }

        let jobs = vec![(&chain, resources); 3];
        for workers in [1, 2, 3] {
            let batch = schedule_many(&*strategy, &jobs, workers);
            if batch.len() != jobs.len() {
                out.push(Mismatch::new(
                    "BATCH_DIVERGE",
                    inst,
                    format!(
                        "{name}: schedule_many returned {} results for {} jobs",
                        batch.len(),
                        jobs.len()
                    ),
                ));
                continue;
            }
            for (i, got) in batch.iter().enumerate() {
                if got != &legacy {
                    out.push(Mismatch::new(
                        "BATCH_DIVERGE",
                        inst,
                        format!(
                            "{name}: job {i} at {workers} workers returned {} but schedule \
                             computes {}",
                            fmt_solution(got),
                            fmt_solution(&legacy)
                        ),
                    ));
                }
            }
        }
    }
    out
}

fn fmt_solution(s: &Option<Solution>) -> String {
    match s {
        Some(s) => s.decomposition(),
        None => "infeasible".to_string(),
    }
}

/// Differential checks of HeRAD's pool-delta warm starts: one scratch is
/// swept over the full `(b, ℓ)` grid up to one step *past* the instance
/// pool (so both axes exercise the grow path), in ascending, descending
/// and interleaved order. Every incremental solve — sub-table extraction
/// or pool-delta grow — must be bit-identical to a fresh allocating
/// solve, and the warm `optimal_period_with` must match the allocating
/// `optimal_period`. Descending and interleaved orders force rebuilds and
/// mixed grow/extract transitions; `Pruning::None` is checked on the
/// ascending order to pin the unpruned recurrence too.
#[must_use]
pub fn check_sweep(inst: &Instance) -> Vec<Mismatch> {
    let mut out = Vec::new();
    let chain = inst.chain();
    let ascending: Vec<(u64, u64)> = (0..=inst.big + 1)
        .flat_map(|b| (0..=inst.little + 1).map(move |l| (b, l)))
        .collect();
    let descending: Vec<(u64, u64)> = ascending.iter().rev().copied().collect();
    // Interleave the two ends so small and large pools alternate: every
    // step is either a rebuild-sized jump down or a grow-sized jump up.
    let mut interleaved = Vec::with_capacity(ascending.len());
    let (mut lo, mut hi) = (0usize, ascending.len());
    while lo < hi {
        interleaved.push(ascending[lo]);
        lo += 1;
        if lo < hi {
            hi -= 1;
            interleaved.push(ascending[hi]);
        }
    }
    let orders: [(&str, &[(u64, u64)]); 3] = [
        ("ascending", &ascending),
        ("descending", &descending),
        ("interleaved", &interleaved),
    ];
    for pruning in [Pruning::Aggressive, Pruning::None] {
        for (label, order) in orders {
            if pruning == Pruning::None && label != "ascending" {
                continue;
            }
            let herad = Herad::with_pruning(pruning);
            let mut scratch = SchedScratch::new();
            let mut warm = Solution::empty();
            for &(b, l) in order {
                let r = Resources::new(b, l);
                let fresh = herad.schedule(&chain, r);
                let got = herad
                    .schedule_into(&chain, r, &mut scratch, &mut warm)
                    .then(|| warm.clone());
                if got != fresh {
                    out.push(Mismatch::new(
                        "SWEEP_DIVERGE",
                        inst,
                        format!(
                            "{pruning:?} {label} sweep at {r}: warm {} but fresh solve computes {}",
                            fmt_solution(&got),
                            fmt_solution(&fresh)
                        ),
                    ));
                }
                let warm_period = herad.optimal_period_with(&chain, r, &mut scratch);
                let fresh_period = herad.optimal_period(&chain, r);
                if warm_period != fresh_period {
                    out.push(Mismatch::new(
                        "SWEEP_PERIOD",
                        inst,
                        format!(
                            "{pruning:?} {label} sweep at {r}: warm period {} but fresh is {}",
                            fmt_period(warm_period),
                            fmt_period(fresh_period)
                        ),
                    ));
                }
            }
        }
    }
    out
}

/// Differential checks of the solve-once chain tier's building block,
/// [`ChainTable`]: one table is cold-solved at the smallest pool, grown
/// in place across the ascending `(b, ℓ)` grid up to one step past the
/// instance pool, and every covered sub-pool answer must be bit-identical
/// to a fresh `Herad::new()` solve (`TIER_DIVERGE`) with the exact
/// optimal period (`TIER_PERIOD`). The fully-grown table is then
/// serialized, parsed back, checked byte-stable (`TIER_SNAPSHOT`), and
/// re-extracted over the grid in *descending* order — restored tables
/// must answer sub-pools just like live ones.
#[must_use]
pub fn check_chain_tier(inst: &Instance) -> Vec<Mismatch> {
    let mut out = Vec::new();
    if inst.tasks.is_empty() {
        return out;
    }
    let chain = inst.chain();
    let herad = Herad::new();
    let ascending: Vec<(u64, u64)> = (0..=inst.big + 1)
        .flat_map(|b| (0..=inst.little + 1).map(move |l| (b, l)))
        .collect();
    let mut table: Option<ChainTable> = None;
    let mut warm = Solution::empty();
    for &(b, l) in &ascending {
        let r = Resources::new(b, l);
        let t = match table.as_mut() {
            None => table.insert(ChainTable::solve(&chain, r)),
            Some(t) => {
                if !t.covers(r) {
                    t.grow_to(&chain, r);
                }
                t
            }
        };
        let got = t.extract(&chain, r, &mut warm).then(|| warm.clone());
        let fresh = herad.schedule(&chain, r);
        if got != fresh {
            out.push(Mismatch::new(
                "TIER_DIVERGE",
                inst,
                format!(
                    "grown table at {r}: extracted {} but fresh solve computes {}",
                    fmt_solution(&got),
                    fmt_solution(&fresh)
                ),
            ));
        }
        let period = t.period_at(r);
        let optimum = herad.optimal_period(&chain, r);
        if period != optimum {
            out.push(Mismatch::new(
                "TIER_PERIOD",
                inst,
                format!(
                    "grown table at {r}: period {} but the optimum is {}",
                    fmt_period(period),
                    fmt_period(optimum)
                ),
            ));
        }
    }

    // Snapshot round trip at the final (maximal) dimensions, then answer
    // the same grid from the restored table in descending order.
    let table = table.expect("grid is never empty");
    let text = table.render();
    let restored = match ChainTable::parse(&text) {
        Ok(restored) => restored,
        Err(e) => {
            out.push(Mismatch::new(
                "TIER_SNAPSHOT",
                inst,
                format!("serialized table does not parse back: {e}"),
            ));
            return out;
        }
    };
    if restored.render() != text {
        out.push(Mismatch::new(
            "TIER_SNAPSHOT",
            inst,
            "re-rendering a parsed table changes its bytes".to_string(),
        ));
    }
    for &(b, l) in ascending.iter().rev() {
        let r = Resources::new(b, l);
        let got = restored.extract(&chain, r, &mut warm).then(|| warm.clone());
        let fresh = herad.schedule(&chain, r);
        if got != fresh {
            out.push(Mismatch::new(
                "TIER_DIVERGE",
                inst,
                format!(
                    "restored table at {r}: extracted {} but fresh solve computes {}",
                    fmt_solution(&got),
                    fmt_solution(&fresh)
                ),
            ));
        }
        if restored.period_at(r) != herad.optimal_period(&chain, r) {
            out.push(Mismatch::new(
                "TIER_PERIOD",
                inst,
                format!(
                    "restored table at {r}: period {} but the optimum is {}",
                    fmt_period(restored.period_at(r)),
                    fmt_period(herad.optimal_period(&chain, r))
                ),
            ));
        }
    }
    out
}

/// Differential check of HeRAD's layer-parallel DP kernel against the
/// sequential driver: forced-parallel solves at several worker counts
/// (including more workers than table rows) must return bit-identical
/// `Solution`s — period, stage decomposition and tie-break core usage —
/// under every pruning policy.
#[must_use]
pub fn check_parallel(inst: &Instance) -> Vec<Mismatch> {
    let mut out = Vec::new();
    let chain = inst.chain();
    let resources = inst.resources();
    for pruning in [Pruning::Aggressive, Pruning::Lossless, Pruning::None] {
        let seq = Herad::with_pruning(pruning).schedule(&chain, resources);
        for workers in [2, 3, 8] {
            let par =
                Herad::with_pruning_and_parallelism(pruning, workers).schedule(&chain, resources);
            if par != seq {
                out.push(Mismatch::new(
                    "PAR_DIVERGE",
                    inst,
                    format!(
                        "{pruning:?} at {workers} workers: parallel {} but sequential computes {}",
                        fmt_solution(&par),
                        fmt_solution(&seq)
                    ),
                ));
            }
        }
    }
    out
}

/// Runs the library-level checks (differential + metamorphic + hot-path +
/// sweep warm-start + chain-tier + parallel-kernel + energy + reconfig)
/// on one instance.
#[must_use]
pub fn check_library(inst: &Instance) -> Vec<Mismatch> {
    let mut out = check_core(inst);
    out.extend(check_metamorphic(inst));
    out.extend(check_scratch(inst));
    out.extend(check_sweep(inst));
    out.extend(check_chain_tier(inst));
    out.extend(check_parallel(inst));
    out.extend(crate::energy::check_energy(inst));
    out.extend(crate::reconfig::check_reconfig(inst));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::TaskDef;

    fn paper_instance() -> Instance {
        Instance::new(
            "paper",
            vec![
                TaskDef::new(10, 25, false),
                TaskDef::new(40, 90, true),
                TaskDef::new(5, 12, false),
            ],
            2,
            2,
        )
    }

    #[test]
    fn clean_instances_produce_no_mismatches() {
        assert_eq!(check_library(&paper_instance()), vec![]);
    }

    #[test]
    fn empty_pool_agreement_holds() {
        let inst = Instance::new("starved", vec![TaskDef::new(3, 6, true)], 0, 0);
        assert_eq!(check_library(&inst), vec![]);
    }

    #[test]
    fn mismatch_display_is_compact() {
        let inst = paper_instance();
        let m = Mismatch::new("HERAD_PERIOD", &inst, "boom".to_string());
        let text = m.to_string();
        assert!(text.starts_with("[HERAD_PERIOD] paper:"), "{text}");
        assert!(text.ends_with("boom"), "{text}");
    }
}
