//! Re-export of the canonical JSON codec.
//!
//! The codec started here as the regression-corpus format and was promoted
//! to [`amp_core::json`] when the `amp-net` wire protocol adopted it; this
//! alias keeps the corpus code and any external users of
//! `amp_conformance::json` building unchanged.

pub use amp_core::json::{Json, JsonError};
