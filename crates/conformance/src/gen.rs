//! Shared instance generators: seeded `rand`-style generation for the
//! fuzz runner plus `proptest` strategies for every crate's property
//! tests.
//!
//! Both front-ends draw from the same distribution design. Plain uniform
//! sampling almost never produces the instances that break interval-mapping
//! schedulers — ties, degenerate weights, all-sequential chains,
//! single-task chains, starved pools — so the generator mixes *profiles*:
//!
//! * weights: uniform, all-equal, all-unit (the fully degenerate chain),
//!   little-faster-than-big (stresses the core-type tie-breaks);
//! * replicability: Bernoulli mixes, all-sequential, all-replicable;
//! * shape: single-task chains and zero-core-of-one-type pools appear
//!   with fixed probability; fully empty pools (the infeasible case) are
//!   generated occasionally so `None` agreement is also checked.

use crate::instance::{Instance, TaskDef};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Bounds for generated instances. The defaults keep the exhaustive
/// oracle fast (n ≤ 8, pools ≤ (4, 4)) — the regime the brute-force
/// search handles in well under a millisecond per instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GenConfig {
    /// Maximum chain length (inclusive). Minimum is always 1.
    pub max_tasks: usize,
    /// Maximum task weight (inclusive). Minimum is always 1.
    pub max_weight: u64,
    /// Maximum big-core count (inclusive).
    pub max_big: u64,
    /// Maximum little-core count (inclusive).
    pub max_little: u64,
    /// Whether zero-core pools (infeasible instances) may be generated.
    pub allow_empty_pool: bool,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            max_tasks: 8,
            max_weight: 12,
            max_big: 4,
            max_little: 4,
            allow_empty_pool: true,
        }
    }
}

impl GenConfig {
    /// A smaller configuration for per-crate property tests, where the
    /// oracle runs inside `proptest` cases (n ≤ 6, pools ≤ (3, 3)).
    #[must_use]
    pub fn small() -> Self {
        GenConfig {
            max_tasks: 6,
            max_weight: 10,
            max_big: 3,
            max_little: 3,
            allow_empty_pool: true,
        }
    }
}

/// Weight profile of one generated chain.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum WeightProfile {
    /// Independent uniform weights; little ≥ big (the paper's shape).
    Uniform,
    /// Every task has the same (big, little) weights — maximal ties.
    Equal,
    /// Every weight is 1 — the fully degenerate chain.
    Unit,
    /// Little cores are *faster* than big ones (inverted heterogeneity).
    LittleFast,
}

const WEIGHT_PROFILES: [WeightProfile; 4] = [
    WeightProfile::Uniform,
    WeightProfile::Equal,
    WeightProfile::Unit,
    WeightProfile::LittleFast,
];

/// Deterministically generates the instance for one fuzz seed.
///
/// The full instance — length, profile, weights, replicability, pool —
/// is a pure function of `(seed, cfg)`, so a failing seed printed by the
/// runner is always reproducible.
#[must_use]
pub fn instance_for_seed(seed: u64, cfg: &GenConfig) -> Instance {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = if rng.gen_bool(0.15) {
        1 // single-task chains punch above their weight in bug-finding
    } else {
        rng.gen_range(1..=cfg.max_tasks.max(1))
    };

    let profile = WEIGHT_PROFILES[rng.gen_range(0..WEIGHT_PROFILES.len())];
    let (eq_big, eq_little) = (
        rng.gen_range(1..=cfg.max_weight),
        rng.gen_range(1..=cfg.max_weight),
    );
    // Replicability: 0.0 = all sequential, 1.0 = all replicable.
    let rep_p = [0.0, 0.5, 1.0][rng.gen_range(0..3usize)];

    let tasks = (0..n)
        .map(|_| {
            let (wb, wl) = match profile {
                WeightProfile::Uniform => {
                    let wb = rng.gen_range(1..=cfg.max_weight);
                    let factor = rng.gen_range(1..=4u64);
                    (wb, (wb * factor).min(cfg.max_weight.max(wb * factor)))
                }
                WeightProfile::Equal => (eq_big, eq_little),
                WeightProfile::Unit => (1, 1),
                WeightProfile::LittleFast => {
                    let wl = rng.gen_range(1..=cfg.max_weight);
                    let factor = rng.gen_range(1..=4u64);
                    (wl * factor, wl)
                }
            };
            TaskDef::new(wb, wl, rng.gen_bool(rep_p))
        })
        .collect();

    let (big, little) = loop {
        let big = rng.gen_range(0..=cfg.max_big);
        let little = rng.gen_range(0..=cfg.max_little);
        if big + little > 0 || cfg.allow_empty_pool {
            break (big, little);
        }
    };
    Instance::new(format!("seed-{seed}"), tasks, big, little)
}

/// A proptest strategy for a single task definition.
#[must_use]
pub fn task_strategy(max_weight: u64) -> impl Strategy<Value = TaskDef> {
    (1..=max_weight, 1..=max_weight, any::<bool>())
        .prop_map(|(wb, wl, rep)| TaskDef::new(wb, wl, rep))
}

/// A proptest strategy over whole instances, mixing uniform chains with
/// the degenerate profiles (equal weights, unit weights, all-sequential,
/// all-replicable, single task). Pools always contain at least one core —
/// property tests usually want feasible instances; the runner covers the
/// empty-pool agreement case separately.
#[must_use]
pub fn instance_strategy(cfg: GenConfig) -> impl Strategy<Value = Instance> {
    let max_weight = cfg.max_weight;
    (
        0..6u8, // profile selector
        prop::collection::vec(task_strategy(max_weight), 1..=cfg.max_tasks),
        (1..=max_weight, 1..=max_weight),
        0..=cfg.max_big,
        0..=cfg.max_little,
    )
        .prop_map(
            move |(profile, mut tasks, (eq_big, eq_little), big, little)| {
                match profile {
                    0 => {} // uniform: keep the drawn tasks as they are
                    1 => {
                        for t in &mut tasks {
                            t.weight_big = eq_big;
                            t.weight_little = eq_little;
                        }
                    }
                    2 => {
                        for t in &mut tasks {
                            t.weight_big = 1;
                            t.weight_little = 1;
                        }
                    }
                    3 => {
                        for t in &mut tasks {
                            t.replicable = false;
                        }
                    }
                    4 => {
                        for t in &mut tasks {
                            t.replicable = true;
                        }
                    }
                    _ => tasks.truncate(1),
                }
                Instance::new("prop", tasks, big, little)
            },
        )
        .prop_filter("pools must hold at least one core", |inst| {
            inst.big + inst.little > 0
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_generation_is_deterministic() {
        let cfg = GenConfig::default();
        for seed in 0..50 {
            assert_eq!(instance_for_seed(seed, &cfg), instance_for_seed(seed, &cfg));
        }
    }

    #[test]
    fn generated_instances_respect_bounds() {
        let cfg = GenConfig::default();
        for seed in 0..500 {
            let inst = instance_for_seed(seed, &cfg);
            assert!(!inst.tasks.is_empty() && inst.tasks.len() <= cfg.max_tasks);
            assert!(inst.big <= cfg.max_big && inst.little <= cfg.max_little);
            for t in &inst.tasks {
                assert!(t.weight_big >= 1 && t.weight_little >= 1);
            }
            // The chain constructor must accept every generated instance.
            let _ = inst.chain();
        }
    }

    #[test]
    fn profiles_actually_appear() {
        let cfg = GenConfig::default();
        let mut single = 0;
        let mut empty_pool = 0;
        let mut all_seq = 0;
        let mut all_rep = 0;
        let mut unit = 0;
        for seed in 0..2000 {
            let inst = instance_for_seed(seed, &cfg);
            single += usize::from(inst.len() == 1);
            empty_pool += usize::from(inst.big + inst.little == 0);
            all_seq += usize::from(inst.tasks.iter().all(|t| !t.replicable));
            all_rep += usize::from(inst.tasks.iter().all(|t| t.replicable));
            unit += usize::from(
                inst.tasks
                    .iter()
                    .all(|t| t.weight_big == 1 && t.weight_little == 1),
            );
        }
        assert!(single > 100, "single-task chains too rare: {single}");
        assert!(empty_pool > 10, "empty pools too rare: {empty_pool}");
        assert!(all_seq > 100, "all-sequential chains too rare: {all_seq}");
        assert!(all_rep > 100, "all-replicable chains too rare: {all_rep}");
        assert!(unit > 100, "unit-weight chains too rare: {unit}");
    }
}
