//! Conformance battery for live reconfiguration: the incremental
//! re-solve path and the migration's zero-frame-loss contract.
//!
//! A reconfiguration re-solves the chain on a changed pool through the
//! grown [`ChainTable`] and migrates the pipeline at a frame boundary.
//! For every instance this battery derives a pool *script* — the original
//! pool, a shrunken pool, a grown pool, and back — and pins:
//!
//! * **`RECONF_DIVERGE`** — each scripted re-solve (cold solve, in-place
//!   grow, or pure extraction) must be bit-identical to a fresh
//!   `Herad::new()` solve on that pool, with the exact optimal period;
//! * **`RECONF_LOST`** — simulating the migrations with the deterministic
//!   epoch-barrier mirror ([`simulate_reconfig`]) must account for every
//!   frame exactly once, in order: no lost, duplicated or reordered
//!   departures across any boundary.

use crate::checks::Mismatch;
use crate::instance::Instance;
use amp_core::sched::{ChainTable, Herad, Scheduler};
use amp_core::{Ratio, Resources, Solution};
use amp_sim::{simulate_reconfig, SimConfig};

/// Frames pushed through the simulated migration script.
const SIM_FRAMES: u64 = 400;

fn fmt_period(p: Option<Ratio>) -> String {
    match p {
        Some(p) => format!("{p}"),
        None => "infeasible".to_string(),
    }
}

fn fmt_solution(s: &Option<Solution>) -> String {
    match s {
        Some(s) => s.decomposition(),
        None => "infeasible".to_string(),
    }
}

/// The scripted pool sequence for an instance: original → shrink → grow →
/// original. Shrinking halves each axis (rounding the big side up so a
/// non-empty pool stays non-empty); growing adds one core of each type.
#[must_use]
pub fn pool_script(inst: &Instance) -> Vec<Resources> {
    let p0 = Resources::new(inst.big, inst.little);
    let p1 = Resources::new(inst.big.div_ceil(2), inst.little / 2);
    let p2 = Resources::new(inst.big + 1, inst.little + 1);
    vec![p0, p1, p2, p0]
}

/// Runs the reconfiguration battery on one instance.
#[must_use]
pub fn check_reconfig(inst: &Instance) -> Vec<Mismatch> {
    let mut out = Vec::new();
    if inst.tasks.is_empty() {
        return out;
    }
    let chain = inst.chain();
    let herad = Herad::new();
    let script = pool_script(inst);

    // 1. The incremental re-solve path, exactly as the runtime drives it:
    // cold solve at the first pool, then grow/extract per script step.
    let mut table: Option<ChainTable> = None;
    let mut warm = Solution::empty();
    let mut feasible: Vec<Solution> = Vec::new();
    for &r in &script {
        let t = match table.as_mut() {
            None => table.insert(ChainTable::solve(&chain, r)),
            Some(t) => {
                if !t.covers(r) {
                    t.grow_to(&chain, r);
                }
                t
            }
        };
        let got = t.extract(&chain, r, &mut warm).then(|| warm.clone());
        let fresh = herad.schedule(&chain, r);
        if got != fresh {
            out.push(Mismatch::new(
                "RECONF_DIVERGE",
                inst,
                format!(
                    "script pool {r}: incremental re-solve returned {} but a fresh solve \
                     computes {}",
                    fmt_solution(&got),
                    fmt_solution(&fresh)
                ),
            ));
        }
        let period = t.period_at(r);
        let optimum = herad.optimal_period(&chain, r);
        if period != optimum {
            out.push(Mismatch::new(
                "RECONF_DIVERGE",
                inst,
                format!(
                    "script pool {r}: table period {} but the optimum is {}",
                    fmt_period(period),
                    fmt_period(optimum)
                ),
            ));
        }
        if let Some(s) = got {
            feasible.push(s);
        }
    }

    // 2. The migration contract on the epoch-barrier mirror: boundaries
    // at even fractions of the run, one per feasible script transition.
    if feasible.is_empty() {
        return out;
    }
    let initial = feasible[0].clone();
    let steps: Vec<(u64, Solution)> = feasible[1..]
        .iter()
        .enumerate()
        .map(|(j, s)| {
            let boundary = SIM_FRAMES * (j as u64 + 1) / feasible.len() as u64;
            (boundary, s.clone())
        })
        .collect();
    let report = simulate_reconfig(
        &chain,
        &initial,
        &steps,
        &SimConfig::with_frames(SIM_FRAMES),
    );
    if report.departures.len() as u64 != SIM_FRAMES {
        out.push(Mismatch::new(
            "RECONF_LOST",
            inst,
            format!(
                "{} departures for {SIM_FRAMES} frames across {} migration(s)",
                report.departures.len(),
                steps.len()
            ),
        ));
    }
    if let Some(w) = report.departures.windows(2).position(|w| w[0] > w[1]) {
        out.push(Mismatch::new(
            "RECONF_LOST",
            inst,
            format!(
                "departures reordered at frame {}: {} then {}",
                w,
                report.departures[w],
                report.departures[w + 1]
            ),
        ));
    }
    if report.boundaries.len() != steps.len() {
        out.push(Mismatch::new(
            "RECONF_LOST",
            inst,
            format!(
                "{} boundaries reported for {} migration step(s)",
                report.boundaries.len(),
                steps.len()
            ),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::TaskDef;

    #[test]
    fn paper_instance_is_clean() {
        let inst = Instance::new(
            "paper",
            vec![
                TaskDef::new(10, 25, false),
                TaskDef::new(40, 90, true),
                TaskDef::new(5, 12, false),
            ],
            2,
            2,
        );
        assert_eq!(check_reconfig(&inst), vec![]);
    }

    #[test]
    fn starved_pools_are_skipped_cleanly() {
        let inst = Instance::new("starved", vec![TaskDef::new(3, 6, true)], 0, 0);
        // The original pool is infeasible; only the grown step schedules.
        assert_eq!(check_reconfig(&inst), vec![]);
    }

    #[test]
    fn pool_script_shrinks_and_grows() {
        let inst = Instance::new("s", vec![TaskDef::new(1, 1, true)], 3, 2);
        let script = pool_script(&inst);
        assert_eq!(script.len(), 4);
        assert_eq!((script[0].big, script[0].little), (3, 2));
        assert_eq!((script[1].big, script[1].little), (2, 1));
        assert_eq!((script[2].big, script[2].little), (4, 3));
        assert_eq!(script[3], script[0]);
    }
}
