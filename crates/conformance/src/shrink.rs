//! Greedy instance shrinking.
//!
//! The vendored `proptest` engine has no shrinking, so the fuzz runner
//! minimizes failing instances itself: apply one simplification at a
//! time, keep it if the failure predicate still holds, and repeat until
//! no single simplification preserves the failure (a local fixpoint).

use crate::instance::Instance;

/// One-step simplifications, in preference order: structurally smaller
/// first (drop a task, drop a core), then value-smaller (halve a weight,
/// set it to 1, clear a replicable flag).
fn candidates(inst: &Instance) -> Vec<Instance> {
    let mut out = Vec::new();
    if inst.len() > 1 {
        for i in 0..inst.len() {
            let mut c = inst.clone();
            c.tasks.remove(i);
            out.push(c);
        }
    }
    if inst.big > 0 {
        let mut c = inst.clone();
        c.big -= 1;
        out.push(c);
    }
    if inst.little > 0 {
        let mut c = inst.clone();
        c.little -= 1;
        out.push(c);
    }
    for i in 0..inst.len() {
        let t = inst.tasks[i];
        if t.weight_big > 1 {
            let mut c = inst.clone();
            c.tasks[i].weight_big = (t.weight_big / 2).max(1);
            out.push(c);
            let mut c = inst.clone();
            c.tasks[i].weight_big = 1;
            out.push(c);
        }
        if t.weight_little > 1 {
            let mut c = inst.clone();
            c.tasks[i].weight_little = (t.weight_little / 2).max(1);
            out.push(c);
            let mut c = inst.clone();
            c.tasks[i].weight_little = 1;
            out.push(c);
        }
        if t.replicable {
            let mut c = inst.clone();
            c.tasks[i].replicable = false;
            out.push(c);
        }
    }
    out
}

/// Greedily minimizes `inst` while `still_fails` holds, renaming the
/// result `<name>-shrunk`. The predicate is re-run on every candidate, so
/// it should be the same check that flagged the original failure.
#[must_use]
pub fn shrink(inst: &Instance, still_fails: &dyn Fn(&Instance) -> bool) -> Instance {
    let mut current = inst.clone();
    while let Some(next) = candidates(&current).into_iter().find(|c| still_fails(c)) {
        current = next;
    }
    current.name = format!("{}-shrunk", inst.name);
    current
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::TaskDef;

    #[test]
    fn shrinks_to_a_minimal_failing_instance() {
        // Failure predicate: "has at least 2 tasks and at least one big core".
        let fails = |i: &Instance| i.len() >= 2 && i.big >= 1;
        let start = Instance::new(
            "case",
            vec![
                TaskDef::new(9, 11, true),
                TaskDef::new(4, 7, false),
                TaskDef::new(6, 6, true),
            ],
            3,
            2,
        );
        let small = shrink(&start, &fails);
        assert_eq!(small.name, "case-shrunk");
        assert!(fails(&small));
        assert_eq!(small.len(), 2, "cannot drop below two tasks");
        assert_eq!(small.big, 1, "cannot drop below one big core");
        assert_eq!(small.little, 0);
        for t in &small.tasks {
            assert_eq!((t.weight_big, t.weight_little, t.replicable), (1, 1, false));
        }
    }

    #[test]
    fn non_shrinkable_failure_is_returned_unchanged_modulo_name() {
        let fails = |_: &Instance| false; // nothing else fails => keep original
        let start = Instance::new("fixed", vec![TaskDef::new(2, 3, true)], 1, 1);
        let out = shrink(&start, &fails);
        assert_eq!(out.tasks, start.tasks);
        assert_eq!((out.big, out.little), (start.big, start.little));
        assert_eq!(out.name, "fixed-shrunk");
    }
}
