//! The energy-conformance battery: a brute-force energy oracle plus
//! differential and structural checks of the energy-aware strategies.
//!
//! The core crate's [`EnergyDp`] rests on a lemma — at a fixed operating
//! period the *minimal* feasible core count is always energy-optimal for
//! a stage, which makes total energy separable over HeRAD's DP lattice.
//! The oracle here deliberately does **not** assume that lemma: it
//! enumerates every interval decomposition, every core type and every
//! replication count (not just the minimal one), scoring exact
//! milliwatts. Agreement between the two is therefore an independent
//! proof of the lemma on every fuzzed instance, not a restatement of it.
//!
//! Mismatch codes:
//!
//! * `ENERGY_DIVERGE` — the optimal DP disagrees with the oracle on
//!   feasibility or on the minimal energy, a greedy strategy reports
//!   *less* energy than the exhaustive optimum, or the Pareto front
//!   violates a structural invariant (unsorted, dominated point, wrong
//!   min-period endpoint);
//! * `ENERGY_INFEASIBLE` — a strategy returned a schedule that is not
//!   actually usable: invalid stages, pool overuse, a period above the
//!   requested target, or a reported energy that does not match an
//!   independent recomputation.

use crate::checks::Mismatch;
use crate::instance::Instance;
use amp_core::sched::{
    energy_strategies, pareto_front, EnergyDp, EnergyScheduler, Herad, Scheduler,
};
use amp_core::{CoreType, MilliPower, PowerModel, Ratio, Resources, Solution, Stage, TaskChain};

/// Exact sum of two finite energies (infinite absorbs). Local because the
/// core crate keeps its rational adder private: energies are the only
/// `Ratio`s the workspace ever sums, and each summing site states its own
/// overflow envelope. Here stage powers have denominators bounded by
/// `1000 · max_weight · target_numer`, far inside `u128`.
fn add(a: Ratio, b: Ratio) -> Ratio {
    if a.is_infinite() || b.is_infinite() {
        return Ratio::INFINITY;
    }
    Ratio::new(
        a.numer() * b.denom() + b.numer() * a.denom(),
        a.denom() * b.denom(),
    )
}

/// Exhaustive minimal steady-state power (milliwatts) at operating period
/// `target`, with one witness schedule. `None` when no decomposition
/// meets the target (or the target itself is degenerate — zero or
/// infinite, matching the [`EnergyScheduler`] contract).
///
/// Unlike the period oracle this enumerates *every* replication count of
/// every stage, so it would detect a world where over-replicating
/// (beyond the minimal feasible count) ever paid off — the exact
/// assumption [`EnergyDp`] builds on. Branch-and-bound on the
/// accumulated energy keeps the walk tame at conformance sizes.
#[must_use]
pub fn energy_oracle(
    chain: &TaskChain,
    resources: Resources,
    power: &MilliPower,
    target: Ratio,
) -> Option<(Ratio, Solution)> {
    if !target.is_finite() || target.is_zero() || chain.is_empty() {
        return None;
    }
    let mut best: Option<(Ratio, Solution)> = None;
    let mut stages = Vec::new();
    explore(
        chain,
        power,
        target,
        0,
        resources,
        Ratio::ZERO,
        &mut stages,
        &mut best,
    );
    best
}

#[allow(clippy::too_many_arguments)]
fn explore(
    chain: &TaskChain,
    power: &MilliPower,
    target: Ratio,
    start: usize,
    left: Resources,
    acc: Ratio,
    stages: &mut Vec<Stage>,
    best: &mut Option<(Ratio, Solution)>,
) {
    let n = chain.len();
    if start == n {
        if best.as_ref().is_none_or(|(be, _)| acc < *be) {
            *best = Some((acc, Solution::new(stages.clone())));
        }
        return;
    }
    // Energy only grows along a branch: a prefix at or above the best is
    // dead.
    if best.as_ref().is_some_and(|(be, _)| acc >= *be) {
        return;
    }
    for end in start..n {
        for v in CoreType::BOTH {
            let rep = chain.is_replicable(start, end);
            let max_r = if rep { left.of(v) } else { left.of(v).min(1) };
            for r in 1..=max_r {
                if chain.stage_weight(start, end, r, v) > target {
                    continue; // misses the target; more replicas may still fit
                }
                let stage = Stage::new(start, end, r, v);
                let e = add(acc, power.stage_power_mw(chain, &stage, target));
                stages.push(stage);
                explore(
                    chain,
                    power,
                    target,
                    end + 1,
                    left.minus(v, r),
                    e,
                    stages,
                    best,
                );
                stages.pop();
            }
        }
    }
}

/// Validates one strategy's claimed schedule at `target`: stage validity,
/// pool budget, the throughput constraint, and the honesty of the
/// reported energy against an independent recomputation.
#[allow(clippy::too_many_arguments)]
fn check_claim(
    out: &mut Vec<Mismatch>,
    inst: &Instance,
    chain: &TaskChain,
    power: &MilliPower,
    label: &str,
    solution: &Solution,
    reported: Ratio,
    target: Ratio,
) -> bool {
    if let Err(e) = solution.validate(chain) {
        out.push(Mismatch::new(
            "ENERGY_INFEASIBLE",
            inst,
            format!("{label}: invalid schedule at target {target}: {e}"),
        ));
        return false;
    }
    let used = solution.used_cores();
    if used.big > inst.big || used.little > inst.little {
        out.push(Mismatch::new(
            "ENERGY_INFEASIBLE",
            inst,
            format!(
                "{label}: uses ({}B, {}L) of ({}B, {}L) at target {target}",
                used.big, used.little, inst.big, inst.little
            ),
        ));
        return false;
    }
    let period = solution.period(chain);
    if period > target {
        out.push(Mismatch::new(
            "ENERGY_INFEASIBLE",
            inst,
            format!("{label}: period {period} exceeds the target {target}"),
        ));
        return false;
    }
    let recomputed = power.solution_power_mw(chain, solution, target);
    if recomputed != reported {
        out.push(Mismatch::new(
            "ENERGY_INFEASIBLE",
            inst,
            format!(
                "{label}: reports {reported} mW but the schedule draws {recomputed} mW at target {target}"
            ),
        ));
        return false;
    }
    true
}

/// The energy battery for one instance.
///
/// * [`EnergyDp`] must agree with the oracle on feasibility **and** on
///   the minimal energy at every probed target (the throughput optimum
///   `T*`, a mid-range `3/2·T*`, and a relaxed `3·T*`).
/// * Every energy strategy's claim must be usable and honest (see
///   [`check_claim`]), and never *cheaper* than the exhaustive optimum.
/// * On unschedulable pools every strategy and the oracle must agree the
///   answer is `None`, and the Pareto front must be empty.
/// * The Pareto front must start at HeRAD's optimal period, ascend
///   strictly in period, descend strictly in energy, and every point
///   must be feasible at its own period with an honest energy figure.
#[must_use]
pub fn check_energy(inst: &Instance) -> Vec<Mismatch> {
    let mut out = Vec::new();
    let chain = inst.chain();
    let resources = inst.resources();
    let model = PowerModel::typical();
    let power = model.to_milli();

    let Some(t_opt) = Herad::new()
        .schedule(&chain, resources)
        .map(|s| s.period(&chain))
    else {
        // Unschedulable even with no throughput constraint to speak of: a
        // generous target (total big work, clamped to ≥ 1) must not
        // tempt anyone into inventing a schedule.
        let probe = Ratio::from_int(
            inst.tasks
                .iter()
                .map(|t| t.weight_big.max(t.weight_little))
                .sum::<u64>()
                .max(1),
        );
        if let Some((e, _)) = energy_oracle(&chain, resources, &power, probe) {
            out.push(Mismatch::new(
                "ENERGY_DIVERGE",
                inst,
                format!("oracle schedules an unschedulable instance ({e} mW at {probe})"),
            ));
        }
        for s in energy_strategies() {
            if s.schedule_energy(&chain, resources, &power, probe)
                .is_some()
            {
                out.push(Mismatch::new(
                    "ENERGY_INFEASIBLE",
                    inst,
                    format!("{} invented a schedule on an unschedulable pool", s.name()),
                ));
            }
        }
        if !pareto_front(&chain, resources, &model).is_empty() {
            out.push(Mismatch::new(
                "ENERGY_DIVERGE",
                inst,
                "nonempty Pareto front on an unschedulable instance".to_string(),
            ));
        }
        return out;
    };

    let targets = [
        t_opt,
        Ratio::new(t_opt.numer() * 3, t_opt.denom() * 2),
        Ratio::new(t_opt.numer() * 3, t_opt.denom()),
    ];
    for target in targets {
        let oracle = energy_oracle(&chain, resources, &power, target);
        let dp = EnergyDp::new().schedule_energy(&chain, resources, &power, target);
        match (&oracle, &dp) {
            (None, None) => {}
            (Some((oe, _)), None) => out.push(Mismatch::new(
                "ENERGY_DIVERGE",
                inst,
                format!("EnergyDP infeasible at {target} where the oracle draws {oe} mW"),
            )),
            (None, Some((_, de))) => out.push(Mismatch::new(
                "ENERGY_DIVERGE",
                inst,
                format!("EnergyDP claims {de} mW at {target} on an oracle-infeasible target"),
            )),
            (Some((oe, _)), Some((_, de))) => {
                if de != oe {
                    out.push(Mismatch::new(
                        "ENERGY_DIVERGE",
                        inst,
                        format!("EnergyDP draws {de} mW at {target}, oracle optimum is {oe} mW"),
                    ));
                }
            }
        }
        for s in energy_strategies() {
            let Some((sol, e)) = s.schedule_energy(&chain, resources, &power, target) else {
                continue; // greedy incompleteness is allowed; the DP is pinned above
            };
            if !check_claim(&mut out, inst, &chain, &power, s.name(), &sol, e, target) {
                continue;
            }
            match &oracle {
                Some((oe, _)) if e < *oe => out.push(Mismatch::new(
                    "ENERGY_DIVERGE",
                    inst,
                    format!(
                        "{} draws {e} mW at {target}, below the exhaustive optimum {oe} mW",
                        s.name()
                    ),
                )),
                // A valid, honest schedule on an oracle-infeasible target
                // means the oracle's walk is broken, not the strategy.
                None => out.push(Mismatch::new(
                    "ENERGY_DIVERGE",
                    inst,
                    format!(
                        "{} found a valid schedule at {target} the oracle missed",
                        s.name()
                    ),
                )),
                _ => {}
            }
        }
    }

    let front = pareto_front(&chain, resources, &model);
    if front.is_empty() {
        out.push(Mismatch::new(
            "ENERGY_DIVERGE",
            inst,
            "empty Pareto front on a schedulable instance".to_string(),
        ));
        return out;
    }
    if front[0].period != t_opt {
        out.push(Mismatch::new(
            "ENERGY_DIVERGE",
            inst,
            format!(
                "front starts at {} instead of the optimal period {t_opt}",
                front[0].period
            ),
        ));
    }
    for w in front.windows(2) {
        if w[0].period >= w[1].period || w[0].energy_mw <= w[1].energy_mw {
            out.push(Mismatch::new(
                "ENERGY_DIVERGE",
                inst,
                format!(
                    "front not strictly trading off: ({}, {} mW) then ({}, {} mW)",
                    w[0].period, w[0].energy_mw, w[1].period, w[1].energy_mw
                ),
            ));
        }
    }
    for p in &front {
        check_claim(
            &mut out,
            inst,
            &chain,
            &power,
            "pareto_front",
            &p.solution,
            p.energy_mw,
            p.period,
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{instance_for_seed, GenConfig};
    use crate::instance::TaskDef;

    fn paper_like() -> Instance {
        Instance::new(
            "energy-paper-like",
            vec![
                TaskDef::new(3, 6, false),
                TaskDef::new(2, 4, true),
                TaskDef::new(4, 8, true),
            ],
            2,
            2,
        )
    }

    #[test]
    fn oracle_matches_the_dp_on_the_known_instance() {
        let inst = paper_like();
        let chain = inst.chain();
        let power = MilliPower::typical();
        let t_opt = Herad::new()
            .schedule(&chain, inst.resources())
            .unwrap()
            .period(&chain);
        for k in 1..=4u128 {
            let target = Ratio::new(t_opt.numer() * k, t_opt.denom());
            let (oe, osol) = energy_oracle(&chain, inst.resources(), &power, target).unwrap();
            let (_, de) = EnergyDp::new()
                .schedule_energy(&chain, inst.resources(), &power, target)
                .unwrap();
            assert_eq!(oe, de, "target {target}");
            assert!(osol.validate(&chain).is_ok());
            assert_eq!(power.solution_power_mw(&chain, &osol, target), oe);
        }
    }

    #[test]
    fn oracle_rejects_degenerate_targets_and_empty_pools() {
        let inst = paper_like();
        let chain = inst.chain();
        let power = MilliPower::typical();
        assert!(energy_oracle(&chain, inst.resources(), &power, Ratio::ZERO).is_none());
        assert!(energy_oracle(&chain, inst.resources(), &power, Ratio::INFINITY).is_none());
        assert!(
            energy_oracle(&chain, Resources::new(0, 0), &power, Ratio::from_int(100)).is_none()
        );
    }

    #[test]
    fn battery_is_clean_on_the_known_instance() {
        let found = check_energy(&paper_like());
        assert!(found.is_empty(), "{found:#?}");
    }

    #[test]
    fn battery_is_clean_on_seeded_instances() {
        let cfg = GenConfig::small();
        for seed in 0..25 {
            let inst = instance_for_seed(seed, &cfg);
            let found = check_energy(&inst);
            assert!(found.is_empty(), "seed {seed}: {found:#?}");
        }
    }

    #[test]
    fn battery_flags_nothing_on_an_unschedulable_pool() {
        let inst = Instance::new("no-cores", vec![TaskDef::new(2, 3, true)], 0, 0);
        let found = check_energy(&inst);
        assert!(found.is_empty(), "{found:#?}");
    }

    #[test]
    fn energy_sums_are_exact() {
        assert_eq!(
            add(Ratio::new(1, 3), Ratio::new(1, 6)),
            Ratio::new(1, 2),
            "rational sum must normalize"
        );
        assert!(add(Ratio::INFINITY, Ratio::ZERO).is_infinite());
    }
}
