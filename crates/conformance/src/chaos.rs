//! Fault-injection (chaos) checks for the amp-service engine.
//!
//! A [`ChaosScheduler`] wraps every strategy the engine runs — through
//! the same [`EngineConfig::fault_wrap`] seam the service's own
//! panic-safety tests use — and injects panics, delays and invalid
//! solutions on a **deterministic schedule**: the fault decision is a
//! pure FNV-1a hash of the chaos seed, the strategy name and the full
//! instance content (weights, replicability, pool). The same seed and
//! instance stream therefore always injects the same faults, so a CI
//! failure reproduces locally by rerunning the same seeds.
//!
//! [`ChaosHarness::check`] drives one instance through the chaotic
//! engine and asserts the robustness invariants the engine documents:
//!
//! * exactly one response per accepted request, errors limited to the
//!   typed `INTERNAL` (caught panic) and `INFEASIBLE` codes;
//! * every served solution validates against the chain and the pool —
//!   injected invalid solutions never escape;
//! * the cache never stores incomplete or invalid outcomes: a replay is
//!   a cache hit exactly when the first run was complete, and a cached
//!   replay is bit-identical;
//! * [`ChaosHarness::final_accounting`] — the metrics account for every
//!   injected fault (panics and invalid solutions each reconcile
//!   exactly), and the worker pool is back at its configured size.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::checks::Mismatch;
use crate::instance::Instance;
use amp_core::sched::{SchedScratch, Scheduler};
use amp_core::{CoreType, Resources, Solution, Stage, TaskChain};
use amp_service::{
    Engine, EngineConfig, Policy, PortfolioConfig, ScheduleRequest, ServiceError, StrategyWrap,
};

/// Injection rates and determinism seed for one chaos run.
#[derive(Clone, Copy, Debug)]
pub struct ChaosConfig {
    /// Salt for the fault hash: same seed ⇒ same injection schedule.
    pub seed: u64,
    /// Per-mille of compute calls that panic.
    pub panic_per_mille: u64,
    /// Per-mille of compute calls delayed by [`ChaosConfig::delay`].
    pub delay_per_mille: u64,
    /// Per-mille of compute calls returning an invalid solution.
    pub invalid_per_mille: u64,
    /// Length of an injected delay.
    pub delay: Duration,
    /// Engine worker threads for the chaotic engine.
    pub workers: usize,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            seed: 0xC4A05,
            panic_per_mille: 60,
            delay_per_mille: 20,
            invalid_per_mille: 60,
            delay: Duration::from_micros(500),
            workers: 2,
        }
    }
}

/// How many faults of each kind actually fired, counted at the
/// injection site (inside the wrapped scheduler, before the fault takes
/// effect) so the tally is exact even when a panic unwinds the caller.
#[derive(Debug, Default)]
pub struct ChaosCounters {
    /// Panics injected (and immediately raised).
    pub panics: AtomicU64,
    /// Delays injected.
    pub delays: AtomicU64,
    /// Invalid solutions injected.
    pub invalids: AtomicU64,
}

/// A [`Scheduler`] wrapper that injects faults per the deterministic
/// schedule described in the module docs.
pub struct ChaosScheduler {
    inner: Box<dyn Scheduler>,
    cfg: ChaosConfig,
    counters: Arc<ChaosCounters>,
}

/// FNV-1a over the chaos seed, the strategy name and the instance
/// content. Pure: the same inputs always roll the same fault.
fn fault_roll(cfg: &ChaosConfig, name: &str, chain: &TaskChain, resources: Resources) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |byte: u8| {
        h ^= u64::from(byte);
        h = h.wrapping_mul(PRIME);
    };
    for byte in cfg.seed.to_le_bytes() {
        eat(byte);
    }
    for byte in name.bytes() {
        eat(byte);
    }
    for task in chain.tasks() {
        for byte in task.weight_big.to_le_bytes() {
            eat(byte);
        }
        for byte in task.weight_little.to_le_bytes() {
            eat(byte);
        }
        eat(u8::from(task.replicable));
    }
    for byte in resources.big.to_le_bytes() {
        eat(byte);
    }
    for byte in resources.little.to_le_bytes() {
        eat(byte);
    }
    h % 1000
}

impl Scheduler for ChaosScheduler {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn schedule_into(
        &self,
        chain: &TaskChain,
        resources: Resources,
        scratch: &mut SchedScratch,
        out: &mut Solution,
    ) -> bool {
        let roll = fault_roll(&self.cfg, self.inner.name(), chain, resources);
        let panic_edge = self.cfg.panic_per_mille;
        let delay_edge = panic_edge + self.cfg.delay_per_mille;
        let invalid_edge = delay_edge + self.cfg.invalid_per_mille;
        if roll < panic_edge {
            self.counters.panics.fetch_add(1, Ordering::Relaxed);
            panic!(
                "chaos: injected panic in {} (roll {roll} < {panic_edge})",
                self.inner.name()
            );
        }
        if roll < delay_edge {
            self.counters.delays.fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(self.cfg.delay);
        } else if roll < invalid_edge {
            self.counters.invalids.fetch_add(1, Ordering::Relaxed);
            // `end == chain.len()` is structurally invalid (InvalidEnd);
            // `Solution::validate` rejects it before anything derives
            // period or core usage from the out-of-range stage.
            *out = Solution::new(vec![Stage::new(0, chain.len(), 1, CoreType::Big)]);
            return true;
        }
        self.inner.schedule_into(chain, resources, scratch, out)
    }
}

/// Builds the [`EngineConfig::fault_wrap`] closure installing a
/// [`ChaosScheduler`] around every strategy the engine runs.
#[must_use]
pub fn chaos_wrap(cfg: ChaosConfig, counters: Arc<ChaosCounters>) -> StrategyWrap {
    Arc::new(move |inner: Box<dyn Scheduler>| -> Box<dyn Scheduler> {
        Box::new(ChaosScheduler {
            inner,
            cfg,
            counters: Arc::clone(&counters),
        })
    })
}

/// A chaotic engine plus the ledger of faults injected into it.
pub struct ChaosHarness {
    engine: Engine,
    counters: Arc<ChaosCounters>,
    cfg: ChaosConfig,
    next_id: AtomicU64,
}

/// Silences the default panic hook for *injected* panics only (their
/// message is `chaos:`-prefixed), so a 500-seed CI run doesn't print
/// hundreds of expected backtraces. Real panics keep the full report.
fn quiet_injected_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let message = info
                .payload()
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| info.payload().downcast_ref::<&str>().copied())
                .unwrap_or("");
            if !message.starts_with("chaos:") {
                previous(info);
            }
        }));
    });
}

impl ChaosHarness {
    /// Starts an engine with chaos injection installed.
    #[must_use]
    pub fn new(cfg: ChaosConfig) -> Self {
        quiet_injected_panics();
        let counters = Arc::new(ChaosCounters::default());
        let engine = Engine::start(EngineConfig {
            workers: cfg.workers,
            racer_threads: cfg.workers * 2,
            queue_depth: 256,
            cache_capacity: 1024,
            cache_shards: 4,
            portfolio: PortfolioConfig::default(),
            fault_wrap: Some(chaos_wrap(cfg, Arc::clone(&counters))),
            ..EngineConfig::default()
        });
        ChaosHarness {
            engine,
            counters,
            cfg,
            next_id: AtomicU64::new(1),
        }
    }

    fn fresh_id(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Is `err` one of the codes the engine is allowed to emit under
    /// fault injection? `Internal` is a caught fault; the others are
    /// legitimate answers for degenerate generated instances (empty
    /// chains, zero-core pools, genuinely unschedulable shapes).
    fn error_allowed(err: &ServiceError) -> bool {
        matches!(
            err,
            ServiceError::Internal(_)
                | ServiceError::Infeasible
                | ServiceError::NoCores
                | ServiceError::EmptyChain
        )
    }

    /// Drives one instance through the chaotic engine and checks the
    /// per-request invariants. Mismatch codes are `CHAOS_*`.
    #[must_use]
    pub fn check(&self, inst: &Instance) -> Vec<Mismatch> {
        let mut out = Vec::new();
        let chain = inst.chain();
        let res = inst.resources();
        let mismatch = |code, detail| Mismatch {
            code,
            instance: inst.summary(),
            detail,
        };

        // First portfolio run: establishes what — if anything — the
        // cache may now hold for this fingerprint.
        let first_id = self.fresh_id();
        let first = self.engine.schedule_blocking(ScheduleRequest::from_chain(
            first_id,
            &chain,
            res,
            Policy::Portfolio,
        ));
        if first.id != first_id {
            out.push(mismatch(
                "CHAOS_WRONG_ID",
                format!("response id {} for request {first_id}", first.id),
            ));
            return out;
        }
        let first_complete = match &first.result {
            Ok(outcome) => {
                // Distinct seeds can generate identical instances, so
                // even a "first" request may legitimately hit the cache
                // — but anything served from the cache must have been
                // stored as complete.
                if outcome.cache_hit && !outcome.complete {
                    out.push(mismatch(
                        "CHAOS_INCOMPLETE_CACHED",
                        "cache served an outcome not marked complete".to_string(),
                    ));
                }
                if let Err(e) = outcome.solution().validate(&chain) {
                    out.push(mismatch(
                        "CHAOS_INVALID_SERVED",
                        format!("served solution failed validation: {e:?}"),
                    ));
                }
                Some(outcome.complete)
            }
            Err(e) if Self::error_allowed(e) => None,
            Err(e) => {
                out.push(mismatch(
                    "CHAOS_BAD_ERROR",
                    format!("unexpected error code {} under injection", e.code()),
                ));
                None
            }
        };

        // Replay of the identical instance: a hit iff the first run was
        // complete, and a hit must be bit-identical.
        let replay = self.engine.schedule_blocking(ScheduleRequest::from_chain(
            self.fresh_id(),
            &chain,
            res,
            Policy::Portfolio,
        ));
        match (&first.result, &replay.result) {
            (Ok(a), Ok(b)) => {
                if b.cache_hit != a.complete {
                    out.push(mismatch(
                        "CHAOS_CACHE_POLICY",
                        format!(
                            "first run complete={}, but replay cache_hit={} — only complete \
                             outcomes may be cached",
                            a.complete, b.cache_hit
                        ),
                    ));
                }
                if b.cache_hit
                    && (a.period != b.period || a.stages != b.stages || a.strategy != b.strategy)
                {
                    out.push(mismatch(
                        "CHAOS_REPLAY_DIVERGED",
                        format!(
                            "cached replay differs: {} @ {} vs {} @ {}",
                            a.strategy, a.period, b.strategy, b.period
                        ),
                    ));
                }
                if let Err(e) = b.solution().validate(&chain) {
                    out.push(mismatch(
                        "CHAOS_INVALID_SERVED",
                        format!("replayed solution failed validation: {e:?}"),
                    ));
                }
            }
            (Err(_), Ok(b)) => {
                // An error is never cached, so the replay recomputed;
                // it may genuinely succeed only if its own (identical)
                // injection schedule allows — which it cannot, because
                // the schedule is a pure function of the instance.
                out.push(mismatch(
                    "CHAOS_NONDETERMINISTIC",
                    format!(
                        "first run errored but replay succeeded ({} @ {}) — injection must be \
                         deterministic per instance",
                        b.strategy, b.period
                    ),
                ));
            }
            (_, Err(e)) if !Self::error_allowed(e) => {
                out.push(mismatch(
                    "CHAOS_BAD_ERROR",
                    format!("unexpected replay error code {}", e.code()),
                ));
            }
            _ => {}
        }
        // Silence the "unused" pattern when the first outcome was an
        // allowed error: nothing further to compare.
        let _ = first_complete;

        // A single-strategy request through the same chaotic engine:
        // either a validated solution or an allowed error.
        let single = self.engine.schedule_blocking(ScheduleRequest::from_chain(
            self.fresh_id(),
            &chain,
            res,
            Policy::Strategy("HeRAD".to_string()),
        ));
        match &single.result {
            Ok(outcome) => {
                if let Err(e) = outcome.solution().validate(&chain) {
                    out.push(mismatch(
                        "CHAOS_INVALID_SERVED",
                        format!("single-strategy solution failed validation: {e:?}"),
                    ));
                }
            }
            Err(e) if Self::error_allowed(e) => {}
            Err(e) => {
                out.push(mismatch(
                    "CHAOS_BAD_ERROR",
                    format!("unexpected single-strategy error code {}", e.code()),
                ));
            }
        }
        out
    }

    /// End-of-run reconciliation: every injected fault must be visible
    /// in the engine's metrics, and the worker pool must be whole.
    #[must_use]
    pub fn final_accounting(&self) -> Vec<Mismatch> {
        let mut out = Vec::new();
        let m = self.engine.metrics();
        let injected_panics = self.counters.panics.load(Ordering::Relaxed);
        let injected_invalids = self.counters.invalids.load(Ordering::Relaxed);
        let mismatch = |code, detail| Mismatch {
            code,
            instance: "chaos final accounting".to_string(),
            detail,
        };
        if injected_panics != m.worker_panics + m.racer_panics {
            out.push(mismatch(
                "CHAOS_PANIC_ACCOUNTING",
                format!(
                    "{injected_panics} panics injected but metrics saw {} (worker) + {} (racer)",
                    m.worker_panics, m.racer_panics
                ),
            ));
        }
        if injected_invalids != m.racer_invalid + m.invalid_solutions {
            out.push(mismatch(
                "CHAOS_INVALID_ACCOUNTING",
                format!(
                    "{injected_invalids} invalid solutions injected but metrics saw {} (racer) \
                     + {} (engine vet)",
                    m.racer_invalid, m.invalid_solutions
                ),
            ));
        }
        if m.workers_alive != self.cfg.workers as u64 {
            out.push(mismatch(
                "CHAOS_POOL_SHRUNK",
                format!(
                    "{} workers alive after the run, configured {}",
                    m.workers_alive, self.cfg.workers
                ),
            ));
        }
        out
    }

    /// Total faults injected so far (panics, delays, invalids).
    #[must_use]
    pub fn injected(&self) -> (u64, u64, u64) {
        (
            self.counters.panics.load(Ordering::Relaxed),
            self.counters.delays.load(Ordering::Relaxed),
            self.counters.invalids.load(Ordering::Relaxed),
        )
    }

    /// Shuts the chaotic engine down (drains accepted requests).
    pub fn shutdown(self) {
        self.engine.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{instance_for_seed, GenConfig};

    #[test]
    fn fault_roll_is_deterministic_and_strategy_sensitive() {
        let cfg = ChaosConfig::default();
        let inst = instance_for_seed(7, &GenConfig::small());
        let chain = inst.chain();
        let res = inst.resources();
        assert_eq!(
            fault_roll(&cfg, "HeRAD", &chain, res),
            fault_roll(&cfg, "HeRAD", &chain, res)
        );
        // Different strategies on the same instance roll independently.
        let rolls: Vec<u64> = ["HeRAD", "FERTAC", "2CATAC"]
            .iter()
            .map(|name| fault_roll(&cfg, name, &chain, res))
            .collect();
        assert!(rolls.iter().all(|&r| r < 1000));
        let mut salted = cfg;
        salted.seed ^= 1;
        assert_ne!(
            fault_roll(&cfg, "HeRAD", &chain, res),
            fault_roll(&salted, "HeRAD", &chain, res),
            "seed must perturb the schedule"
        );
    }

    #[test]
    fn chaos_run_over_seeded_instances_upholds_all_invariants() {
        let harness = ChaosHarness::new(ChaosConfig::default());
        let gen = GenConfig::small();
        let mut mismatches = Vec::new();
        for seed in 0..120 {
            mismatches.extend(harness.check(&instance_for_seed(seed, &gen)));
        }
        mismatches.extend(harness.final_accounting());
        assert!(mismatches.is_empty(), "chaos mismatches: {mismatches:#?}");
        let (panics, _delays, invalids) = harness.injected();
        assert!(
            panics + invalids > 0,
            "the default rates must actually inject faults over 120 instances"
        );
        harness.shutdown();
    }

    #[test]
    fn zero_rates_mean_no_faults() {
        let cfg = ChaosConfig {
            panic_per_mille: 0,
            delay_per_mille: 0,
            invalid_per_mille: 0,
            ..ChaosConfig::default()
        };
        let harness = ChaosHarness::new(cfg);
        let gen = GenConfig::small();
        for seed in 0..20 {
            let mismatches = harness.check(&instance_for_seed(seed, &gen));
            assert!(mismatches.is_empty(), "{mismatches:#?}");
        }
        assert_eq!(harness.injected(), (0, 0, 0));
        assert!(harness.final_accounting().is_empty());
        harness.shutdown();
    }
}
