//! The conformance test instance: one task chain plus one resource pool,
//! with a stable name for corpus provenance.
//!
//! [`Instance`] is the unit every layer of the harness exchanges: the
//! generators produce it, the checks consume it, the shrinker minimizes
//! it and the corpus stores it as JSON (see [`crate::json`]).

use amp_core::{Resources, Task, TaskChain};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One task of an instance — the serializable mirror of [`amp_core::Task`]
/// without the display name, so equal instances compare and serialize
/// identically.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TaskDef {
    /// Computation weight on a big core (must be positive).
    pub weight_big: u64,
    /// Computation weight on a little core (must be positive).
    pub weight_little: u64,
    /// `true` when the task is stateless and may be replicated.
    pub replicable: bool,
}

impl TaskDef {
    /// Builds a task definition.
    #[must_use]
    pub fn new(weight_big: u64, weight_little: u64, replicable: bool) -> Self {
        TaskDef {
            weight_big,
            weight_little,
            replicable,
        }
    }
}

/// A scheduling instance under test.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Instance {
    /// Provenance label: `"seed-123"` for fuzzed instances, a descriptive
    /// slug for corpus entries. Not part of the instance semantics.
    pub name: String,
    /// The task chain, in pipeline order. Never empty.
    pub tasks: Vec<TaskDef>,
    /// Number of big cores.
    pub big: u64,
    /// Number of little cores.
    pub little: u64,
}

impl Instance {
    /// Builds an instance.
    ///
    /// # Panics
    /// Panics if `tasks` is empty — an empty chain is rejected by
    /// [`TaskChain::new`] and has no meaning as a conformance input.
    #[must_use]
    pub fn new(name: impl Into<String>, tasks: Vec<TaskDef>, big: u64, little: u64) -> Self {
        assert!(!tasks.is_empty(), "conformance instances need tasks");
        Instance {
            name: name.into(),
            tasks,
            big,
            little,
        }
    }

    /// Captures a core-domain chain + pool as an instance.
    #[must_use]
    pub fn from_chain(name: impl Into<String>, chain: &TaskChain, resources: Resources) -> Self {
        Instance::new(
            name,
            chain
                .tasks()
                .iter()
                .map(|t| TaskDef::new(t.weight_big, t.weight_little, t.replicable))
                .collect(),
            resources.big,
            resources.little,
        )
    }

    /// The core-domain task chain.
    ///
    /// # Panics
    /// Panics if any task has a zero weight (the chain model requires
    /// positive latencies); well-formed generators and corpus files never
    /// produce such tasks.
    #[must_use]
    pub fn chain(&self) -> TaskChain {
        TaskChain::new(
            self.tasks
                .iter()
                .map(|t| Task::new(t.weight_big, t.weight_little, t.replicable))
                .collect(),
        )
    }

    /// The core-domain resource pool.
    #[must_use]
    pub fn resources(&self) -> Resources {
        Resources::new(self.big, self.little)
    }

    /// Number of tasks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Always `false`: instances are non-empty by construction.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// A compact one-line summary used in mismatch reports:
    /// `name: [B3/L6r, B2/L4] on (2B, 1L)`.
    #[must_use]
    pub fn summary(&self) -> String {
        let tasks: Vec<String> = self
            .tasks
            .iter()
            .map(|t| {
                format!(
                    "B{}/L{}{}",
                    t.weight_big,
                    t.weight_little,
                    if t.replicable { "r" } else { "" }
                )
            })
            .collect();
        format!(
            "{}: [{}] on ({}B, {}L)",
            self.name,
            tasks.join(", "),
            self.big,
            self.little
        )
    }
}

impl fmt::Display for Instance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.summary())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_through_core_domain() {
        let inst = Instance::new(
            "t",
            vec![TaskDef::new(3, 6, false), TaskDef::new(2, 4, true)],
            2,
            1,
        );
        let chain = inst.chain();
        let back = Instance::from_chain("t", &chain, inst.resources());
        assert_eq!(back, inst);
        assert_eq!(chain.len(), 2);
        assert_eq!(inst.resources(), Resources::new(2, 1));
    }

    #[test]
    fn summary_is_compact() {
        let inst = Instance::new("x", vec![TaskDef::new(3, 6, true)], 1, 0);
        assert_eq!(inst.summary(), "x: [B3/L6r] on (1B, 0L)");
    }

    #[test]
    #[should_panic(expected = "need tasks")]
    fn empty_instances_are_rejected() {
        let _ = Instance::new("bad", vec![], 1, 1);
    }
}
