//! The checked-in regression corpus: one instance per JSON file.
//!
//! Every instance that ever exposed a scheduler bug (or a suspicious
//! shrunken fuzz case) is frozen here and replayed by the `conformance`
//! runner on every CI run. Files live in `crates/conformance/corpus/`;
//! [`default_corpus_dir`] resolves that path independently of the working
//! directory so `cargo run -p amp-conformance` works from anywhere in the
//! workspace.

use crate::instance::{Instance, TaskDef};
use crate::json::Json;
use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// The corpus directory checked into the repository.
#[must_use]
pub fn default_corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("corpus")
}

/// A corpus I/O or format failure, tagged with the offending file.
#[derive(Debug)]
pub struct CorpusError {
    /// The file that failed to load or decode.
    pub path: PathBuf,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for CorpusError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.path.display(), self.message)
    }
}

impl std::error::Error for CorpusError {}

/// Encodes an instance as the canonical corpus JSON document.
#[must_use]
pub fn encode(instance: &Instance) -> String {
    let tasks: Vec<Json> = instance
        .tasks
        .iter()
        .map(|t| {
            let mut obj = BTreeMap::new();
            obj.insert("weight_big".to_string(), Json::Int(t.weight_big));
            obj.insert("weight_little".to_string(), Json::Int(t.weight_little));
            obj.insert("replicable".to_string(), Json::Bool(t.replicable));
            Json::Obj(obj)
        })
        .collect();
    let mut root = BTreeMap::new();
    root.insert("name".to_string(), Json::Str(instance.name.clone()));
    root.insert("big".to_string(), Json::Int(instance.big));
    root.insert("little".to_string(), Json::Int(instance.little));
    root.insert("tasks".to_string(), Json::Arr(tasks));
    Json::Obj(root).render()
}

/// Decodes one corpus document.
///
/// # Errors
/// Returns a description of the first violation: JSON syntax errors,
/// missing or mistyped fields, an empty task list, or zero task weights
/// (which [`amp_core::TaskChain`] rejects).
pub fn decode(text: &str) -> Result<Instance, String> {
    let root = Json::parse(text).map_err(|e| e.to_string())?;
    let obj = root.as_obj().ok_or("top level must be an object")?;
    let name = obj
        .get("name")
        .and_then(Json::as_str)
        .ok_or("missing string field \"name\"")?
        .to_string();
    let big = obj
        .get("big")
        .and_then(Json::as_int)
        .ok_or("missing integer field \"big\"")?;
    let little = obj
        .get("little")
        .and_then(Json::as_int)
        .ok_or("missing integer field \"little\"")?;
    let tasks_json = obj
        .get("tasks")
        .and_then(Json::as_arr)
        .ok_or("missing array field \"tasks\"")?;
    if tasks_json.is_empty() {
        return Err("\"tasks\" must not be empty".to_string());
    }
    let mut tasks = Vec::with_capacity(tasks_json.len());
    for (i, t) in tasks_json.iter().enumerate() {
        let t = t
            .as_obj()
            .ok_or_else(|| format!("task {i} must be an object"))?;
        let weight_big = t
            .get("weight_big")
            .and_then(Json::as_int)
            .ok_or_else(|| format!("task {i}: missing integer \"weight_big\""))?;
        let weight_little = t
            .get("weight_little")
            .and_then(Json::as_int)
            .ok_or_else(|| format!("task {i}: missing integer \"weight_little\""))?;
        let replicable = t
            .get("replicable")
            .and_then(Json::as_bool)
            .ok_or_else(|| format!("task {i}: missing bool \"replicable\""))?;
        if weight_big == 0 || weight_little == 0 {
            return Err(format!("task {i}: weights must be positive"));
        }
        tasks.push(TaskDef::new(weight_big, weight_little, replicable));
    }
    Ok(Instance::new(name, tasks, big, little))
}

/// Loads every `*.json` file of a corpus directory, sorted by file name
/// for deterministic replay order. A missing directory is an error: the
/// runner should never silently replay an empty corpus.
///
/// # Errors
/// Returns the first unreadable or undecodable file.
pub fn load_dir(dir: &Path) -> Result<Vec<Instance>, CorpusError> {
    fn tag(path: &Path, e: &io::Error) -> CorpusError {
        CorpusError {
            path: path.to_path_buf(),
            message: e.to_string(),
        }
    }
    let mut paths: Vec<PathBuf> = fs::read_dir(dir)
        .map_err(|e| tag(dir, &e))?
        .collect::<Result<Vec<_>, _>>()
        .map_err(|e| tag(dir, &e))?
        .into_iter()
        .map(|entry| entry.path())
        .filter(|p| p.extension().is_some_and(|e| e == "json"))
        .collect();
    paths.sort();
    let mut instances = Vec::with_capacity(paths.len());
    for path in paths {
        let text = fs::read_to_string(&path).map_err(|e| tag(&path, &e))?;
        let instance = decode(&text).map_err(|message| CorpusError {
            path: path.clone(),
            message,
        })?;
        instances.push(instance);
    }
    Ok(instances)
}

/// Writes an instance to `<dir>/<file_name>.json` in canonical form (the
/// runner uses this to persist shrunken fuzz failures for triage).
///
/// # Errors
/// Propagates filesystem failures.
pub fn save(dir: &Path, file_name: &str, instance: &Instance) -> Result<PathBuf, CorpusError> {
    let path = dir.join(format!("{file_name}.json"));
    fs::create_dir_all(dir).map_err(|e| CorpusError {
        path: dir.to_path_buf(),
        message: e.to_string(),
    })?;
    fs::write(&path, encode(instance)).map_err(|e| CorpusError {
        path: path.clone(),
        message: e.to_string(),
    })?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn instance() -> Instance {
        Instance::new(
            "round-trip",
            vec![TaskDef::new(3, 6, false), TaskDef::new(2, 4, true)],
            2,
            1,
        )
    }

    #[test]
    fn encode_decode_round_trip() {
        let inst = instance();
        let text = encode(&inst);
        assert_eq!(decode(&text).unwrap(), inst);
        // Canonical form is a fixpoint.
        assert_eq!(encode(&decode(&text).unwrap()), text);
    }

    #[test]
    fn decode_rejects_malformed_documents() {
        for (doc, needle) in [
            ("[]", "object"),
            ("{}", "name"),
            (r#"{"name":"x","big":1,"little":1,"tasks":[]}"#, "empty"),
            (
                r#"{"name":"x","big":1,"little":1,"tasks":[{"weight_big":0,"weight_little":1,"replicable":true}]}"#,
                "positive",
            ),
            (
                r#"{"name":"x","big":1,"little":1,"tasks":[{"weight_big":1,"replicable":true}]}"#,
                "weight_little",
            ),
        ] {
            let err = decode(doc).unwrap_err();
            assert!(err.contains(needle), "{doc} -> {err}");
        }
    }

    #[test]
    fn checked_in_corpus_loads() {
        let corpus = load_dir(&default_corpus_dir()).expect("corpus directory loads");
        assert!(
            corpus.len() >= 8,
            "the regression corpus should keep its seed entries"
        );
        let mut names: Vec<&str> = corpus.iter().map(|i| i.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), corpus.len(), "corpus names must be unique");
    }

    #[test]
    fn missing_directory_is_loud() {
        let err = load_dir(Path::new("/nonexistent/corpus/dir")).unwrap_err();
        assert!(err.to_string().contains("/nonexistent"));
    }
}
