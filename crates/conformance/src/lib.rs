//! Conformance harness for the amp-sched workspace.
//!
//! This crate is the workspace's shared testing backbone, with four
//! layers that the other crates (and the `conformance` binary) compose:
//!
//! * [`instance`] + [`gen`] — a serializable instance type plus seeded
//!   and proptest-based generators covering the degenerate shapes that
//!   break interval-mapping schedulers (equal weights, unit weights,
//!   single-task chains, all-sequential / all-replicable chains, starved
//!   pools);
//! * [`checks`] — differential checks of every scheduler against the
//!   exhaustive brute-force oracle (period *and* the big/little-core
//!   tie-break), metamorphic properties of the optimal period, and
//!   bit-identical equivalence between `amp-service` responses and
//!   direct library calls;
//! * [`energy`] — a brute-force *energy* oracle (every interval, core
//!   type and replication count scored in exact milliwatts) pinning the
//!   energy-aware strategies and the Pareto front's structural
//!   invariants;
//! * [`reconfig`] — the live-reconfiguration battery: incremental
//!   re-solves over a scripted pool sequence must be bit-identical to
//!   fresh solves, and the epoch-barrier migration mirror must account
//!   for every frame exactly once, in order;
//! * [`chaos`] — fault injection against the amp-service engine: a
//!   deterministic `Scheduler` wrapper injecting panics, delays and
//!   invalid solutions, with per-instance invariant checks (one response
//!   per request, no invalid or incomplete outcome cached) and end-of-run
//!   metric reconciliation;
//! * [`shrink`] — greedy minimization of failing instances (the vendored
//!   proptest engine has no shrinking);
//! * [`corpus`] + [`json`] — a checked-in regression corpus of JSON
//!   instances, replayed on every run, with a self-contained canonical
//!   JSON codec (the offline build stubs out `serde_json`).
//!
//! The [`runner`] module ties the layers into the `conformance` binary:
//! corpus replay first, then seeded fuzzing, shrinking and optionally
//! persisting every failure.

pub mod chaos;
pub mod checks;
pub mod corpus;
pub mod energy;
pub mod gen;
pub mod instance;
pub mod json;
pub mod reconfig;
pub mod runner;
pub mod shrink;

pub use chaos::{chaos_wrap, ChaosConfig, ChaosCounters, ChaosHarness, ChaosScheduler};
pub use checks::{
    check_chain_tier, check_core, check_library, check_metamorphic, check_parallel, check_scratch,
    check_service, check_sweep, Mismatch,
};
pub use energy::{check_energy, energy_oracle};
pub use gen::{instance_for_seed, instance_strategy, task_strategy, GenConfig};
pub use instance::{Instance, TaskDef};
pub use reconfig::{check_reconfig, pool_script};
pub use runner::{run, Report, RunnerConfig};
pub use shrink::shrink;
