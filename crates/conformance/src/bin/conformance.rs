//! The `conformance` runner: replays the regression corpus and fuzzes
//! seeded random instances against the exhaustive oracle, the metamorphic
//! properties and the amp-service engine.
//!
//! ```text
//! cargo run --release -p amp-conformance -- --seeds 500
//! ```
//!
//! Exits 0 when every instance passes, 1 on any mismatch (the shrunken
//! repro is printed and, with `--save-failures DIR`, written as JSON),
//! and 2 on usage or corpus I/O errors.

use amp_conformance::runner::{run, RunnerConfig};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: conformance [OPTIONS]
  --seeds N           seeded instances to fuzz (default 500)
  --seed-start N      first seed (default 0)
  --max-tasks N       chain length bound (default 8)
  --max-weight N      task weight bound (default 12)
  --max-big N         big-core bound (default 4)
  --max-little N      little-core bound (default 4)
  --corpus DIR        regression corpus to replay (default: checked-in corpus)
  --no-corpus         skip the corpus replay
  --no-service        skip the amp-service equivalence checks
  --no-chaos          skip the fault-injection (chaos) checks
  --chain-tier-only   run only the chain-tier extraction checks (the
                      solve-once cache gate; skips service and chaos)
  --energy-only       run only the energy battery (brute-force energy
                      oracle + Pareto front; skips service and chaos)
  --reconfig-only     run only the reconfiguration battery (incremental
                      re-solve equivalence + zero-frame-loss migration;
                      skips service and chaos)
  --save-failures DIR write shrunken failing instances as JSON into DIR
  --help              print this help";

fn parse_args(args: &[String]) -> Result<RunnerConfig, String> {
    let mut cfg = RunnerConfig::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--seeds" => cfg.seeds = parse_num(&value("--seeds")?)?,
            "--seed-start" => cfg.seed_start = parse_num(&value("--seed-start")?)?,
            "--max-tasks" => {
                cfg.gen.max_tasks = usize::try_from(parse_num(&value("--max-tasks")?)?)
                    .map_err(|e| e.to_string())?;
            }
            "--max-weight" => cfg.gen.max_weight = parse_num(&value("--max-weight")?)?,
            "--max-big" => cfg.gen.max_big = parse_num(&value("--max-big")?)?,
            "--max-little" => cfg.gen.max_little = parse_num(&value("--max-little")?)?,
            "--corpus" => cfg.corpus_dir = Some(PathBuf::from(value("--corpus")?)),
            "--no-corpus" => cfg.corpus_dir = None,
            "--no-service" => cfg.check_service = false,
            "--no-chaos" => cfg.check_chaos = false,
            "--chain-tier-only" => cfg.chain_tier_only = true,
            "--energy-only" => cfg.energy_only = true,
            "--reconfig-only" => cfg.reconfig_only = true,
            "--save-failures" => {
                cfg.save_failures = Some(PathBuf::from(value("--save-failures")?));
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag {other}\n{USAGE}")),
        }
    }
    if cfg.gen.max_tasks == 0 {
        return Err("--max-tasks must be at least 1".to_string());
    }
    Ok(cfg)
}

fn parse_num(text: &str) -> Result<u64, String> {
    text.parse::<u64>()
        .map_err(|_| format!("not a number: {text}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = match parse_args(&args) {
        Ok(cfg) => cfg,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::from(2);
        }
    };
    match run(&cfg, &mut |line| println!("{line}")) {
        Ok(report) if report.is_clean() => {
            println!("conformance: OK");
            ExitCode::SUCCESS
        }
        Ok(report) => {
            eprintln!(
                "conformance: {} failing instance(s) out of {}",
                report.failures.len(),
                report.checked()
            );
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("conformance: corpus error: {e}");
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amp_conformance::gen::GenConfig;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(ToString::to_string).collect()
    }

    #[test]
    fn defaults_hold_without_flags() {
        let cfg = parse_args(&[]).unwrap();
        assert_eq!(cfg.seeds, 500);
        assert_eq!(cfg.gen, GenConfig::default());
        assert!(cfg.corpus_dir.is_some());
        assert!(cfg.check_service);
        assert!(cfg.check_chaos);
    }

    #[test]
    fn no_chaos_flag_disables_the_chaos_checks() {
        let cfg = parse_args(&args(&["--no-chaos"])).unwrap();
        assert!(!cfg.check_chaos);
        assert!(cfg.check_service, "other checks stay on");
    }

    #[test]
    fn chain_tier_only_flag_narrows_the_run() {
        let cfg = parse_args(&args(&["--chain-tier-only", "--seeds", "1000"])).unwrap();
        assert!(cfg.chain_tier_only);
        assert_eq!(cfg.seeds, 1000);
    }

    #[test]
    fn energy_only_flag_narrows_the_run() {
        let cfg = parse_args(&args(&["--energy-only", "--seeds", "1000"])).unwrap();
        assert!(cfg.energy_only);
        assert!(!cfg.chain_tier_only);
        assert_eq!(cfg.seeds, 1000);
    }

    #[test]
    fn reconfig_only_flag_narrows_the_run() {
        let cfg = parse_args(&args(&["--reconfig-only", "--seeds", "1000"])).unwrap();
        assert!(cfg.reconfig_only);
        assert!(!cfg.chain_tier_only && !cfg.energy_only);
        assert_eq!(cfg.seeds, 1000);
    }

    #[test]
    fn flags_override_defaults() {
        let cfg = parse_args(&args(&[
            "--seeds",
            "25",
            "--seed-start",
            "100",
            "--max-tasks",
            "5",
            "--max-weight",
            "7",
            "--max-big",
            "2",
            "--max-little",
            "3",
            "--no-corpus",
            "--no-service",
            "--save-failures",
            "/tmp/repros",
        ]))
        .unwrap();
        assert_eq!((cfg.seeds, cfg.seed_start), (25, 100));
        assert_eq!(cfg.gen.max_tasks, 5);
        assert_eq!(cfg.gen.max_weight, 7);
        assert_eq!((cfg.gen.max_big, cfg.gen.max_little), (2, 3));
        assert!(cfg.corpus_dir.is_none());
        assert!(!cfg.check_service);
        assert_eq!(cfg.save_failures, Some(PathBuf::from("/tmp/repros")));
    }

    #[test]
    fn bad_flags_are_rejected() {
        assert!(parse_args(&args(&["--bogus"])).is_err());
        assert!(parse_args(&args(&["--seeds"])).is_err());
        assert!(parse_args(&args(&["--seeds", "many"])).is_err());
        assert!(parse_args(&args(&["--max-tasks", "0"])).is_err());
    }
}
