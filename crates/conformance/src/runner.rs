//! The fuzz/replay driver behind the `conformance` binary: replay the
//! checked-in regression corpus, then fuzz seeded random instances, and
//! shrink whatever fails.

use crate::chaos::{ChaosConfig, ChaosHarness};
use crate::checks::{self, Mismatch};
use crate::corpus;
use crate::gen::{instance_for_seed, GenConfig};
use crate::instance::Instance;
use crate::shrink::shrink;
use amp_service::{Engine, EngineConfig};
use std::path::PathBuf;

/// What one conformance run should do.
#[derive(Clone, Debug)]
pub struct RunnerConfig {
    /// Number of seeded random instances to fuzz.
    pub seeds: u64,
    /// First seed (instances are `seed_start..seed_start + seeds`).
    pub seed_start: u64,
    /// Instance bounds.
    pub gen: GenConfig,
    /// Regression corpus to replay first; `None` skips the replay.
    pub corpus_dir: Option<PathBuf>,
    /// Also run the amp-service equivalence checks (spawns an engine).
    pub check_service: bool,
    /// Also run the fault-injection (chaos) checks against a second,
    /// deliberately chaotic engine (see [`crate::chaos`]). The injection
    /// schedule is deterministic, so CI failures replay locally.
    pub check_chaos: bool,
    /// Run *only* the chain-tier extraction checks
    /// ([`checks::check_chain_tier`]) instead of the full library
    /// battery — the CI gate uses this to push the solve-once tier
    /// through many more seeds than the full battery could afford.
    pub chain_tier_only: bool,
    /// Run *only* the energy battery ([`crate::energy::check_energy`])
    /// instead of the full library battery — the CI gate uses this to
    /// push the energy oracle through a wide seed window without paying
    /// for the service/chaos layers on every seed.
    pub energy_only: bool,
    /// Run *only* the reconfiguration battery
    /// ([`crate::reconfig::check_reconfig`]) — incremental re-solve
    /// equivalence plus the zero-frame-loss migration contract — so the
    /// CI gate can push migrations through a wide seed window.
    pub reconfig_only: bool,
    /// Where to save shrunken failing instances; `None` keeps them
    /// in-memory only.
    pub save_failures: Option<PathBuf>,
}

impl Default for RunnerConfig {
    fn default() -> Self {
        RunnerConfig {
            seeds: 500,
            seed_start: 0,
            gen: GenConfig::default(),
            corpus_dir: Some(corpus::default_corpus_dir()),
            check_service: true,
            check_chaos: true,
            chain_tier_only: false,
            energy_only: false,
            reconfig_only: false,
            save_failures: None,
        }
    }
}

/// One failing instance with its mismatches and shrunken repro.
#[derive(Clone, Debug)]
pub struct Failure {
    /// The instance that failed, as generated or loaded.
    pub instance: Instance,
    /// Every mismatch that instance produced.
    pub mismatches: Vec<Mismatch>,
    /// The greedily minimized repro (same failure code as the first
    /// mismatch).
    pub shrunk: Instance,
    /// Where the repro was saved, when saving was requested and succeeded.
    pub saved_to: Option<PathBuf>,
}

/// Aggregate result of one run.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// Corpus instances replayed.
    pub corpus_replayed: usize,
    /// Seeded instances fuzzed.
    pub fuzzed: usize,
    /// All failures, in discovery order.
    pub failures: Vec<Failure>,
}

impl Report {
    /// `true` when every instance passed every check.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.failures.is_empty()
    }

    /// Total instances checked.
    #[must_use]
    pub fn checked(&self) -> usize {
        self.corpus_replayed + self.fuzzed
    }
}

/// Runs corpus replay + seeded fuzzing per `cfg`.
///
/// Progress and failures are streamed to `log` (one line each) so the
/// binary can print while a library caller can collect into a string.
///
/// # Errors
/// Returns the corpus error verbatim when the replay corpus cannot be
/// loaded; check failures are *not* errors — they are reported in the
/// [`Report`].
pub fn run(cfg: &RunnerConfig, log: &mut dyn FnMut(&str)) -> Result<Report, corpus::CorpusError> {
    let narrowed = cfg.chain_tier_only || cfg.energy_only || cfg.reconfig_only;
    let engine = (cfg.check_service && !narrowed).then(|| Engine::start(EngineConfig::default()));
    let check = |inst: &Instance| -> Vec<Mismatch> {
        if cfg.chain_tier_only {
            return checks::check_chain_tier(inst);
        }
        if cfg.energy_only {
            return crate::energy::check_energy(inst);
        }
        if cfg.reconfig_only {
            return crate::reconfig::check_reconfig(inst);
        }
        let mut found = checks::check_library(inst);
        if let Some(engine) = &engine {
            found.extend(checks::check_service(engine, inst));
        }
        found
    };
    // The chaotic engine is separate from the clean equivalence engine:
    // injected faults must never contaminate the differential checks.
    let chaos = (cfg.check_chaos && !narrowed).then(|| ChaosHarness::new(ChaosConfig::default()));
    let mut report = Report::default();
    let record_failure = |inst: &Instance,
                          mismatches: Vec<Mismatch>,
                          report: &mut Report,
                          log: &mut dyn FnMut(&str)| {
        for m in &mismatches {
            log(&format!("FAIL {m}"));
        }
        // Shrink against the first failure's code so the repro keeps
        // demonstrating the same defect, not just *a* defect.
        let code = mismatches[0].code;
        let shrunk = shrink(inst, &|candidate| {
            check(candidate).iter().any(|m| m.code == code)
        });
        log(&format!("  shrunk to {}", shrunk.summary()));
        let saved_to = cfg.save_failures.as_ref().and_then(|dir| {
            let file = format!("fail-{}", shrunk.name);
            match corpus::save(dir, &file, &shrunk) {
                Ok(path) => {
                    log(&format!("  saved repro to {}", path.display()));
                    Some(path)
                }
                Err(e) => {
                    log(&format!("  could not save repro: {e}"));
                    None
                }
            }
        });
        report.failures.push(Failure {
            instance: inst.clone(),
            mismatches,
            shrunk,
            saved_to,
        });
    };
    // Chaos failures are recorded without shrinking: the chaotic
    // engine's cache and id counter advance with every check, so a
    // shrink search would not replay the same injection state. The
    // instance itself (plus the deterministic seed) *is* the repro.
    let record_chaos_failure = |inst: &Instance,
                                mismatches: Vec<Mismatch>,
                                report: &mut Report,
                                log: &mut dyn FnMut(&str)| {
        for m in &mismatches {
            log(&format!("FAIL {m}"));
        }
        report.failures.push(Failure {
            instance: inst.clone(),
            mismatches,
            shrunk: inst.clone(),
            saved_to: None,
        });
    };

    if let Some(dir) = &cfg.corpus_dir {
        let instances = corpus::load_dir(dir)?;
        log(&format!(
            "replaying {} corpus instances from {}",
            instances.len(),
            dir.display()
        ));
        for inst in &instances {
            let mismatches = check(inst);
            if !mismatches.is_empty() {
                record_failure(inst, mismatches, &mut report, log);
            }
            if let Some(chaos) = &chaos {
                let chaos_mismatches = chaos.check(inst);
                if !chaos_mismatches.is_empty() {
                    record_chaos_failure(inst, chaos_mismatches, &mut report, log);
                }
            }
            report.corpus_replayed += 1;
        }
    }

    log(&format!(
        "fuzzing {} seeded instances (seeds {}..{}, n<={}, pool<=({}B,{}L))",
        cfg.seeds,
        cfg.seed_start,
        cfg.seed_start + cfg.seeds,
        cfg.gen.max_tasks,
        cfg.gen.max_big,
        cfg.gen.max_little,
    ));
    for seed in cfg.seed_start..cfg.seed_start + cfg.seeds {
        let inst = instance_for_seed(seed, &cfg.gen);
        let mismatches = check(&inst);
        if !mismatches.is_empty() {
            record_failure(&inst, mismatches, &mut report, log);
        }
        if let Some(chaos) = &chaos {
            let chaos_mismatches = chaos.check(&inst);
            if !chaos_mismatches.is_empty() {
                record_chaos_failure(&inst, chaos_mismatches, &mut report, log);
            }
        }
        report.fuzzed += 1;
    }

    if let Some(chaos) = chaos {
        let (panics, delays, invalids) = chaos.injected();
        log(&format!(
            "chaos: injected {panics} panic(s), {delays} delay(s), {invalids} invalid solution(s)"
        ));
        let accounting = chaos.final_accounting();
        if !accounting.is_empty() {
            let placeholder = Instance::new(
                "chaos-final-accounting",
                vec![crate::instance::TaskDef::new(1, 1, false)],
                1,
                1,
            );
            record_chaos_failure(&placeholder, accounting, &mut report, log);
        }
        chaos.shutdown();
    }
    if let Some(engine) = engine {
        engine.shutdown();
    }
    log(&format!(
        "{} instances checked, {} failure(s)",
        report.checked(),
        report.failures.len()
    ));
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_run_is_clean() {
        let cfg = RunnerConfig {
            seeds: 40,
            seed_start: 0,
            gen: GenConfig::small(),
            corpus_dir: None,
            check_service: false,
            check_chaos: false,
            ..RunnerConfig::default()
        };
        let mut lines = Vec::new();
        let report = run(&cfg, &mut |line| lines.push(line.to_string())).expect("no corpus I/O");
        assert!(report.is_clean(), "failures: {:#?}", report.failures);
        assert_eq!(report.fuzzed, 40);
        assert_eq!(report.corpus_replayed, 0);
        assert!(lines.iter().any(|l| l.contains("40 instances checked")));
    }

    #[test]
    fn energy_only_small_run_is_clean() {
        let cfg = RunnerConfig {
            seeds: 25,
            seed_start: 0,
            gen: GenConfig::small(),
            corpus_dir: None,
            check_service: false,
            check_chaos: false,
            energy_only: true,
            ..RunnerConfig::default()
        };
        let report = run(&cfg, &mut |_| {}).expect("no corpus I/O");
        assert!(report.is_clean(), "failures: {:#?}", report.failures);
        assert_eq!(report.fuzzed, 25);
    }

    #[test]
    fn reconfig_only_small_run_is_clean() {
        let cfg = RunnerConfig {
            seeds: 25,
            seed_start: 0,
            gen: GenConfig::small(),
            corpus_dir: None,
            check_service: false,
            check_chaos: false,
            reconfig_only: true,
            ..RunnerConfig::default()
        };
        let report = run(&cfg, &mut |_| {}).expect("no corpus I/O");
        assert!(report.is_clean(), "failures: {:#?}", report.failures);
        assert_eq!(report.fuzzed, 25);
    }

    #[test]
    fn corpus_replay_counts_instances() {
        let cfg = RunnerConfig {
            seeds: 0,
            seed_start: 0,
            gen: GenConfig::small(),
            corpus_dir: Some(corpus::default_corpus_dir()),
            check_service: false,
            check_chaos: false,
            ..RunnerConfig::default()
        };
        let report = run(&cfg, &mut |_| {}).expect("corpus loads");
        assert!(report.corpus_replayed >= 8);
        assert!(report.is_clean(), "failures: {:#?}", report.failures);
    }

    #[test]
    fn missing_corpus_is_an_error() {
        let cfg = RunnerConfig {
            seeds: 0,
            seed_start: 0,
            gen: GenConfig::small(),
            corpus_dir: Some(PathBuf::from("/nonexistent/corpus")),
            check_service: false,
            check_chaos: false,
            ..RunnerConfig::default()
        };
        assert!(run(&cfg, &mut |_| {}).is_err());
    }
}
