//! Synchronization and gain blocks of the receiver front end
//! (τ2, τ3, τ6/τ7, τ9/τ10, τ12, τ13, τ15).
//!
//! Real estimators operating on the frame buffers — automatic gain
//! control, autocorrelation-based coarse frequency estimation, a
//! Gardner-style timing error detector with symbol extraction, fine
//! frequency/phase estimation on the known header (Luise–Reggiannini-style
//! and phase-fit), and a data-aided noise estimator.

use crate::complex::C32;

/// τ2/τ8 — AGC: scales the block to unit average power. Returns the gain
/// applied.
pub fn agc(samples: &mut [C32]) -> f32 {
    let power: f32 = samples.iter().map(|s| s.norm_sq()).sum::<f32>() / samples.len().max(1) as f32;
    let gain = if power > 1e-12 {
        1.0 / power.sqrt()
    } else {
        1.0
    };
    for s in samples.iter_mut() {
        *s = s.scale(gain);
    }
    gain
}

/// τ3 — coarse frequency estimator: mean phase increment from the lag-1
/// autocorrelation, in radians per sample.
#[must_use]
pub fn coarse_freq_estimate(samples: &[C32]) -> f32 {
    let mut acc = C32::ZERO;
    for w in samples.windows(2) {
        acc += w[1] * w[0].conj();
    }
    acc.arg()
}

/// Derotates a block by `-freq` radians per sample (used after coarse and
/// fine estimates).
pub fn derotate(samples: &mut [C32], freq: f32) {
    for (n, s) in samples.iter_mut().enumerate() {
        *s = *s * C32::from_angle(-freq * n as f32);
    }
}

/// τ6 — Gardner timing error detector over a 2-samples-per-symbol block:
/// the average of `re{(y[k] - y[k-1]) * conj(y[k-1/2])}` style errors.
/// Near-zero when symbol instants align with even samples.
#[must_use]
pub fn gardner_timing_error(samples: &[C32]) -> f32 {
    let mut err = 0.0f32;
    let mut count = 0usize;
    let mut k = 2;
    while k + 1 < samples.len() {
        let prev = samples[k - 2];
        let mid = samples[k - 1];
        let cur = samples[k];
        let d = cur - prev;
        err += d.re * mid.re + d.im * mid.im;
        count += 1;
        k += 2;
    }
    if count == 0 {
        0.0
    } else {
        err / count as f32
    }
}

/// τ7 — symbol extraction: picks the on-time samples (phase 0 of 2) after
/// timing recovery.
#[must_use]
pub fn extract_symbols(samples: &[C32], sps: usize) -> Vec<C32> {
    samples.iter().step_by(sps).copied().collect()
}

/// τ12 — fine frequency estimation on the known header
/// (Luise–Reggiannini-style): weighted autocorrelations of the derotated
/// header at lags `1..=lmax`, in radians per symbol.
#[must_use]
pub fn fine_freq_lr(received_header: &[C32], known_header: &[C32]) -> f32 {
    debug_assert_eq!(received_header.len(), known_header.len());
    // Remove the modulation.
    let z: Vec<C32> = received_header
        .iter()
        .zip(known_header)
        .map(|(r, h)| *r * h.conj())
        .collect();
    let lmax = (z.len() / 2).max(1);
    let mut acc = C32::ZERO;
    for lag in 1..=lmax {
        let mut r = C32::ZERO;
        for i in lag..z.len() {
            r += z[i] * z[i - lag].conj();
        }
        acc += r;
    }
    acc.arg() / ((lmax + 1) as f32 / 2.0)
}

/// τ13 — fine phase estimation (P/F): the residual common phase of the
/// derotated header, in radians.
#[must_use]
pub fn fine_phase(received_header: &[C32], known_header: &[C32]) -> f32 {
    debug_assert_eq!(received_header.len(), known_header.len());
    let mut acc = C32::ZERO;
    for (r, h) in received_header.iter().zip(known_header) {
        acc += *r * h.conj();
    }
    acc.arg()
}

/// Applies a constant phase rotation.
pub fn rotate_block(samples: &mut [C32], phase: f32) {
    let rot = C32::from_angle(phase);
    for s in samples.iter_mut() {
        *s = *s * rot;
    }
}

/// τ15 — data-aided noise variance estimator: the mean squared deviation
/// of the received header from the known header (per complex dimension).
#[must_use]
pub fn noise_estimate(received_header: &[C32], known_header: &[C32]) -> f32 {
    debug_assert_eq!(received_header.len(), known_header.len());
    let e: f32 = received_header
        .iter()
        .zip(known_header)
        .map(|(r, h)| (*r - *h).norm_sq())
        .sum();
    (e / (2.0 * received_header.len().max(1) as f32)).max(1e-9)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framer::PlHeader;

    #[test]
    fn agc_normalizes_power() {
        let mut block: Vec<C32> = (0..256)
            .map(|i| C32::from_angle(i as f32 * 0.3).scale(3.7))
            .collect();
        let gain = agc(&mut block);
        assert!((gain - 1.0 / 3.7).abs() < 1e-3);
        let p: f32 = block.iter().map(|s| s.norm_sq()).sum::<f32>() / 256.0;
        assert!((p - 1.0).abs() < 1e-3);
    }

    #[test]
    fn coarse_freq_recovers_a_rotation() {
        let f = 0.05f32; // rad/sample
        let block: Vec<C32> = (0..512).map(|n| C32::from_angle(f * n as f32)).collect();
        let est = coarse_freq_estimate(&block);
        assert!((est - f).abs() < 1e-4, "est {est}");
        let mut derot = block.clone();
        derotate(&mut derot, est);
        let residual = coarse_freq_estimate(&derot);
        assert!(residual.abs() < 1e-4);
    }

    #[test]
    fn gardner_error_is_small_when_aligned() {
        // Alternating ±1 symbols at 2 sps with linear transitions: on-time
        // samples at even indices.
        let mut samples = Vec::new();
        for k in 0..128 {
            let s = if k % 2 == 0 { 1.0f32 } else { -1.0 };
            samples.push(C32::new(s, 0.0));
            samples.push(C32::new(0.0, 0.0)); // midpoint of a transition
        }
        let e = gardner_timing_error(&samples);
        assert!(e.abs() < 1e-6, "aligned error {e}");
    }

    #[test]
    fn extract_decimates() {
        let samples: Vec<C32> = (0..10).map(|i| C32::new(i as f32, 0.0)).collect();
        let sym = extract_symbols(&samples, 2);
        assert_eq!(sym.len(), 5);
        assert_eq!(sym[2].re, 4.0);
    }

    #[test]
    fn fine_freq_and_phase_recover_offsets() {
        let plh = PlHeader::new(90);
        let known = plh.symbols().to_vec();
        let f = 0.01f32;
        let ph = 0.6f32;
        let rx: Vec<C32> = known
            .iter()
            .enumerate()
            .map(|(n, h)| *h * C32::from_angle(f * n as f32 + ph))
            .collect();
        let est_f = fine_freq_lr(&rx, &known);
        assert!((est_f - f).abs() < 2e-3, "freq est {est_f}");
        // Remove the frequency, then estimate the phase.
        let derot: Vec<C32> = rx
            .iter()
            .enumerate()
            .map(|(n, s)| *s * C32::from_angle(-est_f * n as f32))
            .collect();
        let est_p = fine_phase(&derot, &known);
        assert!((est_p - ph).abs() < 0.05, "phase est {est_p}");
        let mut fixed = derot;
        rotate_block(&mut fixed, -est_p);
        let residual = fine_phase(&fixed, &known);
        assert!(residual.abs() < 1e-3);
    }

    #[test]
    fn noise_estimator_tracks_sigma() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let plh = PlHeader::new(90);
        let known = plh.symbols().to_vec();
        let mut rng = StdRng::seed_from_u64(9);
        let sigma = 0.2f32;
        let mut gauss = |s: f32| {
            let u1: f32 = rng.gen_range(1e-9..1.0f32);
            let u2: f32 = rng.gen_range(0.0..1.0f32);
            s * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
        };
        let rx: Vec<C32> = known
            .iter()
            .map(|h| *h + C32::new(gauss(sigma), gauss(sigma)))
            .collect();
        let est = noise_estimate(&rx, &known);
        let rel = (est - sigma * sigma).abs() / (sigma * sigma);
        assert!(rel < 0.35, "est {est} vs {}", sigma * sigma);
    }
}
