//! Physical-layer framing (τ14) and bit interleaving (τ17).

use crate::complex::C32;
use crate::modem::QpskModem;

/// The physical-layer header: a fixed, known pilot sequence of
/// `plh_symbols` QPSK symbols prepended to each frame. Generated from a
/// maximal-length LFSR so it has good autocorrelation for frame sync.
#[derive(Clone, Debug)]
pub struct PlHeader {
    symbols: Vec<C32>,
}

impl PlHeader {
    /// Builds the header sequence of `len` symbols.
    #[must_use]
    pub fn new(len: usize) -> Self {
        // 7-bit m-sequence (x^7 + x^6 + 1), mapped to QPSK pairs.
        let mut state: u8 = 0x5A | 1;
        let mut bits = Vec::with_capacity(2 * len);
        for _ in 0..2 * len {
            let fb = ((state >> 6) ^ (state >> 5)) & 1;
            bits.push(state & 1);
            state = (state << 1) | fb;
        }
        let symbols = QpskModem::modulate(&bits);
        PlHeader { symbols }
    }

    /// The header symbols.
    #[must_use]
    pub fn symbols(&self) -> &[C32] {
        &self.symbols
    }

    /// Header length in symbols.
    #[must_use]
    pub fn len(&self) -> usize {
        self.symbols.len()
    }

    /// Never empty for positive construction length.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.symbols.is_empty()
    }

    /// Prepends the header to a frame of data symbols.
    #[must_use]
    pub fn insert(&self, data: &[C32]) -> Vec<C32> {
        let mut out = Vec::with_capacity(self.len() + data.len());
        out.extend_from_slice(&self.symbols);
        out.extend_from_slice(data);
        out
    }

    /// Strips the header (τ14 "Framer PLH — remove").
    ///
    /// # Panics
    /// Panics if the frame is shorter than the header.
    #[must_use]
    pub fn remove(&self, frame: &[C32]) -> Vec<C32> {
        assert!(frame.len() >= self.len(), "frame shorter than its header");
        frame[self.len()..].to_vec()
    }

    /// Correlates the header against `haystack` at each offset and returns
    /// the offset with the strongest normalized correlation (frame sync).
    #[must_use]
    pub fn correlate(&self, haystack: &[C32]) -> (usize, f32) {
        let h = self.len();
        if haystack.len() < h {
            return (0, 0.0);
        }
        let mut best = (0usize, -1.0f32);
        for off in 0..=haystack.len() - h {
            let mut acc = C32::ZERO;
            let mut energy = 0.0f32;
            for (i, hs) in self.symbols.iter().enumerate() {
                acc += haystack[off + i] * hs.conj();
                energy += haystack[off + i].norm_sq();
            }
            let score = acc.abs() / energy.max(1e-12).sqrt() / (h as f32).sqrt();
            if score > best.1 {
                best = (off, score);
            }
        }
        best
    }
}

/// A row-column block bit interleaver (τ17 writes columns, reads rows; the
/// deinterleaver inverts it). `rows` must divide the block length.
#[derive(Clone, Copy, Debug)]
pub struct BlockInterleaver {
    rows: usize,
}

impl BlockInterleaver {
    /// Builds an interleaver with `rows` rows.
    ///
    /// # Panics
    /// Panics if `rows == 0`.
    #[must_use]
    pub fn new(rows: usize) -> Self {
        assert!(rows > 0, "need at least one row");
        BlockInterleaver { rows }
    }

    /// Interleaves a block (column-write, row-read).
    ///
    /// # Panics
    /// Panics if `rows` does not divide the block length.
    #[must_use]
    pub fn interleave<T: Copy>(&self, block: &[T]) -> Vec<T> {
        assert_eq!(block.len() % self.rows, 0, "rows must divide the block");
        let cols = block.len() / self.rows;
        let mut out = Vec::with_capacity(block.len());
        for r in 0..self.rows {
            for c in 0..cols {
                out.push(block[c * self.rows + r]);
            }
        }
        out
    }

    /// Inverts [`BlockInterleaver::interleave`].
    #[must_use]
    pub fn deinterleave<T: Copy + Default>(&self, block: &[T]) -> Vec<T> {
        assert_eq!(block.len() % self.rows, 0, "rows must divide the block");
        let cols = block.len() / self.rows;
        let mut out = vec![T::default(); block.len()];
        let mut it = block.iter();
        for r in 0..self.rows {
            for c in 0..cols {
                out[c * self.rows + r] = *it.next().unwrap();
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_roundtrip() {
        let plh = PlHeader::new(90);
        assert_eq!(plh.len(), 90);
        assert!(!plh.is_empty());
        let data: Vec<C32> = (0..900).map(|i| C32::from_angle(i as f32)).collect();
        let framed = plh.insert(&data);
        assert_eq!(framed.len(), 990);
        let back = plh.remove(&framed);
        assert_eq!(back.len(), 900);
        for (a, b) in back.iter().zip(&data) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn correlation_finds_the_header() {
        let plh = PlHeader::new(90);
        let data: Vec<C32> = (0..300)
            .map(|i| C32::from_angle(i as f32 * 1.7).scale(0.7))
            .collect();
        // Bury the header at offset 123.
        let mut stream = data.clone();
        stream.splice(123..123, plh.symbols().iter().copied());
        let (off, score) = plh.correlate(&stream);
        assert_eq!(off, 123);
        assert!(score > 0.8, "weak peak {score}");
    }

    #[test]
    fn interleaver_roundtrip() {
        let il = BlockInterleaver::new(8);
        let block: Vec<u16> = (0..1800).collect();
        let mixed = il.interleave(&block);
        assert_ne!(mixed, block);
        assert_eq!(il.deinterleave(&mixed), block);
    }

    #[test]
    fn interleaver_spreads_bursts() {
        // A burst of adjacent positions in the interleaved domain must map
        // to spread positions in the original domain.
        let il = BlockInterleaver::new(10);
        let block: Vec<u32> = (0..100).collect();
        let mixed = il.interleave(&block);
        // First 5 interleaved entries come from stride-10 positions.
        assert_eq!(&mixed[..5], &[0, 10, 20, 30, 40]);
    }

    #[test]
    #[should_panic(expected = "divide")]
    fn interleaver_rejects_ragged_blocks() {
        let il = BlockInterleaver::new(7);
        let _ = il.interleave(&[0u8; 10]);
    }
}
