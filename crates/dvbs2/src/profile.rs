//! The paper's Table III: measured per-task latencies of the DVB-S2
//! receiver on the two evaluation platforms, plus the Table II resource
//! configurations.
//!
//! Weights are stored in tenths of microseconds (the table reports one
//! decimal), so all scheduling arithmetic stays exact; multiply by
//! [`WEIGHT_UNIT_US`] to get microseconds.

use crate::params::PAPER_INFO_BITS_PER_FRAME;
use amp_core::{Resources, Task, TaskChain};
use serde::{Deserialize, Serialize};

/// Microseconds per profile weight unit (weights are 0.1 µs each).
pub const WEIGHT_UNIT_US: f64 = 0.1;

/// The two platforms of the paper's real-world SDR experiment.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Platform {
    /// Apple Mac Studio, M1 Ultra: 16 P-cores (big) + 4 E-cores (little),
    /// interframe level 4.
    MacStudio,
    /// Minisforum AtomMan X7 Ti, Intel Ultra 9 185H: 6 P-cores + 8
    /// E-cores (2 LP-E cores unused), interframe level 8.
    X7Ti,
}

impl Platform {
    /// Display name as used in the paper.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Platform::MacStudio => "Mac Studio",
            Platform::X7Ti => "X7 Ti",
        }
    }

    /// The full core complement `R = (b, l)`.
    #[must_use]
    pub fn full_resources(self) -> Resources {
        match self {
            Platform::MacStudio => Resources::new(16, 4),
            Platform::X7Ti => Resources::new(6, 8),
        }
    }

    /// Half the cores, as in the paper's second configuration per platform.
    #[must_use]
    pub fn half_resources(self) -> Resources {
        match self {
            Platform::MacStudio => Resources::new(8, 2),
            Platform::X7Ti => Resources::new(3, 4),
        }
    }

    /// The interframe level (frames processed together per task firing):
    /// converts pipeline periods to frame rates.
    #[must_use]
    pub fn interframe(self) -> u64 {
        match self {
            Platform::MacStudio => 4,
            Platform::X7Ti => 8,
        }
    }

    /// Frames per second for a pipeline period given in weight units.
    #[must_use]
    pub fn fps_for_period_units(self, period_units: f64) -> f64 {
        let period_us = period_units * WEIGHT_UNIT_US;
        self.interframe() as f64 * 1e6 / period_us
    }

    /// Information throughput in Mb/s for a period in weight units
    /// (paper frame: K = 14232 info bits).
    #[must_use]
    pub fn mbps_for_period_units(self, period_units: f64) -> f64 {
        self.fps_for_period_units(period_units) * PAPER_INFO_BITS_PER_FRAME as f64 / 1e6
    }
}

/// Raw Table III rows: (name, replicable, Mac B, Mac L, X7 B, X7 L), in
/// tenths of microseconds.
const TABLE_III: [(&str, bool, u64, u64, u64, u64); 23] = [
    ("Radio -- receive", false, 523, 2483, 1317, 1332),
    ("Multiplier AGC -- imultiply", false, 752, 1499, 1383, 3181),
    (
        "Sync. Freq. Coarse -- synchronize",
        false,
        964,
        4966,
        1137,
        4290,
    ),
    (
        "Filter Matched -- filter (part 1)",
        false,
        3189,
        9029,
        3348,
        7119,
    ),
    (
        "Filter Matched -- filter (part 2)",
        false,
        3151,
        8832,
        3293,
        7126,
    ),
    (
        "Sync. Timing -- synchronize",
        false,
        9506,
        14689,
        13419,
        23871,
    ),
    ("Sync. Timing -- extract", false, 555, 1060, 587, 1351),
    (
        "Multiplier AGC -- imultiply (2)",
        false,
        371,
        754,
        635,
        1574,
    ),
    (
        "Sync. Frame -- synchronize (part 1)",
        false,
        3610,
        10647,
        3659,
        8481,
    ),
    (
        "Sync. Frame -- synchronize (part 2)",
        false,
        529,
        1691,
        811,
        1979,
    ),
    ("Scrambler Symbol -- descramble", true, 160, 610, 251, 659),
    (
        "Sync. Freq. Fine L&R -- synchronize",
        false,
        505,
        2471,
        543,
        2032,
    ),
    (
        "Sync. Freq. Fine P/F -- synchronize",
        true,
        992,
        5978,
        2538,
        3562,
    ),
    ("Framer PLH -- remove", true, 234, 651, 474, 877),
    ("Noise Estimator -- estimate", true, 405, 654, 324, 654),
    ("Modem QPSK -- demodulate", true, 22575, 48386, 21231, 57424),
    ("Interleaver -- deinterleave", true, 211, 584, 293, 476),
    ("Decoder LDPC -- decode SIHO", true, 1532, 5067, 2397, 10244),
    (
        "Decoder BCH -- decode HIHO",
        true,
        33399,
        73035,
        62090,
        81662,
    ),
    (
        "Scrambler Binary -- descramble",
        true,
        1917,
        4649,
        5590,
        6218,
    ),
    ("Sink Binary File -- send", false, 95, 333, 346, 756),
    ("Source -- generate", false, 40, 136, 169, 234),
    ("Monitor -- check errors", true, 95, 210, 92, 205),
];

/// The DVB-S2 receiver chain with the platform's profiled weights
/// (tenths of microseconds).
#[must_use]
pub fn profiled_chain(platform: Platform) -> TaskChain {
    let tasks = TABLE_III
        .iter()
        .map(|&(name, replicable, mac_b, mac_l, x7_b, x7_l)| {
            let (big, little) = match platform {
                Platform::MacStudio => (mac_b, mac_l),
                Platform::X7Ti => (x7_b, x7_l),
            };
            Task {
                name: name.to_string(),
                weight_big: big,
                weight_little: little,
                replicable,
            }
        })
        .collect();
    TaskChain::new(tasks)
}

/// One Table II configuration: a platform and a core budget.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct PlatformConfig {
    /// The platform whose profile to schedule against.
    pub platform: Platform,
    /// Cores made available to the scheduler.
    pub resources: Resources,
}

/// The four configurations of Table II, in the paper's row order.
#[must_use]
pub fn table2_configs() -> [PlatformConfig; 4] {
    [
        PlatformConfig {
            platform: Platform::MacStudio,
            resources: Platform::MacStudio.half_resources(),
        },
        PlatformConfig {
            platform: Platform::MacStudio,
            resources: Platform::MacStudio.full_resources(),
        },
        PlatformConfig {
            platform: Platform::X7Ti,
            resources: Platform::X7Ti.half_resources(),
        },
        PlatformConfig {
            platform: Platform::X7Ti,
            resources: Platform::X7Ti.full_resources(),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use amp_core::CoreType;

    #[test]
    fn totals_match_table_iii() {
        // The paper's printed totals (8530.8 / 19841.3 / 12592.5 / 22530.7)
        // differ from the sums of the printed rows by up to 0.2 µs —
        // rounding in the paper's total line. These are the exact row sums.
        let mac = profiled_chain(Platform::MacStudio);
        assert_eq!(mac.len(), 23);
        assert_eq!(mac.total(CoreType::Big), 85310); // paper prints 8530.8 µs
        assert_eq!(mac.total(CoreType::Little), 198414); // paper: 19841.3 µs
        let x7 = profiled_chain(Platform::X7Ti);
        assert_eq!(x7.total(CoreType::Big), 125927); // paper: 12592.5 µs
        assert_eq!(x7.total(CoreType::Little), 225307); // paper: 22530.7 µs
    }

    #[test]
    fn slowest_tasks_match_the_papers_highlights() {
        // Table III highlights: slowest sequential = Sync Timing (τ6),
        // slowest replicable = BCH (τ19) then QPSK demod (τ16).
        for p in [Platform::MacStudio, Platform::X7Ti] {
            let chain = profiled_chain(p);
            let slow_seq = chain
                .tasks()
                .iter()
                .filter(|t| !t.replicable)
                .max_by_key(|t| t.weight_big)
                .unwrap();
            assert!(slow_seq.name.contains("Sync. Timing -- synchronize"));
            let slow_rep = chain
                .tasks()
                .iter()
                .filter(|t| t.replicable)
                .max_by_key(|t| t.weight_big)
                .unwrap();
            assert!(slow_rep.name.contains("BCH"));
        }
    }

    #[test]
    fn little_latency_is_never_faster_on_these_profiles() {
        for p in [Platform::MacStudio, Platform::X7Ti] {
            for t in profiled_chain(p).tasks() {
                assert!(
                    t.weight_little >= t.weight_big,
                    "{} on {:?}: little {} < big {}",
                    t.name,
                    p,
                    t.weight_little,
                    t.weight_big
                );
            }
        }
    }

    #[test]
    fn throughput_conversions_match_table_ii() {
        // S1 (HeRAD, Mac half): period 1128.7 µs -> 3544 FPS, 50.4 Mb/s.
        let fps = Platform::MacStudio.fps_for_period_units(11287.0);
        assert!((fps - 3544.0).abs() < 1.0, "fps {fps}");
        let mbps = Platform::MacStudio.mbps_for_period_units(11287.0);
        assert!((mbps - 50.4).abs() < 0.1, "mbps {mbps}");
        // S11 (HeRAD, X7 half): period 2722.1 µs -> 2939 FPS, 41.8 Mb/s.
        let fps = Platform::X7Ti.fps_for_period_units(27221.0);
        assert!((fps - 2939.0).abs() < 1.0, "fps {fps}");
        let mbps = Platform::X7Ti.mbps_for_period_units(27221.0);
        assert!((mbps - 41.8).abs() < 0.1, "mbps {mbps}");
    }

    #[test]
    fn configurations_match_the_paper() {
        let cfgs = table2_configs();
        assert_eq!(cfgs[0].resources, Resources::new(8, 2));
        assert_eq!(cfgs[1].resources, Resources::new(16, 4));
        assert_eq!(cfgs[2].resources, Resources::new(3, 4));
        assert_eq!(cfgs[3].resources, Resources::new(6, 8));
        assert_eq!(Platform::MacStudio.interframe(), 4);
        assert_eq!(Platform::X7Ti.interframe(), 8);
        assert_eq!(Platform::MacStudio.name(), "Mac Studio");
    }
}
