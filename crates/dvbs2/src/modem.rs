//! QPSK modulation and soft demodulation (τ16).

use crate::complex::C32;

const INV_SQRT2: f32 = std::f32::consts::FRAC_1_SQRT_2;

/// Gray-mapped QPSK as in DVB-S2: bit pair `(b0, b1)` selects the
/// quadrant; unit average energy.
#[derive(Clone, Copy, Debug)]
pub struct QpskModem;

impl QpskModem {
    /// Maps a bit pair to a symbol.
    #[must_use]
    pub fn map(b0: u8, b1: u8) -> C32 {
        let re = if b0 == 0 { INV_SQRT2 } else { -INV_SQRT2 };
        let im = if b1 == 0 { INV_SQRT2 } else { -INV_SQRT2 };
        C32::new(re, im)
    }

    /// Modulates a bit stream (length must be even) into symbols.
    ///
    /// # Panics
    /// Panics on an odd number of bits.
    #[must_use]
    pub fn modulate(bits: &[u8]) -> Vec<C32> {
        assert!(bits.len().is_multiple_of(2), "QPSK needs an even bit count");
        bits.chunks_exact(2)
            .map(|p| Self::map(p[0], p[1]))
            .collect()
    }

    /// Computes per-bit LLRs from received symbols; `sigma2` is the
    /// per-component noise variance. Positive LLR = bit 0 more likely
    /// (matches [`crate::ldpc::Ldpc::decode`]).
    #[must_use]
    pub fn demodulate(symbols: &[C32], sigma2: f32) -> Vec<f32> {
        let scale = 2.0 * std::f32::consts::SQRT_2 / sigma2.max(1e-9);
        let mut llr = Vec::with_capacity(symbols.len() * 2);
        for s in symbols {
            llr.push(s.re * scale);
            llr.push(s.im * scale);
        }
        llr
    }

    /// Hard decision from a symbol.
    #[must_use]
    pub fn hard_decision(s: C32) -> (u8, u8) {
        (u8::from(s.re < 0.0), u8::from(s.im < 0.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constellation_has_unit_energy() {
        for b0 in 0..2u8 {
            for b1 in 0..2u8 {
                let s = QpskModem::map(b0, b1);
                assert!((s.norm_sq() - 1.0).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn roundtrip_clean_channel() {
        let bits: Vec<u8> = (0..256).map(|i| ((i * 5 + 1) % 2) as u8).collect();
        let sym = QpskModem::modulate(&bits);
        assert_eq!(sym.len(), 128);
        let llr = QpskModem::demodulate(&sym, 0.5);
        let hard: Vec<u8> = llr.iter().map(|&l| u8::from(l < 0.0)).collect();
        assert_eq!(hard, bits);
    }

    #[test]
    fn llr_magnitude_scales_inversely_with_noise() {
        let sym = vec![QpskModem::map(0, 1)];
        let quiet = QpskModem::demodulate(&sym, 0.1);
        let noisy = QpskModem::demodulate(&sym, 1.0);
        assert!(quiet[0] > noisy[0] * 5.0);
        assert!(quiet[1] < 0.0 && noisy[1] < 0.0);
    }

    #[test]
    fn hard_decisions_match_mapping() {
        for b0 in 0..2u8 {
            for b1 in 0..2u8 {
                assert_eq!(QpskModem::hard_decision(QpskModem::map(b0, b1)), (b0, b1));
            }
        }
    }

    #[test]
    #[should_panic(expected = "even bit count")]
    fn odd_bits_panic() {
        let _ = QpskModem::modulate(&[1, 0, 1]);
    }
}
