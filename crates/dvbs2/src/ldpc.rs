//! IRA LDPC codec (the inner FEC of DVB-S2, τ18 in the chain).
//!
//! DVB-S2's LDPC codes are Irregular Repeat-Accumulate: the parity part of
//! H is a staircase (dual-diagonal), which makes encoding a running xor.
//! The reduced code keeps that structure at N = 1800, K = 1600: each
//! information bit participates in `DV = 3` randomly chosen (seeded,
//! reproducible) parity checks. The decoder is the paper's configuration —
//! layered normalized min-sum (NMS, factor 0.75) with early stopping on a
//! clean syndrome.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Variable-node degree of information bits.
const DV: usize = 3;
/// NMS normalization factor (the paper uses NMS; 0.75 is the customary
/// hardware-friendly factor).
const NMS_FACTOR: f32 = 0.75;

/// An IRA LDPC code with staircase parity.
pub struct Ldpc {
    n: usize,
    k: usize,
    /// For each check row, the information-bit columns connected to it.
    check_info: Vec<Vec<u32>>,
    /// Decoder iterations (early stop on zero syndrome).
    iters: usize,
}

impl Ldpc {
    /// Builds the code with a seeded random information part: info bit `i`
    /// connects to `DV` distinct checks.
    ///
    /// # Panics
    /// Panics unless `0 < k < n` and there are at least `DV` checks.
    #[must_use]
    pub fn new(n: usize, k: usize, iters: usize, seed: u64) -> Self {
        assert!(k > 0 && k < n, "need 0 < k < n");
        let m = n - k;
        assert!(m >= DV, "need at least {DV} parity checks");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut check_info = vec![Vec::new(); m];
        for col in 0..k {
            let mut rows = std::collections::BTreeSet::new();
            while rows.len() < DV {
                rows.insert(rng.gen_range(0..m));
            }
            for row in rows {
                check_info[row].push(col as u32);
            }
        }
        Ldpc {
            n,
            k,
            check_info,
            iters,
        }
    }

    /// The reduced-chain code (N = 1800, K = 1600, 10 iterations).
    #[must_use]
    pub fn reduced() -> Self {
        Ldpc::new(1800, 1600, 10, 0xD5B2)
    }

    /// Codeword length.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Message length.
    #[must_use]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Systematic encode: `message || parity`, with the staircase
    /// accumulator `p_j = p_{j-1} ⊕ (⊕ info bits of check j)`.
    ///
    /// # Panics
    /// Panics if `message.len() != k`.
    #[must_use]
    pub fn encode(&self, message: &[u8]) -> Vec<u8> {
        assert_eq!(message.len(), self.k, "message must have k bits");
        let m = self.n - self.k;
        let mut out = Vec::with_capacity(self.n);
        out.extend_from_slice(message);
        let mut acc = 0u8;
        for j in 0..m {
            let mut x = acc;
            for &col in &self.check_info[j] {
                x ^= message[col as usize];
            }
            out.push(x);
            acc = x;
        }
        out
    }

    /// Whether `bits` satisfies every parity check.
    #[must_use]
    pub fn syndrome_ok(&self, bits: &[u8]) -> bool {
        let m = self.n - self.k;
        for j in 0..m {
            let mut x = bits[self.k + j];
            if j > 0 {
                x ^= bits[self.k + j - 1];
            }
            for &col in &self.check_info[j] {
                x ^= bits[col as usize];
            }
            if x != 0 {
                return false;
            }
        }
        true
    }

    /// Soft-input hard-output decode: layered normalized min-sum over the
    /// channel LLRs (positive LLR = bit 0 more likely). Returns the hard
    /// bits and the number of iterations actually run (early stop).
    ///
    /// # Panics
    /// Panics if `llr.len() != n`.
    #[must_use]
    pub fn decode(&self, llr: &[f32]) -> (Vec<u8>, usize) {
        assert_eq!(llr.len(), self.n, "need one LLR per coded bit");
        let m = self.n - self.k;
        // Row structure including the staircase columns.
        // check j connects: info cols, parity col k+j, parity col k+j-1.
        let mut posterior: Vec<f32> = llr.to_vec();
        // Per-edge check-to-variable messages, keyed by (check, slot).
        let mut c2v: Vec<Vec<f32>> = (0..m)
            .map(|j| vec![0.0; self.check_info[j].len() + if j > 0 { 2 } else { 1 }])
            .collect();
        let row_cols = |j: usize| -> Vec<usize> {
            let mut cols: Vec<usize> = self.check_info[j].iter().map(|&c| c as usize).collect();
            cols.push(self.k + j);
            if j > 0 {
                cols.push(self.k + j - 1);
            }
            cols
        };

        let mut iters_run = 0;
        for _ in 0..self.iters {
            iters_run += 1;
            // Layered update: checks processed sequentially, posterior
            // updated in place. `j` is the check index, also used for the
            // staircase neighbour lookup, so a range loop reads clearest.
            #[allow(clippy::needless_range_loop)]
            for j in 0..m {
                let cols = row_cols(j);
                // Variable-to-check: posterior minus old check message.
                let v2c: Vec<f32> = cols
                    .iter()
                    .zip(&c2v[j])
                    .map(|(&c, &old)| posterior[c] - old)
                    .collect();
                // Min-sum: per edge, sign product and min magnitude of the
                // others.
                let total_sign = v2c
                    .iter()
                    .fold(1.0f32, |s, &x| if x < 0.0 { -s } else { s });
                let (mut min1, mut min2) = (f32::INFINITY, f32::INFINITY);
                let mut argmin = usize::MAX;
                for (idx, &x) in v2c.iter().enumerate() {
                    let a = x.abs();
                    if a < min1 {
                        min2 = min1;
                        min1 = a;
                        argmin = idx;
                    } else if a < min2 {
                        min2 = a;
                    }
                }
                for (idx, (&c, old)) in cols.iter().zip(c2v[j].iter_mut()).enumerate() {
                    let mag = if idx == argmin { min2 } else { min1 };
                    let sign_self = if v2c[idx] < 0.0 { -1.0 } else { 1.0 };
                    let msg = NMS_FACTOR * total_sign * sign_self * mag;
                    posterior[c] = v2c[idx] + msg;
                    *old = msg;
                }
            }
            let hard: Vec<u8> = posterior.iter().map(|&p| u8::from(p < 0.0)).collect();
            if self.syndrome_ok(&hard) {
                return (hard, iters_run);
            }
        }
        let hard = posterior.iter().map(|&p| u8::from(p < 0.0)).collect();
        (hard, iters_run)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use rand_distr_free::gaussian;

    /// Tiny Box–Muller so the tests avoid a rand_distr dependency.
    mod rand_distr_free {
        use rand::Rng;
        pub fn gaussian(rng: &mut impl Rng, sigma: f32) -> f32 {
            let u1: f32 = rng.gen_range(1e-9..1.0f32);
            let u2: f32 = rng.gen_range(0.0..1.0f32);
            sigma * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
        }
    }

    #[test]
    fn encode_satisfies_all_checks() {
        let code = Ldpc::reduced();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..5 {
            let msg: Vec<u8> = (0..code.k()).map(|_| rng.gen_range(0..2u8)).collect();
            let cw = code.encode(&msg);
            assert_eq!(cw.len(), code.n());
            assert_eq!(&cw[..code.k()], &msg[..]);
            assert!(code.syndrome_ok(&cw));
        }
    }

    #[test]
    fn perfect_llrs_decode_in_one_iteration() {
        let code = Ldpc::reduced();
        let mut rng = StdRng::seed_from_u64(2);
        let msg: Vec<u8> = (0..code.k()).map(|_| rng.gen_range(0..2u8)).collect();
        let cw = code.encode(&msg);
        let llr: Vec<f32> = cw
            .iter()
            .map(|&b| if b == 0 { 8.0 } else { -8.0 })
            .collect();
        let (hard, iters) = code.decode(&llr);
        assert_eq!(hard, cw);
        assert_eq!(iters, 1, "early stop on a clean frame");
    }

    #[test]
    fn corrects_noisy_llrs_at_moderate_snr() {
        let code = Ldpc::reduced();
        let mut rng = StdRng::seed_from_u64(3);
        let msg: Vec<u8> = (0..code.k()).map(|_| rng.gen_range(0..2u8)).collect();
        let cw = code.encode(&msg);
        // BPSK over AWGN at ~6.6 dB Eb/N0 — above the threshold of this
        // small random rate-8/9 code (a high-rate code needs high SNR).
        let sigma = 0.35f32;
        let mut failures = 0;
        for trial in 0..5 {
            let llr: Vec<f32> = cw
                .iter()
                .map(|&b| {
                    let x = if b == 0 { 1.0f32 } else { -1.0 };
                    let y = x + gaussian(&mut rng, sigma);
                    2.0 * y / (sigma * sigma)
                })
                .collect();
            let (hard, _) = code.decode(&llr);
            if hard != cw {
                failures += 1;
            }
            let _ = trial;
        }
        assert!(failures <= 1, "{failures}/5 frames failed at high SNR");
    }

    #[test]
    fn erased_bits_are_recovered() {
        let code = Ldpc::reduced();
        let mut rng = StdRng::seed_from_u64(4);
        let msg: Vec<u8> = (0..code.k()).map(|_| rng.gen_range(0..2u8)).collect();
        let cw = code.encode(&msg);
        let mut llr: Vec<f32> = cw
            .iter()
            .map(|&b| if b == 0 { 6.0 } else { -6.0 })
            .collect();
        // Erase 20 scattered bits (zero LLR).
        for i in (0..code.n()).step_by(code.n() / 20) {
            llr[i] = 0.0;
        }
        let (hard, _) = code.decode(&llr);
        assert_eq!(hard, cw);
    }

    #[test]
    fn construction_is_deterministic() {
        let a = Ldpc::new(180, 160, 10, 42);
        let b = Ldpc::new(180, 160, 10, 42);
        let msg: Vec<u8> = (0..160).map(|i| (i % 2) as u8).collect();
        assert_eq!(a.encode(&msg), b.encode(&msg));
    }

    #[test]
    #[should_panic(expected = "0 < k < n")]
    fn rejects_bad_dimensions() {
        let _ = Ldpc::new(100, 100, 10, 0);
    }
}
