//! The transmitter side and the shared codec context.
//!
//! The paper's testbed feeds the receiver from a recorded/live DVB-S2
//! transmission; here a faithful reduced-scale transmitter generates the
//! "air" samples: PRBS payload → BB scrambling → BCH → LDPC → bit
//! interleaving → QPSK → PL framing → PL (symbol) scrambling of the data
//! portion → RRC pulse shaping → AWGN channel.

use crate::bch::Bch;
use crate::channel::Channel;
use crate::complex::C32;
use crate::filter::RrcFilter;
use crate::framer::{BlockInterleaver, PlHeader};
use crate::ldpc::Ldpc;
use crate::modem::QpskModem;
use crate::params::FrameParams;
use crate::scrambler::{BinaryScrambler, SymbolScrambler};

/// All codecs/filters of one link configuration, shared by the
/// transmitter and the receiver.
pub struct LinkContext {
    /// Frame geometry.
    pub params: FrameParams,
    /// Outer FEC.
    pub bch: Bch,
    /// Inner FEC.
    pub ldpc: Ldpc,
    /// Bit interleaver (8 rows, like DVB-S2 QPSK-adjacent configs).
    pub interleaver: BlockInterleaver,
    /// Physical-layer header.
    pub plh: PlHeader,
    /// Pulse shaping / matched filter pair.
    pub rrc: RrcFilter,
    /// Physical-layer symbol scrambler.
    pub symbol_scrambler: SymbolScrambler,
}

impl LinkContext {
    /// The reduced-scale context (see [`FrameParams::reduced`]).
    ///
    /// # Panics
    /// Panics if the reduced parameters ever become inconsistent with the
    /// codec sizes (checked at construction).
    #[must_use]
    pub fn reduced() -> Self {
        let params = FrameParams::reduced();
        params
            .validate()
            .expect("reduced parameters are consistent");
        let bch = Bch::reduced();
        let ldpc = Ldpc::reduced();
        assert_eq!(bch.k(), params.k_info);
        assert_eq!(bch.n(), params.k_ldpc);
        assert_eq!(ldpc.k(), params.k_ldpc);
        assert_eq!(ldpc.n(), params.n_ldpc);
        LinkContext {
            params,
            bch,
            ldpc,
            interleaver: BlockInterleaver::new(8),
            plh: PlHeader::new(params.plh_symbols),
            rrc: RrcFilter::reduced(),
            symbol_scrambler: SymbolScrambler::new(1),
        }
    }

    /// The deterministic PRBS payload of frame `seq` (what τ22 "Source —
    /// generate" reproduces at the receiver for the monitor).
    #[must_use]
    pub fn reference_bits(&self, seq: u64) -> Vec<u8> {
        // xorshift64* keyed by the sequence number.
        let mut x = seq.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        (0..self.params.k_info)
            .map(|_| {
                x ^= x >> 12;
                x ^= x << 25;
                x ^= x >> 27;
                ((x.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 63) & 1) as u8
            })
            .collect()
    }

    /// Encodes and modulates frame `seq` into shaped baseband samples.
    #[must_use]
    pub fn tx_frame(&self, seq: u64) -> Vec<C32> {
        let mut bits = self.reference_bits(seq);
        BinaryScrambler::apply(&mut bits);
        let bch_coded = self.bch.encode(&bits);
        let ldpc_coded = self.ldpc.encode(&bch_coded);
        let interleaved = self.interleaver.interleave(&ldpc_coded);
        let mut data_symbols = QpskModem::modulate(&interleaved);
        self.symbol_scrambler.scramble(&mut data_symbols);
        let framed = self.plh.insert(&data_symbols);
        self.rrc.shape(&framed)
    }

    /// Transmits frame `seq` through an AWGN channel (deterministic per
    /// `(noise_seed, seq)`).
    #[must_use]
    pub fn tx_through_channel(&self, seq: u64, sigma: f32, noise_seed: u64) -> Vec<C32> {
        let shaped = self.tx_frame(seq);
        let mut channel = Channel::new(sigma, 0.0, 0.0, noise_seed ^ seq);
        channel.transmit(&shaped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tx_frame_has_the_right_shape() {
        let ctx = LinkContext::reduced();
        let samples = ctx.tx_frame(0);
        assert_eq!(samples.len(), ctx.params.frame_samples());
    }

    #[test]
    fn reference_bits_are_deterministic_and_distinct() {
        let ctx = LinkContext::reduced();
        assert_eq!(ctx.reference_bits(3), ctx.reference_bits(3));
        assert_ne!(ctx.reference_bits(3), ctx.reference_bits(4));
        let ones: usize = ctx.reference_bits(1).iter().map(|&b| b as usize).sum();
        let ratio = ones as f64 / ctx.params.k_info as f64;
        assert!((0.4..=0.6).contains(&ratio), "bit balance {ratio}");
    }

    #[test]
    fn channel_transmission_is_reproducible() {
        let ctx = LinkContext::reduced();
        let a = ctx.tx_through_channel(5, 0.1, 99);
        let b = ctx.tx_through_channel(5, 0.1, 99);
        assert_eq!(a, b);
    }
}
