//! Shortened binary BCH codec (the outer FEC of DVB-S2, τ19 in the chain).
//!
//! DVB-S2 uses t = 8/10/12 BCH over GF(2^14)/GF(2^16); the reduced chain
//! uses t = 3 over GF(2^11), shortened from (2047, 2014) to (1600, 1567) —
//! same encoder (systematic LFSR division by the generator polynomial) and
//! same decoder (syndromes → Berlekamp–Massey → Chien search) as the full
//! code, just smaller tables.

use crate::galois::GaloisField;

/// A t-error-correcting binary BCH code of length `n ≤ 2^m - 1` (shortened
/// when `n < 2^m - 1`), with message length `k = n - deg(g)`.
pub struct Bch {
    gf: GaloisField,
    t: usize,
    n: usize,
    k: usize,
    /// Generator polynomial coefficients over GF(2), low-order first.
    generator: Vec<u8>,
}

impl Bch {
    /// Builds the code. `n` is the shortened codeword length.
    ///
    /// # Panics
    /// Panics if the generator degree does not leave room for a message
    /// (`n <= deg(g)`).
    #[must_use]
    pub fn new(gf: GaloisField, t: usize, n: usize) -> Self {
        // g(x) = lcm of minimal polynomials of α, α^3, ..., α^(2t-1).
        let mut generator = vec![1u16];
        let mut used: Vec<Vec<u16>> = Vec::new();
        for i in (1..2 * t).step_by(2) {
            let mp = gf.minimal_poly(i);
            if used.contains(&mp) {
                continue;
            }
            generator = gf.poly_mul(&generator, &mp);
            used.push(mp);
        }
        let generator: Vec<u8> = generator.iter().map(|&c| c as u8).collect();
        let deg = generator.len() - 1;
        assert!(n > deg, "codeword too short for the generator (deg {deg})");
        assert!(n <= gf.order(), "codeword longer than the field order");
        Bch {
            t,
            n,
            k: n - deg,
            gf,
            generator,
        }
    }

    /// The reduced-chain code: t = 3 over GF(2^11), (1600, 1567).
    #[must_use]
    pub fn reduced() -> Self {
        Bch::new(GaloisField::gf2_11(), 3, 1600)
    }

    /// Codeword length `n`.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Message length `k`.
    #[must_use]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Correctable errors `t`.
    #[must_use]
    pub fn t(&self) -> usize {
        self.t
    }

    /// Systematic encode: returns `message || parity` (bits as 0/1 bytes).
    ///
    /// # Panics
    /// Panics if `message.len() != k`.
    #[must_use]
    pub fn encode(&self, message: &[u8]) -> Vec<u8> {
        assert_eq!(message.len(), self.k, "message must have k bits");
        let deg = self.generator.len() - 1;
        // LFSR division of message(x) · x^deg by g(x).
        let mut reg = vec![0u8; deg];
        for &bit in message {
            let feedback = bit ^ reg[deg - 1];
            for i in (1..deg).rev() {
                reg[i] = reg[i - 1] ^ (self.generator[i] & feedback);
            }
            reg[0] = self.generator[0] & feedback;
        }
        let mut out = Vec::with_capacity(self.n);
        out.extend_from_slice(message);
        // Parity bits, high-order first so the codeword is message||parity.
        out.extend(reg.iter().rev().copied());
        out
    }

    /// Decodes in place, correcting up to `t` bit errors. Returns the
    /// number of corrected bits, or `None` when decoding fails (more than
    /// `t` errors detected).
    pub fn decode(&self, codeword: &mut [u8]) -> Option<usize> {
        assert_eq!(codeword.len(), self.n, "codeword must have n bits");
        let gf = &self.gf;
        // Syndromes S_1 .. S_2t: the codeword polynomial has its highest-
        // order coefficient first (bit 0 of the message is the x^{n-1}
        // coefficient after shortening).
        let mut syndromes = vec![0u16; 2 * self.t];
        let mut all_zero = true;
        for (j, s) in syndromes.iter_mut().enumerate() {
            let mut acc = 0u16;
            for (pos, &bit) in codeword.iter().enumerate() {
                if bit != 0 {
                    let power = (self.n - 1 - pos) * (j + 1);
                    acc ^= gf.alpha_pow(power);
                }
            }
            *s = acc;
            all_zero &= acc == 0;
        }
        if all_zero {
            return Some(0);
        }

        // Berlekamp–Massey: error locator polynomial sigma (low-order 1st).
        let mut sigma = vec![1u16];
        let mut prev_sigma = vec![1u16];
        let mut l = 0usize;
        let mut m = 1usize;
        let mut b = 1u16;
        for n_iter in 0..2 * self.t {
            let mut d = syndromes[n_iter];
            for i in 1..=l.min(sigma.len() - 1) {
                d ^= gf.mul(sigma[i], syndromes[n_iter - i]);
            }
            if d == 0 {
                m += 1;
            } else if 2 * l <= n_iter {
                let temp = sigma.clone();
                let coef = gf.div(d, b);
                let mut shifted = vec![0u16; m];
                shifted.extend(prev_sigma.iter().map(|&c| gf.mul(c, coef)));
                if shifted.len() > sigma.len() {
                    sigma.resize(shifted.len(), 0);
                }
                for (s, sh) in sigma.iter_mut().zip(&shifted) {
                    *s ^= sh;
                }
                l = n_iter + 1 - l;
                prev_sigma = temp;
                b = d;
                m = 1;
            } else {
                let coef = gf.div(d, b);
                let mut shifted = vec![0u16; m];
                shifted.extend(prev_sigma.iter().map(|&c| gf.mul(c, coef)));
                if shifted.len() > sigma.len() {
                    sigma.resize(shifted.len(), 0);
                }
                for (s, sh) in sigma.iter_mut().zip(&shifted) {
                    *s ^= sh;
                }
                m += 1;
            }
        }
        if l > self.t {
            return None; // more errors than the code can correct
        }

        // Chien search over the shortened positions.
        let mut corrected = 0usize;
        for (pos, bit) in codeword.iter_mut().enumerate() {
            // Position pos corresponds to locator X = α^{n-1-pos}; roots of
            // sigma are X^{-1}.
            let x_inv = gf.alpha_pow(gf.order() - ((self.n - 1 - pos) % gf.order()));
            if gf.poly_eval(&sigma, x_inv) == 0 {
                *bit ^= 1;
                corrected += 1;
            }
        }
        if corrected != l {
            return None; // locator degree and root count disagree: fail
        }
        // Verify: recompute first syndrome.
        let mut s1 = 0u16;
        for (pos, &bit) in codeword.iter().enumerate() {
            if bit != 0 {
                s1 ^= gf.alpha_pow(self.n - 1 - pos);
            }
        }
        if s1 != 0 {
            return None;
        }
        Some(corrected)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn small() -> Bch {
        // (15, 5) t=3 BCH over GF(2^4) — a classic testable code.
        Bch::new(GaloisField::new(4, 0x13), 3, 15)
    }

    #[test]
    fn generator_gives_expected_k() {
        let code = small();
        assert_eq!(code.n(), 15);
        assert_eq!(code.k(), 5);
        let code = Bch::reduced();
        assert_eq!(code.n(), 1600);
        assert_eq!(code.k(), 1567);
        assert_eq!(code.t(), 3);
    }

    #[test]
    fn roundtrip_without_errors() {
        let code = small();
        let msg = vec![1, 0, 1, 1, 0];
        let mut cw = code.encode(&msg);
        assert_eq!(cw.len(), 15);
        assert_eq!(&cw[..5], &msg[..]);
        assert_eq!(code.decode(&mut cw), Some(0));
        assert_eq!(&cw[..5], &msg[..]);
    }

    #[test]
    fn corrects_up_to_t_errors_everywhere() {
        let code = small();
        let msg = vec![1, 1, 0, 1, 0];
        let clean = code.encode(&msg);
        let mut rng = StdRng::seed_from_u64(11);
        for errs in 1..=3 {
            for _ in 0..50 {
                let mut cw = clean.clone();
                let mut flipped = std::collections::BTreeSet::new();
                while flipped.len() < errs {
                    flipped.insert(rng.gen_range(0..15usize));
                }
                for &p in &flipped {
                    cw[p] ^= 1;
                }
                assert_eq!(code.decode(&mut cw), Some(errs), "errs={errs} {flipped:?}");
                assert_eq!(cw, clean);
            }
        }
    }

    #[test]
    fn reduced_code_roundtrip_and_correction() {
        let code = Bch::reduced();
        let mut rng = StdRng::seed_from_u64(5);
        let msg: Vec<u8> = (0..code.k()).map(|_| rng.gen_range(0..2u8)).collect();
        let clean = code.encode(&msg);
        assert_eq!(clean.len(), 1600);
        // no errors
        let mut cw = clean.clone();
        assert_eq!(code.decode(&mut cw), Some(0));
        // exactly t errors at random positions
        let mut cw = clean.clone();
        let mut pos = std::collections::BTreeSet::new();
        while pos.len() < 3 {
            pos.insert(rng.gen_range(0..1600usize));
        }
        for &p in &pos {
            cw[p] ^= 1;
        }
        assert_eq!(code.decode(&mut cw), Some(3));
        assert_eq!(cw, clean);
    }

    #[test]
    fn detects_uncorrectable_patterns() {
        let code = small();
        let msg = vec![0, 0, 0, 0, 0];
        let clean = code.encode(&msg);
        // 4+ scattered errors usually exceed t=3: decode must not silently
        // "correct" to the original codeword.
        let mut cw = clean.clone();
        for p in [0, 4, 8, 12] {
            cw[p] ^= 1;
        }
        match code.decode(&mut cw) {
            None => {} // detected failure: fine
            Some(_) => assert_ne!(cw, clean, "must not claim to restore the original"),
        }
    }

    #[test]
    fn codewords_are_multiples_of_the_generator() {
        // Structural check: every syndrome of a fresh codeword is zero.
        let code = small();
        let gf = GaloisField::new(4, 0x13);
        for mval in 0..32u32 {
            let msg: Vec<u8> = (0..5).map(|i| ((mval >> i) & 1) as u8).collect();
            let cw = code.encode(&msg);
            for j in 1..=6 {
                let mut s = 0u16;
                for (pos, &bit) in cw.iter().enumerate() {
                    if bit != 0 {
                        s ^= gf.alpha_pow((code.n() - 1 - pos) * j);
                    }
                }
                assert_eq!(s, 0, "syndrome {j} for message {mval}");
            }
        }
    }
}
