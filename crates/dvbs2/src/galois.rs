//! GF(2^m) arithmetic for the BCH codec (log/antilog tables).

/// A binary extension field GF(2^m), m ≤ 16, defined by a primitive
/// polynomial. Multiplication and inversion go through log/antilog tables.
pub struct GaloisField {
    m: usize,
    /// `exp[i] = α^i` for `i in 0..2^m-1` (doubled to avoid mod in mul).
    exp: Vec<u16>,
    /// `log[x]` for `x in 1..2^m`; `log[0]` unused.
    log: Vec<u16>,
}

impl GaloisField {
    /// Builds GF(2^m) from a primitive polynomial given as a bitmask with
    /// the `x^m` bit set (e.g. `0x805` for `x^11 + x^2 + 1`).
    ///
    /// # Panics
    /// Panics if the polynomial's degree is not `m` or the polynomial is
    /// not primitive (the generated cycle does not reach full length).
    #[must_use]
    pub fn new(m: usize, primitive_poly: u32) -> Self {
        assert!((2..=16).contains(&m), "m must be in 2..=16");
        assert_eq!(
            32 - primitive_poly.leading_zeros() as usize - 1,
            m,
            "polynomial degree must equal m"
        );
        let size = 1usize << m;
        let order = size - 1;
        let mut exp = vec![0u16; 2 * order];
        let mut log = vec![0u16; size];
        let mut x: u32 = 1;
        for (i, e) in exp.iter_mut().enumerate().take(order) {
            assert!(!(i > 0 && x == 1), "polynomial is not primitive");
            *e = x as u16;
            log[x as usize] = i as u16;
            x <<= 1;
            if x & (1 << m) != 0 {
                x ^= primitive_poly;
            }
        }
        for i in order..2 * order {
            exp[i] = exp[i - order];
        }
        GaloisField { m, exp, log }
    }

    /// The standard GF(2^11) used by the reduced BCH code.
    #[must_use]
    pub fn gf2_11() -> Self {
        GaloisField::new(11, 0x805)
    }

    /// Field extension degree m.
    #[must_use]
    pub fn m(&self) -> usize {
        self.m
    }

    /// Multiplicative group order `2^m - 1`.
    #[must_use]
    pub fn order(&self) -> usize {
        (1 << self.m) - 1
    }

    /// `α^i` (exponent taken modulo the group order).
    #[must_use]
    pub fn alpha_pow(&self, i: usize) -> u16 {
        self.exp[i % self.order()]
    }

    /// Field multiplication.
    #[must_use]
    pub fn mul(&self, a: u16, b: u16) -> u16 {
        if a == 0 || b == 0 {
            0
        } else {
            self.exp[self.log[a as usize] as usize + self.log[b as usize] as usize]
        }
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    /// Panics on zero.
    #[must_use]
    pub fn inv(&self, a: u16) -> u16 {
        assert!(a != 0, "zero has no inverse");
        self.exp[self.order() - self.log[a as usize] as usize]
    }

    /// Field division `a / b`.
    #[must_use]
    pub fn div(&self, a: u16, b: u16) -> u16 {
        if a == 0 {
            0
        } else {
            self.mul(a, self.inv(b))
        }
    }

    /// Discrete logarithm base α of a non-zero element.
    #[must_use]
    pub fn log_of(&self, a: u16) -> usize {
        debug_assert!(a != 0);
        self.log[a as usize] as usize
    }

    /// Evaluates a polynomial (coefficients low-order first) at `x`.
    #[must_use]
    pub fn poly_eval(&self, poly: &[u16], x: u16) -> u16 {
        let mut acc = 0u16;
        for &c in poly.iter().rev() {
            acc = self.mul(acc, x) ^ c;
        }
        acc
    }

    /// Multiplies two polynomials over the field.
    #[must_use]
    pub fn poly_mul(&self, a: &[u16], b: &[u16]) -> Vec<u16> {
        let mut out = vec![0u16; a.len() + b.len() - 1];
        for (i, &ai) in a.iter().enumerate() {
            if ai == 0 {
                continue;
            }
            for (j, &bj) in b.iter().enumerate() {
                out[i + j] ^= self.mul(ai, bj);
            }
        }
        out
    }

    /// The minimal polynomial of `α^i` (coefficients in GF(2), low-order
    /// first, as 0/1 values).
    #[must_use]
    pub fn minimal_poly(&self, i: usize) -> Vec<u16> {
        // Collect the conjugacy class {i, 2i, 4i, ...} mod (2^m - 1).
        let order = self.order();
        let mut class = Vec::new();
        let mut e = i % order;
        loop {
            class.push(e);
            e = (e * 2) % order;
            if e == i % order {
                break;
            }
        }
        // Product of (x - α^e) over the class; result has GF(2) coeffs.
        let mut poly = vec![1u16];
        for &e in &class {
            poly = self.poly_mul(&poly, &[self.alpha_pow(e), 1]);
        }
        for &c in &poly {
            debug_assert!(c <= 1, "minimal polynomial must have binary coefficients");
        }
        poly
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_field_tables_are_consistent() {
        // GF(2^4) with x^4 + x + 1
        let gf = GaloisField::new(4, 0x13);
        assert_eq!(gf.order(), 15);
        // Every non-zero element has an inverse.
        for a in 1u16..16 {
            assert_eq!(gf.mul(a, gf.inv(a)), 1, "a = {a}");
        }
        // Multiplication is commutative and distributes over xor.
        for a in 0u16..16 {
            for b in 0u16..16 {
                assert_eq!(gf.mul(a, b), gf.mul(b, a));
                for c in 0u16..16 {
                    assert_eq!(gf.mul(a, b ^ c), gf.mul(a, b) ^ gf.mul(a, c));
                }
            }
        }
    }

    #[test]
    fn gf2_11_is_primitive() {
        let gf = GaloisField::gf2_11();
        assert_eq!(gf.order(), 2047);
        assert_eq!(gf.alpha_pow(0), 1);
        assert_eq!(gf.alpha_pow(2047), 1); // wraps
        assert_eq!(gf.mul(gf.alpha_pow(100), gf.alpha_pow(1947)), 1);
    }

    #[test]
    fn poly_eval_horner() {
        let gf = GaloisField::new(4, 0x13);
        // p(x) = 1 + x: p(α) = 1 ^ α
        let a = gf.alpha_pow(1);
        assert_eq!(gf.poly_eval(&[1, 1], a), 1 ^ a);
        // root check: (x - α) evaluated at α is zero
        assert_eq!(gf.poly_eval(&[a, 1], a), 0);
    }

    #[test]
    fn minimal_polys_are_binary_and_annihilate() {
        let gf = GaloisField::gf2_11();
        for i in [1usize, 3, 5] {
            let mp = gf.minimal_poly(i);
            assert!(mp.iter().all(|&c| c <= 1));
            assert_eq!(gf.poly_eval(&mp, gf.alpha_pow(i)), 0, "mp({i}) root");
            assert_eq!(*mp.last().unwrap(), 1, "monic");
            assert_eq!(mp.len() - 1, 11, "degree m for these classes");
        }
    }

    #[test]
    #[should_panic(expected = "primitive")]
    fn non_primitive_poly_is_rejected() {
        // x^4 + x^3 + x^2 + x + 1 is irreducible but not primitive.
        let _ = GaloisField::new(4, 0x1f);
    }
}
