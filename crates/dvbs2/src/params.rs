//! Frame parameters of the reduced-scale functional chain.
//!
//! The paper's DVB-S2 configuration is a normal FECFRAME (N = 16200
//! would be the *short* frame; they use K_bch = 14232, R = 8/9, i.e. the
//! short FECFRAME family) with LDPC over 16k bits and BCH over GF(2^14+).
//! The functional chain here keeps every block and the 8/9 rate structure
//! at a reduced size so tests and examples run in milliseconds:
//!
//! * LDPC: N = 1800, K = 1600 (IRA staircase parity, like DVB-S2);
//! * BCH: t = 3 over GF(2^11), shortened from (2047, 2014) to
//!   (1600, 1567);
//! * QPSK: 900 data symbols per frame, 90-symbol PL header;
//! * oversampling ×2 with a root-raised-cosine (rolloff 0.2) shaping pair.
//!
//! Throughput conversions for Table II keep the *paper's* frame size
//! (K_bch = 14232 info bits) because those experiments use the paper's
//! latency profile, not the reduced chain.

use serde::{Deserialize, Serialize};

/// Sizes of one reduced-scale frame at each point of the chain.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct FrameParams {
    /// Information bits per frame (BBFRAME payload) — BCH message length.
    pub k_info: usize,
    /// BCH codeword length = LDPC message length.
    pub k_ldpc: usize,
    /// LDPC codeword length (coded bits per frame).
    pub n_ldpc: usize,
    /// BCH error-correction capability (errors per frame).
    pub bch_t: usize,
    /// Galois field order exponent for BCH (GF(2^m)).
    pub bch_m: usize,
    /// Data symbols per frame (QPSK: 2 bits per symbol).
    pub data_symbols: usize,
    /// PL header symbols prepended to each frame.
    pub plh_symbols: usize,
    /// Samples per symbol after pulse shaping.
    pub sps: usize,
    /// LDPC decoder iterations (paper: NMS, 10 iterations, early stop).
    pub ldpc_iters: usize,
}

impl FrameParams {
    /// The reduced-scale configuration used by the functional chain.
    #[must_use]
    pub fn reduced() -> Self {
        FrameParams {
            k_info: 1567,
            k_ldpc: 1600,
            n_ldpc: 1800,
            bch_t: 3,
            bch_m: 11,
            data_symbols: 900,
            plh_symbols: 90,
            sps: 2,
            ldpc_iters: 10,
        }
    }

    /// Total symbols per PLFRAME (header + data).
    #[must_use]
    pub fn frame_symbols(&self) -> usize {
        self.plh_symbols + self.data_symbols
    }

    /// Samples per PLFRAME after pulse shaping.
    #[must_use]
    pub fn frame_samples(&self) -> usize {
        self.frame_symbols() * self.sps
    }

    /// Checks the internal consistency of the sizes.
    pub fn validate(&self) -> Result<(), String> {
        if self.n_ldpc != 2 * self.data_symbols {
            return Err(format!(
                "QPSK carries 2 bits/symbol: n_ldpc {} != 2 x {}",
                self.n_ldpc, self.data_symbols
            ));
        }
        if self.k_info + self.bch_t * self.bch_m != self.k_ldpc {
            return Err(format!(
                "BCH parity mismatch: {} + {}x{} != {}",
                self.k_info, self.bch_t, self.bch_m, self.k_ldpc
            ));
        }
        if self.k_ldpc >= self.n_ldpc {
            return Err("LDPC needs parity bits".into());
        }
        if (1 << self.bch_m) <= self.k_ldpc {
            return Err("BCH field too small for the codeword".into());
        }
        Ok(())
    }

    /// Code rate of the concatenated FEC (`k_info / n_ldpc`).
    #[must_use]
    pub fn code_rate(&self) -> f64 {
        self.k_info as f64 / self.n_ldpc as f64
    }
}

/// Information bits per frame in the *paper's* configuration (K_bch of the
/// DVB-S2 short FECFRAME at rate 8/9), used for Mb/s conversions in the
/// Table II reproduction.
pub const PAPER_INFO_BITS_PER_FRAME: u64 = 14232;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduced_params_are_consistent() {
        let p = FrameParams::reduced();
        p.validate().unwrap();
        assert_eq!(p.frame_symbols(), 990);
        assert_eq!(p.frame_samples(), 1980);
        // ~8/9 overall structure like the paper's MODCOD
        assert!((p.code_rate() - 8.0 / 9.0).abs() < 0.025);
    }

    #[test]
    fn validation_catches_inconsistencies() {
        let mut p = FrameParams::reduced();
        p.data_symbols = 800;
        assert!(p.validate().is_err());
        let mut p = FrameParams::reduced();
        p.k_info = 1000;
        assert!(p.validate().is_err());
        let mut p = FrameParams::reduced();
        p.k_ldpc = p.n_ldpc;
        assert!(p.validate().is_err());
        let mut p = FrameParams::reduced();
        p.bch_m = 8;
        assert!(p.validate().is_err());
    }
}
