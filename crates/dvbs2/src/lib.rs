//! # amp-dvbs2 — the DVB-S2 receiver task chain
//!
//! The real-world workload of the paper's evaluation: the 23-task DVB-S2
//! receiver (Table III) that the authors run on StreamPU. This crate
//! provides both layers the reproduction needs:
//!
//! * **Profiles** ([`profile`]): the paper's measured per-task latencies on
//!   the Apple M1 Ultra ("Mac Studio") and Intel Ultra 9 185H ("X7 Ti"),
//!   with the tasks' replicability flags — the exact inputs of the paper's
//!   Table II scheduling experiments.
//! * **Functional blocks** ([`bch`], [`ldpc`], [`modem`], [`filter`],
//!   [`scrambler`], [`sync`], [`framer`]): parameter-reduced but genuinely
//!   functional implementations of every block (shortened BCH over
//!   GF(2^11) with Berlekamp–Massey decoding, IRA LDPC with layered
//!   normalized min-sum, QPSK soft demodulation, root-raised-cosine
//!   matched filtering, LFSR scramblers, correlation-based frame sync,
//!   ...), so the pipeline moves and verifies real data end to end
//!   ([`txrx`] wires a transmitter, an AWGN channel and the receiver and
//!   checks bit-exact recovery).
//!
//! The substitution (documented in DESIGN.md): schedules depend only on
//! the latency profile, which we take verbatim from the paper; the
//! functional blocks run at this crate's reduced frame size
//! ([`params::FrameParams`]) and are padded to the profiled latencies when
//! executed under `amp-runtime`.

pub mod bch;
pub mod channel;
pub mod complex;
pub mod filter;
pub mod framer;
pub mod galois;
pub mod ldpc;
pub mod modem;
pub mod params;
pub mod profile;
pub mod rx;
pub mod scrambler;
pub mod sync;
pub mod txrx;

pub use complex::C32;
pub use params::FrameParams;
pub use profile::{profiled_chain, table2_configs, Platform, PlatformConfig};
pub use rx::{receiver_spec, RxFrame};
