//! Minimal complex arithmetic for the signal-processing blocks (avoids an
//! extra dependency; only the operations the chain needs).

use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign, Mul, Neg, Sub};

/// A complex sample, `f32` parts (what SDR front-ends produce).
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct C32 {
    /// Real (in-phase) part.
    pub re: f32,
    /// Imaginary (quadrature) part.
    pub im: f32,
}

impl C32 {
    /// Builds `re + j·im`.
    #[must_use]
    pub fn new(re: f32, im: f32) -> Self {
        C32 { re, im }
    }

    /// Zero.
    pub const ZERO: C32 = C32 { re: 0.0, im: 0.0 };

    /// `e^{jθ}`.
    #[must_use]
    pub fn from_angle(theta: f32) -> Self {
        C32::new(theta.cos(), theta.sin())
    }

    /// Complex conjugate.
    #[must_use]
    pub fn conj(self) -> Self {
        C32::new(self.re, -self.im)
    }

    /// Squared magnitude.
    #[must_use]
    pub fn norm_sq(self) -> f32 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude.
    #[must_use]
    pub fn abs(self) -> f32 {
        self.norm_sq().sqrt()
    }

    /// Argument in `(-π, π]`.
    #[must_use]
    pub fn arg(self) -> f32 {
        self.im.atan2(self.re)
    }

    /// Scales by a real factor.
    #[must_use]
    pub fn scale(self, k: f32) -> Self {
        C32::new(self.re * k, self.im * k)
    }
}

impl Add for C32 {
    type Output = C32;
    fn add(self, rhs: C32) -> C32 {
        C32::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for C32 {
    fn add_assign(&mut self, rhs: C32) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for C32 {
    type Output = C32;
    fn sub(self, rhs: C32) -> C32 {
        C32::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for C32 {
    type Output = C32;
    fn mul(self, rhs: C32) -> C32 {
        C32::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Neg for C32 {
    type Output = C32;
    fn neg(self) -> C32 {
        C32::new(-self.re, -self.im)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = C32::new(1.0, 2.0);
        let b = C32::new(3.0, -1.0);
        assert_eq!(a + b, C32::new(4.0, 1.0));
        assert_eq!(a - b, C32::new(-2.0, 3.0));
        // (1+2j)(3-j) = 3 - j + 6j - 2j^2 = 5 + 5j
        assert_eq!(a * b, C32::new(5.0, 5.0));
        assert_eq!(-a, C32::new(-1.0, -2.0));
    }

    #[test]
    fn polar_identities() {
        let z = C32::from_angle(std::f32::consts::FRAC_PI_3);
        assert!((z.abs() - 1.0).abs() < 1e-6);
        assert!((z.arg() - std::f32::consts::FRAC_PI_3).abs() < 1e-6);
        assert!((z * z.conj()).im.abs() < 1e-6);
        assert!(((z * z.conj()).re - 1.0).abs() < 1e-6);
    }

    #[test]
    fn scale_and_norm() {
        let z = C32::new(3.0, 4.0);
        assert!((z.norm_sq() - 25.0).abs() < 1e-6);
        assert!((z.abs() - 5.0).abs() < 1e-6);
        assert_eq!(z.scale(2.0), C32::new(6.0, 8.0));
    }
}
