//! Root-raised-cosine pulse shaping and matched filtering (τ4/τ5).
//!
//! DVB-S2 shapes with an RRC of rolloff 0.2/0.25/0.35; the receiver's
//! matched filter is the same RRC. The paper splits the matched filter in
//! two pipeline tasks (part 1 / part 2); here the split is by half the
//! output block, which is exactly how a linear FIR can be partitioned.

use crate::complex::C32;

/// A root-raised-cosine FIR filter.
#[derive(Clone, Debug)]
pub struct RrcFilter {
    taps: Vec<f32>,
    sps: usize,
}

impl RrcFilter {
    /// Designs an RRC with the given rolloff, `span` symbols of support and
    /// `sps` samples per symbol (odd tap count `span*sps + 1`).
    ///
    /// # Panics
    /// Panics on a degenerate design (`rolloff` outside (0,1], zero span or
    /// sps).
    #[must_use]
    pub fn new(rolloff: f32, span: usize, sps: usize) -> Self {
        assert!(rolloff > 0.0 && rolloff <= 1.0, "rolloff in (0, 1]");
        assert!(span > 0 && sps > 0, "span and sps must be positive");
        let n = span * sps + 1;
        let mut taps = Vec::with_capacity(n);
        let beta = rolloff;
        for i in 0..n {
            let t = (i as f32 - (n - 1) as f32 / 2.0) / sps as f32; // in symbols
            let tap = if t.abs() < 1e-8 {
                1.0 + beta * (4.0 / std::f32::consts::PI - 1.0)
            } else if (t.abs() - 1.0 / (4.0 * beta)).abs() < 1e-6 {
                let a = std::f32::consts::PI / (4.0 * beta);
                (beta / std::f32::consts::SQRT_2)
                    * ((1.0 + 2.0 / std::f32::consts::PI) * a.sin()
                        + (1.0 - 2.0 / std::f32::consts::PI) * a.cos())
            } else {
                let pi_t = std::f32::consts::PI * t;
                let num =
                    (pi_t * (1.0 - beta)).sin() + 4.0 * beta * t * (pi_t * (1.0 + beta)).cos();
                let den = pi_t * (1.0 - (4.0 * beta * t).powi(2));
                num / den
            };
            taps.push(tap);
        }
        // Unit-energy normalization so tx RRC + rx RRC ~ unit-gain RC.
        let energy: f32 = taps.iter().map(|t| t * t).sum();
        let norm = energy.sqrt();
        for t in &mut taps {
            *t /= norm;
        }
        RrcFilter { taps, sps }
    }

    /// The default shaping of the reduced chain: rolloff 0.2, span 8, 2
    /// samples per symbol.
    #[must_use]
    pub fn reduced() -> Self {
        RrcFilter::new(0.2, 8, 2)
    }

    /// The filter taps.
    #[must_use]
    pub fn taps(&self) -> &[f32] {
        &self.taps
    }

    /// Group delay in samples (`(taps-1)/2`).
    #[must_use]
    pub fn delay(&self) -> usize {
        (self.taps.len() - 1) / 2
    }

    /// Upsamples symbols by `sps` and shapes them; output has
    /// `symbols.len()*sps` samples, compensating the group delay (the tail
    /// is flushed).
    #[must_use]
    pub fn shape(&self, symbols: &[C32]) -> Vec<C32> {
        let n_out = symbols.len() * self.sps;
        let delay = self.delay();
        let mut out = vec![C32::ZERO; n_out];
        for (k, &s) in symbols.iter().enumerate() {
            let center = k * self.sps;
            for (i, &tap) in self.taps.iter().enumerate() {
                let idx = center + i;
                if idx >= delay {
                    let o = idx - delay;
                    if o < n_out {
                        out[o] += s.scale(tap);
                    }
                }
            }
        }
        out
    }

    /// Matched-filters a sample block (same rate), delay-compensated.
    #[must_use]
    pub fn filter_block(&self, samples: &[C32]) -> Vec<C32> {
        let delay = self.delay();
        let n = samples.len();
        let mut out = vec![C32::ZERO; n];
        for (o, item) in out.iter_mut().enumerate() {
            let mut acc = C32::ZERO;
            for (i, &tap) in self.taps.iter().enumerate() {
                // y[o] = sum_i tap[i] * x[o + delay - i]
                let idx = o + delay;
                if idx >= i && idx - i < n {
                    acc += samples[idx - i].scale(tap);
                }
            }
            *item = acc;
        }
        out
    }

    /// The matched filter as the paper's two pipeline tasks: `part` 0
    /// computes the first half of the output block, `part` 1 the second.
    #[must_use]
    pub fn filter_half(&self, samples: &[C32], part: usize) -> Vec<C32> {
        debug_assert!(part < 2);
        let n = samples.len();
        let half = n / 2;
        let (lo, hi) = if part == 0 { (0, half) } else { (half, n) };
        let delay = self.delay();
        let mut out = vec![C32::ZERO; hi - lo];
        for (o_rel, item) in out.iter_mut().enumerate() {
            let o = lo + o_rel;
            let mut acc = C32::ZERO;
            for (i, &tap) in self.taps.iter().enumerate() {
                let idx = o + delay;
                if idx >= i && idx - i < n {
                    acc += samples[idx - i].scale(tap);
                }
            }
            *item = acc;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modem::QpskModem;

    #[test]
    fn taps_are_symmetric_and_normalized() {
        let f = RrcFilter::reduced();
        let taps = f.taps();
        assert_eq!(taps.len(), 17);
        for i in 0..taps.len() {
            assert!(
                (taps[i] - taps[taps.len() - 1 - i]).abs() < 1e-5,
                "tap {i} asymmetric"
            );
        }
        let energy: f32 = taps.iter().map(|t| t * t).sum();
        assert!((energy - 1.0).abs() < 1e-5);
    }

    #[test]
    fn shape_then_match_recovers_symbols() {
        // RRC ∘ RRC = raised cosine: Nyquist, so symbol-spaced samples of
        // the cascade reproduce the symbols (up to edge effects).
        let f = RrcFilter::reduced();
        let bits: Vec<u8> = (0..120).map(|i| ((i * 3 + 1) % 2) as u8).collect();
        let symbols = QpskModem::modulate(&bits);
        let shaped = f.shape(&symbols);
        assert_eq!(shaped.len(), symbols.len() * 2);
        let matched = f.filter_block(&shaped);
        // Decimate at the symbol instants and compare (skip edges).
        for k in 8..symbols.len() - 8 {
            let s = matched[k * 2];
            let (b0, b1) = QpskModem::hard_decision(s);
            assert_eq!((b0, b1), (bits[2 * k], bits[2 * k + 1]), "symbol {k}");
        }
    }

    #[test]
    fn split_halves_equal_full_filter() {
        let f = RrcFilter::reduced();
        let symbols = QpskModem::modulate(&[0u8; 64]);
        let mut samples = f.shape(&symbols);
        // make the input asymmetric
        for (i, s) in samples.iter_mut().enumerate() {
            *s += C32::new((i % 7) as f32 * 0.01, 0.0);
        }
        let full = f.filter_block(&samples);
        let mut halves = f.filter_half(&samples, 0);
        halves.extend(f.filter_half(&samples, 1));
        assert_eq!(full.len(), halves.len());
        for (a, b) in full.iter().zip(&halves) {
            assert!((*a - *b).abs() < 1e-5);
        }
    }

    #[test]
    #[should_panic(expected = "rolloff")]
    fn rejects_bad_rolloff() {
        let _ = RrcFilter::new(0.0, 8, 2);
    }
}
