//! Transmission channel model: AWGN plus optional carrier offset —
//! the stand-in for the paper's radio front end (τ1 receives from it).

use crate::complex::C32;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// An AWGN channel with optional carrier frequency/phase offset.
#[derive(Clone, Debug)]
pub struct Channel {
    /// Per-component noise standard deviation.
    pub sigma: f32,
    /// Carrier frequency offset in radians per sample.
    pub freq_offset: f32,
    /// Carrier phase offset in radians.
    pub phase_offset: f32,
    rng: StdRng,
}

impl Channel {
    /// Builds a channel with the given noise level and impairments.
    #[must_use]
    pub fn new(sigma: f32, freq_offset: f32, phase_offset: f32, seed: u64) -> Self {
        Channel {
            sigma,
            freq_offset,
            phase_offset,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// A clean channel (no noise, no offsets) for bit-exact tests.
    #[must_use]
    pub fn clean() -> Self {
        Channel::new(0.0, 0.0, 0.0, 0)
    }

    /// Channel with noise set from Es/N0 in dB (unit-energy symbols,
    /// per-component variance `sigma² = 1 / (2·Es/N0)`).
    #[must_use]
    pub fn with_es_n0_db(es_n0_db: f32, seed: u64) -> Self {
        let es_n0 = 10.0f32.powf(es_n0_db / 10.0);
        Channel::new((1.0 / (2.0 * es_n0)).sqrt(), 0.0, 0.0, seed)
    }

    fn gaussian(&mut self) -> f32 {
        // Box–Muller.
        let u1: f32 = self.rng.gen_range(1e-12..1.0f32);
        let u2: f32 = self.rng.gen_range(0.0..1.0f32);
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
    }

    /// Applies the channel to a sample block.
    #[must_use]
    pub fn transmit(&mut self, samples: &[C32]) -> Vec<C32> {
        samples
            .iter()
            .enumerate()
            .map(|(n, s)| {
                let rotated = *s * C32::from_angle(self.freq_offset * n as f32 + self.phase_offset);
                rotated + C32::new(self.gaussian() * self.sigma, self.gaussian() * self.sigma)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_channel_is_identity() {
        let mut ch = Channel::clean();
        let block: Vec<C32> = (0..64).map(|i| C32::from_angle(i as f32 * 0.2)).collect();
        let out = ch.transmit(&block);
        for (a, b) in out.iter().zip(&block) {
            assert!((*a - *b).abs() < 1e-6);
        }
    }

    #[test]
    fn noise_power_matches_sigma() {
        let mut ch = Channel::new(0.3, 0.0, 0.0, 1);
        let block = vec![C32::ZERO; 20_000];
        let out = ch.transmit(&block);
        let p: f32 = out.iter().map(|s| s.norm_sq()).sum::<f32>() / out.len() as f32;
        // Per-component sigma^2 = 0.09 -> complex power 0.18
        assert!((p - 0.18).abs() < 0.02, "noise power {p}");
    }

    #[test]
    fn frequency_offset_rotates() {
        let mut ch = Channel::new(0.0, 0.01, 0.0, 2);
        let block = vec![C32::new(1.0, 0.0); 256];
        let out = ch.transmit(&block);
        let est = crate::sync::coarse_freq_estimate(&out);
        assert!((est - 0.01).abs() < 1e-4);
    }

    #[test]
    fn es_n0_conversion() {
        let ch = Channel::with_es_n0_db(10.0, 0);
        // Es/N0 = 10 -> sigma^2 = 1/20
        assert!((ch.sigma * ch.sigma - 0.05).abs() < 1e-6);
    }

    #[test]
    fn seeded_channels_are_reproducible() {
        let block: Vec<C32> = (0..32).map(|i| C32::from_angle(i as f32)).collect();
        let a = Channel::new(0.5, 0.0, 0.0, 7).transmit(&block);
        let b = Channel::new(0.5, 0.0, 0.0, 7).transmit(&block);
        assert_eq!(a, b);
    }
}
