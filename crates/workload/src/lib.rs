//! # amp-workload — synthetic task chains for the amp-sched evaluation
//!
//! Reproduces the workload generator of the paper's simulation campaign
//! (Section VI-A-1): chains of `n` tasks whose big-core weights are drawn
//! uniformly from an integer interval, whose little-core weights apply a
//! uniform real slowdown rounded up, and where a configurable *stateless
//! ratio* (SR) of the tasks is replicable.

use amp_core::{Resources, Task, TaskChain};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// How replicable tasks are chosen.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum ReplicableSelection {
    /// Exactly `round(SR · n)` tasks, at uniformly random positions — the
    /// paper's "stateless ratio set equal to" phrasing.
    ExactCount,
    /// Each task is replicable independently with probability SR.
    Bernoulli,
}

/// Parameters of the synthetic generator.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SyntheticConfig {
    /// Number of tasks per chain.
    pub num_tasks: usize,
    /// Inclusive range of big-core weights (paper: `[1, 100]`).
    pub weight_range: (u64, u64),
    /// Range of the little-core slowdown factor (paper: `[1, 5]`); the
    /// little weight is `ceil(big · slowdown)`.
    pub slowdown_range: (f64, f64),
    /// Fraction of replicable tasks (paper: 0.2 / 0.5 / 0.8).
    pub stateless_ratio: f64,
    /// Replicable-task selection policy.
    pub selection: ReplicableSelection,
}

impl SyntheticConfig {
    /// The paper's simulation configuration: 20 tasks, weights `[1, 100]`,
    /// slowdown `[1, 5]`, with the given stateless ratio.
    #[must_use]
    pub fn paper(stateless_ratio: f64) -> Self {
        SyntheticConfig {
            num_tasks: 20,
            weight_range: (1, 100),
            slowdown_range: (1.0, 5.0),
            stateless_ratio,
            selection: ReplicableSelection::ExactCount,
        }
    }

    /// Same generator with a different chain length (used by the Fig. 3/4
    /// execution-time sweeps: 20, 40, ..., 160 tasks).
    #[must_use]
    pub fn with_num_tasks(mut self, num_tasks: usize) -> Self {
        self.num_tasks = num_tasks;
        self
    }

    /// Generates one chain from the given RNG.
    ///
    /// # Panics
    /// Panics if the configuration is degenerate (no tasks, empty weight
    /// range, slowdown below 1, or SR outside `[0, 1]`).
    #[must_use]
    pub fn generate(&self, rng: &mut impl Rng) -> TaskChain {
        assert!(self.num_tasks > 0, "chains need at least one task");
        assert!(
            self.weight_range.0 >= 1 && self.weight_range.0 <= self.weight_range.1,
            "weight range must be non-empty and positive"
        );
        assert!(
            self.slowdown_range.0 >= 1.0 && self.slowdown_range.0 <= self.slowdown_range.1,
            "slowdown must be at least 1 and the range non-empty"
        );
        assert!(
            (0.0..=1.0).contains(&self.stateless_ratio),
            "stateless ratio must be within [0, 1]"
        );
        let n = self.num_tasks;
        let replicable = self.pick_replicable(rng, n);
        let tasks = (0..n)
            .map(|i| {
                let big = rng.gen_range(self.weight_range.0..=self.weight_range.1);
                let slowdown = rng.gen_range(self.slowdown_range.0..=self.slowdown_range.1);
                let little = (big as f64 * slowdown).ceil() as u64;
                Task {
                    name: format!("t{i}"),
                    weight_big: big,
                    weight_little: little,
                    replicable: replicable[i],
                }
            })
            .collect();
        TaskChain::new(tasks)
    }

    /// Generates `count` chains from a deterministic seed (one RNG stream,
    /// so `(seed, count)` fully identifies the batch).
    #[must_use]
    pub fn generate_batch(&self, seed: u64, count: usize) -> Vec<TaskChain> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..count).map(|_| self.generate(&mut rng)).collect()
    }

    fn pick_replicable(&self, rng: &mut impl Rng, n: usize) -> Vec<bool> {
        match self.selection {
            ReplicableSelection::ExactCount => {
                let count = (self.stateless_ratio * n as f64).round() as usize;
                let mut flags = vec![false; n];
                let mut idx: Vec<usize> = (0..n).collect();
                idx.shuffle(rng);
                for &i in idx.iter().take(count.min(n)) {
                    flags[i] = true;
                }
                flags
            }
            ReplicableSelection::Bernoulli => {
                (0..n).map(|_| rng.gen_bool(self.stateless_ratio)).collect()
            }
        }
    }
}

/// The resource pairs of the paper's Table I: `(16B,4L)`, `(10B,10L)`,
/// `(4B,16L)`.
#[must_use]
pub fn table1_resources() -> [Resources; 3] {
    [
        Resources::new(16, 4),
        Resources::new(10, 10),
        Resources::new(4, 16),
    ]
}

/// The stateless ratios of the paper's simulation campaign.
pub const PAPER_STATELESS_RATIOS: [f64; 3] = [0.2, 0.5, 0.8];

/// Chain lengths of the Fig. 3 execution-time sweep: `20·i, i ∈ [1, 8]`.
#[must_use]
pub fn fig3_task_counts() -> Vec<usize> {
    (1..=8).map(|i| 20 * i).collect()
}

/// Resource pairs of the Fig. 4 execution-time sweep: `(20i, 20i), i ∈ [1, 8]`.
#[must_use]
pub fn fig4_resources() -> Vec<Resources> {
    (1..=8).map(|i| Resources::new(20 * i, 20 * i)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_shape() {
        let cfg = SyntheticConfig::paper(0.5);
        let mut rng = StdRng::seed_from_u64(42);
        let c = cfg.generate(&mut rng);
        assert_eq!(c.len(), 20);
        assert_eq!(c.replicable_count(), 10);
        for t in c.tasks() {
            assert!((1..=100).contains(&t.weight_big));
            assert!(t.weight_little >= t.weight_big);
            assert!(t.weight_little <= t.weight_big * 5);
        }
    }

    #[test]
    fn stateless_ratio_is_exact_for_exact_count() {
        for sr in [0.2, 0.5, 0.8] {
            let cfg = SyntheticConfig::paper(sr);
            for c in cfg.generate_batch(7, 20) {
                assert_eq!(c.replicable_count(), (20.0 * sr).round() as usize);
            }
        }
    }

    #[test]
    fn bernoulli_selection_hits_the_ratio_on_average() {
        let cfg = SyntheticConfig {
            selection: ReplicableSelection::Bernoulli,
            ..SyntheticConfig::paper(0.5)
        };
        let total: usize = cfg
            .generate_batch(3, 200)
            .iter()
            .map(TaskChain::replicable_count)
            .sum();
        let avg = total as f64 / 200.0;
        assert!((avg - 10.0).abs() < 1.0, "average replicables {avg}");
    }

    #[test]
    fn batches_are_deterministic_per_seed() {
        let cfg = SyntheticConfig::paper(0.2);
        let a = cfg.generate_batch(99, 5);
        let b = cfg.generate_batch(99, 5);
        let c = cfg.generate_batch(100, 5);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.tasks(), y.tasks());
        }
        assert!(a.iter().zip(&c).any(|(x, y)| x.tasks() != y.tasks()));
    }

    #[test]
    fn slowdown_of_one_keeps_weights_equal() {
        let cfg = SyntheticConfig {
            slowdown_range: (1.0, 1.0),
            ..SyntheticConfig::paper(0.5)
        };
        let mut rng = StdRng::seed_from_u64(1);
        let c = cfg.generate(&mut rng);
        for t in c.tasks() {
            assert_eq!(t.weight_big, t.weight_little);
        }
    }

    #[test]
    fn paper_sweep_parameters() {
        assert_eq!(fig3_task_counts(), vec![20, 40, 60, 80, 100, 120, 140, 160]);
        assert_eq!(fig4_resources().len(), 8);
        assert_eq!(fig4_resources()[7], Resources::new(160, 160));
        assert_eq!(table1_resources()[0], Resources::new(16, 4));
    }

    #[test]
    #[should_panic(expected = "stateless ratio")]
    fn rejects_bad_ratio() {
        let cfg = SyntheticConfig {
            stateless_ratio: 1.5,
            ..SyntheticConfig::paper(0.5)
        };
        let mut rng = StdRng::seed_from_u64(1);
        let _ = cfg.generate(&mut rng);
    }

    #[test]
    #[should_panic(expected = "slowdown")]
    fn rejects_sub_unit_slowdown() {
        let cfg = SyntheticConfig {
            slowdown_range: (0.5, 2.0),
            ..SyntheticConfig::paper(0.5)
        };
        let mut rng = StdRng::seed_from_u64(1);
        let _ = cfg.generate(&mut rng);
    }
}
