//! Property tests: the simulator's steady-state period matches the analytic
//! period `P(S)` (Eq. 2) for schedules produced by every strategy, and
//! back-pressure never *improves* on theory.

use amp_core::sched::{Fertac, Herad, Otac, Scheduler, Twocatac};
use amp_core::{Resources, Task, TaskChain};
use amp_sim::{simulate, SimConfig};
use proptest::prelude::*;

fn instance() -> impl Strategy<Value = (TaskChain, Resources)> {
    let task = (1u64..=50, 1u64..=5, any::<bool>())
        .prop_map(|(wb, slow, rep)| Task::new(wb, wb * slow, rep));
    (prop::collection::vec(task, 1..=12), 0u64..=4, 0u64..=4)
        .prop_filter("need cores", |(_, b, l)| b + l > 0)
        .prop_map(|(t, b, l)| (TaskChain::new(t), Resources::new(b, l)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn steady_period_matches_analytic_period((chain, res) in instance()) {
        let schedulers: Vec<Box<dyn Scheduler>> = vec![
            Box::new(Herad::new()),
            Box::new(Fertac),
            Box::new(Twocatac::new()),
        ];
        for sched in &schedulers {
            let s = sched.schedule(&chain, res).unwrap();
            let expected = s.period(&chain).to_f64();
            let r = simulate(&chain, &s, &SimConfig::with_frames(3000));
            let rel = (r.steady_period - expected).abs() / expected;
            prop_assert!(
                rel < 0.01,
                "{}: sim {} vs P(S) {} for {}", sched.name(), r.steady_period, expected, s
            );
        }
    }

    #[test]
    fn back_pressure_never_beats_theory((chain, res) in instance()) {
        let s = match Otac::big().schedule(&chain, res) {
            Some(s) => s,
            None => return Ok(()), // no big cores in this draw
        };
        let expected = s.period(&chain).to_f64();
        for cap in [1u64, 2, 4] {
            let r = simulate(&chain, &s, &SimConfig {
                frames: 2000,
                queue_capacity: cap,
                ..SimConfig::default()
            });
            // Fractional periods (replicated stages) make departures
            // alternate between neighbouring integer gaps; the windowed
            // average can sit a hair under P(S), hence the relative slack.
            prop_assert!(
                r.steady_period >= expected * 0.99,
                "cap {cap}: sim {} beats P(S) {}", r.steady_period, expected
            );
        }
    }

    #[test]
    fn makespan_bounds_hold((chain, res) in instance()) {
        let s = Herad::new().schedule(&chain, res).unwrap();
        let frames = 500u64;
        let r = simulate(&chain, &s, &SimConfig::with_frames(frames));
        // Makespan is at least frames x period and at least one full
        // pipeline traversal.
        let p = s.period(&chain).to_f64();
        prop_assert!(r.makespan as f64 >= (frames - 1) as f64 * p);
        let min_traversal: u64 = s
            .stages()
            .iter()
            .map(|st| chain.interval_sum(st.start, st.end, st.core_type))
            .sum();
        prop_assert!(r.makespan >= min_traversal);
        prop_assert!(r.mean_latency >= min_traversal as f64 - 1e-9);
    }
}
