//! Deterministic mirror of the runtime's live reconfiguration.
//!
//! The threaded runtime (amp-runtime) migrates a pipeline between stage
//! decompositions at an **epoch frame boundary**: the source is quiesced,
//! every in-flight frame drains to the sink, the adaptors are re-wired,
//! and the new decomposition resumes at the boundary frame. This module
//! reproduces those semantics in the exact recurrence of [`simulate`]:
//! each epoch runs the standard recurrence over its own frame range with
//! fresh (empty) buffers, and the epoch's clock starts at the previous
//! epoch's last sink departure (the drain barrier).
//!
//! The simulated migration itself costs zero time — the model isolates
//! the *pipeline* cost of a migration (drain + re-fill, visible as a sink
//! departure gap at the boundary) from the implementation cost (thread
//! re-wiring), which only the threaded runtime can measure.
//!
//! [`simulate`]: crate::simulate

use crate::pipeline::SimConfig;
use amp_core::{Solution, TaskChain};
use serde::{Deserialize, Serialize};

/// One epoch boundary of a simulated reconfiguration.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct SimBoundary {
    /// First frame of the new epoch.
    pub frame: u64,
    /// Sink departure gap across the boundary, in weight units: departure
    /// of `frame` minus departure of `frame - 1` (drain + re-fill cost).
    pub sink_gap: u64,
}

/// Outcome of [`simulate_reconfig`].
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ReconfigSimReport {
    /// Total frames across all epochs.
    pub frames: u64,
    /// Completion time of the last frame, in weight units.
    pub makespan: u64,
    /// Sink departure time of every frame, in frame order. Exactly
    /// `frames` entries, non-decreasing — the zero-lost/zero-reordered
    /// invariant the conformance suite pins.
    pub departures: Vec<u64>,
    /// One entry per migration, in order.
    pub boundaries: Vec<SimBoundary>,
    /// Steady-state period of each epoch, measured over the trailing
    /// `1 - warmup_fraction` of the epoch's own departures (falls back to
    /// the epoch's span when it is too short for a window).
    pub epoch_periods: Vec<f64>,
}

/// Simulates a pipeline that starts on `initial` and migrates to
/// `steps[j].1` at frame boundary `steps[j].0`, running `config.frames`
/// frames in total.
///
/// Epoch `j` processes frames `[b_j, b_{j+1})` with fresh buffers; its
/// clock starts at epoch `j-1`'s last sink departure (the quiesce-and-
/// drain barrier of the threaded runtime). Noise, buffer capacity and the
/// warm-up fraction follow `config`, noise re-seeded per epoch from
/// `config.seed + epoch`.
///
/// # Panics
/// Panics if any solution is invalid for the chain, `config.frames == 0`,
/// `queue_capacity == 0`, or the boundaries are not strictly increasing
/// inside `(0, frames)`.
#[must_use]
pub fn simulate_reconfig(
    chain: &TaskChain,
    initial: &Solution,
    steps: &[(u64, Solution)],
    config: &SimConfig,
) -> ReconfigSimReport {
    assert!(config.frames > 0, "need at least one frame");
    assert!(config.queue_capacity > 0, "buffers need capacity >= 1");
    let mut epochs: Vec<(u64, &Solution)> = vec![(0, initial)];
    for (boundary, solution) in steps {
        let prev = epochs.last().expect("initial epoch present").0;
        assert!(
            *boundary > prev && *boundary < config.frames,
            "boundary {boundary} must lie strictly inside ({prev}, {})",
            config.frames
        );
        epochs.push((*boundary, solution));
    }
    for (_, s) in &epochs {
        s.validate(chain)
            .expect("simulate_reconfig requires structurally valid solutions");
    }

    let mut departures: Vec<u64> = Vec::with_capacity(config.frames as usize);
    let mut boundaries = Vec::with_capacity(steps.len());
    let mut epoch_periods = Vec::with_capacity(epochs.len());
    let mut t0 = 0u64; // epoch clock: last departure of the previous epoch

    for (e, &(base, solution)) in epochs.iter().enumerate() {
        let end = epochs.get(e + 1).map_or(config.frames, |&(b, _)| b);
        let epoch_frames = (end - base) as usize;
        let epoch_cfg = SimConfig {
            frames: end - base,
            seed: config.seed.wrapping_add(e as u64),
            ..*config
        };
        let epoch_departures = epoch_departures(chain, solution, &epoch_cfg, t0);
        debug_assert_eq!(epoch_departures.len(), epoch_frames);

        if base > 0 {
            let before = *departures.last().expect("previous epoch departed");
            boundaries.push(SimBoundary {
                frame: base,
                sink_gap: epoch_departures[0].saturating_sub(before),
            });
        }
        // Steady period over the epoch's own trailing window.
        let warm = ((epoch_frames as f64) * config.warmup_fraction).floor() as usize;
        let warm = warm.min(epoch_frames - 1);
        let window = epoch_frames - 1 - warm;
        epoch_periods.push(if window > 0 {
            (epoch_departures[epoch_frames - 1] - epoch_departures[warm]) as f64 / window as f64
        } else {
            epoch_departures[epoch_frames - 1].saturating_sub(t0) as f64
        });
        t0 = epoch_departures[epoch_frames - 1];
        departures.extend_from_slice(&epoch_departures);
    }

    ReconfigSimReport {
        frames: config.frames,
        makespan: *departures.last().expect("at least one frame"),
        departures,
        boundaries,
        epoch_periods,
    }
}

/// The per-epoch recurrence: identical to [`crate::simulate`]'s, except
/// frames are offset by an epoch start time `t0` (the source is gated on
/// the drain barrier) and only the sink departures are returned.
fn epoch_departures(
    chain: &TaskChain,
    solution: &Solution,
    config: &SimConfig,
    t0: u64,
) -> Vec<u64> {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    let stages = solution.stages();
    let k = stages.len();
    let frames = config.frames as usize;
    let cap = config.queue_capacity as usize;

    let latency: Vec<u64> = stages
        .iter()
        .map(|s| chain.interval_sum(s.start, s.end, s.core_type))
        .collect();
    let replicas: Vec<usize> = stages.iter().map(|s| s.cores as usize).collect();
    let mut noise_rng = config.noise.map(|x| {
        assert!((0.0..1.0).contains(&x), "noise must be in [0, 1)");
        (StdRng::seed_from_u64(config.seed), x)
    });
    let mut service = |stage: usize| -> u64 {
        match &mut noise_rng {
            None => latency[stage],
            Some((rng, x)) => {
                let factor = rng.gen_range(1.0 - *x..=1.0 + *x);
                ((latency[stage] as f64) * factor).round().max(1.0) as u64
            }
        }
    };

    let mut pull = vec![vec![0u64; k]; frames];
    let mut push = vec![vec![0u64; k]; frames];
    for f in 0..frames {
        for i in 0..k {
            let input_ready = if i == 0 { t0 } else { push[f][i - 1] };
            let worker_free = if f >= replicas[i] {
                push[f - replicas[i]][i]
            } else {
                t0
            };
            let start = input_ready.max(worker_free);
            let done = start + service(i);
            let space_ready = if i + 1 < k && f >= cap {
                pull[f - cap][i + 1]
            } else {
                0
            };
            pull[f][i] = start;
            push[f][i] = done.max(space_ready);
        }
    }
    (0..frames).map(|f| push[f][k - 1]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulate;
    use amp_core::{CoreType, Stage, Task};

    fn chain() -> TaskChain {
        TaskChain::new(vec![
            Task::new(4, 8, false),
            Task::new(6, 12, true),
            Task::new(2, 4, false),
        ])
    }

    #[test]
    fn no_steps_matches_plain_simulate() {
        let c = chain();
        let s = Solution::new(vec![
            Stage::new(0, 0, 1, CoreType::Big),
            Stage::new(1, 1, 2, CoreType::Big),
            Stage::new(2, 2, 1, CoreType::Big),
        ]);
        let cfg = SimConfig::with_frames(800);
        let plain = simulate(&c, &s, &cfg);
        let r = simulate_reconfig(&c, &s, &[], &cfg);
        assert_eq!(r.makespan, plain.makespan);
        assert_eq!(r.frames, 800);
        assert!(r.boundaries.is_empty());
        assert_eq!(r.epoch_periods.len(), 1);
        assert!((r.epoch_periods[0] - plain.steady_period).abs() < 1e-9);
    }

    #[test]
    fn departures_are_complete_ordered_and_gapped_at_the_boundary() {
        let c = chain();
        let wide = Solution::new(vec![
            Stage::new(0, 0, 1, CoreType::Big),
            Stage::new(1, 1, 2, CoreType::Big),
            Stage::new(2, 2, 1, CoreType::Big),
        ]);
        let narrow = Solution::new(vec![Stage::new(0, 2, 1, CoreType::Big)]);
        let cfg = SimConfig::with_frames(600);
        let r = simulate_reconfig(&c, &wide, &[(300, narrow)], &cfg);
        // Zero lost / duplicated / reordered.
        assert_eq!(r.departures.len(), 600);
        assert!(r.departures.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(r.boundaries.len(), 1);
        assert_eq!(r.boundaries[0].frame, 300);
        // The narrow epoch runs at the chain's serial period (12), the
        // wide one at its bottleneck (4).
        assert!((r.epoch_periods[0] - 4.0).abs() < 0.1, "{r:?}");
        assert!((r.epoch_periods[1] - 12.0).abs() < 0.1, "{r:?}");
    }

    #[test]
    fn migrating_to_a_wider_pool_speeds_the_tail_up() {
        let c = chain();
        let narrow = Solution::new(vec![Stage::new(0, 2, 1, CoreType::Big)]);
        let wide = Solution::new(vec![
            Stage::new(0, 0, 1, CoreType::Big),
            Stage::new(1, 1, 2, CoreType::Big),
            Stage::new(2, 2, 1, CoreType::Big),
        ]);
        let cfg = SimConfig::with_frames(1000);
        let stay = simulate_reconfig(&c, &narrow, &[], &cfg);
        let grow = simulate_reconfig(&c, &narrow, &[(200, wide)], &cfg);
        assert!(
            grow.makespan < stay.makespan,
            "grow {} vs stay {}",
            grow.makespan,
            stay.makespan
        );
    }

    #[test]
    fn multiple_boundaries_chain_their_clocks() {
        let c = chain();
        let a = Solution::new(vec![Stage::new(0, 2, 1, CoreType::Big)]);
        let b = Solution::new(vec![
            Stage::new(0, 1, 1, CoreType::Big),
            Stage::new(2, 2, 1, CoreType::Big),
        ]);
        let cfg = SimConfig::with_frames(300);
        let r = simulate_reconfig(&c, &a, &[(100, b), (200, a.clone())], &cfg);
        assert_eq!(r.boundaries.len(), 2);
        assert_eq!(r.departures.len(), 300);
        assert_eq!(r.epoch_periods.len(), 3);
        // Epoch clocks only move forward.
        assert!(r.departures.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    #[should_panic(expected = "strictly inside")]
    fn rejects_out_of_range_boundaries() {
        let c = chain();
        let s = Solution::new(vec![Stage::new(0, 2, 1, CoreType::Big)]);
        let _ = simulate_reconfig(&c, &s, &[(500, s.clone())], &SimConfig::with_frames(500));
    }

    #[test]
    #[should_panic(expected = "strictly inside")]
    fn rejects_non_increasing_boundaries() {
        let c = chain();
        let s = Solution::new(vec![Stage::new(0, 2, 1, CoreType::Big)]);
        let steps = [(200, s.clone()), (200, s.clone())];
        let _ = simulate_reconfig(&c, &s, &steps, &SimConfig::with_frames(500));
    }
}
