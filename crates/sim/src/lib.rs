//! # amp-sim — deterministic pipeline simulator
//!
//! Simulates the execution of a pipelined/replicated schedule
//! ([`amp_core::Solution`]) with the execution semantics of a StreamPU-style
//! streaming runtime:
//!
//! * each stage runs on `r` replica workers (one virtual core each, of the
//!   stage's core type);
//! * frames are distributed to replicas round-robin and frame order is
//!   preserved end to end (the scatter/gather *adaptors* of StreamPU,
//!   including direct replicated→replicated links);
//! * inter-stage buffers are bounded: a worker that finishes a frame blocks
//!   until the downstream buffer has space (back-pressure).
//!
//! Because service times are deterministic and the adaptors are
//! order-preserving, the whole execution is captured by an exact recurrence
//! over (frame, stage) pairs — no event queue is needed and the simulation
//! is reproducible bit for bit. An optional multiplicative noise models
//! real-machine latency variation, seeded for reproducibility.
//!
//! The simulator is the source of the "Sim." columns of the paper's
//! Table II and validates `P(S)` (Eq. 2): measured steady-state periods
//! match the analytic bottleneck weight (see the `sim_matches_theory`
//! tests).

mod pipeline;
mod reconfig;
mod report;

pub use pipeline::{simulate, SimConfig};
pub use reconfig::{simulate_reconfig, ReconfigSimReport, SimBoundary};
pub use report::{SimReport, StageReport};
