//! Simulation results.

use amp_core::CoreType;
use serde::{Deserialize, Serialize};

/// Per-stage outcome of a simulation run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct StageReport {
    /// Index of the stage in the solution.
    pub stage: usize,
    /// Stage service latency per frame (sum of its tasks' weights on the
    /// stage's core type), before noise.
    pub latency: u64,
    /// Number of replica workers.
    pub replicas: u64,
    /// Core type of the replicas.
    pub core_type: CoreType,
    /// Fraction of the measured span the stage's workers spent processing
    /// (1.0 = the stage is the bottleneck and never waits).
    pub utilization: f64,
}

/// Outcome of a simulation run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SimReport {
    /// Frames processed (including warm-up).
    pub frames: u64,
    /// Completion time of the last frame, in weight units.
    pub makespan: u64,
    /// Average inter-departure time of the sink over the steady-state
    /// window, in weight units.
    pub steady_period: f64,
    /// `1 / steady_period`, in frames per weight unit.
    pub throughput: f64,
    /// Mean end-to-end frame latency (first pull to sink departure) over
    /// the steady-state window.
    pub mean_latency: f64,
    /// Per-stage statistics.
    pub stages: Vec<StageReport>,
    /// Index of the stage with the highest utilization.
    pub bottleneck: usize,
}

impl SimReport {
    /// Throughput in frames per second, given the duration of one weight
    /// unit in seconds (e.g. `1e-6` when weights are microseconds).
    #[must_use]
    pub fn frames_per_second(&self, unit_seconds: f64) -> f64 {
        self.throughput / unit_seconds
    }
}
