//! The recurrence engine.
//!
//! For stage `i` (with `r_i` replicas, per-frame latency `L_i`, downstream
//! buffer capacity `C`) and frame `f`, with `w = f mod r_i` the replica
//! that must process `f` (round-robin scatter):
//!
//! ```text
//! pull[i][f]  = max(push[i-1][f], push[i][f - r_i])      // input ready, worker free
//! done[i][f]  = pull[i][f] + L_i(f)                      // deterministic service
//! push[i][f]  = max(done[i][f], pull[i+1][f - C])        // blocks while buffer full
//! ```
//!
//! `push[-1][f] = 0` (streaming source: frames always available) and the
//! sink buffer is unbounded. Computing frames in increasing order and
//! stages in increasing index only ever references already-computed
//! entries (`f - r_i`, `f - C` are strictly smaller), so one pass yields
//! the exact blocking-pipeline execution.

use crate::report::{SimReport, StageReport};
use amp_core::{Solution, TaskChain};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Simulation parameters.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct SimConfig {
    /// Frames to push through the pipeline.
    pub frames: u64,
    /// Capacity of each inter-stage buffer, in frames. StreamPU-style
    /// runtimes use small pools; the default is 16 per adaptor.
    pub queue_capacity: u64,
    /// Leading fraction of frames excluded from steady-state measurements
    /// (pipeline fill). Default 0.2.
    pub warmup_fraction: f64,
    /// Optional multiplicative latency noise: each service time is scaled
    /// by a uniform factor in `[1 - x, 1 + x]`. Deterministic per `seed`.
    pub noise: Option<f64>,
    /// Seed for the noise generator.
    pub seed: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            frames: 2000,
            queue_capacity: 16,
            warmup_fraction: 0.2,
            noise: None,
            seed: 0,
        }
    }
}

impl SimConfig {
    /// Config processing `frames` frames with the remaining defaults.
    #[must_use]
    pub fn with_frames(frames: u64) -> Self {
        SimConfig {
            frames,
            ..SimConfig::default()
        }
    }
}

/// Runs the pipeline simulation of `solution` over `chain`.
///
/// # Panics
/// Panics if the solution is structurally invalid for the chain (use
/// [`Solution::validate`] first), if `frames == 0`, or if
/// `queue_capacity == 0`.
#[must_use]
pub fn simulate(chain: &TaskChain, solution: &Solution, config: &SimConfig) -> SimReport {
    solution
        .validate(chain)
        .expect("simulate requires a structurally valid solution");
    assert!(config.frames > 0, "need at least one frame");
    assert!(config.queue_capacity > 0, "buffers need capacity >= 1");

    let stages = solution.stages();
    let k = stages.len();
    let frames = config.frames as usize;
    let cap = config.queue_capacity as usize;

    // Per-stage service latency (per frame) on the stage's core type.
    let latency: Vec<u64> = stages
        .iter()
        .map(|s| chain.interval_sum(s.start, s.end, s.core_type))
        .collect();
    let replicas: Vec<usize> = stages.iter().map(|s| s.cores as usize).collect();

    let mut noise_rng = config.noise.map(|x| {
        assert!((0.0..1.0).contains(&x), "noise must be in [0, 1)");
        (StdRng::seed_from_u64(config.seed), x)
    });
    let mut service = |stage: usize| -> u64 {
        match &mut noise_rng {
            None => latency[stage],
            Some((rng, x)) => {
                let factor = rng.gen_range(1.0 - *x..=1.0 + *x);
                ((latency[stage] as f64) * factor).round().max(1.0) as u64
            }
        }
    };

    // pull/push matrices, frame-major. usize indices; u64 time.
    let mut pull = vec![vec![0u64; k]; frames];
    let mut push = vec![vec![0u64; k]; frames];
    let mut serv = vec![vec![0u64; k]; frames];
    let mut busy = vec![0u64; k];

    for f in 0..frames {
        for i in 0..k {
            let input_ready = if i == 0 { 0 } else { push[f][i - 1] };
            let worker_free = if f >= replicas[i] {
                push[f - replicas[i]][i]
            } else {
                0
            };
            let start = input_ready.max(worker_free);
            let dt = service(i);
            serv[f][i] = dt;
            let done = start + dt;
            // Back-pressure: the frame enters the downstream buffer only
            // once the consumer has drained frame `f - cap`.
            let space_ready = if i + 1 < k && f >= cap {
                pull[f - cap][i + 1]
            } else {
                0
            };
            pull[f][i] = start;
            push[f][i] = done.max(space_ready);
        }
    }

    // Steady-state window on sink departures.
    let warm = ((frames as f64) * config.warmup_fraction).floor() as usize;
    let warm = warm.min(frames - 1);
    // Per-stage busy time over the steady window only (frames >= warm), so
    // utilizations are not polluted by the pipeline fill.
    for frame_serv in &serv[warm..] {
        for (b, &dt) in busy.iter_mut().zip(frame_serv) {
            *b += dt;
        }
    }
    let last = k - 1;
    let departures: Vec<u64> = (0..frames).map(|f| push[f][last]).collect();
    let makespan = departures[frames - 1];
    let window = frames - 1 - warm;
    let steady_period = if window > 0 {
        (departures[frames - 1] - departures[warm]) as f64 / window as f64
    } else {
        makespan as f64
    };
    let throughput = if steady_period > 0.0 {
        1.0 / steady_period
    } else {
        0.0
    };
    let mean_latency = {
        let count = (frames - warm) as f64;
        (warm..frames)
            .map(|f| (push[f][last] - pull[f][0]) as f64)
            .sum::<f64>()
            / count
    };

    // Utilization: processing time per replica over the steady-state
    // window, measured against a common clock (the sink's departure span)
    // so that a free-running source does not outrank the true bottleneck.
    let window_span = (departures[frames - 1] - departures[warm]).max(1);
    let stage_reports: Vec<StageReport> = (0..k)
        .map(|i| {
            let utilization = (busy[i] as f64) / (replicas[i] as f64 * window_span as f64);
            StageReport {
                stage: i,
                latency: latency[i],
                replicas: replicas[i] as u64,
                core_type: stages[i].core_type,
                utilization: utilization.min(1.0),
            }
        })
        .collect();
    let bottleneck = stage_reports
        .iter()
        .enumerate()
        .max_by(|(_, a), (_, b)| {
            a.utilization
                .partial_cmp(&b.utilization)
                .expect("utilizations are finite")
        })
        .map(|(i, _)| i)
        .unwrap_or(0);

    SimReport {
        frames: config.frames,
        makespan,
        steady_period,
        throughput,
        mean_latency,
        stages: stage_reports,
        bottleneck,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amp_core::{CoreType, Stage, Task};

    fn chain() -> TaskChain {
        TaskChain::new(vec![
            Task::new(4, 8, false),
            Task::new(6, 12, true),
            Task::new(2, 4, false),
        ])
    }

    #[test]
    fn single_stage_single_core_period_is_total_latency() {
        let c = chain();
        let s = Solution::new(vec![Stage::new(0, 2, 1, CoreType::Big)]);
        let r = simulate(&c, &s, &SimConfig::with_frames(500));
        assert!((r.steady_period - 12.0).abs() < 1e-9, "{}", r.steady_period);
        assert_eq!(r.makespan, 500 * 12);
        assert_eq!(r.bottleneck, 0);
    }

    #[test]
    fn pipeline_period_is_bottleneck_weight() {
        let c = chain();
        let s = Solution::new(vec![
            Stage::new(0, 0, 1, CoreType::Big), // 4
            Stage::new(1, 1, 1, CoreType::Big), // 6  <- bottleneck
            Stage::new(2, 2, 1, CoreType::Big), // 2
        ]);
        let r = simulate(&c, &s, &SimConfig::with_frames(2000));
        assert!((r.steady_period - 6.0).abs() < 1e-6, "{}", r.steady_period);
        assert_eq!(r.bottleneck, 1);
        assert!(r.stages[1].utilization > 0.99);
        assert!(r.stages[2].utilization < 0.5);
    }

    #[test]
    fn replication_divides_the_bottleneck() {
        let c = chain();
        let s = Solution::new(vec![
            Stage::new(0, 0, 1, CoreType::Big), // 4  <- new bottleneck
            Stage::new(1, 1, 2, CoreType::Big), // 6/2 = 3
            Stage::new(2, 2, 1, CoreType::Big), // 2
        ]);
        let r = simulate(&c, &s, &SimConfig::with_frames(2000));
        assert!((r.steady_period - 4.0).abs() < 1e-6, "{}", r.steady_period);
        assert_eq!(r.bottleneck, 0);
    }

    #[test]
    fn little_stages_use_little_latencies() {
        let c = chain();
        let s = Solution::new(vec![
            Stage::new(0, 1, 1, CoreType::Little), // 8 + 12 = 20
            Stage::new(2, 2, 1, CoreType::Big),    // 2
        ]);
        let r = simulate(&c, &s, &SimConfig::with_frames(1000));
        assert!((r.steady_period - 20.0).abs() < 1e-6, "{}", r.steady_period);
    }

    #[test]
    fn simulated_period_matches_analytic_period() {
        // The headline property: measured steady period == P(S) for any
        // valid schedule, here one computed by HeRAD.
        use amp_core::sched::{Herad, Scheduler};
        use amp_core::Resources;
        let c = chain();
        for (b, l) in [(1, 0), (2, 1), (1, 2), (3, 3)] {
            let s = Herad::new().schedule(&c, Resources::new(b, l)).unwrap();
            let r = simulate(&c, &s, &SimConfig::with_frames(4000));
            let p = s.period(&c).to_f64();
            assert!(
                (r.steady_period - p).abs() / p < 0.01,
                "({b},{l}): sim {} vs theory {p} for {s}",
                r.steady_period
            );
        }
    }

    #[test]
    fn tiny_buffers_never_beat_theory_and_large_buffers_reach_it() {
        let c = chain();
        let s = Solution::new(vec![
            Stage::new(0, 0, 1, CoreType::Big),
            Stage::new(1, 1, 2, CoreType::Big),
            Stage::new(2, 2, 1, CoreType::Big),
        ]);
        let p = s.period(&c).to_f64();
        let tight = simulate(
            &c,
            &s,
            &SimConfig {
                frames: 2000,
                queue_capacity: 1,
                ..SimConfig::default()
            },
        );
        let roomy = simulate(&c, &s, &SimConfig::with_frames(2000));
        assert!(tight.steady_period >= p - 1e-9);
        assert!((roomy.steady_period - p).abs() < 1e-6);
    }

    #[test]
    fn noise_slows_but_stays_reproducible() {
        let c = chain();
        let s = Solution::new(vec![Stage::new(0, 2, 1, CoreType::Big)]);
        let cfg = SimConfig {
            frames: 1000,
            noise: Some(0.2),
            seed: 7,
            ..SimConfig::default()
        };
        let a = simulate(&c, &s, &cfg);
        let b = simulate(&c, &s, &cfg);
        assert_eq!(a.makespan, b.makespan);
        // mean of the noise is 1.0, so the period stays near 12
        assert!((a.steady_period - 12.0).abs() < 1.0, "{}", a.steady_period);
    }

    #[test]
    fn departures_preserve_frame_order() {
        let c = chain();
        let s = Solution::new(vec![
            Stage::new(0, 0, 1, CoreType::Big),
            Stage::new(1, 1, 3, CoreType::Big),
            Stage::new(2, 2, 1, CoreType::Big),
        ]);
        // Order preservation is structural in the recurrence; check the
        // sink's departures are non-decreasing (and strictly spaced by the
        // sink latency).
        let r = simulate(&c, &s, &SimConfig::with_frames(100));
        assert!(r.mean_latency >= (4 + 6 + 2) as f64);
    }

    #[test]
    #[should_panic(expected = "valid solution")]
    fn rejects_invalid_solutions() {
        let c = chain();
        let s = Solution::new(vec![Stage::new(0, 1, 1, CoreType::Big)]);
        let _ = simulate(&c, &s, &SimConfig::default());
    }

    #[test]
    #[should_panic(expected = "at least one frame")]
    fn rejects_zero_frames() {
        let c = chain();
        let s = Solution::new(vec![Stage::new(0, 2, 1, CoreType::Big)]);
        let _ = simulate(&c, &s, &SimConfig::with_frames(0));
    }
}
