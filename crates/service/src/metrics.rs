//! Lock-free service metrics: atomic counters plus a power-of-two latency
//! histogram, exported as a JSON snapshot.
//!
//! Workers record on the hot path with relaxed atomics only — no locks, no
//! allocation. The histogram has one bucket per power of two of
//! nanoseconds (bucket `i` holds latencies in `[2^(i-1), 2^i)`), which
//! gives quantile estimates within a factor of two across the full
//! `1 ns … 584 yr` range; plenty for p50/p99 dashboards.
//!
//! JSON is rendered by hand: the snapshot is a flat struct of integers,
//! and hand-rolling keeps the wire format byte-stable and the hot path
//! free of any serializer machinery.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

const BUCKETS: usize = 64;

/// Shared counters of one [`Engine`](crate::engine::Engine).
pub struct ServiceMetrics {
    /// Requests accepted into the queue.
    requests: AtomicU64,
    /// Responses delivered (success or typed error).
    responses: AtomicU64,
    /// Responses that carried an error.
    errors: AtomicU64,
    /// Requests rejected with `Overloaded` before enqueueing.
    rejected: AtomicU64,
    /// Portfolio runs where every member finished in time.
    portfolio_complete: AtomicU64,
    /// Portfolio runs truncated by their deadline.
    portfolio_truncated: AtomicU64,
    /// Panics caught by a worker's per-request guard (or its
    /// supervision shell) — each became a typed `Internal` response.
    worker_panics: AtomicU64,
    /// Solutions rejected by the engine's validate-before-cache vet.
    invalid_solutions: AtomicU64,
    /// Energy-objective requests served with a solution.
    energy_requests: AtomicU64,
    /// Sum of the steady-state power figures served on those responses,
    /// in milliwatts (integer, like the wire; a cumulative total that
    /// dashboards divide by `energy_requests` for a mean draw).
    energy_milliwatts_served: AtomicU64,
    /// Worker threads currently in their serve loop.
    workers_alive: AtomicU64,
    /// Worker/racer threads the engine failed to spawn (pool degraded).
    spawn_failures: AtomicU64,
    /// OS threads created over the engine's lifetime (workers + racers).
    /// Constant after startup: steady-state requests spawn nothing.
    threads_spawned: AtomicU64,
    /// End-to-end latency histogram (enqueue → response), ns buckets.
    latency: [AtomicU64; BUCKETS],
}

impl ServiceMetrics {
    /// A fresh all-zero metrics block.
    #[must_use]
    pub fn new() -> Self {
        ServiceMetrics {
            requests: AtomicU64::new(0),
            responses: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            portfolio_complete: AtomicU64::new(0),
            portfolio_truncated: AtomicU64::new(0),
            worker_panics: AtomicU64::new(0),
            invalid_solutions: AtomicU64::new(0),
            energy_requests: AtomicU64::new(0),
            energy_milliwatts_served: AtomicU64::new(0),
            workers_alive: AtomicU64::new(0),
            spawn_failures: AtomicU64::new(0),
            threads_spawned: AtomicU64::new(0),
            latency: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Counts a request accepted into the queue.
    pub fn record_accepted(&self) {
        self.requests.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts `n` requests accepted at once (a batch occupies one queue
    /// slot but is `n` requests for accounting).
    pub fn record_accepted_n(&self, n: u64) {
        self.requests.fetch_add(n, Ordering::Relaxed);
    }

    /// Counts a request rejected by backpressure.
    pub fn record_rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts `n` requests rejected at once (a rejected batch rejects
    /// every member).
    pub fn record_rejected_n(&self, n: u64) {
        self.rejected.fetch_add(n, Ordering::Relaxed);
    }

    /// Counts a delivered response and its end-to-end latency.
    pub fn record_response(&self, latency: Duration, is_error: bool) {
        self.responses.fetch_add(1, Ordering::Relaxed);
        if is_error {
            self.errors.fetch_add(1, Ordering::Relaxed);
        }
        let ns = u64::try_from(latency.as_nanos()).unwrap_or(u64::MAX);
        let bucket = (64 - ns.leading_zeros() as usize).min(BUCKETS - 1);
        self.latency[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a portfolio run by whether it beat its deadline.
    pub fn record_portfolio(&self, complete: bool) {
        if complete {
            self.portfolio_complete.fetch_add(1, Ordering::Relaxed);
        } else {
            self.portfolio_truncated.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Counts a panic caught on the worker compute path.
    pub fn record_worker_panic(&self) {
        self.worker_panics.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a solution refused by the validate-before-cache vet.
    pub fn record_invalid_solution(&self) {
        self.invalid_solutions.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts an energy-objective request served with a solution drawing
    /// `milliwatts` of steady-state power.
    pub fn record_energy(&self, milliwatts: u64) {
        self.energy_requests.fetch_add(1, Ordering::Relaxed);
        self.energy_milliwatts_served
            .fetch_add(milliwatts, Ordering::Relaxed);
    }

    /// Marks one worker as entering its serve loop.
    pub fn record_worker_started(&self) {
        self.workers_alive.fetch_add(1, Ordering::Relaxed);
    }

    /// Marks one worker as having exited its serve loop for good.
    pub fn record_worker_stopped(&self) {
        self.workers_alive.fetch_sub(1, Ordering::Relaxed);
    }

    /// Counts a failed thread spawn (the pool runs degraded).
    pub fn record_spawn_failure(&self) {
        self.spawn_failures.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds to the lifetime thread-creation count.
    pub fn record_threads_spawned(&self, n: u64) {
        self.threads_spawned.fetch_add(n, Ordering::Relaxed);
    }

    /// A consistent-enough point-in-time copy of all counters (each
    /// counter is read atomically; the set is not a global snapshot).
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut latency = [0u64; BUCKETS];
        for (out, bucket) in latency.iter_mut().zip(&self.latency) {
            *out = bucket.load(Ordering::Relaxed);
        }
        MetricsSnapshot {
            requests: self.requests.load(Ordering::Relaxed),
            responses: self.responses.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            portfolio_complete: self.portfolio_complete.load(Ordering::Relaxed),
            portfolio_truncated: self.portfolio_truncated.load(Ordering::Relaxed),
            worker_panics: self.worker_panics.load(Ordering::Relaxed),
            invalid_solutions: self.invalid_solutions.load(Ordering::Relaxed),
            energy_requests: self.energy_requests.load(Ordering::Relaxed),
            energy_milliwatts_served: self.energy_milliwatts_served.load(Ordering::Relaxed),
            workers_alive: self.workers_alive.load(Ordering::Relaxed),
            spawn_failures: self.spawn_failures.load(Ordering::Relaxed),
            threads_spawned: self.threads_spawned.load(Ordering::Relaxed),
            racer_panics: 0,
            racer_invalid: 0,
            racer_cancelled: 0,
            latency,
        }
    }
}

impl Default for ServiceMetrics {
    fn default() -> Self {
        ServiceMetrics::new()
    }
}

/// Point-in-time metrics, with quantile helpers over the histogram.
#[derive(Clone, Copy, Debug)]
pub struct MetricsSnapshot {
    /// Requests accepted into the queue.
    pub requests: u64,
    /// Responses delivered.
    pub responses: u64,
    /// Error responses among them.
    pub errors: u64,
    /// Backpressure rejections.
    pub rejected: u64,
    /// Portfolio runs that finished all members.
    pub portfolio_complete: u64,
    /// Portfolio runs truncated by a deadline.
    pub portfolio_truncated: u64,
    /// Panics caught on worker compute paths (each answered with a
    /// typed `Internal` response).
    pub worker_panics: u64,
    /// Solutions refused by the validate-before-cache vet.
    pub invalid_solutions: u64,
    /// Energy-objective requests served with a solution.
    pub energy_requests: u64,
    /// Cumulative steady-state power served on those responses, in
    /// integer milliwatts.
    pub energy_milliwatts_served: u64,
    /// Worker threads currently serving.
    pub workers_alive: u64,
    /// Failed thread spawns (worker or racer pool degraded).
    pub spawn_failures: u64,
    /// OS threads created over the engine's lifetime.
    pub threads_spawned: u64,
    /// Panics caught inside portfolio racer threads.
    /// ([`Engine::metrics`](crate::Engine::metrics) fills this from the
    /// racer pool; a bare [`ServiceMetrics::snapshot`] leaves it 0.)
    pub racer_panics: u64,
    /// Racer solutions rejected as invalid before reporting (same
    /// sourcing as `racer_panics`).
    pub racer_invalid: u64,
    /// Racer jobs skipped because their request was already answered
    /// (same sourcing as `racer_panics`).
    pub racer_cancelled: u64,
    /// Latency histogram; bucket `i` counts latencies in the disjoint
    /// range `[2^(i-1), 2^i)` ns (bucket 0: below 1 ns; bucket 63 also
    /// absorbs everything at or above `2^63` ns).
    pub latency: [u64; BUCKETS],
}

impl MetricsSnapshot {
    /// Adds `other`'s counters into `self`: counts sum, the
    /// `workers_alive` gauge sums (total threads serving across pools),
    /// and histograms add bucket-wise. This is how per-shard snapshots
    /// aggregate into a fleet view (see
    /// [`EngineShards`](crate::shards::EngineShards)).
    pub fn absorb(&mut self, other: &MetricsSnapshot) {
        self.requests += other.requests;
        self.responses += other.responses;
        self.errors += other.errors;
        self.rejected += other.rejected;
        self.portfolio_complete += other.portfolio_complete;
        self.portfolio_truncated += other.portfolio_truncated;
        self.worker_panics += other.worker_panics;
        self.invalid_solutions += other.invalid_solutions;
        self.energy_requests += other.energy_requests;
        self.energy_milliwatts_served += other.energy_milliwatts_served;
        self.workers_alive += other.workers_alive;
        self.spawn_failures += other.spawn_failures;
        self.threads_spawned += other.threads_spawned;
        self.racer_panics += other.racer_panics;
        self.racer_invalid += other.racer_invalid;
        self.racer_cancelled += other.racer_cancelled;
        for (mine, theirs) in self.latency.iter_mut().zip(&other.latency) {
            *mine += theirs;
        }
    }

    /// Upper-bound estimate (ns) of the `q`-quantile of response latency,
    /// `q` in `[0, 1]`. Returns 0 with no recorded responses. The
    /// estimate is the upper edge of the histogram bucket containing the
    /// quantile, so it is within 2× of the true value.
    #[must_use]
    pub fn latency_quantile_ns(&self, q: f64) -> u64 {
        let total: u64 = self.latency.iter().sum();
        if total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &count) in self.latency.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return if i >= 63 { u64::MAX } else { (1u64 << i) - 1 };
            }
        }
        u64::MAX
    }

    /// Renders the snapshot as a single JSON object (stable key order).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(256);
        s.push('{');
        let field = |s: &mut String, key: &str, value: u64| {
            if s.len() > 1 {
                s.push(',');
            }
            s.push('"');
            s.push_str(key);
            s.push_str("\":");
            s.push_str(&value.to_string());
        };
        field(&mut s, "requests", self.requests);
        field(&mut s, "responses", self.responses);
        field(&mut s, "errors", self.errors);
        field(&mut s, "rejected", self.rejected);
        field(&mut s, "portfolio_complete", self.portfolio_complete);
        field(&mut s, "portfolio_truncated", self.portfolio_truncated);
        field(&mut s, "worker_panics", self.worker_panics);
        field(&mut s, "invalid_solutions", self.invalid_solutions);
        field(&mut s, "workers_alive", self.workers_alive);
        field(&mut s, "spawn_failures", self.spawn_failures);
        field(&mut s, "threads_spawned", self.threads_spawned);
        field(&mut s, "racer_panics", self.racer_panics);
        field(&mut s, "racer_invalid", self.racer_invalid);
        field(&mut s, "racer_cancelled", self.racer_cancelled);
        field(&mut s, "energy_requests", self.energy_requests);
        field(
            &mut s,
            "energy_milliwatts_served",
            self.energy_milliwatts_served,
        );
        field(&mut s, "latency_p50_ns", self.latency_quantile_ns(0.50));
        field(&mut s, "latency_p90_ns", self.latency_quantile_ns(0.90));
        field(&mut s, "latency_p99_ns", self.latency_quantile_ns(0.99));
        s.push('}');
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = ServiceMetrics::new();
        m.record_accepted();
        m.record_accepted();
        m.record_rejected();
        m.record_response(Duration::from_micros(3), false);
        m.record_response(Duration::from_micros(5), true);
        m.record_portfolio(true);
        m.record_portfolio(false);
        let s = m.snapshot();
        assert_eq!(s.requests, 2);
        assert_eq!(s.rejected, 1);
        assert_eq!(s.responses, 2);
        assert_eq!(s.errors, 1);
        assert_eq!(s.portfolio_complete, 1);
        assert_eq!(s.portfolio_truncated, 1);
    }

    #[test]
    fn quantiles_bound_recorded_latencies_within_2x() {
        let m = ServiceMetrics::new();
        for us in [1u64, 2, 4, 100, 1000] {
            m.record_response(Duration::from_micros(us), false);
        }
        let s = m.snapshot();
        let p50 = s.latency_quantile_ns(0.50);
        let p99 = s.latency_quantile_ns(0.99);
        assert!((4_000..8_192).contains(&p50), "p50={p50}");
        assert!((1_000_000..2_097_152).contains(&p99), "p99={p99}");
        assert!(s.latency_quantile_ns(0.0) > 0);
        assert_eq!(ServiceMetrics::new().snapshot().latency_quantile_ns(0.5), 0);
    }

    #[test]
    fn json_is_flat_and_ordered() {
        let m = ServiceMetrics::new();
        m.record_accepted();
        m.record_response(Duration::from_nanos(100), false);
        let json = m.snapshot().to_json();
        assert!(json.starts_with("{\"requests\":1,\"responses\":1,"));
        assert!(json.contains("\"worker_panics\":0"));
        assert!(json.contains("\"racer_panics\":0"));
        assert!(json.contains("\"latency_p99_ns\":"));
        assert!(json.ends_with('}'));
        assert_eq!(json.matches('{').count(), 1);
    }

    /// Pins the histogram's edge semantics: a zero-duration response
    /// lands in bucket 0 (the `[0, 1)` ns range) and anything at or
    /// beyond `2^63` ns saturates into bucket 63 instead of indexing
    /// out of bounds.
    #[test]
    fn latency_buckets_pin_zero_and_saturation_edges() {
        let m = ServiceMetrics::new();
        m.record_response(Duration::ZERO, false);
        let s = m.snapshot();
        assert_eq!(s.latency[0], 1, "Duration::ZERO belongs in bucket 0");
        assert_eq!(s.latency[1..].iter().sum::<u64>(), 0);

        let m = ServiceMetrics::new();
        // u64::MAX ns (and anything >= 2^63 ns, including the u128 →
        // u64 clamp of absurd durations) must saturate into bucket 63.
        m.record_response(Duration::from_nanos(u64::MAX), false);
        m.record_response(Duration::from_secs(u64::MAX), false);
        let s = m.snapshot();
        assert_eq!(s.latency[63], 2);
        assert_eq!(s.latency[..63].iter().sum::<u64>(), 0);
        assert_eq!(s.latency_quantile_ns(0.5), u64::MAX);
    }

    #[test]
    fn robustness_counters_accumulate() {
        let m = ServiceMetrics::new();
        m.record_worker_started();
        m.record_worker_started();
        m.record_worker_panic();
        m.record_invalid_solution();
        m.record_spawn_failure();
        m.record_threads_spawned(6);
        m.record_worker_stopped();
        let s = m.snapshot();
        assert_eq!(s.worker_panics, 1);
        assert_eq!(s.invalid_solutions, 1);
        assert_eq!(s.workers_alive, 1);
        assert_eq!(s.spawn_failures, 1);
        assert_eq!(s.threads_spawned, 6);
        // Racer counters are merged in by `Engine::metrics`, not here.
        assert_eq!(
            (s.racer_panics, s.racer_invalid, s.racer_cancelled),
            (0, 0, 0)
        );
    }
}
