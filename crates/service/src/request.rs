//! Wire types of the scheduling service: requests, responses and the
//! scheduling outcome payload.
//!
//! All types are serde-serializable so the engine can sit behind any
//! transport (an HTTP front-end, a message queue, a test harness). The
//! exact rational period is carried as a canonical `"num/den"` string
//! because [`Ratio`] is an exact `u128` rational with no float round-trip.

use amp_core::{Ratio, Resources, Solution, Stage, Task, TaskChain};
use serde::{Deserialize, Serialize};

use crate::error::ServiceError;

/// One task of a request chain: weights on each core type plus the
/// stateless (replicable) flag. A compact mirror of [`amp_core::Task`]
/// without the display name, so equal workloads serialize identically.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TaskSpec {
    /// Computation weight on a big core.
    pub weight_big: u64,
    /// Computation weight on a little core.
    pub weight_little: u64,
    /// `true` when the task is stateless and may be replicated.
    pub replicable: bool,
}

impl From<&Task> for TaskSpec {
    fn from(t: &Task) -> Self {
        TaskSpec {
            weight_big: t.weight_big,
            weight_little: t.weight_little,
            replicable: t.replicable,
        }
    }
}

impl From<TaskSpec> for Task {
    fn from(s: TaskSpec) -> Self {
        Task::new(s.weight_big, s.weight_little, s.replicable)
    }
}

/// How the engine should map a request onto the paper's strategies.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Policy {
    /// Run exactly one named strategy (a Table I display name accepted by
    /// [`amp_core::sched::strategy_by_name`]).
    Strategy(String),
    /// Run the deadline-bounded portfolio: FERTAC immediately, HeRAD and
    /// a budgeted 2CATAC raced on worker threads, best result wins.
    Portfolio,
}

/// What a request optimizes. Defaults to [`Objective::Period`] — the
/// base paper's objective — so pre-energy clients (which never send the
/// field) keep their exact semantics and bit-identical responses.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Objective {
    /// Minimize the pipeline period (the base paper).
    #[default]
    Period,
    /// Minimize steady-state energy subject to the pipeline meeting
    /// `target_period` (the sequel paper). The target is carried as the
    /// canonical exact `"num/den"` string — the same encoding as the
    /// period on the wire — so the objective hashes/compares exactly and
    /// no float ever enters a cache key.
    MinEnergy {
        /// Target operating period as a canonical `"num/den"` string.
        target_period: String,
    },
}

impl Objective {
    /// Builds the energy objective from an exact target period.
    #[must_use]
    pub fn min_energy(target: Ratio) -> Self {
        Objective::MinEnergy {
            target_period: format_period(target),
        }
    }

    /// `true` for the default period objective.
    #[must_use]
    pub fn is_period(&self) -> bool {
        matches!(self, Objective::Period)
    }

    /// The parsed energy target, if this is the energy objective and the
    /// carried string is a well-formed finite nonzero period.
    #[must_use]
    pub fn energy_target(&self) -> Option<Ratio> {
        match self {
            Objective::Period => None,
            Objective::MinEnergy { target_period } => {
                parse_period(target_period).filter(|t| t.is_finite() && !t.is_zero())
            }
        }
    }
}

/// A scheduling request: a task chain, a resource pool, a policy and an
/// optional compute deadline.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScheduleRequest {
    /// Client-chosen correlation id, echoed verbatim in the response.
    pub id: u64,
    /// The task chain, in pipeline order.
    pub tasks: Vec<TaskSpec>,
    /// Number of big cores available.
    pub big_cores: u64,
    /// Number of little cores available.
    pub little_cores: u64,
    /// Strategy selection policy.
    pub policy: Policy,
    /// What to optimize; [`Objective::Period`] unless the client opts in.
    pub objective: Objective,
    /// Optional deadline, in microseconds, for the *compute* phase.
    /// `None` means wait for every portfolio member. Only the portfolio
    /// is deadline-bounded; single strategies always run to completion.
    pub deadline_us: Option<u64>,
}

impl ScheduleRequest {
    /// Builds a request from core-domain values.
    #[must_use]
    pub fn from_chain(id: u64, chain: &TaskChain, resources: Resources, policy: Policy) -> Self {
        ScheduleRequest {
            id,
            tasks: chain.tasks().iter().map(TaskSpec::from).collect(),
            big_cores: resources.big,
            little_cores: resources.little,
            policy,
            objective: Objective::Period,
            deadline_us: None,
        }
    }

    /// Sets the compute deadline (builder style).
    #[must_use]
    pub fn with_deadline_us(mut self, deadline_us: u64) -> Self {
        self.deadline_us = Some(deadline_us);
        self
    }

    /// Sets the objective (builder style).
    #[must_use]
    pub fn with_objective(mut self, objective: Objective) -> Self {
        self.objective = objective;
        self
    }

    /// Reconstructs the core-domain chain.
    #[must_use]
    pub fn chain(&self) -> TaskChain {
        TaskChain::new(self.tasks.iter().map(|&s| Task::from(s)).collect())
    }

    /// The core-domain resource pool.
    #[must_use]
    pub fn resources(&self) -> Resources {
        Resources::new(self.big_cores, self.little_cores)
    }
}

/// Formats a period as the canonical exact string used on the wire:
/// `"num/den"` for finite ratios (already in lowest terms, since [`Ratio`]
/// normalizes on construction) and `"inf"` for the infinite period.
#[must_use]
pub fn format_period(period: Ratio) -> String {
    if period.is_infinite() {
        "inf".to_string()
    } else {
        format!("{}/{}", period.numer(), period.denom())
    }
}

/// Parses the canonical exact period string back into a [`Ratio`]:
/// `"num/den"` (decimal, no signs or spaces) or `"inf"`. Returns `None`
/// for anything else — wire handlers turn that into a typed error rather
/// than guessing.
#[must_use]
pub fn parse_period(s: &str) -> Option<Ratio> {
    if s == "inf" {
        return Some(Ratio::INFINITY);
    }
    let (num, den) = s.split_once('/')?;
    if num.is_empty() || den.is_empty() {
        return None;
    }
    if !num.bytes().all(|b| b.is_ascii_digit()) || !den.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    let num: u128 = num.parse().ok()?;
    let den: u128 = den.parse().ok()?;
    if den == 0 {
        return None; // "n/0" is not the canonical infinity spelling
    }
    Some(Ratio::new(num, den))
}

/// A successful scheduling result.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ScheduleOutcome {
    /// Display name of the strategy whose solution won.
    pub strategy: String,
    /// Exact pipeline period as a canonical `"num/den"` string.
    pub period: String,
    /// Period as a float, for quick human consumption (lossy).
    pub period_f64: f64,
    /// Paper-style decomposition string, e.g. `[0-1]B1 [2-4]L3`.
    pub decomposition: String,
    /// The winning stages, verbatim.
    pub stages: Vec<Stage>,
    /// Big cores used by the solution.
    pub used_big: u64,
    /// Little cores used by the solution.
    pub used_little: u64,
    /// `true` when the solution was served from the cache.
    pub cache_hit: bool,
    /// `true` when every portfolio member finished before the deadline
    /// (always `true` for single-strategy requests). Incomplete outcomes
    /// are valid but possibly improvable, and are never cached.
    pub complete: bool,
    /// Steady-state power of the solution at the requested target period,
    /// rounded to whole milliwatts — present exactly when the request's
    /// objective was [`Objective::MinEnergy`]. Integer so the wire stays
    /// float-free.
    pub energy_milliwatts: Option<u64>,
}

impl ScheduleOutcome {
    /// Builds an outcome from a winning solution.
    #[must_use]
    pub fn from_solution(
        strategy: &str,
        solution: &Solution,
        chain: &TaskChain,
        complete: bool,
    ) -> Self {
        let period = solution.period(chain);
        let used = solution.used_cores();
        ScheduleOutcome {
            strategy: strategy.to_string(),
            period: format_period(period),
            period_f64: period.to_f64(),
            decomposition: solution.decomposition(),
            stages: solution.stages().to_vec(),
            used_big: used.big,
            used_little: used.little,
            cache_hit: false,
            complete,
            energy_milliwatts: None,
        }
    }

    /// Attaches the served energy figure (builder style).
    #[must_use]
    pub fn with_energy_milliwatts(mut self, energy_mw: u64) -> Self {
        self.energy_milliwatts = Some(energy_mw);
        self
    }

    /// The stages as a core-domain [`Solution`] (for validation).
    #[must_use]
    pub fn solution(&self) -> Solution {
        Solution::new(self.stages.clone())
    }
}

/// The engine's reply to one [`ScheduleRequest`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ScheduleResponse {
    /// The request's correlation id, echoed back.
    pub id: u64,
    /// The outcome, or a typed error.
    pub result: Result<ScheduleOutcome, ServiceError>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use amp_core::sched::Scheduler;

    fn chain() -> TaskChain {
        TaskChain::new(vec![
            Task::new(10, 25, false),
            Task::new(40, 90, true),
            Task::new(5, 12, false),
        ])
    }

    #[test]
    fn request_round_trips_chain_and_resources() {
        let c = chain();
        let req = ScheduleRequest::from_chain(7, &c, Resources::new(3, 5), Policy::Portfolio);
        assert_eq!(req.id, 7);
        assert_eq!(req.chain().tasks().len(), 3);
        assert_eq!(req.resources(), Resources::new(3, 5));
        for (spec, task) in req.tasks.iter().zip(c.tasks()) {
            assert_eq!(spec.weight_big, task.weight_big);
            assert_eq!(spec.weight_little, task.weight_little);
            assert_eq!(spec.replicable, task.replicable);
        }
    }

    #[test]
    fn format_period_is_canonical() {
        assert_eq!(format_period(Ratio::new(10, 4)), "5/2");
        assert_eq!(format_period(Ratio::from_int(7)), "7/1");
        assert_eq!(format_period(Ratio::new_raw(1, 0)), "inf");
    }

    #[test]
    fn parse_period_round_trips_canonical_strings() {
        for r in [Ratio::new(5, 2), Ratio::from_int(7), Ratio::new(1, 1000)] {
            assert_eq!(parse_period(&format_period(r)), Some(r));
        }
        assert_eq!(parse_period("inf"), Some(Ratio::INFINITY));
        // Non-canonical but well-formed fractions normalize on parse.
        assert_eq!(parse_period("10/4"), Some(Ratio::new(5, 2)));
    }

    #[test]
    fn parse_period_rejects_malformed_strings() {
        for bad in [
            "", "7", "/", "7/", "/2", "7/0", "0x7/2", "-7/2", "7/-2", "7.5/2", " 7/2", "7/2 ",
            "inf/1", "Inf", "nan",
        ] {
            assert_eq!(parse_period(bad), None, "accepted {bad:?}");
        }
    }

    #[test]
    fn energy_objective_accessors() {
        let per = Objective::Period;
        assert!(per.is_period());
        assert_eq!(per.energy_target(), None);
        let e = Objective::min_energy(Ratio::new(5, 2));
        assert!(!e.is_period());
        assert_eq!(e.energy_target(), Some(Ratio::new(5, 2)));
        // Degenerate targets never surface as usable constraints.
        for bad in ["inf", "0/1", "junk"] {
            let obj = Objective::MinEnergy {
                target_period: bad.to_string(),
            };
            assert_eq!(obj.energy_target(), None, "target {bad:?}");
        }
    }

    #[test]
    fn outcome_reports_resource_usage() {
        let c = chain();
        let sol = amp_core::sched::Fertac
            .schedule(&c, Resources::new(2, 2))
            .expect("feasible");
        let out = ScheduleOutcome::from_solution("FERTAC", &sol, &c, true);
        let used = sol.used_cores();
        assert_eq!(out.used_big, used.big);
        assert_eq!(out.used_little, used.little);
        assert_eq!(out.period, format_period(sol.period(&c)));
        assert!(out.complete);
        assert!(!out.cache_hit);
        assert_eq!(out.solution().stages(), sol.stages());
    }
}
