//! Typed error codes for the scheduling service.
//!
//! Every failure a client can observe is one of these variants; each has a
//! stable machine-readable [`ServiceError::code`] (for logs, dashboards and
//! cross-language clients) and a human-readable `Display`.

use serde::{Deserialize, Serialize};

/// Why a [`ScheduleRequest`](crate::ScheduleRequest) did not produce a
/// schedule.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ServiceError {
    /// The request named a strategy that
    /// [`strategy_by_name`](amp_core::sched::strategy_by_name) does not
    /// know. Carries the offending name verbatim.
    UnknownStrategy {
        /// The unresolvable strategy name from the request.
        name: String,
    },
    /// The request's task chain had no tasks.
    EmptyChain,
    /// The request's resource pool had zero cores of both types.
    NoCores,
    /// The strategy (or every portfolio member that finished in time)
    /// returned no valid mapping for the instance.
    Infeasible,
    /// The engine's bounded request queue was full; the request was
    /// rejected without being enqueued (explicit backpressure).
    Overloaded,
    /// The engine is shutting down and no longer accepts requests.
    ShuttingDown,
    /// The engine was configured with zero workers, so a blocking call
    /// could never be answered; it refuses up front instead of
    /// deadlocking.
    NoWorkers,
    /// The request's objective could not be interpreted — e.g. an energy
    /// objective whose target period string is malformed, zero or
    /// infinite (no finite throughput constraint to optimize under).
    InvalidObjective,
    /// An internal invariant was violated (a worker panicked, a channel
    /// closed unexpectedly, ...). Carries a diagnostic message.
    Internal(String),
}

impl ServiceError {
    /// Stable machine-readable code, one per variant.
    #[must_use]
    pub fn code(&self) -> &'static str {
        match self {
            ServiceError::UnknownStrategy { .. } => "UNKNOWN_STRATEGY",
            ServiceError::EmptyChain => "EMPTY_CHAIN",
            ServiceError::NoCores => "NO_CORES",
            ServiceError::Infeasible => "INFEASIBLE",
            ServiceError::Overloaded => "OVERLOADED",
            ServiceError::ShuttingDown => "SHUTTING_DOWN",
            ServiceError::NoWorkers => "NO_WORKERS",
            ServiceError::InvalidObjective => "INVALID_OBJECTIVE",
            ServiceError::Internal(_) => "INTERNAL",
        }
    }
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::UnknownStrategy { name } => {
                write!(f, "unknown strategy {name:?}")
            }
            ServiceError::EmptyChain => write!(f, "task chain is empty"),
            ServiceError::NoCores => write!(f, "resource pool has no cores"),
            ServiceError::Infeasible => {
                write!(f, "no strategy produced a valid mapping")
            }
            ServiceError::Overloaded => {
                write!(f, "request queue full; try again later")
            }
            ServiceError::ShuttingDown => write!(f, "service is shutting down"),
            ServiceError::NoWorkers => {
                write!(
                    f,
                    "engine has no workers; a blocking call would never return"
                )
            }
            ServiceError::InvalidObjective => {
                write!(
                    f,
                    "objective is malformed (energy target must be a finite nonzero period)"
                )
            }
            ServiceError::Internal(msg) => write!(f, "internal error: {msg}"),
        }
    }
}

impl std::error::Error for ServiceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_distinct() {
        let all = [
            ServiceError::UnknownStrategy {
                name: "x".to_string(),
            },
            ServiceError::EmptyChain,
            ServiceError::NoCores,
            ServiceError::Infeasible,
            ServiceError::Overloaded,
            ServiceError::ShuttingDown,
            ServiceError::NoWorkers,
            ServiceError::InvalidObjective,
            ServiceError::Internal("boom".to_string()),
        ];
        let codes: Vec<&str> = all.iter().map(ServiceError::code).collect();
        assert_eq!(
            codes,
            [
                "UNKNOWN_STRATEGY",
                "EMPTY_CHAIN",
                "NO_CORES",
                "INFEASIBLE",
                "OVERLOADED",
                "SHUTTING_DOWN",
                "NO_WORKERS",
                "INVALID_OBJECTIVE",
                "INTERNAL"
            ]
        );
        for (i, a) in codes.iter().enumerate() {
            for b in &codes[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn display_mentions_the_offending_name() {
        let e = ServiceError::UnknownStrategy {
            name: "HERAD".to_string(),
        };
        assert!(e.to_string().contains("HERAD"));
    }
}
