//! The chain-keyed solve-once cache tier.
//!
//! The exact-fingerprint LRU ([`crate::cache`]) keys on the full instance
//! — chain *and* pool — so a fleet serving one chain across heterogeneous
//! machine shapes recomputes per pool. HeRAD's DP table is
//! pool-independent (see [`amp_core::sched::herad`]): one solved table
//! answers every covered sub-pool by pure extraction and grows in place
//! via the pool-delta driver when a larger pool arrives. This tier stores
//! exactly that: one [`ChainTable`] per distinct
//! `(weights, replicability)` vector, shared by every pool shape.
//!
//! The tier sits *between* the exact LRU and the solver on the HeRAD
//! single-strategy path: an exact hit replays the outcome without
//! touching the tier, an exact miss consults the tier (extract / grow /
//! cold-solve), and the extracted solution is vetted and inserted into
//! the exact LRU like any computed one. Per-tier counters stay separate
//! so dashboards can tell replay hits from extraction hits.
//!
//! ## Panic safety (the valid-flag pattern)
//!
//! Every mutation window (growth, cold solve) drops the entry's `valid`
//! flag first and restores it only after the table is consistent again —
//! the same protocol `SchedScratch`'s sweep memo uses. A panic
//! mid-mutation (injected through [`TierFaultHook`] in tests) leaves the
//! entry poisoned, and the next request for that chain repairs it with a
//! fresh cold solve. Extraction never mutates the table, so a panic
//! mid-extraction needs no repair at all. The `parking_lot` mutexes do
//! not poison, so a panicking worker releases its locks cleanly.
//!
//! ## Snapshot persistence
//!
//! [`ChainTier::save_to`] serializes every valid table into one
//! versioned, checksummed, float-free canonical-JSON document (written
//! atomically: temp file + rename), and [`ChainTier::load_from`] restores
//! it on engine start for warm restarts. A corrupt, truncated or
//! version-skewed snapshot is rejected *wholesale* with a typed
//! [`SnapshotError`] — the tier then simply starts empty (clean misses),
//! never half-loaded.

use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use amp_core::json::Json;
use amp_core::sched::{ChainTable, ChainTableError};
use amp_core::{Resources, Solution, TaskChain};
use parking_lot::Mutex;

use crate::request::TaskSpec;

/// Test-only fault-injection hook for the tier: called with a site label
/// (`"extract"`, `"grow"`, `"cold"`, `"snapshot"`) right before the
/// corresponding operation runs. A panicking hook exercises the
/// valid-flag protocol; production configs leave it `None`.
pub type TierFaultHook = Arc<dyn Fn(&'static str) + Send + Sync>;

/// Header constants of the snapshot document. Bump the version on any
/// incompatible change; old snapshots then load as clean misses.
const SNAPSHOT_KIND: &str = "amp-chain-tier-snapshot";
const SNAPSHOT_VERSION: u64 = 1;

/// Loading or saving a tier snapshot failed. Every variant is a clean
/// rejection: the tier keeps serving (empty or with its current
/// contents), it never panics and never serves a half-loaded table.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SnapshotError {
    /// Reading or writing the file failed.
    Io {
        /// The failing path.
        path: String,
        /// The OS error.
        message: String,
    },
    /// The file is not canonical JSON (includes truncation).
    Parse {
        /// Byte offset of the parse failure.
        offset: usize,
        /// Parser diagnostic.
        message: String,
    },
    /// The file parses but was written by a different format version.
    Version {
        /// The offending header value.
        found: String,
    },
    /// The file parses and the header matches, but a payload is
    /// inconsistent (bad cell, checksum mismatch, wrong shape).
    Malformed {
        /// What was inconsistent.
        message: String,
    },
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Io { path, message } => {
                write!(f, "snapshot io error on {path}: {message}")
            }
            SnapshotError::Parse { offset, message } => {
                write!(f, "snapshot parse error at byte {offset}: {message}")
            }
            SnapshotError::Version { found } => {
                write!(f, "snapshot version mismatch: {found}")
            }
            SnapshotError::Malformed { message } => {
                write!(f, "snapshot malformed: {message}")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<ChainTableError> for SnapshotError {
    fn from(e: ChainTableError) -> Self {
        match e {
            ChainTableError::Parse { offset, message } => SnapshotError::Parse { offset, message },
            ChainTableError::Version { found } => SnapshotError::Version { found },
            ChainTableError::Malformed { message } => SnapshotError::Malformed { message },
        }
    }
}

/// How the tier answered one request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TierServe {
    /// The pool was already covered: pure extraction, no DP work.
    Extracted,
    /// The table grew by the pool delta first, then extracted.
    Grown,
    /// No (valid) table existed for the chain: a full cold solve.
    Cold,
}

/// One chain's slot: the LRU stamp lives outside the entry mutex so
/// eviction scans never contend with an in-flight solve.
struct EntrySlot {
    stamp: AtomicU64,
    entry: Mutex<TierEntry>,
}

/// Tri-state per chain: fresh (`valid`, no table), solved (`valid`,
/// table), or poisoned (`!valid` — a mutation was interrupted; the next
/// request repairs with a cold solve).
struct TierEntry {
    valid: bool,
    table: Option<ChainTable>,
}

/// Point-in-time counters of a [`ChainTier`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChainTierStats {
    /// Requests answered by pure extraction from a covering table.
    pub hits: u64,
    /// Requests answered after an in-place pool-delta growth.
    pub grows: u64,
    /// Requests that paid a full cold HeRAD solve.
    pub cold_solves: u64,
    /// Cold solves that replaced a poisoned (interrupted) entry.
    pub repairs: u64,
    /// Chains displaced to make room.
    pub evictions: u64,
    /// Chains currently resident.
    pub entries: usize,
    /// Maximum resident chains (0 = tier disabled).
    pub capacity: usize,
    /// Tables restored from a snapshot at load time.
    pub snapshot_loaded: u64,
    /// Snapshot files rejected (corrupt/truncated/version-skewed).
    pub snapshot_rejected: u64,
}

impl ChainTierStats {
    /// Fraction of tier consultations that avoided a cold solve, in
    /// integer per-mille (0–1000); 0 when the tier was never consulted.
    #[must_use]
    pub fn hit_rate_milli(&self) -> u64 {
        let warm = self.hits + self.grows;
        (warm * 1000)
            .checked_div(warm + self.cold_solves)
            .unwrap_or(0)
    }
}

/// The chain-keyed solve-once cache tier (see module docs).
pub struct ChainTier {
    entries: Mutex<HashMap<Vec<TaskSpec>, Arc<EntrySlot>>>,
    capacity: usize,
    clock: AtomicU64,
    hits: AtomicU64,
    grows: AtomicU64,
    cold_solves: AtomicU64,
    repairs: AtomicU64,
    evictions: AtomicU64,
    snapshot_loaded: AtomicU64,
    snapshot_rejected: AtomicU64,
    fault: Option<TierFaultHook>,
}

impl ChainTier {
    /// Builds a tier holding up to `capacity` chains (`0` disables it:
    /// [`ChainTier::enabled`] is false and the engine falls back to the
    /// plain solver path).
    #[must_use]
    pub fn new(capacity: usize, fault: Option<TierFaultHook>) -> Self {
        ChainTier {
            entries: Mutex::new(HashMap::new()),
            capacity,
            clock: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            grows: AtomicU64::new(0),
            cold_solves: AtomicU64::new(0),
            repairs: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            snapshot_loaded: AtomicU64::new(0),
            snapshot_rejected: AtomicU64::new(0),
            fault,
        }
    }

    /// Whether the tier participates in serving at all.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.capacity > 0
    }

    fn roll(&self, site: &'static str) {
        if let Some(hook) = &self.fault {
            hook(site);
        }
    }

    /// Get-or-create the chain's slot, refreshing its LRU stamp and
    /// evicting the coldest chain when a fresh key would overflow the
    /// capacity. The map lock is held only for this bookkeeping — solves
    /// run under the per-entry lock, so two chains never serialize on
    /// each other and one chain cold-solves exactly once under
    /// concurrency.
    fn slot(&self, key: &[TaskSpec]) -> Arc<EntrySlot> {
        let stamp = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
        let mut map = self.entries.lock();
        if let Some(slot) = map.get(key) {
            slot.stamp.store(stamp, Ordering::Relaxed);
            return Arc::clone(slot);
        }
        if map.len() >= self.capacity {
            if let Some(victim) = map
                .iter()
                .min_by_key(|(_, slot)| slot.stamp.load(Ordering::Relaxed))
                .map(|(k, _)| k.clone())
            {
                map.remove(&victim);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        let slot = Arc::new(EntrySlot {
            stamp: AtomicU64::new(stamp),
            entry: Mutex::new(TierEntry {
                valid: true,
                table: None,
            }),
        });
        map.insert(key.to_vec(), Arc::clone(&slot));
        slot
    }

    /// Serves one HeRAD request from the tier: extraction when the chain's
    /// table covers the pool, in-place growth when it exists but is too
    /// small, a cold solve otherwise. Returns how it was served plus the
    /// feasibility flag; on `true`, `out` holds the schedule, bit-identical
    /// to a fresh `Herad::new()` solve at the same pool.
    ///
    /// Must only be called on an enabled tier with a non-empty chain.
    pub fn serve(
        &self,
        key: &[TaskSpec],
        chain: &TaskChain,
        resources: Resources,
        out: &mut Solution,
    ) -> (TierServe, bool) {
        debug_assert!(self.enabled(), "serve on a disabled tier");
        let slot = self.slot(key);
        let mut entry = slot.entry.lock();
        if entry.valid {
            if let Some(table) = entry.table.as_ref() {
                if table.covers(resources) {
                    self.roll("extract");
                    let feasible = table.extract(chain, resources, out);
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return (TierServe::Extracted, feasible);
                }
                // Pool-delta growth: the mutation window is guarded by
                // the valid flag, so an interrupted grow poisons the
                // entry instead of leaving a half-relaid table behind.
                entry.valid = false;
                self.roll("grow");
                let table = entry.table.as_mut().expect("checked above");
                table.grow_to(chain, resources);
                entry.valid = true;
                let feasible = entry
                    .table
                    .as_ref()
                    .expect("just grown")
                    .extract(chain, resources, out);
                self.grows.fetch_add(1, Ordering::Relaxed);
                return (TierServe::Grown, feasible);
            }
        }
        // Cold solve — either a fresh chain or the repair of a poisoned
        // entry. Drop any stale table before the fallible work so an
        // interruption here leaves "poisoned and empty", never garbage.
        let repair = !entry.valid;
        entry.valid = false;
        entry.table = None;
        self.roll("cold");
        let table = ChainTable::solve(chain, resources);
        let feasible = table.extract(chain, resources, out);
        entry.table = Some(table);
        entry.valid = true;
        self.cold_solves.fetch_add(1, Ordering::Relaxed);
        if repair {
            self.repairs.fetch_add(1, Ordering::Relaxed);
        }
        (TierServe::Cold, feasible)
    }

    /// Current counters.
    #[must_use]
    pub fn stats(&self) -> ChainTierStats {
        ChainTierStats {
            hits: self.hits.load(Ordering::Relaxed),
            grows: self.grows.load(Ordering::Relaxed),
            cold_solves: self.cold_solves.load(Ordering::Relaxed),
            repairs: self.repairs.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: self.entries.lock().len(),
            capacity: self.capacity,
            snapshot_loaded: self.snapshot_loaded.load(Ordering::Relaxed),
            snapshot_rejected: self.snapshot_rejected.load(Ordering::Relaxed),
        }
    }

    /// Every valid table as its serialized JSON document, sorted by the
    /// serialized form so snapshots of equal tiers are byte-identical
    /// regardless of map iteration order.
    #[must_use]
    pub fn snapshot_tables(&self) -> Vec<Json> {
        let slots: Vec<Arc<EntrySlot>> = self.entries.lock().values().cloned().collect();
        let mut tables: Vec<(String, Json)> = slots
            .iter()
            .filter_map(|slot| {
                let entry = slot.entry.lock();
                if !entry.valid {
                    return None;
                }
                entry.table.as_ref().map(|t| {
                    let doc = t.to_json();
                    (doc.render_compact(), doc)
                })
            })
            .collect();
        tables.sort_by(|a, b| a.0.cmp(&b.0));
        tables.into_iter().map(|(_, doc)| doc).collect()
    }

    /// Installs a table restored from a snapshot. Existing live tables
    /// win over snapshot data (restores run at startup, before traffic,
    /// so this only matters for merged fleet snapshots loaded twice).
    fn install(&self, table: ChainTable) {
        let key: Vec<TaskSpec> = table
            .tasks()
            .iter()
            .map(|&(wb, wl, rep)| TaskSpec {
                weight_big: wb,
                weight_little: wl,
                replicable: rep,
            })
            .collect();
        let slot = self.slot(&key);
        let mut entry = slot.entry.lock();
        if entry.valid && entry.table.is_some() {
            return;
        }
        entry.table = Some(table);
        entry.valid = true;
        self.snapshot_loaded.fetch_add(1, Ordering::Relaxed);
    }

    /// Parses and installs a snapshot document. All-or-nothing: every
    /// table is decoded and validated *before* any is installed, so a bad
    /// document changes nothing. Returns how many tables were installed.
    pub fn load_snapshot_text(&self, text: &str) -> Result<usize, SnapshotError> {
        let result = self.try_load_snapshot_text(text);
        if result.is_err() {
            self.snapshot_rejected.fetch_add(1, Ordering::Relaxed);
        }
        result
    }

    fn try_load_snapshot_text(&self, text: &str) -> Result<usize, SnapshotError> {
        if !self.enabled() {
            // A disabled tier validates nothing and installs nothing.
            return Ok(0);
        }
        let malformed = |message: &str| SnapshotError::Malformed {
            message: message.to_string(),
        };
        let doc = Json::parse(text).map_err(|e| SnapshotError::Parse {
            offset: e.offset,
            message: e.message,
        })?;
        let obj = doc
            .as_obj()
            .ok_or_else(|| malformed("document is not an object"))?;
        let kind = obj
            .get("kind")
            .and_then(|k| k.as_str())
            .ok_or_else(|| malformed("missing kind"))?;
        if kind != SNAPSHOT_KIND {
            return Err(SnapshotError::Version {
                found: format!("kind {kind:?}"),
            });
        }
        let version = obj
            .get("version")
            .and_then(Json::as_int)
            .ok_or_else(|| malformed("missing version"))?;
        if version != SNAPSHOT_VERSION {
            return Err(SnapshotError::Version {
                found: format!("version {version}"),
            });
        }
        let tables = obj
            .get("tables")
            .and_then(Json::as_arr)
            .ok_or_else(|| malformed("missing tables"))?;
        let decoded: Vec<ChainTable> = tables
            .iter()
            .map(ChainTable::from_json)
            .collect::<Result<_, ChainTableError>>()?;
        let n = decoded.len();
        for table in decoded {
            self.install(table);
        }
        Ok(n)
    }

    /// Restores the tier from a snapshot file. A missing, unreadable or
    /// invalid file is a typed error and leaves the tier untouched (the
    /// engine then starts with an empty tier — clean misses, never a
    /// crash and never a wrong answer).
    pub fn load_from(&self, path: &Path) -> Result<usize, SnapshotError> {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) => {
                self.snapshot_rejected.fetch_add(1, Ordering::Relaxed);
                return Err(SnapshotError::Io {
                    path: path.display().to_string(),
                    message: e.to_string(),
                });
            }
        };
        self.load_snapshot_text(&text)
    }

    /// Writes the tier's valid tables to `path` atomically (temp file in
    /// the same directory, then rename), so a crash mid-write can never
    /// leave a truncated snapshot where a good one was. Returns how many
    /// tables were written.
    pub fn save_to(&self, path: &Path) -> Result<usize, SnapshotError> {
        write_snapshot_file(path, self.snapshot_tables(), |site| self.roll(site))
    }
}

/// Renders `tables` into the versioned snapshot document.
#[must_use]
pub fn snapshot_doc(tables: Vec<Json>) -> Json {
    let mut obj = std::collections::BTreeMap::new();
    obj.insert("kind".to_string(), Json::Str(SNAPSHOT_KIND.to_string()));
    obj.insert("version".to_string(), Json::Int(SNAPSHOT_VERSION));
    obj.insert("tables".to_string(), Json::Arr(tables));
    Json::Obj(obj)
}

/// Atomically writes a snapshot document for `tables` to `path`:
/// everything lands in a temp file first, and only a complete write is
/// renamed into place. `roll` is the fault-injection seam (`"snapshot"`
/// fires between write and rename — a panic there orphans the temp file
/// but never corrupts an existing snapshot).
pub fn write_snapshot_file<F: Fn(&'static str)>(
    path: &Path,
    tables: Vec<Json>,
    roll: F,
) -> Result<usize, SnapshotError> {
    let n = tables.len();
    let text = snapshot_doc(tables).render_compact();
    let io_err = |p: &Path, e: std::io::Error| SnapshotError::Io {
        path: p.display().to_string(),
        message: e.to_string(),
    };
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    std::fs::write(&tmp, text.as_bytes()).map_err(|e| io_err(&tmp, e))?;
    roll("snapshot");
    std::fs::rename(&tmp, path).map_err(|e| io_err(path, e))?;
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use amp_core::sched::{Herad, Scheduler};
    use amp_core::{Task, TaskChain};

    fn chain() -> TaskChain {
        TaskChain::new(vec![
            Task::new(10, 25, false),
            Task::new(40, 90, true),
            Task::new(5, 12, false),
        ])
    }

    fn key(chain: &TaskChain) -> Vec<TaskSpec> {
        chain.tasks().iter().map(TaskSpec::from).collect()
    }

    #[test]
    fn pool_sweep_pays_exactly_one_cold_solve() {
        let tier = ChainTier::new(8, None);
        let c = chain();
        let k = key(&c);
        let mut out = Solution::empty();
        let mut kinds = Vec::new();
        for (b, l) in [
            (1, 1),
            (2, 2),
            (1, 3),
            (3, 1),
            (0, 2),
            (2, 0),
            (3, 3),
            (2, 3),
            (1, 0),
        ] {
            let r = Resources::new(b, l);
            let (kind, feasible) = tier.serve(&k, &c, r, &mut out);
            kinds.push(kind);
            let fresh = Herad::new().schedule(&c, r);
            assert_eq!(feasible.then(|| out.clone()), fresh, "diverges at {r}");
        }
        assert_eq!(kinds[0], TierServe::Cold, "first request solves cold");
        let stats = tier.stats();
        assert_eq!(stats.cold_solves, 1, "one cold solve for the whole sweep");
        assert_eq!(stats.hits + stats.grows, 8);
        assert!(stats.hit_rate_milli() > 800);
    }

    #[test]
    fn distinct_chains_get_distinct_tables_and_lru_evicts() {
        let tier = ChainTier::new(2, None);
        let chains: Vec<TaskChain> = (1..=3u64)
            .map(|s| {
                TaskChain::new(vec![
                    Task::new(s, 2 * s, true),
                    Task::new(s + 1, s + 2, false),
                ])
            })
            .collect();
        let mut out = Solution::empty();
        for c in &chains {
            let (kind, _) = tier.serve(&key(c), c, Resources::new(2, 2), &mut out);
            assert_eq!(kind, TierServe::Cold);
        }
        let stats = tier.stats();
        assert_eq!(stats.cold_solves, 3);
        assert_eq!(stats.entries, 2, "capacity bounds resident chains");
        assert_eq!(stats.evictions, 1);
        // The evicted (oldest) chain re-solves cold; the newest extracts.
        let (kind, _) = tier.serve(&key(&chains[2]), &chains[2], Resources::new(2, 2), &mut out);
        assert_eq!(kind, TierServe::Extracted);
        let (kind, _) = tier.serve(&key(&chains[0]), &chains[0], Resources::new(2, 2), &mut out);
        assert_eq!(kind, TierServe::Cold);
    }

    #[test]
    fn snapshot_round_trip_restores_warm_serving() {
        let dir = std::env::temp_dir().join("amp-chain-tier-test-rt");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.json");
        let tier = ChainTier::new(8, None);
        let c = chain();
        let mut out = Solution::empty();
        let _ = tier.serve(&key(&c), &c, Resources::new(3, 3), &mut out);
        assert_eq!(tier.save_to(&path).unwrap(), 1);
        // A fresh tier loads the snapshot and serves without a cold solve.
        let restored = ChainTier::new(8, None);
        assert_eq!(restored.load_from(&path).unwrap(), 1);
        for (b, l) in [(1, 1), (3, 3), (0, 2)] {
            let r = Resources::new(b, l);
            let (kind, feasible) = restored.serve(&key(&c), &c, r, &mut out);
            assert_eq!(kind, TierServe::Extracted, "warm restart extracts at {r}");
            assert_eq!(
                feasible.then(|| out.clone()),
                Herad::new().schedule(&c, r),
                "restored answer diverges at {r}"
            );
        }
        let stats = restored.stats();
        assert_eq!(stats.cold_solves, 0);
        assert_eq!(stats.snapshot_loaded, 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_snapshots_reject_wholesale_and_count() {
        let tier = ChainTier::new(8, None);
        assert!(matches!(
            tier.load_snapshot_text("{"),
            Err(SnapshotError::Parse { .. })
        ));
        assert!(matches!(
            tier.load_snapshot_text("{\"kind\":\"other\",\"version\":1,\"tables\":[]}"),
            Err(SnapshotError::Version { .. })
        ));
        assert!(matches!(
            tier.load_snapshot_text(
                "{\"kind\":\"amp-chain-tier-snapshot\",\"version\":9,\"tables\":[]}"
            ),
            Err(SnapshotError::Version { .. })
        ));
        assert!(matches!(
            tier.load_snapshot_text(
                "{\"kind\":\"amp-chain-tier-snapshot\",\"version\":1,\"tables\":[{}]}"
            ),
            Err(SnapshotError::Malformed { .. })
        ));
        let stats = tier.stats();
        assert_eq!(stats.snapshot_rejected, 4);
        assert_eq!(stats.entries, 0, "a rejected snapshot installs nothing");
        // A missing file is a typed Io error, not a panic.
        assert!(matches!(
            tier.load_from(Path::new("/nonexistent/amp-snap.json")),
            Err(SnapshotError::Io { .. })
        ));
    }

    #[test]
    fn panic_mid_mutation_poisons_then_repairs() {
        use std::sync::atomic::AtomicBool;
        let armed = Arc::new(AtomicBool::new(false));
        let armed_hook = Arc::clone(&armed);
        let hook: TierFaultHook = Arc::new(move |site| {
            if armed_hook.load(Ordering::Relaxed) && site != "extract" {
                panic!("tier chaos at {site}");
            }
        });
        let tier = ChainTier::new(8, Some(hook));
        let c = chain();
        let k = key(&c);
        let mut out = Solution::empty();
        // Arm, then panic during the cold solve: the entry is poisoned,
        // nothing is served.
        armed.store(true, Ordering::Relaxed);
        let r = Resources::new(2, 2);
        assert!(std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut out = Solution::empty();
            tier.serve(&k, &c, r, &mut out)
        }))
        .is_err());
        // Disarm: the next request repairs with a cold solve and the
        // answer is still bit-identical to a fresh one.
        armed.store(false, Ordering::Relaxed);
        let (kind, feasible) = tier.serve(&k, &c, r, &mut out);
        assert_eq!(kind, TierServe::Cold);
        assert_eq!(feasible.then(|| out.clone()), Herad::new().schedule(&c, r));
        assert_eq!(tier.stats().repairs, 1);
        // Arm again and panic mid-grow: poisoned again, then repaired.
        armed.store(true, Ordering::Relaxed);
        let bigger = Resources::new(4, 4);
        assert!(std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut out = Solution::empty();
            tier.serve(&k, &c, bigger, &mut out)
        }))
        .is_err());
        armed.store(false, Ordering::Relaxed);
        let (kind, feasible) = tier.serve(&k, &c, bigger, &mut out);
        assert_eq!(kind, TierServe::Cold, "poisoned entry repairs cold");
        assert_eq!(
            feasible.then(|| out.clone()),
            Herad::new().schedule(&c, bigger)
        );
        assert_eq!(tier.stats().repairs, 2);
    }

    #[test]
    fn interrupted_snapshot_write_never_corrupts_the_old_file() {
        let dir = std::env::temp_dir().join("amp-chain-tier-test-aw");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.json");
        let tier = ChainTier::new(8, None);
        let c = chain();
        let mut out = Solution::empty();
        let _ = tier.serve(&key(&c), &c, Resources::new(2, 2), &mut out);
        tier.save_to(&path).unwrap();
        let good = std::fs::read_to_string(&path).unwrap();
        // A save that panics between write and rename leaves the old
        // snapshot byte-identical.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            write_snapshot_file(&path, tier.snapshot_tables(), |_| {
                panic!("chaos mid-snapshot-write")
            })
        }));
        assert!(result.is_err());
        assert_eq!(std::fs::read_to_string(&path).unwrap(), good);
        // And the tier itself is still valid and serving.
        let (kind, _) = tier.serve(&key(&c), &c, Resources::new(2, 2), &mut out);
        assert_eq!(kind, TierServe::Extracted);
        std::fs::remove_file(&path).ok();
    }
}
