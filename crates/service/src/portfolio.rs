//! Deadline-bounded strategy portfolio.
//!
//! One request, three strategies, bounded wall-clock: FERTAC runs
//! immediately on the calling thread (microseconds, always finishes),
//! while HeRAD (optimal but `O(n²·b·l)` DP) and a node-budgeted 2CATAC
//! race on the engine's persistent [`RacerPool`]. The portfolio then
//! collects racer reports until the deadline and returns the best
//! solution seen:
//!
//! * primary objective — smallest period (the paper's throughput goal);
//! * secondary objective — fewest big cores, then fewest cores overall
//!   (the paper's power proxy, read off [`Solution::used_cores`]).
//!
//! With no deadline the portfolio waits for every racer, so its period
//! equals HeRAD's optimum. With a deadline that already passed it still
//! returns the inline FERTAC solution — a valid schedule, never an error,
//! merely possibly improvable.
//!
//! ## The `complete` flag, precisely
//!
//! `complete` is a *cacheability certificate*: it is `true` only when
//! both racers were submitted, ran, and reported a usable verdict
//! (solution or infeasible) before the deadline. Anything less — a
//! deadline hit, a racer that panicked, an invalid racer solution, a
//! full racer queue, a degraded (even empty) pool — clears it, because
//! the result can no longer be proven HeRAD-optimal and caching it would
//! replay a possibly-improvable answer bit-identical to every later
//! identical request. In particular a racer that *dies without
//! reporting* (channel disconnect with reports still missing) clears the
//! flag: an earlier version left `complete == true` on that path and
//! poisoned the cache.
//!
//! Racer execution is pooled, isolated and cancellable — see
//! [`racer`](crate::racer) for the thread-lifecycle design.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use amp_core::sched::{Fertac, Herad, SchedScratch, Scheduler, Twocatac};
use amp_core::{Ratio, Resources, Solution, TaskChain};
use crossbeam::channel;

use crate::racer::{self, RacerJob, RacerPool, RacerResult};

/// Tuning knobs of the portfolio.
#[derive(Clone, Copy, Debug)]
pub struct PortfolioConfig {
    /// Node budget handed to [`Twocatac::with_node_budget`]; bounds the
    /// two-choice search tree so the racer cannot go exponential.
    pub twocatac_node_budget: u64,
}

impl Default for PortfolioConfig {
    fn default() -> Self {
        PortfolioConfig {
            twocatac_node_budget: 200_000,
        }
    }
}

/// Number of racing strategies a portfolio run submits to the pool.
pub const N_RACERS: usize = 2;

/// The winning result of one portfolio run.
#[derive(Clone, Debug)]
pub struct PortfolioOutcome {
    /// Display name of the strategy that produced the winner.
    pub strategy: &'static str,
    /// The winning solution.
    pub solution: Solution,
    /// Its period on the request chain.
    pub period: Ratio,
    /// `true` when every member reported a usable verdict in time; the
    /// cacheability certificate (see the module docs).
    pub complete: bool,
}

/// `true` when `(candidate)` beats `(incumbent)` under the paper's
/// objectives: smaller period, then fewer big cores, then fewer cores.
fn beats(cand_period: Ratio, cand: &Solution, inc_period: Ratio, inc: &Solution) -> bool {
    if cand_period != inc_period {
        return cand_period < inc_period;
    }
    let (c, i) = (cand.used_cores(), inc.used_cores());
    if c.big != i.big {
        return c.big < i.big;
    }
    c.total() < i.total()
}

/// Flips the request's cancellation flag when dropped, so queued racer
/// jobs are skipped whether the collector returns normally, times out,
/// or unwinds out of this function entirely (e.g. an injected panic in
/// the inline member).
struct CancelOnDrop(Arc<AtomicBool>);

impl Drop for CancelOnDrop {
    fn drop(&mut self) {
        self.0.store(true, Ordering::Release);
    }
}

/// Runs the portfolio for one instance. `deadline` bounds how long the
/// caller waits for the racing strategies; `None` waits for all of them.
/// `scratch` backs the inline FERTAC solve, so a worker that keeps its
/// scratch across requests pays no allocation for the guaranteed member;
/// the racers reuse the pool threads' own arenas. Steady state spawns no
/// OS threads. Returns `None` only when *no* member (FERTAC included)
/// found a valid mapping — e.g. an empty chain or a zero-core pool.
#[must_use]
pub fn run(
    chain: &TaskChain,
    resources: Resources,
    deadline: Option<Instant>,
    cfg: &PortfolioConfig,
    scratch: &mut SchedScratch,
    pool: &RacerPool,
) -> Option<PortfolioOutcome> {
    let (tx, rx) = channel::bounded(N_RACERS);
    let cancel = Arc::new(AtomicBool::new(false));
    let _cancel_guard = CancelOnDrop(Arc::clone(&cancel));
    let generation = pool.next_generation();
    let racers: [Box<dyn Scheduler>; N_RACERS] = [
        Box::new(Herad::new()),
        Box::new(Twocatac::with_node_budget(cfg.twocatac_node_budget)),
    ];
    let mut submitted = 0usize;
    for strategy in racers {
        let accepted = pool.try_submit(RacerJob {
            strategy: pool.wrapped(strategy),
            chain: chain.clone(),
            resources,
            generation,
            cancel: Arc::clone(&cancel),
            reply: tx.clone(),
        });
        if accepted {
            submitted += 1;
        }
    }
    drop(tx);

    // A racer the pool could not take (no live threads, full queue) is a
    // member that will never report: the outcome cannot be complete.
    let mut complete = submitted == N_RACERS;

    // Vet the inline member before *anything* derives from its stages —
    // an invalid FERTAC solution (possible only through fault injection
    // or a real scheduler bug) must neither win nor certify
    // completeness, and computing a period from out-of-range stages
    // would panic.
    let fertac = pool.wrapped(Box::new(Fertac));
    let mut fertac_out = Solution::empty();
    let mut best: Option<(&'static str, Solution, Ratio)> =
        if fertac.schedule_into(chain, resources, scratch, &mut fertac_out) {
            if racer::solution_is_sound(&fertac_out, chain, resources) {
                let period = fertac_out.period(chain);
                Some((fertac.name(), fertac_out, period))
            } else {
                pool.record_inline_invalid();
                complete = false;
                None
            }
        } else {
            None
        };

    let mut received = 0;
    while received < submitted {
        let msg = match deadline {
            Some(d) => rx.recv_deadline(d),
            None => rx
                .recv()
                .map_err(|_| channel::RecvTimeoutError::Disconnected),
        };
        match msg {
            Ok(report) => {
                received += 1;
                match report.result {
                    RacerResult::Solved(solution) => {
                        let period = solution.period(chain);
                        let better = match &best {
                            Some((_, inc, inc_period)) => {
                                beats(period, &solution, *inc_period, inc)
                            }
                            None => true,
                        };
                        if better {
                            best = Some((report.name, solution, period));
                        }
                    }
                    RacerResult::Infeasible => {}
                    // A panicked or invalid racer reported, but nothing
                    // usable: the result cannot be proven optimal.
                    RacerResult::Failed => complete = false,
                }
            }
            Err(channel::RecvTimeoutError::Timeout) => {
                complete = false;
                break;
            }
            Err(channel::RecvTimeoutError::Disconnected) => {
                // Every sender is gone. If reports are still missing, a
                // racer died (or was skipped) without reporting — the
                // outcome is NOT complete. Leaving `complete` untouched
                // here was the cache-poisoning bug this module fixes.
                if received < submitted {
                    complete = false;
                }
                break;
            }
        }
    }

    best.map(|(strategy, solution, period)| PortfolioOutcome {
        strategy,
        solution,
        period,
        complete,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::racer::StrategyWrap;
    use amp_core::{CoreType, Stage, Task};

    fn chain() -> TaskChain {
        TaskChain::new(vec![
            Task::new(10, 25, false),
            Task::new(40, 90, true),
            Task::new(40, 95, true),
            Task::new(5, 12, false),
        ])
    }

    /// A wrap that panics inside the named strategy and passes every
    /// other one through untouched.
    fn panic_in(name: &'static str) -> StrategyWrap {
        struct Bomb {
            inner: Box<dyn Scheduler>,
        }
        impl Scheduler for Bomb {
            fn name(&self) -> &'static str {
                self.inner.name()
            }
            fn schedule_into(
                &self,
                _: &TaskChain,
                _: Resources,
                _: &mut SchedScratch,
                _: &mut Solution,
            ) -> bool {
                panic!("injected panic in {}", self.inner.name());
            }
        }
        Arc::new(move |inner: Box<dyn Scheduler>| -> Box<dyn Scheduler> {
            if inner.name() == name {
                Box::new(Bomb { inner })
            } else {
                inner
            }
        })
    }

    #[test]
    fn unlimited_deadline_matches_herad_optimum() {
        let c = chain();
        let res = Resources::new(2, 2);
        let pool = RacerPool::new(2, None);
        let out = run(
            &c,
            res,
            None,
            &PortfolioConfig::default(),
            &mut SchedScratch::new(),
            &pool,
        )
        .expect("feasible");
        let opt = Herad::new().optimal_period(&c, res).expect("feasible");
        assert_eq!(out.period, opt);
        assert!(out.complete);
        assert!(out.solution.validate(&c).is_ok());
        assert!(out.solution.is_valid(&c, res, out.period));
    }

    #[test]
    fn expired_deadline_still_returns_a_valid_solution() {
        let c = chain();
        let res = Resources::new(2, 2);
        let pool = RacerPool::new(2, None);
        let deadline = Instant::now(); // already passed once we wait
        let out = run(
            &c,
            res,
            Some(deadline),
            &PortfolioConfig::default(),
            &mut SchedScratch::new(),
            &pool,
        )
        .expect("FERTAC always reports");
        assert!(out.solution.validate(&c).is_ok());
        assert!(out.solution.is_valid(&c, res, out.period));
        // FERTAC's period bounds the result from above even if a racer
        // happened to slip in before the deadline check.
        let fertac = Fertac.schedule(&c, res).unwrap();
        assert!(out.period <= fertac.period(&c));
    }

    #[test]
    fn infeasible_instance_returns_none() {
        let pool = RacerPool::new(2, None);
        assert!(run(
            &chain(),
            Resources::new(0, 0),
            None,
            &PortfolioConfig::default(),
            &mut SchedScratch::new(),
            &pool,
        )
        .is_none());
    }

    /// The headline regression: a racer that panics (dies without a
    /// usable report) must clear `complete`, with or without a deadline.
    /// Before the fix, the disconnect path returned `complete == true`
    /// and the engine cached the FERTAC answer as HeRAD-optimal.
    #[test]
    fn dead_racer_clears_the_complete_flag() {
        let c = chain();
        let res = Resources::new(2, 2);
        let pool = RacerPool::new(2, Some(panic_in("HeRAD")));
        let out = run(
            &c,
            res,
            None,
            &PortfolioConfig::default(),
            &mut SchedScratch::new(),
            &pool,
        )
        .expect("FERTAC and 2CATAC still answer");
        assert!(
            !out.complete,
            "a panicked racer must not certify completeness"
        );
        assert!(out.solution.validate(&c).is_ok());
        assert_eq!(pool.stats().panics, 1);
    }

    /// Satellite regression: the doc promise "an expired deadline still
    /// returns the inline FERTAC solution — never an error" holds even
    /// when a racer panics before FERTAC's result is collected.
    #[test]
    fn expired_deadline_with_panicking_racer_still_answers() {
        let c = chain();
        let res = Resources::new(2, 2);
        let pool = RacerPool::new(2, Some(panic_in("HeRAD")));
        let out = run(
            &c,
            res,
            Some(Instant::now()),
            &PortfolioConfig::default(),
            &mut SchedScratch::new(),
            &pool,
        )
        .expect("never an error on an expired deadline");
        assert!(!out.complete);
        assert!(out.solution.validate(&c).is_ok());
        assert!(out.solution.is_valid(&c, res, out.period));
    }

    /// A degraded (zero-thread) pool serves FERTAC-only and reports the
    /// outcome incomplete, so it is never cached as optimal.
    #[test]
    fn zero_thread_pool_degrades_to_fertac_only() {
        let c = chain();
        let res = Resources::new(2, 2);
        let pool = RacerPool::new(0, None);
        let out = run(
            &c,
            res,
            None,
            &PortfolioConfig::default(),
            &mut SchedScratch::new(),
            &pool,
        )
        .expect("inline FERTAC still answers");
        assert_eq!(out.strategy, "FERTAC");
        assert!(!out.complete);
        let fertac = Fertac.schedule(&c, res).unwrap();
        assert_eq!(out.period, fertac.period(&c));
    }

    /// An invalid racer solution is discarded (never wins) and clears
    /// completeness.
    #[test]
    fn invalid_racer_solution_is_discarded() {
        struct Liar {
            inner: Box<dyn Scheduler>,
        }
        impl Scheduler for Liar {
            fn name(&self) -> &'static str {
                self.inner.name()
            }
            fn schedule_into(
                &self,
                chain: &TaskChain,
                _: Resources,
                _: &mut SchedScratch,
                out: &mut Solution,
            ) -> bool {
                *out = Solution::new(vec![Stage::new(0, chain.len(), 1, CoreType::Big)]);
                true
            }
        }
        let wrap: StrategyWrap = Arc::new(|inner: Box<dyn Scheduler>| -> Box<dyn Scheduler> {
            if inner.name() == "HeRAD" {
                Box::new(Liar { inner })
            } else {
                inner
            }
        });
        let c = chain();
        let res = Resources::new(2, 2);
        let pool = RacerPool::new(2, Some(wrap));
        let out = run(
            &c,
            res,
            None,
            &PortfolioConfig::default(),
            &mut SchedScratch::new(),
            &pool,
        )
        .expect("other members answer");
        assert!(!out.complete);
        assert!(out.solution.validate(&c).is_ok());
        assert_eq!(pool.stats().invalid, 1);
    }

    #[test]
    fn beats_orders_by_period_then_big_cores_then_total() {
        let fast = Solution::new(vec![Stage::new(0, 3, 1, CoreType::Big)]);
        let lean = Solution::new(vec![Stage::new(0, 3, 1, CoreType::Little)]);
        let wide = Solution::new(vec![
            Stage::new(0, 1, 1, CoreType::Little),
            Stage::new(2, 3, 2, CoreType::Little),
        ]);
        let p1 = Ratio::from_int(10);
        let p2 = Ratio::from_int(20);
        // Smaller period always wins.
        assert!(beats(p1, &fast, p2, &lean));
        assert!(!beats(p2, &lean, p1, &fast));
        // Equal period: fewer big cores wins.
        assert!(beats(p1, &lean, p1, &fast));
        assert!(!beats(p1, &fast, p1, &lean));
        // Equal period and big cores: fewer total cores wins.
        assert!(beats(p1, &lean, p1, &wide));
        assert!(!beats(p1, &wide, p1, &lean));
        // Exact ties do not displace the incumbent.
        assert!(!beats(p1, &lean, p1, &lean));
    }
}
