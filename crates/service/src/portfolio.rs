//! Deadline-bounded strategy portfolio.
//!
//! One request, three strategies, bounded wall-clock: FERTAC runs
//! immediately on the calling thread (microseconds, always finishes),
//! while HeRAD (optimal but `O(n²·b·l)` DP) and a node-budgeted 2CATAC
//! race on freshly spawned threads. The portfolio then collects racer
//! results until the deadline and returns the best solution seen:
//!
//! * primary objective — smallest period (the paper's throughput goal);
//! * secondary objective — fewest big cores, then fewest cores overall
//!   (the paper's power proxy, read off [`Solution::used_cores`]).
//!
//! With no deadline the portfolio waits for every racer, so its period
//! equals HeRAD's optimum. With a deadline that already passed it still
//! returns the inline FERTAC solution — a valid schedule, never an error,
//! merely possibly improvable. The `complete` flag records which of the
//! two happened; incomplete outcomes are not cacheable.
//!
//! Racer threads are detached: a deadline abandons their *results*, not
//! their execution, so a runaway HeRAD finishes in the background and its
//! thread exits. The node budget keeps 2CATAC's worst-case exponential
//! search bounded regardless.

use std::thread;
use std::time::Instant;

use amp_core::sched::{Fertac, Herad, SchedScratch, Scheduler, Twocatac};
use amp_core::{Ratio, Resources, Solution, TaskChain};
use crossbeam::channel;

/// Tuning knobs of the portfolio.
#[derive(Clone, Copy, Debug)]
pub struct PortfolioConfig {
    /// Node budget handed to [`Twocatac::with_node_budget`]; bounds the
    /// two-choice search tree so the racer cannot go exponential.
    pub twocatac_node_budget: u64,
}

impl Default for PortfolioConfig {
    fn default() -> Self {
        PortfolioConfig {
            twocatac_node_budget: 200_000,
        }
    }
}

/// The winning result of one portfolio run.
#[derive(Clone, Debug)]
pub struct PortfolioOutcome {
    /// Display name of the strategy that produced the winner.
    pub strategy: &'static str,
    /// The winning solution.
    pub solution: Solution,
    /// Its period on the request chain.
    pub period: Ratio,
    /// `true` when every member reported before the deadline.
    pub complete: bool,
}

/// `true` when `(candidate)` beats `(incumbent)` under the paper's
/// objectives: smaller period, then fewer big cores, then fewer cores.
fn beats(cand_period: Ratio, cand: &Solution, inc_period: Ratio, inc: &Solution) -> bool {
    if cand_period != inc_period {
        return cand_period < inc_period;
    }
    let (c, i) = (cand.used_cores(), inc.used_cores());
    if c.big != i.big {
        return c.big < i.big;
    }
    c.total() < i.total()
}

/// Runs the portfolio for one instance. `deadline` bounds how long the
/// caller waits for the racing strategies; `None` waits for all of them.
/// `scratch` backs the inline FERTAC solve, so a worker that keeps its
/// scratch across requests pays no allocation for the guaranteed member
/// (the racers allocate their own state on their own threads). Returns
/// `None` only when *no* member (FERTAC included) found a valid mapping —
/// e.g. an empty chain or a zero-core pool.
#[must_use]
pub fn run(
    chain: &TaskChain,
    resources: Resources,
    deadline: Option<Instant>,
    cfg: &PortfolioConfig,
    scratch: &mut SchedScratch,
) -> Option<PortfolioOutcome> {
    let (tx, rx) = channel::unbounded::<(&'static str, Option<Solution>)>();
    let racers: [Box<dyn Scheduler + Send>; 2] = [
        Box::new(Herad::new()),
        Box::new(Twocatac::with_node_budget(cfg.twocatac_node_budget)),
    ];
    let n_racers = racers.len();
    for racer in racers {
        let tx = tx.clone();
        let chain = chain.clone();
        thread::spawn(move || {
            // A send after the collector gave up just returns Err; the
            // detached racer then exits quietly.
            let _ = tx.send((racer.name(), racer.schedule(&chain, resources)));
        });
    }
    drop(tx);

    let mut fertac_out = Solution::empty();
    let mut best: Option<(&'static str, Solution, Ratio)> = Fertac
        .schedule_into(chain, resources, scratch, &mut fertac_out)
        .then(|| {
            let period = fertac_out.period(chain);
            (Fertac.name(), fertac_out, period)
        });

    let mut received = 0;
    let mut complete = true;
    while received < n_racers {
        let msg = match deadline {
            Some(d) => rx.recv_deadline(d),
            None => rx
                .recv()
                .map_err(|_| channel::RecvTimeoutError::Disconnected),
        };
        match msg {
            Ok((name, Some(solution))) => {
                received += 1;
                let period = solution.period(chain);
                let better = match &best {
                    Some((_, inc, inc_period)) => beats(period, &solution, *inc_period, inc),
                    None => true,
                };
                if better {
                    best = Some((name, solution, period));
                }
            }
            Ok((_, None)) => received += 1,
            Err(channel::RecvTimeoutError::Timeout) => {
                complete = false;
                break;
            }
            Err(channel::RecvTimeoutError::Disconnected) => {
                // All racer threads are gone; whatever arrived, arrived.
                break;
            }
        }
    }

    best.map(|(strategy, solution, period)| PortfolioOutcome {
        strategy,
        solution,
        period,
        complete,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use amp_core::{CoreType, Stage, Task};

    fn chain() -> TaskChain {
        TaskChain::new(vec![
            Task::new(10, 25, false),
            Task::new(40, 90, true),
            Task::new(40, 95, true),
            Task::new(5, 12, false),
        ])
    }

    #[test]
    fn unlimited_deadline_matches_herad_optimum() {
        let c = chain();
        let res = Resources::new(2, 2);
        let out = run(
            &c,
            res,
            None,
            &PortfolioConfig::default(),
            &mut SchedScratch::new(),
        )
        .expect("feasible");
        let opt = Herad::new().optimal_period(&c, res).expect("feasible");
        assert_eq!(out.period, opt);
        assert!(out.complete);
        assert!(out.solution.validate(&c).is_ok());
        assert!(out.solution.is_valid(&c, res, out.period));
    }

    #[test]
    fn expired_deadline_still_returns_a_valid_solution() {
        let c = chain();
        let res = Resources::new(2, 2);
        let deadline = Instant::now(); // already passed once we wait
        let out = run(
            &c,
            res,
            Some(deadline),
            &PortfolioConfig::default(),
            &mut SchedScratch::new(),
        )
        .expect("FERTAC always reports");
        assert!(out.solution.validate(&c).is_ok());
        assert!(out.solution.is_valid(&c, res, out.period));
        // FERTAC's period bounds the result from above even if a racer
        // happened to slip in before the deadline check.
        let fertac = Fertac.schedule(&c, res).unwrap();
        assert!(out.period <= fertac.period(&c));
    }

    #[test]
    fn infeasible_instance_returns_none() {
        let c = chain();
        assert!(run(
            &c,
            Resources::new(0, 0),
            None,
            &PortfolioConfig::default(),
            &mut SchedScratch::new(),
        )
        .is_none());
    }

    #[test]
    fn beats_orders_by_period_then_big_cores_then_total() {
        let fast = Solution::new(vec![Stage::new(0, 3, 1, CoreType::Big)]);
        let lean = Solution::new(vec![Stage::new(0, 3, 1, CoreType::Little)]);
        let wide = Solution::new(vec![
            Stage::new(0, 1, 1, CoreType::Little),
            Stage::new(2, 3, 2, CoreType::Little),
        ]);
        let p1 = Ratio::from_int(10);
        let p2 = Ratio::from_int(20);
        // Smaller period always wins.
        assert!(beats(p1, &fast, p2, &lean));
        assert!(!beats(p2, &lean, p1, &fast));
        // Equal period: fewer big cores wins.
        assert!(beats(p1, &lean, p1, &fast));
        assert!(!beats(p1, &fast, p1, &lean));
        // Equal period and big cores: fewer total cores wins.
        assert!(beats(p1, &lean, p1, &wide));
        assert!(!beats(p1, &wide, p1, &lean));
        // Exact ties do not displace the incumbent.
        assert!(!beats(p1, &lean, p1, &lean));
    }
}
