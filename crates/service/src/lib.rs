//! # amp-service — a concurrent scheduling service for task-chain instances
//!
//! A long-running, multi-threaded engine around the paper's scheduling
//! strategies ([`amp_core::sched`]): clients submit
//! [`ScheduleRequest`]s — a partially-replicable task chain, a big/little
//! resource pool, a strategy [`Policy`] and an optional deadline — over
//! bounded channels and receive exactly one [`ScheduleResponse`] each.
//!
//! The service layers five mechanisms on top of the core algorithms:
//!
//! * **[`cache`]** — a sharded LRU keyed by the instance's canonical
//!   fingerprint (weights, replicability mask, resource pool, policy), so
//!   repeated instances are answered bit-identically without recomputing;
//! * **[`chain_tier`]** — the solve-once tier behind the LRU: one HeRAD
//!   DP table per distinct chain answers *every* pool shape by pure
//!   extraction (growing in place when a larger pool arrives), with
//!   snapshot persistence for warm restarts;
//! * **[`portfolio`]** — a deadline-bounded strategy portfolio: FERTAC
//!   inline for an instant feasible answer, HeRAD and a node-budgeted
//!   2CATAC raced on the persistent racer pool, best period (ties:
//!   fewest big cores, then fewest cores — the paper's secondary
//!   objective) wins; only runs where every member reported are marked
//!   `complete` and thus cacheable;
//! * **[`racer`]** — a persistent, bounded pool of racer threads with
//!   cooperative per-request cancellation, panic containment and
//!   racer-side solution validation (no per-request `thread::spawn`);
//! * **[`engine`]** — a crossbeam worker pool with a bounded job queue,
//!   explicit [`ServiceError::Overloaded`] backpressure, per-request
//!   panic isolation (a panicking strategy becomes a typed
//!   [`ServiceError::Internal`] response, never a dropped reply),
//!   revive-in-place worker supervision, validate-before-cache and
//!   drain-then-join graceful shutdown;
//! * **[`metrics`]** — lock-free counters (including panic, invalid
//!   solution and thread-accounting gauges) and a latency histogram
//!   exported as a JSON snapshot;
//! * **[`shards`]** — horizontal scaling: N independent engines behind
//!   a fingerprint router, so identical instances always share a cache
//!   while throughput and cache capacity scale with the shard count
//!   (this is what the `amp-net` socket front end mounts).
//!
//! ## Quickstart
//!
//! ```
//! use amp_core::{Resources, Task, TaskChain};
//! use amp_service::{Engine, EngineConfig, Policy, ScheduleRequest};
//!
//! let engine = Engine::start(EngineConfig::default());
//! let chain = TaskChain::new(vec![
//!     Task::new(10, 25, false),
//!     Task::new(40, 90, true),
//!     Task::new(5, 12, false),
//! ]);
//! let request = ScheduleRequest::from_chain(
//!     1, &chain, Resources::new(2, 2), Policy::Portfolio,
//! );
//! let response = engine.schedule_blocking(request);
//! let outcome = response.result.expect("feasible instance");
//! println!("{} found period {}", outcome.strategy, outcome.period);
//! engine.shutdown();
//! ```

pub mod cache;
pub mod chain_tier;
pub mod engine;
pub mod error;
pub mod metrics;
pub mod portfolio;
pub mod racer;
pub mod request;
pub mod shards;

pub use cache::{CacheKey, CacheStats, SolutionCache};
pub use chain_tier::{ChainTier, ChainTierStats, SnapshotError, TierFaultHook, TierServe};
pub use engine::{Engine, EngineConfig, RejectedBatch};
pub use error::ServiceError;
pub use metrics::{MetricsSnapshot, ServiceMetrics};
pub use portfolio::{PortfolioConfig, PortfolioOutcome};
pub use racer::{solution_is_sound, RacerPool, RacerPoolStats, StrategyWrap};
pub use request::{
    format_period, parse_period, Objective, Policy, ScheduleOutcome, ScheduleRequest,
    ScheduleResponse, TaskSpec,
};
pub use shards::{BatchSubmission, EngineShards};
