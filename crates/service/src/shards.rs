//! Horizontal sharding of the scheduling engine: N independent
//! [`Engine`]s — each with its own bounded queue, worker pool, racer
//! pool, solution cache and chain tier — behind one router keyed by the
//! request's *pool-free* chain fingerprint.
//!
//! ## Why shard by chain fingerprint (and not round-robin)
//!
//! The same chain always lands on the same engine, so each engine's
//! caches hold a *disjoint* slice of the chain space: no entry is
//! duplicated across shards, the fleet-wide cache capacity is the sum of
//! the parts, and a repeated instance hits the cache no matter which
//! connection (or which batch) carries it. Round-robin would smear
//! identical instances across every shard and divide the effective cache
//! capacity by the shard count. The cost is that a skewed workload can
//! load shards unevenly; the bounded per-shard queues turn that skew
//! into typed [`ServiceError::Overloaded`] backpressure instead of
//! unbounded latency, which is what a wire front end wants to relay.
//!
//! The routing key is [`CacheKey::chain_fingerprint`] — weights,
//! replicability and policy, but *not* the resource pool — so every pool
//! shape of one chain shares a shard. That is what makes the solve-once
//! chain tier work fleet-wide: a pool sweep over one chain grows a
//! single HeRAD table on a single engine instead of paying one cold
//! solve per shard. The exact-fingerprint LRU still keys on the full
//! instance (pool included) inside each engine, so distinct pools of one
//! chain occupy distinct LRU entries on the same shard.
//!
//! The router remixes the fingerprint with the 64-bit Fibonacci
//! multiplier and routes on the *high* bits. Each engine's internal
//! cache picks its lock shard with `fingerprint % cache_shards` (low
//! bits); if the router used the low bits too, every engine would see
//! only fingerprints congruent to its own index and populate a
//! correlated subset of its cache shards. The remix makes the two
//! reductions statistically independent.
//!
//! Shutdown mirrors the single engine, shared-owner safe: `close` stops
//! admissions on every shard through `&self`, `drain` additionally
//! waits until every accepted request is answered.

use std::path::Path;

use crossbeam::channel::Sender;

use crate::cache::{CacheKey, CacheStats};
use crate::chain_tier::{self, ChainTierStats, SnapshotError};
use crate::engine::{chain_cache_json, Engine, EngineConfig};
use crate::error::ServiceError;
use crate::metrics::MetricsSnapshot;
use crate::request::{ScheduleRequest, ScheduleResponse};

/// N independent engines behind a fingerprint router.
pub struct EngineShards {
    shards: Vec<Engine>,
}

/// Result of a sharded batch submission: the batch is split per shard
/// and each sub-batch is all-or-nothing, so part of a burst can be
/// accepted while an overloaded shard rejects its share. Rejected
/// members come back to the caller, which owes each one a typed error
/// (the engine will send no response for them).
pub struct BatchSubmission {
    /// Members accepted; each will receive exactly one response.
    pub accepted: usize,
    /// Members not enqueued, with the error their shard returned.
    pub rejected: Vec<(ScheduleRequest, ServiceError)>,
}

impl EngineShards {
    /// Starts `shards` engines (at least 1), each built from its own
    /// clone of `per_shard`. The config is *per shard*: total workers,
    /// queue depth and cache capacity scale with the shard count, which
    /// is the point — shards exist to multiply otherwise-serialized
    /// resources, not to split a fixed budget.
    #[must_use]
    pub fn start(shards: usize, per_shard: &EngineConfig) -> Self {
        let n = shards.max(1);
        EngineShards {
            shards: (0..n).map(|_| Engine::start(per_shard.clone())).collect(),
        }
    }

    /// Number of shards (≥ 1).
    #[must_use]
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard a request routes to: stable across the fleet's
    /// lifetime and *pool-free*, so every resource pool of one chain
    /// shares an engine (and its solve-once chain table — see module
    /// docs).
    #[must_use]
    pub fn shard_of(&self, request: &ScheduleRequest) -> usize {
        let fp = CacheKey::for_request(request).chain_fingerprint();
        // Fibonacci remix, routed on the high bits — decorrelated from
        // the cache's low-bit `% cache_shards` reduction (see module
        // docs).
        let mixed = fp.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        ((mixed >> 32) % self.shards.len() as u64) as usize
    }

    /// Direct access to one shard's engine (status endpoints, tests).
    #[must_use]
    pub fn shard(&self, idx: usize) -> &Engine {
        &self.shards[idx]
    }

    /// Non-blocking submission, routed by fingerprint. Same contract as
    /// [`Engine::try_submit`].
    pub fn try_submit(
        &self,
        request: ScheduleRequest,
        reply: Sender<ScheduleResponse>,
    ) -> Result<(), ServiceError> {
        let shard = self.shard_of(&request);
        self.shards[shard].try_submit(request, reply)
    }

    /// Convenience for synchronous callers: routes and waits for the
    /// single response. Same contract as [`Engine::schedule_blocking`].
    #[must_use]
    pub fn schedule_blocking(&self, request: ScheduleRequest) -> ScheduleResponse {
        let shard = self.shard_of(&request);
        self.shards[shard].schedule_blocking(request)
    }

    /// Splits a pipelined burst by shard and hands each shard its
    /// sub-batch as one queue slot. Accepted members get exactly one
    /// response each on `reply` (any order, match by id); rejected
    /// members are returned so the caller can answer them with typed
    /// errors.
    pub fn try_submit_batch(
        &self,
        requests: Vec<ScheduleRequest>,
        reply: &Sender<ScheduleResponse>,
    ) -> BatchSubmission {
        let mut buckets: Vec<Vec<ScheduleRequest>> = Vec::new();
        buckets.resize_with(self.shards.len(), Vec::new);
        for request in requests {
            let shard = self.shard_of(&request);
            buckets[shard].push(request);
        }
        let mut out = BatchSubmission {
            accepted: 0,
            rejected: Vec::new(),
        };
        for (engine, bucket) in self.shards.iter().zip(buckets) {
            if bucket.is_empty() {
                continue;
            }
            // All-or-nothing per shard: on rejection the engine has
            // enqueued nothing and every member travels back, so each
            // one is owed a caller-side typed error.
            match engine.try_submit_batch(bucket, reply.clone()) {
                Ok(accepted) => out.accepted += accepted,
                Err(bounced) => {
                    let error = bounced.error;
                    out.rejected.extend(
                        bounced
                            .requests
                            .into_iter()
                            .map(|request| (request, error.clone())),
                    );
                }
            }
        }
        out
    }

    /// Aggregated point-in-time metrics across all shards.
    #[must_use]
    pub fn metrics(&self) -> MetricsSnapshot {
        let mut iter = self.shards.iter();
        let mut total = iter.next().expect("at least one shard").metrics();
        for engine in iter {
            total.absorb(&engine.metrics());
        }
        total
    }

    /// Per-shard metrics, in shard order.
    #[must_use]
    pub fn per_shard_metrics(&self) -> Vec<MetricsSnapshot> {
        self.shards.iter().map(Engine::metrics).collect()
    }

    /// Aggregated cache counters across all shards.
    #[must_use]
    pub fn cache_stats(&self) -> CacheStats {
        let mut total = CacheStats {
            hits: 0,
            misses: 0,
            evictions: 0,
            insertions: 0,
            entries: 0,
            capacity: 0,
        };
        for engine in &self.shards {
            let s = engine.cache_stats();
            total.hits += s.hits;
            total.misses += s.misses;
            total.evictions += s.evictions;
            total.insertions += s.insertions;
            total.entries += s.entries;
            total.capacity += s.capacity;
        }
        total
    }

    /// Per-shard cache counters, in shard order.
    #[must_use]
    pub fn per_shard_cache_stats(&self) -> Vec<CacheStats> {
        self.shards.iter().map(Engine::cache_stats).collect()
    }

    /// Aggregated chain-tier counters across all shards.
    #[must_use]
    pub fn tier_stats(&self) -> ChainTierStats {
        let mut total = ChainTierStats::default();
        for engine in &self.shards {
            let s = engine.tier_stats();
            total.hits += s.hits;
            total.grows += s.grows;
            total.cold_solves += s.cold_solves;
            total.repairs += s.repairs;
            total.evictions += s.evictions;
            total.entries += s.entries;
            total.capacity += s.capacity;
            total.snapshot_loaded += s.snapshot_loaded;
            total.snapshot_rejected += s.snapshot_rejected;
        }
        total
    }

    /// Per-shard chain-tier counters, in shard order.
    #[must_use]
    pub fn per_shard_tier_stats(&self) -> Vec<ChainTierStats> {
        self.shards.iter().map(Engine::tier_stats).collect()
    }

    /// Writes one merged snapshot of every shard's chain tier to `path`
    /// (atomic temp-file-then-rename, same format as
    /// [`Engine::save_tier_snapshot`]). Chains are disjoint across
    /// shards — the router keys on the chain — so the merge is a plain
    /// concatenation, re-sorted for byte-stable output. Returns how many
    /// tables were written.
    pub fn save_tier_snapshot(&self, path: &Path) -> Result<usize, SnapshotError> {
        let mut tables: Vec<(String, amp_core::json::Json)> = self
            .shards
            .iter()
            .flat_map(|engine| engine.tier().snapshot_tables())
            .map(|doc| (doc.render_compact(), doc))
            .collect();
        tables.sort_by(|a, b| a.0.cmp(&b.0));
        tables.dedup_by(|a, b| a.0 == b.0);
        chain_tier::write_snapshot_file(path, tables.into_iter().map(|(_, d)| d).collect(), |_| {})
    }

    /// Restores every shard's chain tier from one merged snapshot file.
    /// Each engine loads the full document and installs every table —
    /// simpler than re-deriving the router's assignment, and the extra
    /// copies are bounded by `chain_capacity` per shard (the shard that
    /// owns a chain refreshes its copy on first touch; the others age
    /// out via LRU eviction). All-or-nothing per shard; the first error
    /// is returned. Returns the total number of installs.
    pub fn load_tier_snapshot(&self, path: &Path) -> Result<usize, SnapshotError> {
        let mut loaded = 0;
        for engine in &self.shards {
            loaded += engine.load_tier_snapshot(path)?;
        }
        Ok(loaded)
    }

    /// Fleet status as one JSON object: shard count, aggregate service
    /// metrics, exact-cache and chain-tier counters, plus each shard's
    /// own status. Like [`Engine::status_json`], hit rates are integer
    /// per-mille (`hit_rate_milli`) because the canonical JSON format
    /// has no floats.
    #[must_use]
    pub fn status_json(&self) -> String {
        let agg = self.metrics().to_json();
        let cache = self.cache_stats();
        let per_shard: Vec<String> = self.shards.iter().map(Engine::status_json).collect();
        format!(
            "{{\"shards\":{},\"service\":{agg},\"cache\":{{\"hits\":{},\"misses\":{},\
             \"evictions\":{},\"insertions\":{},\"entries\":{},\"capacity\":{},\
             \"hit_rate_milli\":{}}},\"chain_cache\":{},\"per_shard\":[{}]}}",
            self.shards.len(),
            cache.hits,
            cache.misses,
            cache.evictions,
            cache.insertions,
            cache.entries,
            cache.capacity,
            (cache.hit_rate() * 1000.0).round() as u64,
            chain_cache_json(&self.tier_stats()),
            per_shard.join(","),
        )
    }

    /// Stops admissions on every shard through `&self`; accepted
    /// requests still drain. Idempotent.
    pub fn close(&self) {
        for engine in &self.shards {
            engine.close();
        }
    }

    /// True once every shard is closed.
    #[must_use]
    pub fn is_closed(&self) -> bool {
        self.shards.iter().all(Engine::is_closed)
    }

    /// Closes every shard, then waits until each has answered all of
    /// its accepted requests and joined its workers. Idempotent,
    /// shared-owner safe.
    pub fn drain(&self) {
        // Close everything first so no shard keeps admitting while an
        // earlier one drains.
        self.close();
        for engine in &self.shards {
            engine.drain();
        }
    }

    /// Full graceful shutdown by value; dropping does the same.
    pub fn shutdown(self) {
        self.drain();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::Policy;
    use amp_core::{Resources, Task, TaskChain};
    use crossbeam::channel;

    /// Distinct chains: the task count and weights vary per id, so the
    /// fingerprints spread over the shards.
    fn request(id: u64, policy: Policy) -> ScheduleRequest {
        let chain = TaskChain::new(
            (0..3 + id % 4)
                .map(|i| Task::new(1 + (id + i) % 7, 2 + (id * 3 + i) % 9, i % 2 == 0))
                .collect(),
        );
        ScheduleRequest::from_chain(id, &chain, Resources::new(1 + id % 3, 2), policy)
    }

    fn fleet(shards: usize, workers: usize, queue_depth: usize) -> EngineShards {
        EngineShards::start(
            shards,
            &EngineConfig {
                workers,
                racer_threads: 0,
                queue_depth,
                cache_capacity: 64,
                cache_shards: 4,
                ..EngineConfig::default()
            },
        )
    }

    #[test]
    fn routing_is_stable_and_uses_every_shard() {
        let fleet = fleet(4, 1, 64);
        let mut seen = [false; 4];
        for id in 0..64 {
            let req = request(id, Policy::Strategy("FERTAC".to_string()));
            let shard = fleet.shard_of(&req);
            assert_eq!(shard, fleet.shard_of(&req), "routing must be stable");
            seen[shard] = true;
        }
        assert!(seen.iter().all(|&s| s), "64 distinct instances: {seen:?}");
        // The id is not key material: the same instance under a
        // different id routes identically.
        let a = request(7, Policy::Portfolio);
        let b = ScheduleRequest {
            id: 9999,
            ..a.clone()
        };
        assert_eq!(fleet.shard_of(&a), fleet.shard_of(&b));
    }

    #[test]
    fn routing_ignores_the_pool_so_every_pool_shape_shares_a_shard() {
        let fleet = fleet(4, 1, 64);
        for id in 0..32 {
            let base = request(id, Policy::Strategy("HeRAD".to_string()));
            let home = fleet.shard_of(&base);
            for big in 0..5 {
                for little in 0..5 {
                    let req = ScheduleRequest {
                        big_cores: big,
                        little_cores: little,
                        ..base.clone()
                    };
                    assert_eq!(
                        fleet.shard_of(&req),
                        home,
                        "pool ({big},{little}) must not move chain {id} off its shard"
                    );
                }
            }
        }
    }

    #[test]
    fn fleet_pool_sweep_pays_one_cold_solve_and_snapshots_round_trip() {
        // One chain under many pool shapes: the pool-free router keeps
        // every request on one shard, whose chain tier answers all but
        // the first by extraction or in-place growth.
        let fleet = fleet(4, 1, 64);
        let chain = TaskChain::new(vec![
            Task::new(10, 25, false),
            Task::new(40, 90, true),
            Task::new(5, 12, false),
        ]);
        let sweep: Vec<Resources> = (1..=3)
            .flat_map(|big| (0..=3).map(move |little| Resources::new(big, little)))
            .collect();
        for (id, &pool) in sweep.iter().enumerate() {
            let req = ScheduleRequest::from_chain(
                id as u64,
                &chain,
                pool,
                Policy::Strategy("HeRAD".to_string()),
            );
            let response = fleet.schedule_blocking(req);
            assert!(response.result.is_ok(), "pool {pool:?} must be feasible");
        }
        let stats = fleet.tier_stats();
        assert_eq!(
            stats.cold_solves, 1,
            "one chain = one cold solve fleet-wide"
        );
        assert_eq!(stats.hits + stats.grows, sweep.len() as u64 - 1);
        let status = fleet.status_json();
        assert!(status.contains("\"chain_cache\":{\"hits\":"));

        // Snapshot the fleet, restore a fresh one from it, replay the
        // sweep: a warm restart pays zero cold solves.
        let path = std::env::temp_dir().join(format!(
            "amp-fleet-snapshot-{}-{:?}.json",
            std::process::id(),
            std::thread::current().id()
        ));
        let written = fleet.save_tier_snapshot(&path).expect("save snapshot");
        assert_eq!(written, 1, "one chain = one table in the merged snapshot");
        fleet.shutdown();

        let warm = self::fleet(4, 1, 64);
        let loaded = warm.load_tier_snapshot(&path).expect("load snapshot");
        assert_eq!(loaded, 4, "each shard installs the full document");
        for (id, &pool) in sweep.iter().enumerate() {
            let req = ScheduleRequest::from_chain(
                1000 + id as u64,
                &chain,
                pool,
                Policy::Strategy("HeRAD".to_string()),
            );
            assert!(warm.schedule_blocking(req).result.is_ok());
        }
        let stats = warm.tier_stats();
        assert_eq!(stats.cold_solves, 0, "warm restart must never solve cold");
        assert_eq!(stats.hits, sweep.len() as u64);
        assert_eq!(stats.snapshot_loaded, 4);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn sharded_batch_answers_every_member_and_caches_per_shard() {
        let fleet = fleet(4, 1, 64);
        let requests: Vec<ScheduleRequest> = (0..48)
            .map(|id| request(id, Policy::Strategy("HeRAD".to_string())))
            .collect();
        let (tx, rx) = channel::unbounded();
        let sub = fleet.try_submit_batch(requests.clone(), &tx);
        assert_eq!(sub.accepted, 48);
        assert!(sub.rejected.is_empty());
        let mut ids: Vec<u64> = (0..48).map(|_| rx.recv().expect("response").id).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..48).collect::<Vec<_>>());
        assert!(rx.try_recv().is_err(), "no extra responses");
        // Same burst again: all answered from the per-shard caches.
        let (tx, rx) = channel::unbounded();
        let sub = fleet.try_submit_batch(requests, &tx);
        assert_eq!(sub.accepted, 48);
        for _ in 0..48 {
            assert!(rx.recv().expect("response").result.expect("ok").cache_hit);
        }
        let stats = fleet.cache_stats();
        assert_eq!(stats.hits, 48);
        assert_eq!(stats.insertions, 48);
        // Every shard holds its own disjoint slice.
        let per_shard = fleet.per_shard_cache_stats();
        assert_eq!(per_shard.iter().map(|s| s.entries).sum::<usize>(), 48);
        assert!(per_shard.iter().all(|s| s.entries > 0));
        let m = fleet.metrics();
        assert_eq!((m.requests, m.responses), (96, 96));
        let status = fleet.status_json();
        assert!(status.starts_with("{\"shards\":4,"));
        assert!(status.contains("\"per_shard\":["));
    }

    #[test]
    fn overloaded_shards_bounce_their_members_back() {
        // Zero workers, depth 1: each shard accepts exactly one batch
        // slot, then rejects wholesale.
        let fleet = fleet(2, 0, 1);
        let requests: Vec<ScheduleRequest> =
            (0..16).map(|id| request(id, Policy::Portfolio)).collect();
        let (tx, _rx) = channel::unbounded();
        let first = fleet.try_submit_batch(requests.clone(), &tx);
        assert_eq!(first.accepted, 16);
        let second = fleet.try_submit_batch(requests, &tx);
        assert_eq!(second.accepted, 0);
        assert_eq!(second.rejected.len(), 16);
        assert!(second
            .rejected
            .iter()
            .all(|(_, e)| *e == ServiceError::Overloaded));
        // After close, the bounce is typed as shutting down instead.
        fleet.close();
        assert!(fleet.is_closed());
        let third = fleet.try_submit_batch(vec![request(99, Policy::Portfolio)], &tx);
        assert_eq!(third.rejected.len(), 1);
        assert_eq!(third.rejected[0].1, ServiceError::ShuttingDown);
    }

    #[test]
    fn drain_answers_everything_accepted() {
        let fleet = fleet(4, 1, 64);
        let (tx, rx) = channel::unbounded();
        let requests: Vec<ScheduleRequest> = (0..32)
            .map(|id| request(id, Policy::Strategy("2CATAC".to_string())))
            .collect();
        let sub = fleet.try_submit_batch(requests, &tx);
        assert_eq!(sub.accepted, 32);
        fleet.drain();
        drop(tx);
        let mut ids: Vec<u64> = rx.iter().map(|r| r.id).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..32).collect::<Vec<_>>());
    }
}
